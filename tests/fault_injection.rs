//! Fault-injection campaign (requires `--features fault-injection`).
//!
//! Drives the public solver API with a deterministic [`SeededInjector`]
//! corrupting the solve mid-flight, and proves the ISSUE-3 contract: every
//! fault class is detected by the health check within one sweep of firing,
//! and each solve either *recovers* (spectrum within `1e-10 · σ_max` of the
//! clean solve) or is *rejected* with the matching structured
//! [`SvdError::SolveFault`] — never a silently wrong answer.
#![cfg(feature = "fault-injection")]

use hjsvd::core::{
    Corruption, EngineKind, Fault, HestenesSvd, RecoveryPolicy, SeededInjector, SolveBudget,
    SvdError, SvdOptions, SweepWorkspace,
};
use hjsvd::matrix::{gen, norms};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn solver(engine: EngineKind) -> HestenesSvd {
    HestenesSvd::new(SvdOptions { engine, ..Default::default() })
}

/// Recovered spectra must match the clean solve to `1e-10 · σ_max`.
fn assert_spectrum_close(got: &[f64], clean: &[f64]) {
    assert_eq!(got.len(), clean.len());
    let smax = clean[0].max(1e-300);
    for (k, (g, c)) in got.iter().zip(clean).enumerate() {
        assert!((g - c).abs() <= 1e-10 * smax, "σ[{k}] = {g} vs clean {c}");
    }
}

#[test]
fn transient_nan_gram_entry_is_recovered_on_every_engine() {
    let a = gen::uniform(24, 8, 42);
    for engine in [EngineKind::Sequential, EngineKind::Parallel, EngineKind::Blocked] {
        let s = solver(engine);
        let clean = s.singular_values(&a).unwrap();
        let mut ws = SweepWorkspace::new();
        let mut inj = SeededInjector::new(7)
            .at_sweep(2, Corruption::GramEntry { i: 1, j: 4, value: f64::NAN });
        let sv = s
            .singular_values_injected(&a, &mut ws, &mut inj)
            .unwrap_or_else(|e| panic!("{engine:?}: transient NaN must be recovered, got {e}"));
        assert_eq!(inj.fired().len(), 1, "{engine:?}: corruption fired once");
        assert_eq!(sv.stats.faults, 1, "{engine:?}: one fault observed");
        assert!(sv.stats.recoveries >= 1, "{engine:?}: at least one recovery");
        assert!(sv.values.iter().all(|v| v.is_finite()));
        assert_spectrum_close(&sv.values, &clean.values);
    }
}

#[test]
fn transient_negative_diagonal_is_recovered() {
    let a = gen::uniform(20, 6, 11);
    let s = solver(EngineKind::Sequential);
    let clean = s.decompose(&a).unwrap();
    let mut ws = SweepWorkspace::new();
    // A corrupted norm update: a squared column norm goes hard negative.
    let mut inj =
        SeededInjector::new(3).at_sweep(1, Corruption::GramEntry { i: 3, j: 3, value: -5.0 });
    let svd = s.decompose_injected(&a, &mut ws, &mut inj).expect("transient fault must heal");
    assert!(svd.stats.recoveries >= 1);
    assert_spectrum_close(&svd.singular_values, &clean.singular_values);
    assert!(svd.u.as_slice().iter().all(|v| v.is_finite()));
    assert!(svd.v.as_slice().iter().all(|v| v.is_finite()));
    assert!(norms::reconstruction_error(&a, &svd.u, &svd.singular_values, &svd.v) < 1e-9);
}

#[test]
fn persistent_nan_aborts_with_non_finite_gram_fault() {
    let a = gen::uniform(18, 6, 5);
    let s = solver(EngineKind::Sequential);
    let mut ws = SweepWorkspace::new();
    let mut inj = SeededInjector::new(9)
        .at_sweep(1, Corruption::GramEntry { i: 0, j: 2, value: f64::INFINITY })
        .persistent();
    let err = s.singular_values_injected(&a, &mut ws, &mut inj).unwrap_err();
    match err {
        SvdError::SolveFault { fault: Fault::NonFiniteGram { sweep }, recoveries, .. } => {
            // Detected within one sweep of firing, on the original attempt
            // and again on the recovery attempt before giving up.
            assert_eq!(sweep, 1, "detected in the sweep the corruption fired");
            assert_eq!(recoveries, 1, "rescale-restart was tried before aborting");
        }
        other => panic!("expected NonFiniteGram SolveFault, got {other:?}"),
    }
    assert!(inj.fired().len() >= 2, "the hard fault re-fired on the recovery attempt");
}

#[test]
fn persistent_fault_walks_the_full_recovery_chain_on_parallel_engines() {
    // Parallel engine + hard fault: rescale-restart, then sequential
    // fallback, then abort — two recoveries attempted, loud error.
    let a = gen::uniform(18, 6, 13);
    for engine in [EngineKind::Parallel, EngineKind::Blocked] {
        let s = solver(engine);
        let mut ws = SweepWorkspace::new();
        let mut inj = SeededInjector::new(21)
            .at_sweep(1, Corruption::GramEntry { i: 2, j: 2, value: f64::NAN })
            .persistent();
        let err = s.singular_values_injected(&a, &mut ws, &mut inj).unwrap_err();
        match err {
            SvdError::SolveFault { fault: Fault::NonFiniteGram { .. }, recoveries, .. } => {
                assert_eq!(recoveries, 2, "{engine:?}: rescale then engine fallback");
            }
            other => panic!("{engine:?}: expected NonFiniteGram, got {other:?}"),
        }
        assert_eq!(inj.fired().len(), 3, "{engine:?}: fired once per attempt");
    }
}

#[test]
fn persistent_bogus_rotation_never_returns_a_silent_answer() {
    // A broken rotation kernel (cos² + sin² = 2) re-corrupts the Gram state
    // before every sweep. Whatever path the policy takes, the one forbidden
    // outcome is Ok with a spectrum that disagrees with the clean solve.
    let a = gen::uniform(20, 6, 17);
    let s = solver(EngineKind::Sequential);
    let clean = s.singular_values(&a).unwrap();
    let mut ws = SweepWorkspace::new();
    let mut inj = SeededInjector::new(31)
        .at_sweep(1, Corruption::BogusRotation { i: 1, j: 3, cos: 1.0, sin: 1.0 })
        .persistent();
    match s.singular_values_injected(&a, &mut ws, &mut inj) {
        Err(SvdError::SolveFault { fault, .. }) => {
            assert!(
                matches!(
                    fault,
                    Fault::ConvergenceStall { .. }
                        | Fault::NonFiniteGram { .. }
                        // cos = sin = 1 makes d_j' = d_i + d_j − 2·cov, which
                        // goes negative whenever the pair is strongly
                        // correlated — the diagonal check fires first.
                        | Fault::NegativeDiagonal { .. }
                ),
                "unexpected fault class: {fault:?}"
            );
        }
        Err(other) => panic!("expected a SolveFault, got {other:?}"),
        Ok(sv) => assert_spectrum_close(&sv.values, &clean.values),
    }
    assert!(!inj.fired().is_empty());
}

#[test]
fn slow_sweeps_trip_the_deadline() {
    let a = gen::uniform(30, 10, 23);
    let s = solver(EngineKind::Sequential)
        .with_budget(SolveBudget::with_timeout(Duration::from_millis(20)));
    let mut ws = SweepWorkspace::new();
    let mut inj = SeededInjector::new(1).at_sweep(1, Corruption::Delay { millis: 60 }).persistent();
    let err = s.singular_values_injected(&a, &mut ws, &mut inj).unwrap_err();
    match err {
        SvdError::SolveFault { fault: Fault::DeadlineExceeded { sweep }, recoveries, .. } => {
            assert!(sweep >= 2, "the first sweep ran before the deadline fired");
            assert_eq!(recoveries, 0, "deadline faults are never retried");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn cancellation_flag_aborts_between_sweeps() {
    let a = gen::uniform(16, 5, 29);
    let flag = Arc::new(AtomicBool::new(true));
    let s = solver(EngineKind::Sequential)
        .with_budget(SolveBudget::unlimited().cancelled_by(flag.clone()));
    let err = s.singular_values(&a).unwrap_err();
    assert!(
        matches!(
            err,
            SvdError::SolveFault { fault: Fault::Cancelled { sweep: 1 }, recoveries: 0, .. }
        ),
        "pre-set flag stops before the first sweep: {err:?}"
    );
    // Clearing the flag lets the same solver run to completion.
    flag.store(false, Ordering::Relaxed);
    assert!(s.singular_values(&a).is_ok());
}

#[test]
fn abort_only_policy_rejects_even_transient_faults() {
    let a = gen::uniform(14, 5, 37);
    let s = solver(EngineKind::Sequential).with_recovery_policy(RecoveryPolicy::abort_only());
    let mut ws = SweepWorkspace::new();
    let mut inj =
        SeededInjector::new(2).at_sweep(1, Corruption::GramEntry { i: 0, j: 0, value: -1.0 });
    let err = s.singular_values_injected(&a, &mut ws, &mut inj).unwrap_err();
    match err {
        SvdError::SolveFault {
            fault: Fault::NegativeDiagonal { sweep: 1, index: 0 },
            recoveries: 0,
            ..
        } => {}
        other => panic!("expected NegativeDiagonal at sweep 1, got {other:?}"),
    }
}

#[test]
fn faulted_solve_does_not_poison_its_workspace() {
    // A workspace that carried an aborted solve must compute the same bits
    // as a fresh one on the next (clean) solve — per-slot isolation for the
    // batch API's pooled workspaces.
    let a = gen::uniform(22, 7, 41);
    for engine in [EngineKind::Parallel, EngineKind::Blocked] {
        let s = solver(engine).with_recovery_policy(RecoveryPolicy::abort_only());
        let mut ws = SweepWorkspace::new();
        let mut inj = SeededInjector::new(6)
            .at_sweep(1, Corruption::GramEntry { i: 1, j: 1, value: f64::NAN })
            .persistent();
        assert!(s.decompose_injected(&a, &mut ws, &mut inj).is_err());

        let clean = solver(engine);
        let reused = clean.decompose_with_workspace(&a, &mut ws).unwrap();
        let fresh = clean.decompose_with_workspace(&a, &mut SweepWorkspace::new()).unwrap();
        assert_eq!(reused.singular_values, fresh.singular_values, "{engine:?} σ");
        assert_eq!(reused.u.as_slice(), fresh.u.as_slice(), "{engine:?} U");
        assert_eq!(reused.v.as_slice(), fresh.v.as_slice(), "{engine:?} V");
    }
}

#[test]
fn injected_run_with_no_planned_corruptions_matches_clean_run_bitwise() {
    // The monitoring/injection plumbing itself must not perturb results.
    let a = gen::uniform(20, 6, 53);
    for engine in [EngineKind::Sequential, EngineKind::Parallel, EngineKind::Blocked] {
        let s = solver(engine);
        let clean = s.decompose(&a).unwrap();
        let mut ws = SweepWorkspace::new();
        let mut inj = SeededInjector::new(1);
        let injected = s.decompose_injected(&a, &mut ws, &mut inj).unwrap();
        assert!(inj.fired().is_empty());
        assert_eq!(injected.singular_values, clean.singular_values, "{engine:?}");
        assert_eq!(injected.u.as_slice(), clean.u.as_slice(), "{engine:?}");
        assert_eq!(injected.v.as_slice(), clean.v.as_slice(), "{engine:?}");
        assert_eq!(injected.stats.faults, 0);
        assert_eq!(injected.stats.recoveries, 0);
    }
}

#[test]
fn poisoned_batch_lane_aborts_alone_and_neighbors_are_bit_unaffected() {
    // Per-lane fault isolation in the SoA batch engine: a NaN written into
    // one problem's interleaved Gram triangle aborts THAT lane with a
    // structured non-finite-gram fault, while every other lane's spectrum,
    // sweep count, and history match the clean batch run bit-for-bit — the
    // software analogue of the paper's independent processing elements.
    use hjsvd::core::batch_engine::{BatchDriver, BatchWorkspace, LaneCorruption};

    let mats: Vec<_> = (0..12).map(|k| gen::uniform(18, 6, 500 + k)).collect();
    let s = solver(EngineKind::Sequential);
    let clean = s.singular_values_batch_soa(&mats);

    let driver = BatchDriver::new(&s);
    let mut ws = BatchWorkspace::new();
    driver.load(&mut ws, &mats);
    let plan = [LaneCorruption { problem: 4, sweep: 2, i: 1, j: 3, value: f64::NAN }];
    driver.sweep_to_convergence_corrupted(&mut ws, &plan);
    let batch = driver.extract(&ws, &mats);

    for (p, (res, want)) in batch.iter().zip(&clean).enumerate() {
        if p == 4 {
            match res {
                Err(SvdError::SolveFault { fault, sweeps_completed, .. }) => {
                    assert_eq!(fault.kind(), "non-finite-gram", "{fault}");
                    assert!(*sweeps_completed >= 2, "detected at the poisoned sweep");
                }
                other => panic!("poisoned lane must abort with a solve fault, got {other:?}"),
            }
        } else {
            let (got, want) = (res.as_ref().unwrap(), want.as_ref().unwrap());
            assert_eq!(got.values, want.values, "lane {p} perturbed by its neighbor's fault");
            assert_eq!(got.sweeps, want.sweeps, "lane {p} sweep count drifted");
            assert_eq!(got.history, want.history, "lane {p} history drifted");
        }
    }
}

#[test]
fn multiple_poisoned_lanes_fail_independently() {
    // Several corrupted lanes, several fault classes (NaN gram entry and a
    // hard-negative diagonal), one shared sweep loop: each poisoned lane
    // reports its own fault; the survivors still match the clean run.
    use hjsvd::core::batch_engine::{BatchDriver, BatchWorkspace, LaneCorruption};

    let mats: Vec<_> = (0..8).map(|k| gen::uniform(16, 5, 800 + k)).collect();
    let s = solver(EngineKind::Sequential);
    let clean = s.singular_values_batch_soa(&mats);

    let driver = BatchDriver::new(&s);
    let mut ws = BatchWorkspace::new();
    driver.load(&mut ws, &mats);
    let plan = [
        LaneCorruption { problem: 1, sweep: 1, i: 0, j: 2, value: f64::NAN },
        LaneCorruption { problem: 6, sweep: 2, i: 3, j: 3, value: -1e12 },
    ];
    driver.sweep_to_convergence_corrupted(&mut ws, &plan);
    let batch = driver.extract(&ws, &mats);

    let mut kinds = Vec::new();
    for (p, (res, want)) in batch.iter().zip(&clean).enumerate() {
        match (p, res) {
            (1 | 6, Err(SvdError::SolveFault { fault, .. })) => kinds.push(fault.kind()),
            (1 | 6, other) => panic!("lane {p} must abort, got {other:?}"),
            (_, res) => {
                let (got, want) = (res.as_ref().unwrap(), want.as_ref().unwrap());
                assert_eq!(got.values, want.values, "lane {p} perturbed");
            }
        }
    }
    assert_eq!(kinds, ["non-finite-gram", "negative-diagonal"]);
}
