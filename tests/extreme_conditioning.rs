//! Property tests at the edges of f64: column scales spanning
//! `1e-150..1e150`, rank-deficient inputs, duplicated columns — across all
//! three sweep engines. The contract under test is the ISSUE-3 guarantee:
//! the guarded solver either converges with an entirely finite
//! factorization or fails loudly with a structured error. It never returns
//! NaN, and it never returns silently wrong values.

use hjsvd::core::{EngineKind, HestenesSvd, SvdOptions};
use hjsvd::matrix::{gen, Matrix};
use proptest::prelude::*;

const ENGINES: [EngineKind; 3] =
    [EngineKind::Sequential, EngineKind::Parallel, EngineKind::Blocked];

/// Deterministic per-column decimal exponents in `[-150, 150]` from a seed.
fn column_exponents(seed: u64, n: usize) -> Vec<i32> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 301) as i32 - 150
        })
        .collect()
}

fn scale_columns(a: &mut Matrix, exps: &[i32]) {
    for (k, &e) in exps.iter().enumerate() {
        let s = 10f64.powi(e);
        for v in a.col_mut(k) {
            *v *= s;
        }
    }
}

/// `Ok` must mean *every* output value is finite and the spectrum is sorted
/// descending and non-negative; anything else is only acceptable as an `Err`.
fn assert_finite_or_loud(engine: EngineKind, a: &Matrix) -> Result<(), TestCaseError> {
    let solver = HestenesSvd::new(SvdOptions { engine, ..Default::default() });
    match solver.decompose(a) {
        Err(_) => {} // loud failure is a valid outcome at the extremes
        Ok(svd) => {
            prop_assert!(
                svd.singular_values.iter().all(|v| v.is_finite() && *v >= 0.0),
                "{engine:?}: non-finite or negative σ: {:?}",
                svd.singular_values
            );
            prop_assert!(
                svd.singular_values.windows(2).all(|w| w[0] >= w[1]),
                "{engine:?}: σ not sorted descending"
            );
            prop_assert!(svd.u.as_slice().iter().all(|v| v.is_finite()), "{engine:?}: NaN/∞ in U");
            prop_assert!(svd.v.as_slice().iter().all(|v| v.is_finite()), "{engine:?}: NaN/∞ in V");
        }
    }
    // Values-only path: same solve, same guarantee.
    match solver.singular_values(a) {
        Err(_) => {}
        Ok(sv) => {
            prop_assert!(
                sv.values.iter().all(|v| v.is_finite() && *v >= 0.0),
                "{engine:?}: values-only path produced non-finite σ"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn extreme_column_scales_never_yield_nan(
        (seed, n, extra_rows) in (any::<u64>(), 3usize..8, 1usize..12)
    ) {
        let m = n + extra_rows;
        let mut a = gen::uniform(m, n, seed);
        scale_columns(&mut a, &column_exponents(seed, n));
        for engine in ENGINES {
            assert_finite_or_loud(engine, &a)?;
        }
    }

    #[test]
    fn rank_deficient_extremes_never_yield_nan(
        (seed, n, extra_rows) in (any::<u64>(), 4usize..8, 1usize..10)
    ) {
        let m = n + extra_rows;
        let mut a = gen::uniform(m, n, seed);
        scale_columns(&mut a, &column_exponents(seed, n));
        // Duplicate a scaled column and zero another: rank ≤ n − 2, with
        // exactly repeated columns (the hardest case for a Jacobi pair —
        // the rotation angle is ±45° every visit).
        let dup = a.col(0).to_vec();
        a.col_mut(1).copy_from_slice(&dup);
        for v in a.col_mut(n - 1) {
            *v = 0.0;
        }
        for engine in ENGINES {
            assert_finite_or_loud(engine, &a)?;
        }
    }

    #[test]
    fn engines_agree_on_the_spectrum_when_all_converge(
        (seed, n) in (any::<u64>(), 3usize..7)
    ) {
        // Exponent span narrowed to ±75 (inside the prescaler's bit-exact
        // window): when every engine converges, they must agree — the
        // spectrum is a property of the input, not of the sweep schedule.
        let mut a = gen::uniform(n + 8, n, seed);
        let exps: Vec<i32> = column_exponents(seed, n).iter().map(|e| e / 2).collect();
        scale_columns(&mut a, &exps);
        let spectra: Vec<Vec<f64>> = ENGINES
            .iter()
            .filter_map(|&engine| {
                HestenesSvd::new(SvdOptions { engine, ..Default::default() })
                    .singular_values(&a)
                    .ok()
                    .map(|sv| sv.values)
            })
            .collect();
        for pair in spectra.windows(2) {
            let smax = pair[0].first().copied().unwrap_or(0.0).max(f64::MIN_POSITIVE);
            for (x, y) in pair[0].iter().zip(&pair[1]) {
                prop_assert!(
                    (x - y).abs() <= 1e-10 * smax,
                    "engines disagree: {x} vs {y} (σmax {smax})"
                );
            }
        }
    }
}
