//! Property-based tests (proptest) over the core data structures and
//! numerical invariants of the workspace.

use hjsvd::core::ordering::{round_robin, row_cyclic, Ordering, PlanBuffers};
use hjsvd::core::rotation::{hardware_params, rotate_norms, textbook_params};
use hjsvd::core::{EngineKind, GramState, HestenesSvd, SvdOptions};
use hjsvd::matrix::{gen, norms, PackedSymmetric};
use proptest::prelude::*;

/// Strategy: a plausible (norm_i, norm_j, cov) triple satisfying
/// Cauchy-Schwarz (what a real Gram pair always satisfies).
fn gram_pair() -> impl Strategy<Value = (f64, f64, f64)> {
    (1e-6f64..1e6, 1e-6f64..1e6, -0.999f64..0.999)
        .prop_map(|(a, b, frac)| (a, b, frac * (a * b).sqrt()))
}

proptest! {
    #[test]
    fn rotation_annihilates_covariance((ni, nj, cov) in gram_pair()) {
        let rot = textbook_params(ni, nj, cov);
        let new_cov = rot.cos * rot.sin * (ni - nj) + (rot.cos * rot.cos - rot.sin * rot.sin) * cov;
        let scale = ni.max(nj).max(1.0);
        prop_assert!(new_cov.abs() <= 1e-12 * scale, "residual covariance {new_cov}");
    }

    #[test]
    fn rotation_is_orthonormal_and_inner((ni, nj, cov) in gram_pair()) {
        let rot = textbook_params(ni, nj, cov);
        prop_assert!((rot.cos * rot.cos + rot.sin * rot.sin - 1.0).abs() < 1e-14);
        prop_assert!(rot.t.abs() <= 1.0 + 1e-15, "Jacobi must pick the inner rotation");
        prop_assert!(rot.cos >= std::f64::consts::FRAC_1_SQRT_2 - 1e-15);
    }

    #[test]
    fn hardware_equals_textbook((ni, nj, cov) in gram_pair()) {
        let tx = textbook_params(ni, nj, cov);
        let hw = hardware_params(ni, nj, cov);
        let tol = 1e-12;
        prop_assert!((tx.cos - hw.cos).abs() < tol, "cos {} vs {}", tx.cos, hw.cos);
        prop_assert!((tx.sin - hw.sin).abs() < tol, "sin {} vs {}", tx.sin, hw.sin);
    }

    #[test]
    fn norm_update_preserves_trace_and_positivity((ni, nj, cov) in gram_pair()) {
        let rot = textbook_params(ni, nj, cov);
        let (a2, b2, c2) = rotate_norms(ni, nj, cov, &rot);
        prop_assert_eq!(c2, 0.0);
        prop_assert!((a2 + b2 - (ni + nj)).abs() < 1e-10 * (ni + nj));
        // PSD 2x2 eigenvalues stay nonnegative (up to roundoff).
        prop_assert!(a2 >= -1e-9 * (ni + nj) && b2 >= -1e-9 * (ni + nj));
    }

    #[test]
    fn packed_symmetric_get_set_roundtrip(n in 1usize..40, i in 0usize..40, j in 0usize..40, v in -1e9f64..1e9) {
        let (i, j) = (i % n, j % n);
        let mut d = PackedSymmetric::zeros(n);
        d.set(i, j, v);
        prop_assert_eq!(d.get(i, j), v);
        prop_assert_eq!(d.get(j, i), v);
        // Exactly one packed slot was written.
        let written = d.as_slice().iter().filter(|&&x| x != 0.0).count();
        prop_assert!(written <= 1);
    }

    #[test]
    fn round_robin_covers_every_pair(n in 2usize..40) {
        let sweep = round_robin(n);
        let mut seen = std::collections::HashSet::new();
        for (i, j) in sweep.pairs() {
            prop_assert!(i < j && j < n);
            prop_assert!(seen.insert((i, j)), "duplicate pair ({i},{j})");
        }
        prop_assert_eq!(seen.len(), n * (n - 1) / 2);
        // Disjointness within rounds.
        for round in sweep.rounds() {
            let mut used = std::collections::HashSet::new();
            for &(i, j) in round {
                prop_assert!(used.insert(i) && used.insert(j));
            }
        }
    }

    #[test]
    fn row_cyclic_covers_every_pair(n in 2usize..30) {
        let sweep = row_cyclic(n);
        prop_assert_eq!(sweep.pair_count(), n * (n - 1) / 2);
    }

    #[test]
    fn gram_rotation_preserves_trace(seed in 0u64..500, n in 2usize..12) {
        let a = gen::uniform(3 * n, n, seed);
        let mut g = GramState::from_matrix(&a);
        let t0 = g.trace();
        for (i, j) in round_robin(n).pairs() {
            let rot = textbook_params(g.norm_sq(i), g.norm_sq(j), g.covariance(i, j));
            g.rotate(i, j, &rot);
        }
        prop_assert!((g.trace() - t0).abs() < 1e-10 * t0.max(1.0));
    }

    #[test]
    fn svd_reconstructs_random_input(seed in 0u64..200, m in 2usize..24, n in 1usize..16) {
        let a = gen::uniform(m, n, seed);
        let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        let err = norms::reconstruction_error(&a, &svd.u, &svd.singular_values, &svd.v);
        prop_assert!(err < 1e-10, "reconstruction error {err} for {m}x{n} seed {seed}");
        // Frobenius identity: ‖A‖_F² = Σ σ².
        let f2 = norms::frobenius_sq(&a);
        let s2: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        prop_assert!((f2 - s2).abs() < 1e-9 * f2.max(1.0));
        // Sorted, nonnegative.
        prop_assert!(svd.singular_values.windows(2).all(|w| w[0] >= w[1]));
        prop_assert!(svd.singular_values.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_spectrum_is_scale_equivariant(seed in 0u64..100, scale in 1e-3f64..1e3) {
        let a = gen::uniform(10, 6, seed);
        let scaled = a.scaled(scale);
        let s1 = HestenesSvd::new(SvdOptions::default()).singular_values(&a).unwrap().values;
        let s2 = HestenesSvd::new(SvdOptions::default()).singular_values(&scaled).unwrap().values;
        for (x, y) in s1.iter().zip(&s2) {
            prop_assert!((x * scale - y).abs() < 1e-9 * (x * scale).max(1e-9), "{x} * {scale} vs {y}");
        }
    }

    #[test]
    fn transpose_preserves_spectrum(seed in 0u64..100) {
        let a = gen::uniform(14, 7, seed);
        let at = a.transpose();
        let s1 = HestenesSvd::new(SvdOptions::default()).singular_values(&a).unwrap().values;
        let s2 = HestenesSvd::new(SvdOptions::default()).singular_values(&at).unwrap().values;
        for (x, y) in s1.iter().zip(&s2) {
            prop_assert!((x - y).abs() < 1e-9 * x.max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_transpose_identity(seed in 0u64..100, m in 1usize..10, n in 1usize..10, k in 1usize..10) {
        // (AB)ᵀ = BᵀAᵀ — exercises the matrix substrate's product/transpose.
        let a = gen::uniform(m, k, seed);
        let b = gen::uniform(k, n, seed ^ 1);
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        let diff = norms::frobenius(&ab_t.sub(&bt_at).unwrap());
        prop_assert!(diff < 1e-10);
    }

    #[test]
    fn column_pair_rotation_preserves_frobenius(seed in 0u64..100, theta in -3.1f64..3.1) {
        let mut a = gen::uniform(12, 5, seed);
        let before = norms::frobenius_sq(&a);
        a.column_pair(1, 3).unwrap().rotate(theta.cos(), theta.sin());
        let after = norms::frobenius_sq(&a);
        prop_assert!((before - after).abs() < 1e-10 * before.max(1.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn eckart_young_truncation(seed in 0u64..50) {
        // ‖A − A_r‖_F² = Σ_{t>r} σ_t² — the truncated SVD must achieve the
        // optimal low-rank error exactly.
        let sigma = [8.0, 4.0, 2.0, 1.0, 0.5];
        let a = gen::with_singular_values(20, 5, &sigma, seed);
        let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        for r in 0..5 {
            let ar = svd.truncated(r);
            let err2 = norms::frobenius_sq(&a.sub(&ar).unwrap());
            let expect: f64 = sigma[r..].iter().map(|s| s * s).sum();
            prop_assert!((err2 - expect).abs() < 1e-8 * expect.max(1e-8),
                "rank {r}: err² {err2} vs Σ tail σ² {expect}");
        }
    }

    #[test]
    fn fixed_point_matches_f64_on_well_scaled(seed in 0u64..30) {
        let a = gen::uniform(12, 5, seed);
        let rep = hjsvd::baselines::fixed_point::fixed_point_singular_values(&a, 12);
        prop_assert!(!rep.stats.any(), "unexpected overflow: {:?}", rep.stats);
        let exact = HestenesSvd::new(SvdOptions::default()).singular_values(&a).unwrap();
        for (x, y) in rep.singular_values.iter().zip(&exact.values) {
            prop_assert!((x - y).abs() < 1e-3 * y.max(1.0), "fixed {x} vs exact {y}");
        }
    }

    #[test]
    fn batched_solves_are_bitwise_identical_to_sequential(
        seed in 0u64..100,
        count in 1usize..6,
        which in 0usize..3,
    ) {
        let engine = [EngineKind::Sequential, EngineKind::Parallel, EngineKind::Blocked][which];
        // decompose_batch must return, slot for slot, the exact bits the
        // one-at-a-time driver produces — at whatever thread count the pool
        // was launched with (fan-out order must never leak into results).
        let mats: Vec<_> = (0..count)
            .map(|k| {
                let m = 3 + (seed as usize + 5 * k) % 14;
                let n = 1 + (seed as usize + 3 * k) % m.min(8);
                gen::uniform(m, n, seed.wrapping_add(k as u64))
            })
            .collect();
        let solver = HestenesSvd::new(SvdOptions { engine, ..Default::default() });
        let batch = solver.decompose_batch(&mats);
        prop_assert_eq!(batch.len(), mats.len());
        for (k, res) in batch.iter().enumerate() {
            let one = solver.decompose(&mats[k]).unwrap();
            let b = res.as_ref().unwrap();
            prop_assert_eq!(b.u.as_slice(), one.u.as_slice(), "U[{}] differs", k);
            prop_assert_eq!(&b.singular_values, &one.singular_values, "sigma[{}] differs", k);
            prop_assert_eq!(b.v.as_slice(), one.v.as_slice(), "V[{}] differs", k);
        }
    }

    #[test]
    fn soa_batch_matches_looped_within_envelope_on_mixed_batches(
        seed in 0u64..120,
        n in 2usize..13,
        count in 1usize..10,
    ) {
        // The SoA engine's documented accuracy contract against the looped
        // per-matrix baseline: slot for slot, every singular value within
        // 1e-12·σ_max, on batches mixing well-conditioned (κ = 10) and
        // ill-conditioned (κ = 1e3) graded spectra. The two paths' guarded
        // parameter chains diverge in the last ulps and conditioning
        // amplifies that on the smallest σ by ~ε·κ/2, so κ = 1e3 keeps the
        // tail inside the 1e-12 envelope with real margin (by κ ≈ 1e4 the
        // divergence itself reaches the bound — that regime belongs to the
        // coarser extreme-conditioning suite). Conditioning is pinned on
        // BOTH halves: random uniform matrices have a heavy-tailed κ that
        // would make the envelope flaky across hundreds of cases.
        let mats: Vec<_> = (0..count)
            .map(|k| {
                let s = seed.wrapping_mul(31).wrapping_add(k as u64);
                let m = n + 4 + (seed as usize + k) % 9;
                let cond = if k % 2 == 0 { 10.0 } else { 1e3 };
                gen::with_condition_number(m, n, cond, s)
            })
            .collect();
        let solver = HestenesSvd::new(SvdOptions::default());
        let looped = solver.singular_values_batch_looped(&mats);
        let soa = solver.singular_values_batch_soa(&mats);
        prop_assert_eq!(soa.len(), mats.len());
        for (k, (l, s)) in looped.iter().zip(&soa).enumerate() {
            let l = l.as_ref().unwrap();
            let s = s.as_ref().unwrap();
            prop_assert_eq!(l.values.len(), s.values.len(), "slot {} length", k);
            let smax = l.values.first().copied().unwrap_or(0.0).max(1e-300);
            for (r, (a, b)) in l.values.iter().zip(&s.values).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-12 * smax,
                    "slot {} sigma[{}]: looped {} vs soa {}", k, r, a, b
                );
            }
        }
    }

    #[test]
    fn workspace_reuse_is_bitwise_transparent(
        seed in 0u64..100,
        n1 in 2usize..12,
        n2 in 2usize..12,
    ) {
        // One workspace carried across two different-shaped solves produces
        // the same bits as a fresh workspace per solve: no state leaks.
        use hjsvd::core::parallel::{parallel_sweep_full_ws, SweepWorkspace};
        use hjsvd::matrix::Matrix;
        let shapes = [(2 * n1 + 1, n1), (3 * n2, n2)];
        let mut ws = SweepWorkspace::new();
        for (k, &(m, n)) in shapes.iter().enumerate() {
            let src = gen::uniform(m, n, seed.wrapping_add(k as u64));
            let order = round_robin(n);

            let mut b_reused = src.clone();
            let mut g_reused = GramState::from_matrix(&b_reused);
            let mut v_reused = Matrix::identity(n);

            let mut b_fresh = src.clone();
            let mut g_fresh = GramState::from_matrix(&b_fresh);
            let mut v_fresh = Matrix::identity(n);
            let mut fresh = SweepWorkspace::new();

            for s in 1..=3 {
                parallel_sweep_full_ws(&mut b_reused, &mut g_reused, Some(&mut v_reused), &order, s, &mut ws);
                parallel_sweep_full_ws(&mut b_fresh, &mut g_fresh, Some(&mut v_fresh), &order, s, &mut fresh);
            }
            prop_assert_eq!(b_reused.as_slice(), b_fresh.as_slice(), "B differs on solve {}", k);
            prop_assert_eq!(v_reused.as_slice(), v_fresh.as_slice(), "V differs on solve {}", k);
            prop_assert_eq!(g_reused.packed().as_slice(), g_fresh.packed().as_slice(),
                "D differs on solve {}", k);
        }
    }

    #[test]
    fn sequential_and_blocked_engines_agree(seed in 0u64..60, shape in 0usize..4) {
        // Tall, square, wide, rank-deficient — the cache-tiled blocked engine
        // takes a different (group-sequential) path through each sweep, so it
        // is not bit-identical to the sequential engine, but the spectra must
        // agree to near machine precision.
        let a = match shape {
            0 => gen::uniform(36, 11, seed),          // tall
            1 => gen::uniform(14, 14, seed),          // square
            2 => gen::uniform(8, 22, seed),           // wide
            _ => gen::rank_deficient(24, 9, 4, seed), // rank-deficient
        };
        let seq = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        let blk = HestenesSvd::new(SvdOptions { engine: EngineKind::Blocked, ..Default::default() })
            .decompose(&a)
            .unwrap();
        prop_assert_eq!(seq.singular_values.len(), blk.singular_values.len());
        let smax = seq.singular_values.first().copied().unwrap_or(0.0).max(1e-300);
        for (x, y) in seq.singular_values.iter().zip(&blk.singular_values) {
            // Compare the Gram spectrum (σ²): numerically-zero values are
            // O(√ε·σmax) dust whose exact bits legitimately differ between
            // engines, but their squared mass is pinned to 1e-13 relative.
            prop_assert!(
                (x * x - y * y).abs() <= 1e-13 * smax * smax,
                "σ² mismatch: {} vs {}", x, y
            );
            if x.min(*y) > 1e-6 * smax {
                prop_assert!((x - y).abs() <= 1e-13 * smax, "σ mismatch: {} vs {}", x, y);
            }
        }
        let err = norms::reconstruction_error(&a, &blk.u, &blk.singular_values, &blk.v);
        prop_assert!(err < 1e-10, "blocked reconstruction error {}", err);
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_manual_sweep_loop(seed in 0u64..60, n in 2usize..12) {
        // The refactor moved the parallel path behind SolveDriver; the exact
        // bits the pre-refactor driver produced (a hand-rolled
        // parallel_sweep_full_ws loop with the same convergence rule) must be
        // preserved.
        use hjsvd::core::convergence::{is_converged, Convergence, MAX_SWEEP_CAP};
        use hjsvd::core::parallel::{parallel_sweep_full_ws, SweepWorkspace};
        use hjsvd::matrix::{ops, Matrix};
        let m = 2 * n + 3;
        let a = gen::uniform(m, n, seed);

        let mut b = a.clone();
        let mut g = GramState::from_matrix(&b);
        let mut v = Matrix::identity(n);
        let order = round_robin(n);
        let mut ws = SweepWorkspace::new();
        let crit = Convergence::default();
        let mut sweeps = 0usize;
        while sweeps < MAX_SWEEP_CAP {
            sweeps += 1;
            let rec =
                parallel_sweep_full_ws(&mut b, &mut g, Some(&mut v), &order, sweeps, &mut ws);
            if is_converged(&crit, &rec, g.trace(), n) {
                break;
            }
        }

        let svd =
            HestenesSvd::new(SvdOptions { engine: EngineKind::Parallel, ..Default::default() })
                .decompose(&a)
                .unwrap();
        prop_assert_eq!(svd.sweeps, sweeps, "sweep count changed");

        // σ must be the column norms of the manual B, bitwise, in sorted
        // order; V's columns must be the manual V's columns, bitwise.
        let mut idx: Vec<usize> = (0..n).collect();
        let col_norms: Vec<f64> = (0..n).map(|c| ops::norm(b.col(c))).collect();
        idx.sort_by(|&x, &y| col_norms[y].partial_cmp(&col_norms[x]).unwrap());
        for (t, &c) in idx.iter().take(m.min(n)).enumerate() {
            prop_assert_eq!(
                svd.singular_values[t].to_bits(),
                col_norms[c].to_bits(),
                "σ[{}] bits differ", t
            );
            prop_assert_eq!(svd.v.col(t), v.col(c), "V column {} bits differ", t);
        }
    }

    #[test]
    fn every_ordering_plans_disjoint_rounds_and_visits_pairs_at_most_once(
        seed in 0u64..100,
        n in 2usize..24,
    ) {
        // The scheduling contract every strategy must honor, sweep after
        // sweep: pairs are (i, j) with i < j < n, no pair is visited twice
        // within one sweep, no column appears twice within one round, and —
        // for the strategies shipped today, which are all full-coverage —
        // every pair is visited exactly once per sweep.
        let a = gen::uniform(2 * n + 1, n, seed);
        let gram = GramState::from_matrix(&a);
        let mut buffers = PlanBuffers::new();
        for kind in Ordering::ALL {
            let (strategy, plan) = buffers.schedule_parts(kind);
            for sweep_index in 1..=3usize {
                strategy.plan_sweep(&gram, sweep_index, plan);
                let mut seen = std::collections::HashSet::new();
                for round in plan.rounds() {
                    let mut used = std::collections::HashSet::new();
                    for &(i, j) in round {
                        prop_assert!(i < j && j < n,
                            "{}: bad pair ({i},{j}) for n={n}", kind.name());
                        prop_assert!(seen.insert((i, j)),
                            "{}: pair ({i},{j}) visited twice in sweep {sweep_index}", kind.name());
                        prop_assert!(used.insert(i) && used.insert(j),
                            "{}: column reused within a round", kind.name());
                    }
                }
                prop_assert_eq!(seen.len(), n * (n - 1) / 2,
                    "{}: sweep {} must cover every pair", kind.name(), sweep_index);
            }
        }
    }

    #[test]
    fn presort_folds_the_permutation_into_v_bit_exactly(seed in 0u64..60, n in 2usize..12) {
        // The de Rijk presort is "cyclic on the column-permuted matrix with
        // the permutation folded into V's starting value" — so against a
        // manual permute-then-cyclic solve it must reproduce U and σ bit for
        // bit, and V row-permuted by the same permutation, with no undo pass.
        use hjsvd::matrix::{ops, Matrix};
        let m = 2 * n + 3;
        let a = gen::uniform(m, n, seed);

        // Replicate the solver's permutation: descending column norm, ties
        // (and NaN) by column index via total_cmp.
        let norms_v: Vec<f64> = (0..n).map(|c| ops::norm(a.col(c))).collect();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.sort_by(|&x, &y| norms_v[y].total_cmp(&norms_v[x]).then(x.cmp(&y)));
        let mut ap = Matrix::zeros(m, n);
        for (t, &c) in perm.iter().enumerate() {
            ap.col_mut(t).copy_from_slice(a.col(c));
        }

        let pre = HestenesSvd::new(SvdOptions {
            ordering: Ordering::ColumnNormPresort,
            ..Default::default()
        })
        .decompose(&a)
        .unwrap();
        let cyc = HestenesSvd::new(SvdOptions::default()).decompose(&ap).unwrap();

        prop_assert_eq!(pre.sweeps, cyc.sweeps, "sweep counts differ");
        prop_assert_eq!(pre.u.as_slice(), cyc.u.as_slice(), "U bits differ");
        for (s_pre, s_cyc) in pre.singular_values.iter().zip(&cyc.singular_values) {
            prop_assert_eq!(s_pre.to_bits(), s_cyc.to_bits(), "σ bits differ");
        }
        // V_presort = P·V_cyclic: row perm[t] of the presort V is row t of
        // the cyclic-on-permuted V, bitwise.
        for k in 0..pre.v.cols() {
            let (col_pre, col_cyc) = (pre.v.col(k), cyc.v.col(k));
            for t in 0..n {
                prop_assert_eq!(col_pre[perm[t]].to_bits(), col_cyc[t].to_bits(),
                    "V row permutation broken at (t={t}, k={k})");
            }
        }
        // And the presorted solve still factors the *original* matrix.
        let err = norms::reconstruction_error(&a, &pre.u, &pre.singular_values, &pre.v);
        prop_assert!(err < 1e-10, "presort reconstruction error {err}");
    }

    #[test]
    fn cyclic_ordering_is_bit_identical_to_the_fixed_plan_on_every_engine(
        seed in 0u64..60,
        n in 2usize..12,
        which in 0usize..3,
    ) {
        // The ordering refactor moved plan construction behind
        // OrderingStrategy + PlanBuffers; the default cyclic schedule must
        // still produce the exact bits of the pre-refactor fixed
        // round_robin(n) sweep loop — on all three engines (below the
        // single-tile bound the blocked engine does bit-identical work).
        use hjsvd::core::convergence::{is_converged, Convergence, MAX_SWEEP_CAP};
        use hjsvd::core::sweep::sweep_full;
        use hjsvd::matrix::{ops, Matrix};
        let engine = [EngineKind::Sequential, EngineKind::Parallel, EngineKind::Blocked][which];
        let m = 2 * n + 3;
        let a = gen::uniform(m, n, seed);

        let mut b = a.clone();
        let mut g = GramState::from_matrix(&b);
        let mut v = Matrix::identity(n);
        let order = round_robin(n);
        let crit = Convergence::default();
        let mut sweeps = 0usize;
        while sweeps < MAX_SWEEP_CAP {
            sweeps += 1;
            let rec = sweep_full(&mut b, &mut g, Some(&mut v), &order, sweeps);
            if is_converged(&crit, &rec, g.trace(), n) {
                break;
            }
        }

        let svd = HestenesSvd::new(SvdOptions {
            engine,
            ordering: Ordering::RoundRobin,
            ..Default::default()
        })
        .decompose(&a)
        .unwrap();
        prop_assert_eq!(svd.sweeps, sweeps, "{}: sweep count changed", engine.name());

        let mut idx: Vec<usize> = (0..n).collect();
        let col_norms: Vec<f64> = (0..n).map(|c| ops::norm(b.col(c))).collect();
        idx.sort_by(|&x, &y| col_norms[y].partial_cmp(&col_norms[x]).unwrap());
        for (t, &c) in idx.iter().take(m.min(n)).enumerate() {
            prop_assert_eq!(
                svd.singular_values[t].to_bits(),
                col_norms[c].to_bits(),
                "{}: σ[{}] bits differ", engine.name(), t
            );
            prop_assert_eq!(svd.v.col(t), v.col(c), "{}: V column {} bits differ",
                engine.name(), t);
        }
    }

    #[test]
    fn cordic_agrees_with_direct_formula(
        (ni, nj) in (0.01f64..100.0, 0.01f64..100.0),
        frac in -0.99f64..0.99,
    ) {
        let cov = frac * (ni * nj).sqrt();
        let engine = hjsvd::baselines::cordic::Cordic::new(54);
        let (cc, cs) = engine.jacobi_params(ni, nj, cov);
        let direct = textbook_params(ni, nj, cov);
        prop_assert!((cc - direct.cos).abs() < 1e-7, "cos {cc} vs {}", direct.cos);
        prop_assert!((cs - direct.sin).abs() < 1e-7, "sin {cs} vs {}", direct.sin);
    }
}
