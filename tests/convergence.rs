//! Convergence behaviour across sizes, shapes, orderings, and stopping
//! rules — the integration-level counterpart of the paper's §VI-C.

use hjsvd::core::convergence::Convergence;
use hjsvd::core::{HestenesSvd, Ordering, SvdOptions};
use hjsvd::matrix::gen;

#[test]
fn mean_abs_covariance_decreases_monotonically() {
    for &n in &[16usize, 48, 96] {
        let a = gen::uniform(n, n, n as u64);
        let sv = HestenesSvd::new(SvdOptions::paper()).singular_values(&a).unwrap();
        for w in sv.history.windows(2) {
            assert!(
                w[1].mean_abs_cov <= w[0].mean_abs_cov * (1.0 + 1e-12),
                "n={n}: sweep {} regressed: {} → {}",
                w[1].sweep,
                w[0].mean_abs_cov,
                w[1].mean_abs_cov
            );
        }
    }
}

#[test]
fn larger_column_dimension_converges_slower() {
    // The paper's Fig. 10 ordering: at a fixed sweep, larger n has larger
    // residual covariance mass (relative to its own start).
    let run = |n: usize| {
        let a = gen::uniform(n, n, 5);
        let sv = HestenesSvd::new(SvdOptions::paper()).singular_values(&a).unwrap();
        let h = &sv.history;
        h[5].mean_abs_cov / h[0].mean_abs_cov.max(1e-300)
    };
    let r32 = run(32);
    let r128 = run(128);
    assert!(
        r128 > r32,
        "relative residual after 6 sweeps must grow with n: n=32 {r32:.3e}, n=128 {r128:.3e}"
    );
}

#[test]
fn row_dimension_barely_affects_convergence() {
    // The paper's Fig. 11: trajectories for fixed n, varying m, are nearly
    // identical. Compare the sweep count needed to converge.
    let sweeps_for = |m: usize| {
        let a = gen::uniform(m, 64, 9);
        HestenesSvd::new(SvdOptions::default()).singular_values(&a).unwrap().sweeps
    };
    let s64 = sweeps_for(64);
    let s1024 = sweeps_for(1024);
    assert!(
        (s64 as i64 - s1024 as i64).abs() <= 2,
        "sweep counts should be close across m: {s64} vs {s1024}"
    );
}

#[test]
fn threshold_stopping_reaches_requested_precision() {
    let a = gen::uniform(40, 24, 3);
    for tol in [1e-6, 1e-10, 1e-14] {
        let opts =
            SvdOptions { convergence: Convergence::MaxCovariance { tol }, ..Default::default() };
        let sv = HestenesSvd::new(opts).singular_values(&a).unwrap();
        let last = sv.history.last().unwrap();
        let scale = {
            let g = hjsvd::core::GramState::from_matrix(&a);
            g.trace() / 24.0
        };
        assert!(
            last.max_abs_cov <= tol * scale,
            "tol {tol}: final max|cov| {} vs bound {}",
            last.max_abs_cov,
            tol * scale
        );
    }
}

#[test]
fn tighter_tolerance_needs_at_least_as_many_sweeps() {
    let a = gen::uniform(60, 32, 11);
    let sweeps_at = |tol: f64| {
        let opts =
            SvdOptions { convergence: Convergence::MaxCovariance { tol }, ..Default::default() };
        HestenesSvd::new(opts).singular_values(&a).unwrap().sweeps
    };
    assert!(sweeps_at(1e-14) >= sweeps_at(1e-6));
}

#[test]
fn no_rotations_rule_terminates() {
    let a = gen::uniform(30, 16, 13);
    let opts = SvdOptions { convergence: Convergence::NoRotations, ..Default::default() };
    let sv = HestenesSvd::new(opts).singular_values(&a).unwrap();
    assert!(sv.sweeps < 60, "NoRotations must terminate before the hard cap");
    assert_eq!(sv.history.last().unwrap().rotations_applied, 0);
}

#[test]
fn both_orderings_converge_to_same_spectrum() {
    let a = gen::uniform(30, 18, 17);
    let rr = HestenesSvd::new(SvdOptions { ordering: Ordering::RoundRobin, ..Default::default() })
        .singular_values(&a)
        .unwrap();
    let rc = HestenesSvd::new(SvdOptions { ordering: Ordering::RowCyclic, ..Default::default() })
        .singular_values(&a)
        .unwrap();
    for (x, y) in rr.values.iter().zip(&rc.values) {
        assert!((x - y).abs() < 1e-10 * x.max(1.0), "{x} vs {y}");
    }
}

#[test]
fn already_diagonal_input_converges_immediately() {
    let a = hjsvd::matrix::Matrix::from_diag(&[5.0, 3.0, 1.0]);
    let sv = HestenesSvd::new(SvdOptions::default()).singular_values(&a).unwrap();
    assert_eq!(sv.sweeps, 1, "diagonal input needs one (no-op) sweep");
    assert_eq!(sv.values, vec![5.0, 3.0, 1.0]);
}

#[test]
fn convergence_is_seed_robust() {
    // The 6-sweep budget must work across many random instances, not one
    // lucky draw.
    for seed in 0..20 {
        let a = gen::uniform(48, 32, 1000 + seed);
        let sv = HestenesSvd::new(SvdOptions::paper()).singular_values(&a).unwrap();
        let drop = sv.history.last().unwrap().mean_abs_cov / sv.history[0].mean_abs_cov.max(1e-300);
        assert!(drop < 1e-5, "seed {seed}: only dropped to {drop:.3e} after 6 sweeps");
    }
}
