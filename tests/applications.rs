//! Application-layer integration: PCA, low-rank utilities, and the
//! randomized partial SVD working together across crates — the pipelines
//! the paper's introduction motivates.

use hjsvd::baselines::partial_svd::{randomized_svd, PartialSvdOptions};
use hjsvd::core::lowrank;
use hjsvd::core::{HestenesSvd, Pca, SvdOptions};
use hjsvd::matrix::{gen, io, norms, ops, Matrix};

#[test]
fn pca_and_direct_svd_agree_on_explained_variance() {
    let data = gen::gaussian(80, 10, 1);
    let pca = Pca::fit_default(&data, 10).unwrap();
    // Centering by hand + SVD must give the same variances.
    let mut centered = data.clone();
    for c in 0..10 {
        let mu: f64 = (0..80).map(|r| centered.get(r, c)).sum::<f64>() / 80.0;
        for r in 0..80 {
            let v = centered.get(r, c) - mu;
            centered.set(r, c, v);
        }
    }
    let svd = HestenesSvd::new(SvdOptions::default()).decompose(&centered).unwrap();
    for (ev, s) in pca.explained_variance().iter().zip(&svd.singular_values) {
        let want = s * s / 79.0;
        assert!((ev - want).abs() < 1e-10 * want.max(1.0), "{ev} vs {want}");
    }
}

#[test]
fn partial_svd_matches_full_svd_leading_components() {
    let sigma = [40.0, 10.0, 3.0, 0.2, 0.1, 0.05, 0.02, 0.01];
    let a = gen::with_singular_values(100, 8, &sigma, 2);
    let full = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
    let part = randomized_svd(&a, 3, PartialSvdOptions::default());
    for t in 0..3 {
        assert!(
            (part.sigma[t] - full.singular_values[t]).abs() < 1e-7 * full.singular_values[t],
            "σ[{t}]: {} vs {}",
            part.sigma[t],
            full.singular_values[t]
        );
        // Subspace agreement: |⟨u_part, u_full⟩| ≈ 1 (sign-free).
        let dot = ops::dot(part.u.col(t), full.u.col(t)).abs();
        assert!(dot > 1.0 - 1e-6, "U column {t} misaligned: |dot| = {dot}");
    }
}

#[test]
fn repeated_partial_svd_video_pipeline() {
    // The §I robust-PCA loop in miniature: repeatedly take a partial SVD of
    // a low-rank + sparse matrix, subtract the low-rank part, and watch the
    // sparse component emerge.
    let m = 60;
    let n = 20;
    // Strong low-rank signal (σ = 20, 10) with a handful of modest spikes:
    // the regime where the low-rank recovery cleanly separates the two.
    let low = gen::with_singular_values(
        m,
        n,
        &{
            let mut s = vec![0.0; n];
            s[0] = 20.0;
            s[1] = 10.0;
            s
        },
        3,
    );
    let mut sparse = Matrix::zeros(m, n);
    for (r, c) in [(5usize, 3usize), (17, 11), (40, 19), (33, 7)] {
        sparse.set(r, c, 2.0);
    }
    let observed = low.add(&sparse).unwrap();

    let f = randomized_svd(&observed, 2, PartialSvdOptions::default());
    // Residual = observed − rank-2 part should concentrate on the spikes.
    let mut resid = observed.clone();
    for t in 0..2 {
        let s = f.sigma[t];
        for c in 0..n {
            let w = s * f.v.get(c, t);
            ops::axpy(-w, f.u.col(t), resid.col_mut(c));
        }
    }
    // The four largest residual entries must be exactly the spike positions.
    let mut entries: Vec<(f64, usize, usize)> = Vec::new();
    for c in 0..n {
        for r in 0..m {
            entries.push((resid.get(r, c).abs(), r, c));
        }
    }
    entries.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let top: std::collections::HashSet<(usize, usize)> =
        entries[..4].iter().map(|&(_, r, c)| (r, c)).collect();
    for spike in [(5, 3), (17, 11), (40, 19), (33, 7)] {
        assert!(top.contains(&spike), "spike {spike:?} not in top residuals");
    }
}

#[test]
fn lstsq_through_the_whole_stack() {
    // Fit a polynomial by least squares using the SVD pseudoinverse path.
    let xs: Vec<f64> = (0..30).map(|i| i as f64 / 29.0 * 2.0 - 1.0).collect();
    let mut vand = Matrix::zeros(30, 4);
    for (r, &x) in xs.iter().enumerate() {
        for d in 0..4 {
            vand.set(r, d, x.powi(d as i32));
        }
    }
    let coeffs_true = [0.5, -1.0, 2.0, 0.25];
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| coeffs_true.iter().enumerate().map(|(d, c)| c * x.powi(d as i32)).sum())
        .collect();
    let svd = HestenesSvd::new(SvdOptions::default()).decompose(&vand).unwrap();
    let coeffs = lowrank::lstsq(&svd, &ys, 1e-12);
    for (got, want) in coeffs.iter().zip(&coeffs_true) {
        assert!((got - want).abs() < 1e-10, "{got} vs {want}");
    }
    // Condition number of this Vandermonde basis is modest.
    let kappa = lowrank::condition_number(&svd, f64::EPSILON);
    assert!(kappa > 1.0 && kappa < 100.0, "κ = {kappa}");
}

#[test]
fn rank_budgeting_for_compression() {
    // "How many components for 5% error?" across a known spectrum.
    let sigma = [100.0, 50.0, 10.0, 5.0, 1.0, 0.5, 0.1, 0.05];
    let a = gen::with_singular_values(40, 8, &sigma, 5);
    let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
    let r = lowrank::rank_for_error(&svd, 0.05);
    // Verify the budget is genuinely met and minimal.
    let err_at = |r: usize| lowrank::rank_r_error(&svd, r) / norms::frobenius(&a);
    assert!(err_at(r) <= 0.05 + 1e-12, "rank {r} misses the budget: {}", err_at(r));
    if r > 0 {
        assert!(err_at(r - 1) > 0.05, "rank {} would already satisfy the budget", r - 1);
    }
}

#[test]
fn csv_io_round_trips_svd_factors() {
    let a = gen::uniform(12, 6, 7);
    let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
    let u2 = io::roundtrip(&svd.u).unwrap();
    let v2 = io::roundtrip(&svd.v).unwrap();
    assert_eq!(svd.u, u2);
    assert_eq!(svd.v, v2);
    // The reloaded factors still reconstruct.
    let err = norms::reconstruction_error(&a, &u2, &svd.singular_values, &v2);
    assert!(err < 1e-12);
}

#[test]
fn pca_whitening_via_components() {
    // Projecting onto components and normalizing by √variance whitens the
    // data: unit variance along every retained direction.
    let data = {
        let base = gen::gaussian(200, 4, 9);
        // Stretch feature space anisotropically.
        let mut d = Matrix::zeros(200, 4);
        for r in 0..200 {
            d.set(r, 0, 5.0 * base.get(r, 0));
            d.set(r, 1, 2.0 * base.get(r, 1) + base.get(r, 0));
            d.set(r, 2, 0.5 * base.get(r, 2));
            d.set(r, 3, 0.1 * base.get(r, 3));
        }
        d
    };
    let pca = Pca::fit_default(&data, 4).unwrap();
    let scores = pca.transform(&data);
    for t in 0..4 {
        let var = ops::norm_sq(scores.col(t)) / 199.0;
        let whitened = var / pca.explained_variance()[t];
        assert!((whitened - 1.0).abs() < 1e-9, "component {t}: whitened var {whitened}");
    }
}
