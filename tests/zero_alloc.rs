//! Pins the zero-allocation invariant of the parallel sweep engine.
//!
//! A counting global allocator wraps `System`; after one warm-up sweep sizes
//! the [`SweepWorkspace`], further sweeps — gram-only and full (B, Gram, V)
//! — must perform **zero** heap allocations: rounds publish results by
//! swapping double buffers, never by allocating fresh ones. This is the
//! software analogue of the paper's fixed BRAM budget: the FPGA design
//! claims all covariance/column storage up front and reuses it every sweep.
//!
//! Lives in the root package (not hj-core) because hj-core carries
//! `#![forbid(unsafe_code)]` and a `GlobalAlloc` impl requires unsafe.

use hjsvd::core::ordering::round_robin;
use hjsvd::core::parallel::{parallel_sweep_full_ws, parallel_sweep_gram_ws, SweepWorkspace};
use hjsvd::core::GramState;
use hjsvd::matrix::{gen, Matrix};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The allocation counter is process-global and the test harness runs tests
/// on separate threads; serialize them so one test's warm-up never lands in
/// another's measured region.
static SERIAL: Mutex<()> = Mutex::new(());

/// Counts every allocation event (alloc + realloc) passing through the
/// global allocator. Frees are not counted — the invariant under test is
/// "no new buffers", not "no buffer returns".
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn gram_sweeps_allocate_nothing_after_warmup() {
    let _guard = SERIAL.lock().unwrap();
    let a = gen::uniform(48, 24, 11);
    let mut gram = GramState::from_matrix(&a);
    let order = round_robin(gram.dim());
    let mut ws = SweepWorkspace::new();

    // Warm-up sweep: sizes the back buffer and scratch.
    parallel_sweep_gram_ws(&mut gram, &order, 1, &mut ws);
    let warm = ws.allocations();
    assert!(warm > 0, "warm-up must have sized the workspace");

    let before = allocation_count();
    for s in 2..=4 {
        parallel_sweep_gram_ws(&mut gram, &order, s, &mut ws);
    }
    let delta = allocation_count() - before;
    assert_eq!(delta, 0, "steady-state gram sweeps allocated {delta} times");
    assert_eq!(ws.allocations(), warm, "workspace grew after warm-up");
}

#[test]
fn full_sweeps_allocate_nothing_after_warmup() {
    let _guard = SERIAL.lock().unwrap();
    let src = gen::uniform(32, 12, 13);
    let mut b = src.clone();
    let mut gram = GramState::from_matrix(&b);
    let mut v = Matrix::identity(b.cols());
    let order = round_robin(gram.dim());
    let mut ws = SweepWorkspace::new();

    parallel_sweep_full_ws(&mut b, &mut gram, Some(&mut v), &order, 1, &mut ws);

    let before = allocation_count();
    for s in 2..=4 {
        parallel_sweep_full_ws(&mut b, &mut gram, Some(&mut v), &order, s, &mut ws);
    }
    let delta = allocation_count() - before;
    assert_eq!(delta, 0, "steady-state full sweeps allocated {delta} times");
}

#[test]
fn blocked_engine_sweeps_allocate_nothing_after_warmup() {
    // The cache-tiled engine shares the workspace's discipline: the first
    // sweep sizes the tile, plan, and rotation buffers; every later sweep —
    // even with column and V accumulation — reuses them verbatim.
    let _guard = SERIAL.lock().unwrap();
    use hjsvd::core::engine::Blocked;
    use hjsvd::core::{PairGuard, RotationTarget, SweepEngine, SweepState};
    let src = gen::uniform(48, 24, 19);
    let mut b = src.clone();
    let mut gram = GramState::from_matrix(&b);
    let mut v = Matrix::identity(b.cols());
    let order = round_robin(gram.dim());
    let mut ws = SweepWorkspace::new();
    let mut engine = Blocked::new(&mut ws);
    let mut state = SweepState {
        gram: &mut gram,
        target: RotationTarget::full(&mut b, &mut v),
        guard: PairGuard::default(),
    };

    engine.sweep(&mut state, &order, 1);

    let before = allocation_count();
    for s in 2..=4 {
        engine.sweep(&mut state, &order, s);
    }
    let delta = allocation_count() - before;
    assert_eq!(delta, 0, "steady-state blocked sweeps allocated {delta} times");
}

#[test]
fn serving_loop_reuses_one_workspace_and_bounds_per_job_allocations() {
    // The hj-serve worker checks out ONE workspace at startup and keeps it
    // for the life of the pool, so the serving steady state inherits the
    // sweep engines' zero-allocation discipline: solving a stream of
    // same-shape jobs creates no further workspaces, and the remaining
    // per-job allocation events (ticket, completion slot, result vector)
    // are a small constant independent of how many jobs have been served.
    let _guard = SERIAL.lock().unwrap();
    use hjsvd::serve::{JobSpec, ServiceConfig, SolveService};
    use std::time::Duration;

    let service = SolveService::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });

    // Pre-generate every matrix so measured deltas are service-side only.
    let mats: Vec<Matrix> = (0..9).map(|k| gen::uniform(32, 12, 50 + k)).collect();
    let mut mats = mats.into_iter();

    // Warm-up: the first jobs size the worker's workspace, the queue spine,
    // and the tenant table.
    for _ in 0..3 {
        assert!(service.solve(JobSpec::new(mats.next().unwrap())).unwrap().result.is_ok());
    }
    assert_eq!(service.workspaces_created(), 1, "worker must own exactly one workspace");

    // Steady state: per-job allocation events stay bounded by a constant.
    let mut deltas = Vec::new();
    for m in mats {
        let before = allocation_count();
        assert!(service.solve(JobSpec::new(m)).unwrap().result.is_ok());
        deltas.push(allocation_count() - before);
    }
    let bound = 64;
    let worst = deltas.iter().copied().max().unwrap();
    assert!(worst <= bound, "a served job allocated {worst} times (> {bound}): {deltas:?}");
    // No drift: late jobs cost no more than early ones (same shape, warm
    // everything) — the loop is not accumulating per-job state.
    assert!(
        deltas.last().unwrap() <= deltas.first().unwrap(),
        "per-job allocations grew across the serving loop: {deltas:?}"
    );
    // And the pool never created a second workspace.
    assert_eq!(service.workspaces_created(), 1);
    assert!(service.shutdown(Duration::from_secs(5)).drained_cleanly);
}

#[test]
fn reused_workspace_allocations_are_per_problem_not_per_sweep() {
    // Swap-publishing trades buffers with the caller's matrices, so moving a
    // warm workspace to a NEW problem can cost a bounded handful of buffer
    // exchanges/growths in that problem's first sweep — but never more, and
    // every subsequent sweep of the same problem allocates exactly zero.
    let _guard = SERIAL.lock().unwrap();
    let shapes = [(40usize, 20usize), (30, 12), (18, 6)];
    let mut ws = SweepWorkspace::new();

    for (k, &(m, n)) in shapes.iter().enumerate() {
        let mut b = gen::uniform(m, n, 17 + k as u64);
        let mut gram = GramState::from_matrix(&b);
        let mut v = Matrix::identity(n);
        let order = round_robin(gram.dim());

        // First sweep of this problem: the per-problem warm-up. Bounded by a
        // few buffer events, independent of the number of rounds or sweeps.
        let before = allocation_count();
        parallel_sweep_full_ws(&mut b, &mut gram, Some(&mut v), &order, 1, &mut ws);
        let warmup = allocation_count() - before;
        let bound = 8;
        assert!(warmup <= bound, "warm-up on {m}x{n} allocated {warmup} times (> {bound})");

        // Steady state: zero allocations per sweep, hence zero per round.
        let before = allocation_count();
        for s in 2..=4 {
            parallel_sweep_full_ws(&mut b, &mut gram, Some(&mut v), &order, s, &mut ws);
        }
        let delta = allocation_count() - before;
        assert_eq!(delta, 0, "steady-state sweeps on {m}x{n} allocated {delta} times");
    }
}
