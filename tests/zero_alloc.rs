//! Pins the zero-allocation invariant of the parallel sweep engine.
//!
//! A counting global allocator wraps `System`; after one warm-up sweep sizes
//! the [`SweepWorkspace`], further sweeps — gram-only and full (B, Gram, V)
//! — must perform **zero** heap allocations: rounds publish results by
//! swapping double buffers, never by allocating fresh ones. This is the
//! software analogue of the paper's fixed BRAM budget: the FPGA design
//! claims all covariance/column storage up front and reuses it every sweep.
//!
//! Lives in the root package (not hj-core) because hj-core carries
//! `#![forbid(unsafe_code)]` and a `GlobalAlloc` impl requires unsafe.

use hjsvd::core::ordering::round_robin;
use hjsvd::core::parallel::{parallel_sweep_full_ws, parallel_sweep_gram_ws, SweepWorkspace};
use hjsvd::core::GramState;
use hjsvd::matrix::{gen, Matrix};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The allocation counter is process-global and the test harness runs tests
/// on separate threads; serialize them so one test's warm-up never lands in
/// another's measured region.
static SERIAL: Mutex<()> = Mutex::new(());

/// Counts every allocation event (alloc + realloc) passing through the
/// global allocator. Frees are not counted — the invariant under test is
/// "no new buffers", not "no buffer returns".
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Lock the serialization mutex, shrugging off poison: a panicking test
/// must fail alone, not cascade into every later test as a `PoisonError`.
fn serial_guard() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Measure the allocation events `f` performs, retrying a few times and
/// keeping the minimum. The counter is process-global and libtest's main
/// thread occasionally allocates mid-test (timeout bookkeeping), so a
/// single measurement can pick up a couple of unrelated events; code that
/// genuinely allocates per call fails every retry, so the invariant under
/// test is not weakened.
fn min_alloc_delta(mut f: impl FnMut()) -> usize {
    let mut best = usize::MAX;
    for _ in 0..5 {
        let before = allocation_count();
        f();
        best = best.min(allocation_count() - before);
        if best == 0 {
            break;
        }
    }
    best
}

#[test]
fn gram_sweeps_allocate_nothing_after_warmup() {
    // Drive the round-synchronous path explicitly: on a one-thread pool
    // `Parallel::new` (and the `parallel_sweep_*` helpers) fall back to the
    // sequential kernels without touching the workspace, which would make
    // this warm-up assertion vacuous.
    let _guard = serial_guard();
    use hjsvd::core::parallel::Parallel;
    use hjsvd::core::{PairGuard, RotationTarget, SweepEngine, SweepState};
    let a = gen::uniform(48, 24, 11);
    let mut gram = GramState::from_matrix(&a);
    let order = round_robin(gram.dim());
    let mut ws = SweepWorkspace::new();

    // Warm-up sweep: sizes the back buffer and scratch.
    let mut state = SweepState {
        gram: &mut gram,
        target: RotationTarget::gram_only(),
        guard: PairGuard::default(),
    };
    Parallel::round_synchronous(&mut ws).sweep(&mut state, &order, 1);
    let warm = ws.allocations();
    assert!(warm > 0, "warm-up must have sized the workspace");

    let mut s = 1;
    let delta = min_alloc_delta(|| {
        for _ in 0..3 {
            s += 1;
            Parallel::round_synchronous(&mut ws).sweep(&mut state, &order, s);
        }
    });
    assert_eq!(delta, 0, "steady-state gram sweeps allocated {delta} times");
    assert_eq!(ws.allocations(), warm, "workspace grew after warm-up");
}

#[test]
fn sequential_fallback_sweeps_allocate_nothing_at_all() {
    // At one worker thread the parallel helpers run the in-place sequential
    // kernels; those have no scratch, so even the warm-up costs nothing.
    let _guard = serial_guard();
    let a = gen::uniform(48, 24, 11);
    let mut gram = GramState::from_matrix(&a);
    let order = round_robin(gram.dim());
    let mut ws = SweepWorkspace::new();
    parallel_sweep_gram_ws(&mut gram, &order, 1, &mut ws);

    let mut s = 1;
    let delta = min_alloc_delta(|| {
        for _ in 0..3 {
            s += 1;
            parallel_sweep_gram_ws(&mut gram, &order, s, &mut ws);
        }
    });
    assert_eq!(delta, 0, "steady-state sweeps allocated {delta} times");
}

#[test]
fn full_sweeps_allocate_nothing_after_warmup() {
    let _guard = serial_guard();
    let src = gen::uniform(32, 12, 13);
    let mut b = src.clone();
    let mut gram = GramState::from_matrix(&b);
    let mut v = Matrix::identity(b.cols());
    let order = round_robin(gram.dim());
    let mut ws = SweepWorkspace::new();

    parallel_sweep_full_ws(&mut b, &mut gram, Some(&mut v), &order, 1, &mut ws);

    let mut s = 1;
    let delta = min_alloc_delta(|| {
        for _ in 0..3 {
            s += 1;
            parallel_sweep_full_ws(&mut b, &mut gram, Some(&mut v), &order, s, &mut ws);
        }
    });
    assert_eq!(delta, 0, "steady-state full sweeps allocated {delta} times");
}

#[test]
fn blocked_engine_sweeps_allocate_nothing_after_warmup() {
    // The cache-tiled engine shares the workspace's discipline: the first
    // sweep sizes the tile, plan, and rotation buffers; every later sweep —
    // even with column and V accumulation — reuses them verbatim.
    let _guard = serial_guard();
    use hjsvd::core::engine::Blocked;
    use hjsvd::core::{PairGuard, RotationTarget, SweepEngine, SweepState};
    let src = gen::uniform(48, 24, 19);
    let mut b = src.clone();
    let mut gram = GramState::from_matrix(&b);
    let mut v = Matrix::identity(b.cols());
    let order = round_robin(gram.dim());
    let mut ws = SweepWorkspace::new();
    let mut engine = Blocked::new(&mut ws);
    let mut state = SweepState {
        gram: &mut gram,
        target: RotationTarget::full(&mut b, &mut v),
        guard: PairGuard::default(),
    };

    engine.sweep(&mut state, &order, 1);

    let mut s = 1;
    let delta = min_alloc_delta(|| {
        for _ in 0..3 {
            s += 1;
            engine.sweep(&mut state, &order, s);
        }
    });
    assert_eq!(delta, 0, "steady-state blocked sweeps allocated {delta} times");
}

#[test]
fn serving_loop_reuses_one_workspace_and_bounds_per_job_allocations() {
    // The hj-serve worker checks out ONE workspace at startup and keeps it
    // for the life of the pool, so the serving steady state inherits the
    // sweep engines' zero-allocation discipline: solving a stream of
    // same-shape jobs creates no further workspaces, and the remaining
    // per-job allocation events (ticket, completion slot, result vector)
    // are a small constant independent of how many jobs have been served.
    let _guard = serial_guard();
    use hjsvd::serve::{JobSpec, ServiceConfig, SolveService};
    use std::time::Duration;

    let service = SolveService::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });

    // Pre-generate every matrix so measured deltas are service-side only.
    let mats: Vec<Matrix> = (0..9).map(|k| gen::uniform(32, 12, 50 + k)).collect();
    let mut mats = mats.into_iter();

    // Warm-up: the first jobs size the worker's workspace, the queue spine,
    // and the tenant table.
    for _ in 0..3 {
        assert!(service.solve(JobSpec::new(mats.next().unwrap())).unwrap().result.is_ok());
    }
    assert_eq!(service.workspaces_created(), 1, "worker must own exactly one workspace");

    // Steady state: per-job allocation events stay bounded by a constant.
    let mut deltas = Vec::new();
    for m in mats {
        let before = allocation_count();
        assert!(service.solve(JobSpec::new(m)).unwrap().result.is_ok());
        deltas.push(allocation_count() - before);
    }
    let bound = 64;
    let worst = deltas.iter().copied().max().unwrap();
    assert!(worst <= bound, "a served job allocated {worst} times (> {bound}): {deltas:?}");
    // No drift: late jobs cost no more than early ones (same shape, warm
    // everything) — the loop is not accumulating per-job state. A couple
    // of events of slack absorbs harness-thread noise on either endpoint.
    assert!(
        *deltas.last().unwrap() <= deltas.first().unwrap() + 2,
        "per-job allocations grew across the serving loop: {deltas:?}"
    );
    // And the pool never created a second workspace.
    assert_eq!(service.workspaces_created(), 1);
    assert!(service.shutdown(Duration::from_secs(5)).drained_cleanly);
}

#[test]
fn batch_workspace_solves_allocate_only_results_after_warmup() {
    // The SoA batch engine follows the same discipline as the sweep
    // workspaces: the first batch sizes the interleaved triangle and every
    // per-lane buffer; repeated same-shape batches never grow the
    // workspace again, so steady-state allocation traffic is the
    // per-problem result construction alone (values, history, stats) — a
    // constant per batch, independent of how many batches have run.
    let _guard = serial_guard();
    use hjsvd::core::{BatchWorkspace, HestenesSvd, SvdOptions};
    let solver = HestenesSvd::new(SvdOptions::default());
    let mats: Vec<Matrix> = (0..24).map(|k| gen::uniform(16, 8, 70 + k)).collect();
    let mut ws = BatchWorkspace::new();

    // Warm-up batch: sizes the SoA triangle and the lane-state buffers.
    let first = solver.singular_values_batch_soa_with_workspace(&mats, &mut ws);
    assert!(first.iter().all(|r| r.is_ok()), "warm-up batch must solve");
    let warm = ws.allocations();
    assert!(warm > 0, "warm-up must have sized the workspace");

    let mut deltas = Vec::new();
    for _ in 0..6 {
        let before = allocation_count();
        let batch = solver.singular_values_batch_soa_with_workspace(&mats, &mut ws);
        deltas.push(allocation_count() - before);
        assert!(batch.iter().all(|r| r.is_ok()));
    }
    // The workspace itself is in zero-allocation steady state...
    assert_eq!(ws.allocations(), warm, "workspace grew after warm-up");
    // ...and whole-batch traffic is bounded by result construction: a small
    // constant per problem.
    let bound = mats.len() * 16;
    let worst = deltas.iter().copied().max().unwrap();
    assert!(worst <= bound, "a batch solve allocated {worst} times (> {bound}): {deltas:?}");
    // No drift across batches (same shapes, warm workspace); a couple of
    // events of slack absorbs harness-thread noise.
    assert!(
        *deltas.last().unwrap() <= deltas.first().unwrap() + 2,
        "per-batch allocations grew across repeated solves: {deltas:?}"
    );
}

#[test]
fn reused_workspace_allocations_are_per_problem_not_per_sweep() {
    // Swap-publishing trades buffers with the caller's matrices, so moving a
    // warm workspace to a NEW problem can cost a bounded handful of buffer
    // exchanges/growths in that problem's first sweep — but never more, and
    // every subsequent sweep of the same problem allocates exactly zero.
    let _guard = serial_guard();
    let shapes = [(40usize, 20usize), (30, 12), (18, 6)];
    let mut ws = SweepWorkspace::new();

    for (k, &(m, n)) in shapes.iter().enumerate() {
        let mut b = gen::uniform(m, n, 17 + k as u64);
        let mut gram = GramState::from_matrix(&b);
        let mut v = Matrix::identity(n);
        let order = round_robin(gram.dim());

        // First sweep of this problem: the per-problem warm-up. Bounded by a
        // few buffer events, independent of the number of rounds or sweeps.
        // The workspace's own event budget is 8; the bound carries a little
        // slack for harness-thread noise (see `min_alloc_delta`), which a
        // one-shot warm-up measurement cannot retry away.
        let before = allocation_count();
        parallel_sweep_full_ws(&mut b, &mut gram, Some(&mut v), &order, 1, &mut ws);
        let warmup = allocation_count() - before;
        let bound = 11;
        assert!(warmup <= bound, "warm-up on {m}x{n} allocated {warmup} times (> {bound})");

        // Steady state: zero allocations per sweep, hence zero per round.
        let mut s = 1;
        let delta = min_alloc_delta(|| {
            for _ in 0..3 {
                s += 1;
                parallel_sweep_full_ws(&mut b, &mut gram, Some(&mut v), &order, s, &mut ws);
            }
        });
        assert_eq!(delta, 0, "steady-state sweeps on {m}x{n} allocated {delta} times");
    }
}
