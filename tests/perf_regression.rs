//! Wall-clock regression pins for the engine performance-inversion fix.
//!
//! The historical bug: `Parallel` on a one-thread pool still paid for round
//! planning, buffer swaps, and dispatch accounting, losing ~2x to
//! `Sequential` on the same input. The fix routes a one-thread `Parallel`
//! straight through the sequential kernel path, so its wall-clock must now
//! track `Sequential` closely. Timing tests are noisy, so each engine is
//! measured as a min-of-several and the ratio bound is generous (1.2x)
//! relative to the ~2x inversion being pinned against.

use hjsvd::core::{EngineKind, HestenesSvd, SvdOptions};
use hjsvd::matrix::gen;
use std::time::{Duration, Instant};

fn min_solve_time(engine: EngineKind, reps: usize) -> Duration {
    let a = gen::uniform(96, 64, 7);
    let svd = HestenesSvd::new(SvdOptions { engine, ..Default::default() });
    // Warm caches and (for Parallel/Blocked) the engine's workspace sizing
    // before taking any measurement.
    svd.decompose(&a).unwrap();
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let out = svd.decompose(&a).unwrap();
            let dt = t0.elapsed();
            assert!(out.sweeps > 0, "solve must have swept for timing to be comparable");
            dt
        })
        .min()
        .unwrap()
}

#[test]
fn parallel_tracks_sequential_on_one_thread_at_n64() {
    // Only meaningful where the fallback engages; on a real multi-thread
    // pool the engines are allowed to trade throughput for parallelism.
    let probe = HestenesSvd::new(SvdOptions { engine: EngineKind::Parallel, ..Default::default() })
        .decompose(&gen::uniform(12, 6, 1))
        .unwrap();
    if probe.stats.threads != 1 {
        return;
    }
    let seq = min_solve_time(EngineKind::Sequential, 5);
    let par = min_solve_time(EngineKind::Parallel, 5);
    let ratio = par.as_secs_f64() / seq.as_secs_f64().max(1e-9);
    assert!(
        ratio <= 1.2,
        "one-thread Parallel took {ratio:.2}x Sequential at n=64 \
         (par {par:?} vs seq {seq:?}); the fallback should make these equal"
    );
}
