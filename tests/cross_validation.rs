//! Cross-validation: every SVD implementation in the workspace must agree
//! on the spectrum of the same input, across shapes and conditioning.
//! The implementations are algorithmically independent (one-sided Jacobi
//! with maintained Gram, naive one-sided Jacobi, two-sided Jacobi,
//! Householder + implicit QR), so agreement to ~1e-10 relative is strong
//! evidence all four are correct.

use hjsvd::baselines::{householder, naive_hestenes, two_sided};
use hjsvd::core::{EngineKind, HestenesSvd, Ordering, SvdOptions};
use hjsvd::matrix::{gen, norms, Matrix};

fn hestenes(a: &Matrix) -> Vec<f64> {
    HestenesSvd::new(SvdOptions::default()).decompose(a).unwrap().singular_values
}

fn assert_spectra_agree(a: &Matrix, label: &str) {
    let h = hestenes(a);
    let hh = householder::svd(a).unwrap().sigma;
    let d = norms::spectrum_disagreement(&h, &hh);
    assert!(d < 1e-9, "{label}: Hestenes vs Householder disagree by {d}");

    let naive = naive_hestenes::svd(a, 40).factors.sigma;
    let d = norms::spectrum_disagreement(&h, &naive);
    assert!(d < 1e-9, "{label}: Hestenes vs naive disagree by {d}");

    if a.rows() == a.cols() {
        let two = two_sided::svd(a, 40).unwrap().sigma;
        let d = norms::spectrum_disagreement(&h, &two);
        assert!(d < 1e-9, "{label}: Hestenes vs two-sided disagree by {d}");
    }
}

#[test]
fn random_square() {
    assert_spectra_agree(&gen::uniform(24, 24, 101), "uniform 24x24");
    assert_spectra_agree(&gen::gaussian(17, 17, 102), "gaussian 17x17");
}

#[test]
fn random_tall_and_wide() {
    assert_spectra_agree(&gen::uniform(60, 15, 103), "uniform 60x15");
    assert_spectra_agree(&gen::uniform(12, 40, 104), "uniform 12x40");
}

#[test]
fn known_spectrum_all_algorithms() {
    let sigma = [20.0, 10.0, 5.0, 1.0, 0.1, 0.01];
    let a = gen::with_singular_values(30, 6, &sigma, 105);
    for (algo, got) in [
        ("hestenes", hestenes(&a)),
        ("householder", householder::svd(&a).unwrap().sigma),
        ("naive", naive_hestenes::svd(&a, 40).factors.sigma),
    ] {
        for (g, w) in got.iter().zip(&sigma) {
            assert!((g - w).abs() < 1e-11 * w.max(1.0), "{algo}: {g} vs {w}");
        }
    }
}

#[test]
fn ill_conditioned() {
    let a = gen::with_condition_number(40, 10, 1e10, 106);
    let h = hestenes(&a);
    let hh = householder::svd(&a).unwrap().sigma;
    // Large values agree to relative precision...
    assert!((h[0] - hh[0]).abs() < 1e-12 * h[0]);
    // ...and even the tiny tail agrees between the two methods.
    let d = norms::spectrum_disagreement(&h, &hh);
    assert!(d < 1e-6, "full-spectrum disagreement {d}");
}

#[test]
fn hilbert_matrix_relative_accuracy() {
    // One-sided Jacobi computes tiny singular values of PSD-structured
    // matrices to high *relative* accuracy (Drmač); Householder only to
    // high absolute accuracy. Both reconstruct, but the Jacobi tail should
    // agree with itself across orderings to near machine precision.
    let h = gen::hilbert(10);
    let rr = HestenesSvd::new(SvdOptions { ordering: Ordering::RoundRobin, ..Default::default() })
        .decompose(&h)
        .unwrap();
    let rc = HestenesSvd::new(SvdOptions { ordering: Ordering::RowCyclic, ..Default::default() })
        .decompose(&h)
        .unwrap();
    // The rotation *parameters* come from the maintained Gram matrix, whose
    // conditioning is κ(A)² ≈ 2.6e26 for H₁₀: singular values below the Gram
    // noise floor √eps·σ_max ≈ 2.6e-8 are not resolved by this variant (a
    // documented trade of the paper's Gram-maintenance optimization).
    // Above the floor the orderings must agree tightly; below it both must
    // at least stay under the floor.
    let floor = f64::EPSILON.sqrt() * rr.singular_values[0];
    for (a, b) in rr.singular_values.iter().zip(&rc.singular_values) {
        if *a > floor && *b > floor {
            let rel = (a - b).abs() / a.max(1e-300);
            assert!(rel < 1e-4, "orderings disagree above noise floor: {a} vs {b} (rel {rel:.2e})");
        } else {
            assert!(*a <= floor * 10.0 && *b <= floor * 10.0, "tail must stay near the floor");
        }
    }
    // κ(H₁₀) ≈ 1.6e13: the smallest value is ~1e-13 and must be positive.
    assert!(rr.singular_values[9] > 0.0);
}

#[test]
fn parallel_and_blocked_drivers_agree_with_sequential() {
    let a = gen::uniform(50, 20, 107);
    let seq = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
    for engine in [EngineKind::Parallel, EngineKind::Blocked] {
        let alt =
            HestenesSvd::new(SvdOptions { engine, ..Default::default() }).decompose(&a).unwrap();
        let d = norms::spectrum_disagreement(&seq.singular_values, &alt.singular_values);
        assert!(d < 1e-10, "{engine:?} vs sequential spectra disagree by {d}");
        let err = norms::reconstruction_error(&a, &alt.u, &alt.singular_values, &alt.v);
        assert!(err < 1e-11, "{engine:?} reconstruction error {err}");
    }
}

#[test]
fn gpu_functional_run_agrees() {
    let a = gen::uniform(30, 12, 108);
    let rep = hjsvd::baselines::gpu_model::run_parallel_hestenes(&a, 25);
    let h = hestenes(&a);
    let d = norms::spectrum_disagreement(&rep.singular_values, &h);
    assert!(d < 1e-9, "GPU functional run disagrees by {d}");
}

#[test]
fn architecture_simulator_agrees() {
    let a = gen::uniform(40, 16, 109);
    let sim = hjsvd::arch::HestenesJacobiArch::paper().simulate(&a).unwrap();
    let h = hestenes(&a);
    let d = norms::spectrum_disagreement(sim.singular_values.as_ref().unwrap(), &h);
    assert!(d < 1e-7, "architecture simulator disagrees by {d} (6-sweep budget)");
}

#[test]
fn all_algorithms_reconstruct() {
    let a = gen::uniform(20, 20, 110);
    let checks: Vec<(&str, f64)> = vec![
        ("hestenes", {
            let s = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
            norms::reconstruction_error(&a, &s.u, &s.singular_values, &s.v)
        }),
        ("householder", {
            let s = householder::svd(&a).unwrap();
            norms::reconstruction_error(&a, &s.u, &s.sigma, &s.v)
        }),
        ("two_sided", {
            let s = two_sided::svd(&a, 40).unwrap();
            norms::reconstruction_error(&a, &s.u, &s.sigma, &s.v)
        }),
        ("naive", {
            let s = naive_hestenes::svd(&a, 40).factors;
            norms::reconstruction_error(&a, &s.u, &s.sigma, &s.v)
        }),
    ];
    for (name, err) in checks {
        assert!(err < 1e-11, "{name} reconstruction error {err}");
    }
}
