//! Kernel-compat layer: pins the vectorized kernels introduced for the
//! engine-inversion fix against the scalar paths they replaced.
//!
//! Compat policy (also documented in `hj_core::kernel`):
//!
//! * `kernel::batch_params` runs the exact `textbook_params` expression
//!   chain per lane, so it is **bitwise** equal to the scalar kernel — 0 ulp,
//!   well inside the ≤1 ulp budget. Against `hardware_params` it inherits
//!   the existing textbook↔hardware pin (≤1e-12 absolute on `cos`/`sin`,
//!   `tests/properties.rs::hardware_equals_textbook`) — the two scalar
//!   formulations legitimately differ by re-association.
//! * `ops::rotate_pair` (lane-chunked + scalar tail) and
//!   `kernel::rotate_packed` (three-region packed walk) keep the per-element
//!   expressions of the scalar loops unchanged, so both are **bitwise**
//!   equal to their references on every length and every pair, aligned or
//!   not.
//!
//! All strategies span twelve orders of magnitude in the norms (1e-6..1e6),
//! like the scalar rotation proptests.

use hjsvd::core::kernel::{batch_params, rotate_packed};
use hjsvd::core::rotation::{hardware_params, textbook_params, Rotation};
use hjsvd::core::{EngineKind, GramState, HestenesSvd, SvdOptions};
use hjsvd::matrix::{gen, ops, PackedSymmetric};
use proptest::prelude::*;

/// A plausible (norm_i, norm_j, cov) triple satisfying Cauchy-Schwarz,
/// spanning twelve orders of magnitude in the norms.
fn gram_pair() -> impl Strategy<Value = (f64, f64, f64)> {
    (1e-6f64..1e6, 1e-6f64..1e6, -0.999f64..0.999)
        .prop_map(|(a, b, frac)| (a, b, frac * (a * b).sqrt()))
}

/// `Vec<_>` strategy: a length drawn from `range`, then that many draws of
/// `inner`. (The vendored proptest stand-in has no `prop::collection`.)
struct VecOf<S>(S, std::ops::Range<usize>);

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.1.clone().generate(rng);
        (0..len).map(|_| self.0.generate(rng)).collect()
    }
}

/// Scalar reference for the packed rotation: the pre-kernel `get`/`set`
/// loop over every affected entry of the packed triangle.
fn rotate_packed_reference(d: &mut PackedSymmetric, i: usize, j: usize, rot: &Rotation) {
    let n = d.dim();
    let cov = d.get(i, j);
    let (ni, nj) = (d.get(i, i), d.get(j, j));
    d.set(i, i, ni - rot.t * cov);
    d.set(j, j, nj + rot.t * cov);
    d.set(i, j, 0.0);
    for k in 0..n {
        if k == i || k == j {
            continue;
        }
        let dik = d.get(k, i);
        let djk = d.get(k, j);
        d.set(k, i, dik * rot.cos - djk * rot.sin);
        d.set(k, j, dik * rot.sin + djk * rot.cos);
    }
}

proptest! {
    #[test]
    fn batched_params_are_bitwise_textbook(triples in VecOf(gram_pair(), 0..40)) {
        let ni: Vec<f64> = triples.iter().map(|t| t.0).collect();
        let nj: Vec<f64> = triples.iter().map(|t| t.1).collect();
        let cov: Vec<f64> = triples.iter().map(|t| t.2).collect();
        let mut cos = vec![0.0; triples.len()];
        let mut sin = vec![0.0; triples.len()];
        let mut t = vec![0.0; triples.len()];
        batch_params(&ni, &nj, &cov, &mut cos, &mut sin, &mut t);
        for (k, &(a, b, c)) in triples.iter().enumerate() {
            let scalar = textbook_params(a, b, c);
            prop_assert_eq!(cos[k].to_bits(), scalar.cos.to_bits(), "cos lane {}", k);
            prop_assert_eq!(sin[k].to_bits(), scalar.sin.to_bits(), "sin lane {}", k);
            prop_assert_eq!(t[k].to_bits(), scalar.t.to_bits(), "t lane {}", k);
        }
    }

    #[test]
    fn batched_params_match_hardware_formulation((a, b, c) in gram_pair()) {
        // The batch kernel is textbook bitwise; against the re-associated
        // hardware dataflow it carries the same pin the scalar kernels do.
        let mut cos = [0.0];
        let mut sin = [0.0];
        let mut t = [0.0];
        batch_params(&[a], &[b], &[c], &mut cos, &mut sin, &mut t);
        let hw = hardware_params(a, b, c);
        prop_assert!((cos[0] - hw.cos).abs() < 1e-12, "cos {} vs {}", cos[0], hw.cos);
        prop_assert!((sin[0] - hw.sin).abs() < 1e-12, "sin {} vs {}", sin[0], hw.sin);
    }

    #[test]
    fn batched_params_zero_covariance_is_identity(a in 1e-6f64..1e6, b in 1e-6f64..1e6) {
        let mut cos = [9.0];
        let mut sin = [9.0];
        let mut t = [9.0];
        batch_params(&[a], &[b], &[0.0], &mut cos, &mut sin, &mut t);
        prop_assert_eq!(cos[0], 1.0);
        prop_assert_eq!(sin[0], 0.0);
        prop_assert_eq!(t[0], 0.0);
    }

    #[test]
    fn paired_rotate_is_bitwise_scalar_on_any_length(
        len in 0usize..130,
        seed in 0u64..500,
        (a, b, c) in gram_pair(),
    ) {
        // Odd, prime, and non-multiple-of-lane lengths all take the scalar
        // tail; the chunked head must still produce the scalar loop's bits.
        let rot = textbook_params(a, b, c);
        let src = gen::uniform(len.max(1), 2, seed);
        let mut x: Vec<f64> = src.col(0)[..len].to_vec();
        let mut y: Vec<f64> = src.col(1)[..len].to_vec();
        let mut xs = x.clone();
        let mut ys = y.clone();
        ops::rotate_pair(&mut x, &mut y, rot.cos, rot.sin);
        for (p, q) in xs.iter_mut().zip(ys.iter_mut()) {
            let (xi, yj) = (*p, *q);
            *p = xi * rot.cos - yj * rot.sin;
            *q = xi * rot.sin + yj * rot.cos;
        }
        for k in 0..len {
            prop_assert_eq!(x[k].to_bits(), xs[k].to_bits(), "x[{}] at len {}", k, len);
            prop_assert_eq!(y[k].to_bits(), ys[k].to_bits(), "y[{}] at len {}", k, len);
        }
    }

    #[test]
    fn packed_rotation_is_bitwise_scalar_reference(
        n in 2usize..24,
        pair in 0usize..1000,
        seed in 0u64..300,
    ) {
        let pairs = n * (n - 1) / 2;
        let mut k = pair % pairs;
        let (mut i, mut j) = (0, 1);
        'outer: for p in 0..n {
            for q in (p + 1)..n {
                if k == 0 { i = p; j = q; break 'outer; }
                k -= 1;
            }
        }
        let a = gen::uniform(2 * n + 1, n, seed);
        let g = GramState::from_matrix(&a);
        let rot = textbook_params(g.norm_sq(i), g.norm_sq(j), g.covariance(i, j));
        let mut fast = g.packed().clone();
        let mut slow = g.packed().clone();
        rotate_packed(&mut fast, i, j, &rot);
        rotate_packed_reference(&mut slow, i, j, &rot);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "pair ({}, {}) n {}", i, j, n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blocked_fast_path_equals_sequential_bitwise(seed in 0u64..60, n in 2usize..20) {
        // Engine equivalence over the vectorized paths: under `for_dim`
        // every n here fits one tile, and the fast path must reproduce the
        // sequential engine's bits exactly — values, U, and V.
        let a = gen::uniform(2 * n + 3, n, seed);
        let seq = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        let blk =
            HestenesSvd::new(SvdOptions { engine: EngineKind::Blocked, ..Default::default() })
                .decompose(&a)
                .unwrap();
        prop_assert_eq!(&seq.singular_values, &blk.singular_values);
        prop_assert_eq!(seq.u.as_slice(), blk.u.as_slice());
        prop_assert_eq!(seq.v.as_slice(), blk.v.as_slice());
        prop_assert_eq!(blk.stats.tile_refills, 0, "single tile must never refill");
    }

    #[test]
    fn parallel_engine_matches_sequential_bitwise_on_one_thread(seed in 0u64..60, n in 2usize..16) {
        // The 1-thread fallback is the sequential engine, bit for bit. On
        // wider pools the engines legitimately differ in rounding, so this
        // pin only applies where the fallback engages.
        let a = gen::uniform(2 * n + 1, n, seed);
        let par =
            HestenesSvd::new(SvdOptions { engine: EngineKind::Parallel, ..Default::default() })
                .decompose(&a)
                .unwrap();
        if par.stats.threads != 1 {
            return Ok(());
        }
        let seq = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        prop_assert_eq!(&seq.singular_values, &par.singular_values);
        prop_assert_eq!(seq.u.as_slice(), par.u.as_slice());
        prop_assert_eq!(seq.v.as_slice(), par.v.as_slice());
        prop_assert_eq!(par.stats.parallel_dispatches, 0);
    }
}
