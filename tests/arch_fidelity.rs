//! Architecture-simulator fidelity: the timing model must reproduce the
//! paper's published quantitative claims (Tables I–II and the §VI-B
//! qualitative observations), and the functional path must compute the same
//! answers as the pure-software algorithm.

use hjsvd::arch::{resource_usage, ArchConfig, CovariancePlacement, HestenesJacobiArch};
use hjsvd::fpsim::resources::ChipCapacity;
use hjsvd::matrix::gen;

/// Paper Table I (seconds); rows index the column dimension n, header the
/// row dimension m, both over {128, 256, 512, 1024} (orientation per
/// DESIGN.md).
const TABLE1: [[f64; 4]; 4] = [
    [4.39e-3, 6.30e-3, 1.01e-2, 1.79e-2],
    [2.52e-2, 3.30e-2, 4.84e-2, 7.94e-2],
    [1.70e-1, 2.01e-1, 2.63e-1, 3.87e-1],
    [1.23, 1.35, 1.61, 2.01],
];
const DIMS: [usize; 4] = [128, 256, 512, 1024];

#[test]
fn table1_every_cell_within_factor_two() {
    let arch = HestenesJacobiArch::paper();
    for (i, &n) in DIMS.iter().enumerate() {
        for (j, &m) in DIMS.iter().enumerate() {
            let t = arch.estimate(m, n).seconds;
            let p = TABLE1[i][j];
            assert!(t / p < 2.0 && p / t < 2.0, "n={n} m={m}: simulated {t:.3e} vs paper {p:.3e}");
        }
    }
}

#[test]
fn table1_shape_matches_paper() {
    // Within a row (fixed n), time grows mildly with m; within a column
    // (fixed m), time grows steeply (superquadratically) with n — the
    // paper's central performance observation.
    let arch = HestenesJacobiArch::paper();
    for &n in &DIMS {
        let t128 = arch.estimate(128, n).seconds;
        let t1024 = arch.estimate(1024, n).seconds;
        assert!(t1024 > t128, "time must grow with m");
        assert!(t1024 / t128 < 4.0, "m-growth must be mild at n={n}: {}", t1024 / t128);
    }
    for &m in &DIMS {
        let t128 = arch.estimate(m, 128).seconds;
        let t1024 = arch.estimate(m, 1024).seconds;
        assert!(t1024 / t128 > 64.0, "n-growth must be superquadratic at m={m}: {}", t1024 / t128);
    }
}

#[test]
fn table2_within_three_points() {
    let (lut, bram, dsp) = hjsvd::arch::table2(&ArchConfig::paper());
    assert!((lut - 89.0).abs() < 3.0, "LUT {lut}%");
    assert!((bram - 91.0).abs() < 3.0, "BRAM {bram}%");
    assert!((dsp - 53.0).abs() < 3.0, "DSP {dsp}%");
    assert!(resource_usage(&ArchConfig::paper()).fits(&ChipCapacity::XC5VLX330));
}

#[test]
fn estimate_matches_simulate_exactly() {
    let arch = HestenesJacobiArch::paper();
    for &(m, n) in &[(32usize, 8usize), (64, 24), (100, 40), (17, 5)] {
        let a = gen::uniform(m, n, (m * 1000 + n) as u64);
        let sim = arch.simulate(&a).unwrap();
        let est = arch.estimate(m, n);
        assert_eq!(sim.total_cycles, est.total_cycles, "timing drift at {m}x{n}");
        assert_eq!(sim.per_sweep, est.per_sweep);
        assert_eq!(sim.preprocess, est.preprocess);
        assert_eq!(sim.finalize_cycles, est.finalize_cycles);
    }
}

#[test]
fn bram_boundary_behaviour() {
    let arch = HestenesJacobiArch::paper();
    assert_eq!(arch.estimate(128, 256).placement, CovariancePlacement::OnChip);
    assert_eq!(arch.estimate(128, 257).placement, CovariancePlacement::OffChip);
    // Spill cycles are strictly positive past the boundary and grow with n.
    let s512: u64 = arch.estimate(128, 512).per_sweep.iter().map(|s| s.io_cycles).sum();
    let s1024: u64 = arch.estimate(128, 1024).per_sweep.iter().map(|s| s.io_cycles).sum();
    assert!(s512 > 0 && s1024 > 3 * s512);
}

#[test]
fn paper_quoted_speedup_endpoints_hold_in_simulation() {
    // "execution time of operating a 128×128 matrix by our architecture
    // shows more than 5 times speedup" over the 24.3143 ms the fixed-point
    // FPGA design took for its largest (32×127) matrix.
    let arch = HestenesJacobiArch::paper();
    let t = arch.estimate(128, 128).seconds;
    assert!(t < 24.3143e-3 / 2.0, "128² must be well under the fixed-point design's time");
    // The GPU Hestenes of ref. [12]'s comparison: 106.9 ms for 128² — the
    // architecture must beat it by an order of magnitude.
    assert!(t * 10.0 < 106.9e-3);
}

#[test]
fn six_sweeps_cover_2048_convergence_claim_at_256() {
    // Functional check of "reasonable convergence within 6 iterations" at a
    // size the test budget allows (the full 2048 claim is exercised by the
    // fig10 --full harness).
    let a = gen::uniform(256, 256, 7);
    let sim = HestenesJacobiArch::paper().simulate(&a).unwrap();
    let initial = {
        let g = hjsvd::core::GramState::from_matrix(&a);
        g.mean_abs_covariance()
    };
    let last = *sim.convergence.last().unwrap();
    assert!(
        last < 1e-2 * initial,
        "mean |cov| must fall by ≥2 orders in 6 sweeps: {initial:.3e} → {last:.3e}"
    );
}

#[test]
fn kernel_scaling_saturates_at_rotation_throughput() {
    // More update kernels help until the rotation unit's 8-per-64-cycles
    // issue rate becomes the bottleneck (§V-C's sizing argument).
    let mk = |k: u64| {
        HestenesJacobiArch::new(ArchConfig {
            update_kernels: k,
            reconfigured_kernels: k / 2,
            ..ArchConfig::paper()
        })
        .estimate(512, 512)
        .seconds
    };
    let t1 = mk(1);
    let t8 = mk(8);
    let t256 = mk(256);
    assert!(t1 / t8 > 4.0, "8 kernels must be ≥4x faster than 1: {}", t1 / t8);
    // Saturation: going from 8 to 256 kernels gains less than another 8x.
    assert!(t8 / t256 < 8.0, "kernel scaling must saturate: {}", t8 / t256);
}

#[test]
fn faster_clock_scales_time_linearly() {
    let base = HestenesJacobiArch::paper().estimate(256, 256);
    let double = HestenesJacobiArch::new(ArchConfig { clock_hz: 300.0e6, ..ArchConfig::paper() })
        .estimate(256, 256);
    assert_eq!(base.total_cycles, double.total_cycles, "cycles are clock-independent");
    assert!((base.seconds / double.seconds - 2.0).abs() < 1e-9);
}
