//! Pins the trace layer's cost contract and its accounting accuracy.
//!
//! Three guarantees, each load-bearing for the observability design
//! (DESIGN.md §8):
//!
//! 1. **Bit identity** — attaching a sink never perturbs the numerics. A
//!    traced solve (no-op sink, and a recording sink at the chattiest
//!    level) produces bit-identical `U`, `Σ`, `V` to an untraced solve, on
//!    every engine.
//! 2. **Zero extra allocations** — a solve traced into a [`NoopSink`]
//!    performs exactly as many heap allocations as an untraced solve:
//!    software trace events are built from numbers and `&'static str`s,
//!    never from owned strings.
//! 3. **Honest accounting** — the JSONL stream is valid (one JSON object
//!    per line) and its per-sweep rotation counts sum to the solve's own
//!    `SolveStats.rotations_applied`.
//!
//! Lives in the root package (not hj-core) because hj-core carries
//! `#![forbid(unsafe_code)]` and a `GlobalAlloc` impl requires unsafe.

use hjsvd::core::{
    EngineKind, HestenesSvd, JsonlSink, NoopSink, RingBufferSink, SvdOptions, TraceLevel,
};
use hjsvd::matrix::{gen, Matrix};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Serialize tests: the allocation counter is process-global and the test
/// harness runs tests on separate threads.
static SERIAL: Mutex<()> = Mutex::new(());

/// Counts every allocation event (alloc + realloc) passing through the
/// global allocator; frees are not counted.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const ENGINES: [EngineKind; 3] =
    [EngineKind::Sequential, EngineKind::Parallel, EngineKind::Blocked];

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn traced_solves_are_bit_identical_to_untraced_on_every_engine() {
    let _guard = SERIAL.lock().unwrap();
    let a = gen::uniform(40, 16, 23);
    for engine in ENGINES {
        // The untraced baseline (trace level in the options is irrelevant
        // without a sink, but keep it Off to model the production default).
        let base =
            HestenesSvd::new(SvdOptions { engine, ..SvdOptions::default() }).decompose(&a).unwrap();

        // No-op sink at the default (promoted) sweep level.
        let quiet = HestenesSvd::new(SvdOptions { engine, ..SvdOptions::default() })
            .decompose_traced(&a, &mut NoopSink)
            .unwrap();

        // Recording sink at the chattiest level.
        let mut ring = RingBufferSink::new(1 << 16);
        let loud = HestenesSvd::new(SvdOptions {
            engine,
            trace: TraceLevel::Rotation,
            ..SvdOptions::default()
        })
        .decompose_traced(&a, &mut ring)
        .unwrap();
        assert!(ring.recorded() > 0, "{}: rotation-level trace was empty", engine.name());

        for traced in [&quiet, &loud] {
            assert_eq!(
                base.singular_values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                traced.singular_values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{}: singular values drifted under tracing",
                engine.name()
            );
            assert_eq!(bits(&base.u), bits(&traced.u), "{}: U drifted", engine.name());
            assert_eq!(bits(&base.v), bits(&traced.v), "{}: V drifted", engine.name());
            assert_eq!(base.sweeps, traced.sweeps, "{}: sweep count drifted", engine.name());
        }
    }
}

#[test]
fn noop_traced_solve_allocates_exactly_as_much_as_untraced() {
    let _guard = SERIAL.lock().unwrap();
    let a = gen::uniform(48, 24, 29);
    for engine in ENGINES {
        let solver = HestenesSvd::new(SvdOptions { engine, ..SvdOptions::default() });
        // Warm up the rayon pool (parallel engine) and the allocator's
        // internal arenas so both measured runs see identical conditions.
        solver.decompose(&a).unwrap();
        solver.decompose_traced(&a, &mut NoopSink).unwrap();

        let before = allocation_count();
        solver.decompose(&a).unwrap();
        let untraced = allocation_count() - before;

        let before = allocation_count();
        solver.decompose_traced(&a, &mut NoopSink).unwrap();
        let traced = allocation_count() - before;

        assert_eq!(
            traced,
            untraced,
            "{}: no-op tracing changed the allocation count",
            engine.name()
        );
    }
}

#[test]
fn jsonl_stream_is_valid_and_rotation_counts_match_stats() {
    let _guard = SERIAL.lock().unwrap();
    let a = gen::uniform(36, 18, 31);
    for engine in ENGINES {
        let solver = HestenesSvd::new(SvdOptions {
            engine,
            trace: TraceLevel::Rotation,
            ..SvdOptions::default()
        });
        let mut sink = JsonlSink::new(Vec::new());
        let svd = solver.decompose_traced(&a, &mut sink).unwrap();
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();

        let mut sweep_end_rotations = 0usize;
        let mut applied_events = 0usize;
        let mut lines = 0usize;
        for line in text.lines() {
            lines += 1;
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "{}: not a JSON object: {line}",
                engine.name()
            );
            // Minimal structural validity: balanced quoting and braces
            // outside strings — enough to catch malformed hand-rolled JSON.
            let mut depth = 0i64;
            let mut in_str = false;
            let mut escaped = false;
            for c in line.chars() {
                match (in_str, escaped, c) {
                    (true, true, _) => escaped = false,
                    (true, false, '\\') => escaped = true,
                    (true, false, '"') => in_str = false,
                    (false, _, '"') => in_str = true,
                    (false, _, '{') | (false, _, '[') => depth += 1,
                    (false, _, '}') | (false, _, ']') => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0, "{}: unbalanced braces: {line}", engine.name());
            }
            assert!(depth == 0 && !in_str, "{}: truncated JSON: {line}", engine.name());

            if let Some(rest) = line.split_once("\"event\":\"sweep_end\"").map(|(_, r)| r) {
                let count = rest
                    .split_once("\"rotations_applied\":")
                    .and_then(|(_, r)| {
                        r.split(|c: char| !c.is_ascii_digit()).next()?.parse::<usize>().ok()
                    })
                    .expect("sweep_end must carry rotations_applied");
                sweep_end_rotations += count;
            } else if line.contains("\"event\":\"rotation_applied\"") {
                applied_events += 1;
            }
        }
        assert!(lines > 0, "{}: empty trace", engine.name());
        assert_eq!(
            sweep_end_rotations,
            svd.stats.rotations_applied,
            "{}: sweep_end totals disagree with SolveStats",
            engine.name()
        );
        assert_eq!(
            applied_events,
            svd.stats.rotations_applied,
            "{}: rotation_applied event count disagrees with SolveStats",
            engine.name()
        );
    }
}
