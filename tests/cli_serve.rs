//! Spawned-binary tests for the `hjsvd` CLI's service commands and the
//! stdout stream-collision fix: a real `serve` process on an ephemeral
//! port, `submit`/`shutdown` against it, bit-identical output versus a
//! local solve, and the `--stats - --trace -` pin (trace JSONL owns
//! stdout; the stats object routes to stderr).

use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_hjsvd");

/// Run `hjsvd <args>` to completion and capture its output.
fn hjsvd(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("spawn hjsvd")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf-8 stderr")
}

/// A scratch directory with a generated matrix CSV inside.
fn scratch_with_matrix(tag: &str, rows: &str, cols: &str, seed: &str) -> (PathBuf, String) {
    let dir = std::env::temp_dir().join(format!("hjsvd_cli_serve_{tag}"));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let mp = dir.join("m.csv").to_str().expect("utf-8 path").to_string();
    let gen = hjsvd(&["generate", "--rows", rows, "--cols", cols, &mp, "--seed", seed]);
    assert!(gen.status.success(), "generate failed: {}", stderr_of(&gen));
    (dir, mp)
}

/// The bare (non-`#`) value lines of a `svd --values-only` / `submit` run.
fn value_lines(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(str::to_string)
        .collect()
}

/// Start `hjsvd serve` on an ephemeral port, returning the child and the
/// address parsed from its `listening on ` line.
fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(BIN)
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hjsvd serve");
    let stdout = child.stdout.as_mut().expect("serve stdout pipe");
    let mut first = String::new();
    BufReader::new(stdout).read_line(&mut first).expect("read listen line");
    let addr = first
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {first:?}"))
        .to_string();
    (child, addr)
}

/// End-to-end over real processes: serve on an ephemeral port, submit a
/// matrix on each engine, compare the printed spectra line-for-line with a
/// local `svd --values-only` run (bit-identical `{v}` formatting), then
/// shut the server down gracefully and check its final stats line.
#[test]
fn serve_submit_shutdown_round_trip_is_bit_identical() {
    let (dir, mp) = scratch_with_matrix("e2e", "20", "6", "42");
    let (mut child, addr) = spawn_serve(&["--workers", "2"]);

    for engine in ["seq", "par", "blocked"] {
        let local = hjsvd(&["svd", &mp, "--values-only", "--engine", engine]);
        assert!(local.status.success(), "local svd failed: {}", stderr_of(&local));
        let remote = hjsvd(&["submit", &mp, "--addr", &addr, "--engine", engine]);
        assert!(remote.status.success(), "submit failed: {}", stderr_of(&remote));
        let local_values = value_lines(&stdout_of(&local));
        let remote_values = value_lines(&stdout_of(&remote));
        assert_eq!(local_values.len(), 6);
        assert_eq!(
            local_values, remote_values,
            "spectrum over TCP differs from local solve on {engine}"
        );
        // The submit banner carries the job id.
        assert!(stdout_of(&remote).starts_with("# 6 singular values"), "{}", stdout_of(&remote));
    }

    let down = hjsvd(&["shutdown", "--addr", &addr, "--drain-ms", "5000"]);
    assert!(down.status.success(), "shutdown failed: {}", stderr_of(&down));
    let stats = stdout_of(&down);
    assert!(stats.contains("\"schema\":\"hjsvd-serve-stats/v1\""), "{stats}");
    assert!(stats.contains("\"completed\":3"), "{stats}");

    // The server process exits cleanly and prints its own final stats line.
    let status = child.wait().expect("serve exit");
    assert!(status.success(), "serve exited with {status}");
    let mut rest = String::new();
    child.stdout.take().expect("stdout").read_to_string(&mut rest).expect("read serve stdout");
    assert!(rest.contains("\"schema\":\"hjsvd-serve-stats/v1\""), "{rest}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Bulk submission over a real server: a directory of matrices goes up as
/// ONE protocol-v3 job, and every slot's printed spectrum matches the
/// local `svd --values-only` run line-for-line (same `{v}` formatting).
#[test]
fn submit_batch_round_trip_matches_local_solves() {
    let dir = std::env::temp_dir().join("hjsvd_cli_serve_batch");
    std::fs::remove_dir_all(&dir).ok();
    let mats = dir.join("mats");
    std::fs::create_dir_all(&mats).expect("scratch dir");
    let mut paths = Vec::new();
    for k in 0..3 {
        let mp = mats.join(format!("m{k}.csv")).to_str().expect("utf-8 path").to_string();
        let seed = (60 + k).to_string();
        let gen = hjsvd(&["generate", "--rows", "20", "--cols", "8", &mp, "--seed", &seed]);
        assert!(gen.status.success(), "generate failed: {}", stderr_of(&gen));
        paths.push(mp);
    }
    let (mut child, addr) = spawn_serve(&[]);

    let remote = hjsvd(&["submit-batch", mats.to_str().unwrap(), "--addr", &addr]);
    assert!(remote.status.success(), "submit-batch failed: {}", stderr_of(&remote));
    let stdout = stdout_of(&remote);
    assert!(stdout.starts_with("# job "), "{stdout}");
    assert!(stdout.contains(": 3 problems"), "{stdout}");

    // Slots print in submission (sorted-by-name) order. A uniform n=8 bulk
    // job rides the SoA batch engine on the server, so the bit-identity
    // reference is a local `svd --batch` over the same directory — same
    // engine, same inputs, same order; the wire must not perturb a bit.
    let local = hjsvd(&["svd", "--batch", mats.to_str().unwrap()]);
    assert!(local.status.success(), "local batch svd failed: {}", stderr_of(&local));
    let expected = value_lines(&stdout_of(&local));
    assert_eq!(expected.len(), 24);
    assert_eq!(value_lines(&stdout), expected, "bulk spectra differ from local batch solve");

    // The whole batch was one job.
    let down = hjsvd(&["shutdown", "--addr", &addr]);
    assert!(down.status.success(), "shutdown failed: {}", stderr_of(&down));
    assert!(stdout_of(&down).contains("\"completed\":1"), "{}", stdout_of(&down));
    assert!(child.wait().expect("serve exit").success());
    std::fs::remove_dir_all(&dir).ok();
}

/// A submission with an already-expired deadline comes back as exit code 8
/// (`timeout` kind) through the spawned binary — the wire error code maps
/// straight onto the CLI exit-code table.
#[test]
fn submit_expired_deadline_exits_with_timeout_code() {
    let (dir, mp) = scratch_with_matrix("deadline", "24", "8", "7");
    let (mut child, addr) = spawn_serve(&[]);

    let late = hjsvd(&["submit", &mp, "--addr", &addr, "--deadline-ms", "0"]);
    assert!(!late.status.success());
    assert_eq!(late.status.code(), Some(8), "stderr: {}", stderr_of(&late));
    assert!(stderr_of(&late).starts_with("error[timeout]:"), "{}", stderr_of(&late));

    // The server survives the fault: a normal submission still succeeds.
    let ok = hjsvd(&["submit", &mp, "--addr", &addr]);
    assert!(ok.status.success(), "follow-up submit failed: {}", stderr_of(&ok));

    let down = hjsvd(&["shutdown", "--addr", &addr]);
    assert!(down.status.success());
    assert!(child.wait().expect("serve exit").success());
    std::fs::remove_dir_all(&dir).ok();
}

/// Pins the stream-collision fix: with both `--stats -` and `--trace -`,
/// stdout carries exactly one JSON stream (the trace JSONL plus the plain
/// value lines) and the stats object moves to stderr — previously both
/// JSON payloads interleaved on stdout.
#[test]
fn stats_dash_with_trace_dash_routes_stats_to_stderr() {
    let (dir, mp) = scratch_with_matrix("collision", "16", "5", "3");

    let out = hjsvd(&["svd", &mp, "--values-only", "--stats", "-", "--trace", "-"]);
    assert!(out.status.success(), "svd failed: {}", stderr_of(&out));
    let stdout = stdout_of(&out);
    let stderr = stderr_of(&out);

    // Every JSON object line on stdout is a trace event — the stats object
    // (recognizable by its solve-stats keys) never appears there.
    let mut trace_lines = 0;
    for line in stdout.lines().filter(|l| l.starts_with('{')) {
        assert!(line.starts_with("{\"event\":\""), "non-trace JSON leaked onto stdout: {line}");
        trace_lines += 1;
    }
    assert!(trace_lines > 0, "trace JSONL missing from stdout: {stdout}");
    assert!(!stdout.contains("\"gram_bytes\""), "stats JSON leaked onto stdout: {stdout}");

    // The stats object landed on stderr, intact.
    let stats_line = stderr
        .lines()
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("no stats JSON on stderr: {stderr}"));
    assert!(stats_line.contains("\"gram_bytes\":"), "{stats_line}");
    assert!(stats_line.contains("\"sweeps\":"), "{stats_line}");

    // Without the trace stream, `--stats -` still owns stdout as before.
    let plain = hjsvd(&["svd", &mp, "--values-only", "--stats", "-"]);
    assert!(plain.status.success());
    assert!(stdout_of(&plain).contains("\"gram_bytes\":"), "{}", stdout_of(&plain));
    std::fs::remove_dir_all(&dir).ok();
}

/// `serve` with a dead address and `submit`/`shutdown` against a closed
/// port fail fast with the `io` exit code, not a hang.
#[test]
fn connection_failures_exit_with_io_code() {
    // Bind-then-drop: the ephemeral port is closed by the time we dial it.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        l.local_addr().expect("probe addr").to_string()
    };
    std::thread::sleep(Duration::from_millis(20));

    let (dir, mp) = scratch_with_matrix("refused", "8", "3", "1");
    let submit = hjsvd(&["submit", &mp, "--addr", &dead]);
    assert_eq!(submit.status.code(), Some(3), "stderr: {}", stderr_of(&submit));
    assert!(stderr_of(&submit).starts_with("error[io]:"));

    let down = hjsvd(&["shutdown", "--addr", &dead]);
    assert_eq!(down.status.code(), Some(3));
    std::fs::remove_dir_all(&dir).ok();
}
