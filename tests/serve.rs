//! Integration tests for the `hj-serve` subsystem through the public
//! `hjsvd` facade: admission-control stress, lifecycle guarantees, trace
//! event flow, and end-to-end TCP bit-identity against direct solver calls
//! on all three sweep engines.

use hjsvd::core::{EngineKind, HestenesSvd, SvdError, SvdOptions, TraceEvent, TraceSink};
use hjsvd::matrix::gen;
use hjsvd::serve::{
    Client, ClientError, JobSpec, Priority, RejectReason, Server, ServiceConfig, SolveService,
    SubmitOptions, CODE_DEADLINE,
};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Many producer threads hammer a small queue: every submission either
/// yields a ticket that reaches exactly one terminal outcome, or a
/// structured rejection — and the stats counters reconcile exactly with
/// what the producers observed. Nothing blocks, nothing is lost, nothing
/// runs twice.
#[test]
fn stress_small_queue_loses_nothing_and_counts_rejects_exactly() {
    const PRODUCERS: usize = 8;
    const PER_PRODUCER: usize = 24;

    let service = Arc::new(SolveService::start(ServiceConfig {
        workers: 3,
        queue_capacity: 4,
        max_attempts: 1,
        ..ServiceConfig::default()
    }));

    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let service = Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            let mut outcomes = Vec::new();
            let mut rejects = 0u64;
            for k in 0..PER_PRODUCER {
                let seed = (p * PER_PRODUCER + k) as u64 + 1;
                let spec = JobSpec::new(gen::uniform(16, 6, seed));
                match service.submit(spec) {
                    // Wait inline so producers also act as consumers; the
                    // queue stays contended but every ticket is drained.
                    Ok(ticket) => outcomes.push(ticket.wait()),
                    Err(RejectReason::QueueFull { capacity }) => {
                        assert_eq!(capacity, 4);
                        rejects += 1;
                    }
                    Err(other) => panic!("unexpected rejection {other:?}"),
                }
            }
            (outcomes, rejects)
        }));
    }

    let mut all_jobs = Vec::new();
    let mut total_rejects = 0u64;
    for h in handles {
        let (outcomes, rejects) = h.join().expect("producer thread");
        total_rejects += rejects;
        for outcome in outcomes {
            assert_eq!(outcome.attempts, 1, "job {} re-ran", outcome.job);
            assert!(outcome.result.is_ok(), "job {} faulted: {:?}", outcome.job, outcome.result);
            all_jobs.push(outcome.job);
        }
    }

    // Exactly-once execution: every admitted job produced one outcome and
    // job ids never repeat.
    let admitted = all_jobs.len() as u64;
    all_jobs.sort_unstable();
    all_jobs.dedup();
    assert_eq!(all_jobs.len() as u64, admitted, "a job id completed twice");
    assert_eq!(admitted + total_rejects, (PRODUCERS * PER_PRODUCER) as u64);

    let report = service.shutdown(Duration::from_secs(10));
    assert!(report.drained_cleanly);
    let stats = service.stats();
    assert_eq!(stats.admitted, admitted);
    assert_eq!(stats.completed, admitted);
    assert_eq!(stats.faulted, 0);
    assert_eq!(stats.rejected_queue_full, total_rejects);
    assert_eq!(stats.rejected_tenant_cap, 0);
    assert_eq!(stats.rejected_draining, 0);
    assert_eq!(stats.cancelled_at_drain, 0);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.running, 0);
    // Latency histograms saw every completion, attributed to its class.
    assert_eq!(stats.latency[Priority::Interactive.index()].count(), admitted);
}

/// Drain-on-shutdown completes every admitted job: tickets submitted but
/// never waited on before `shutdown` still resolve afterwards, with the
/// full spectrum, and the drain reports clean.
#[test]
fn shutdown_drains_every_admitted_job() {
    let service = SolveService::start(ServiceConfig {
        workers: 2,
        queue_capacity: 32,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> = (0..12)
        .map(|k| {
            service.submit(JobSpec::new(gen::uniform(20, 7, 100 + k))).expect("queue has room")
        })
        .collect();

    let report = service.shutdown(Duration::from_secs(10));
    assert!(report.drained_cleanly, "drain left work behind");
    assert_eq!(report.cancelled, 0);

    for ticket in tickets {
        let outcome = ticket.wait();
        let values = outcome.result.into_single().expect("drained job completed").values;
        assert_eq!(values.len(), 7);
    }
    let stats = service.stats();
    assert_eq!(stats.admitted, 12);
    assert_eq!(stats.completed, 12);
}

/// A drain deadline too short for the backlog force-cancels what is still
/// queued — but every ticket still resolves (with a `cancelled` fault), so
/// shutdown is bounded even with wedged traffic.
#[test]
fn shutdown_past_drain_deadline_cancels_but_never_hangs() {
    let service = SolveService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    // One worker, a deep backlog of real solves: a zero drain deadline
    // cannot complete them all.
    let tickets: Vec<_> = (0..16)
        .map(|k| {
            service.submit(JobSpec::new(gen::uniform(64, 32, 200 + k))).expect("queue has room")
        })
        .collect();

    let report = service.shutdown(Duration::ZERO);
    let stats = service.stats();
    assert_eq!(
        report.cancelled as u64, stats.cancelled_at_drain,
        "drain report and stats disagree"
    );
    let mut completed = 0u64;
    let mut cancelled = 0u64;
    for ticket in tickets {
        match ticket.wait().result.into_single() {
            Ok(_) => completed += 1,
            Err(SvdError::SolveFault { fault, .. }) => {
                assert_eq!(fault.kind(), "cancelled");
                cancelled += 1;
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert_eq!(completed + cancelled, 16, "a ticket was lost");
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.cancelled_at_drain + stats.faulted, cancelled);
}

/// A shared vector sink for asserting on the service's `job_*` event flow.
#[derive(Clone, Default)]
struct VecSink(Arc<Mutex<Vec<TraceEvent>>>);

impl TraceSink for VecSink {
    fn record(&mut self, event: &TraceEvent) {
        self.0.lock().unwrap().push(event.clone());
    }
}

/// The service narrates its lifecycle through the `job_*` trace events:
/// admission, dispatch, completion, faults, and structured rejections all
/// stream into the attached sink with consistent job ids.
#[test]
fn traced_service_emits_job_lifecycle_events() {
    let sink = VecSink::default();
    let events = Arc::clone(&sink.0);
    let service = SolveService::start_traced(
        ServiceConfig { workers: 1, ..ServiceConfig::default() },
        Box::new(sink),
    );

    let ok = service.solve(JobSpec::new(gen::uniform(18, 6, 5))).unwrap();
    assert!(ok.result.is_ok());

    let late = service
        .solve(
            JobSpec::new(gen::uniform(18, 6, 6)).deadline(Instant::now() - Duration::from_secs(1)),
        )
        .unwrap();
    assert!(!late.result.is_ok());

    service.shutdown(Duration::from_secs(5));
    // Post-drain submissions are rejected — and the rejection is traced.
    assert!(service.submit(JobSpec::new(gen::uniform(4, 2, 1))).is_err());

    let events = events.lock().unwrap();
    let names: Vec<&str> = events.iter().map(|e| e.name()).collect();
    let count = |n: &str| names.iter().filter(|x| **x == n).count();
    assert_eq!(count("job_admitted"), 2, "events: {names:?}");
    assert_eq!(count("job_dispatched"), 2, "events: {names:?}");
    assert_eq!(count("job_completed"), 1, "events: {names:?}");
    assert_eq!(count("job_faulted"), 1, "events: {names:?}");
    assert_eq!(count("job_rejected"), 1, "events: {names:?}");

    // The completed event belongs to the job that succeeded; the faulted
    // one carries the deadline fault class.
    for event in events.iter() {
        match event {
            TraceEvent::JobCompleted { job, .. } => assert_eq!(*job, ok.job),
            TraceEvent::JobFaulted { job, fault, .. } => {
                assert_eq!(*job, late.job);
                assert_eq!(*fault, "deadline");
            }
            TraceEvent::JobRejected { reason, .. } => assert_eq!(*reason, "draining"),
            _ => {}
        }
    }
}

/// Per-tenant in-flight caps reject the over-quota tenant with a
/// structured reason while other tenants keep flowing.
#[test]
fn tenant_caps_isolate_noisy_neighbours() {
    let service = SolveService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 16,
        tenant_cap: 2,
        ..ServiceConfig::default()
    });
    // Pin the single worker so queued jobs stay in flight. The blocker has
    // to out-solve the next three submit calls by a wide margin — a
    // 384 x 192 problem runs tens of milliseconds even on a fast build,
    // while the submits land in microseconds.
    let blocker = service.submit(JobSpec::new(gen::uniform(384, 192, 1)).tenant("noisy")).unwrap();
    let second = service.submit(JobSpec::new(gen::uniform(12, 4, 2)).tenant("noisy")).unwrap();
    match service.submit(JobSpec::new(gen::uniform(12, 4, 3)).tenant("noisy")) {
        Err(RejectReason::TenantCap { cap }) => assert_eq!(cap, 2),
        other => panic!("expected tenant-cap rejection, got {other:?}"),
    }
    // A different tenant is unaffected by the noisy one's cap.
    let quiet = service.submit(JobSpec::new(gen::uniform(12, 4, 4)).tenant("quiet")).unwrap();
    for t in [blocker, second, quiet] {
        assert!(t.wait().result.is_ok());
    }
    let stats = service.stats();
    assert_eq!(stats.rejected_tenant_cap, 1);
    service.shutdown(Duration::from_secs(5));
}

/// Spawn a server on an ephemeral port and run it on a background thread.
fn spawn_server(config: ServiceConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle)
}

/// The acceptance criterion for the wire front-end: for a fixed seed
/// corpus, singular values obtained via the TCP protocol are bitwise equal
/// to direct `HestenesSvd::singular_values` results, on all three engines.
#[test]
fn tcp_spectra_are_bit_identical_to_direct_solves_on_all_engines() {
    let corpus: &[(usize, usize, u64)] = &[(24, 8, 11), (30, 10, 22), (17, 5, 33), (40, 40, 44)];
    let engines = [EngineKind::Sequential, EngineKind::Parallel, EngineKind::Blocked];

    let (addr, handle) = spawn_server(ServiceConfig { workers: 2, ..ServiceConfig::default() });
    let mut client = Client::connect(addr).expect("connect");

    for &(m, n, seed) in corpus {
        let a = gen::uniform(m, n, seed);
        for engine in engines {
            let options = SvdOptions { engine, ..SvdOptions::default() };
            let direct = HestenesSvd::new(options).singular_values(&a).expect("direct solve");
            let remote = client
                .submit(&a, SubmitOptions { engine, ..SubmitOptions::default() })
                .expect("remote solve");
            assert_eq!(remote.sweeps, direct.sweeps, "{m}x{n}/{seed} {engine:?}");
            assert_eq!(remote.values.len(), direct.values.len());
            for (i, (r, d)) in remote.values.iter().zip(direct.values.iter()).enumerate() {
                assert_eq!(
                    r.to_bits(),
                    d.to_bits(),
                    "σ[{i}] differs over the wire for {m}x{n}/{seed} on {engine:?}"
                );
            }
        }
    }

    let stats_json = client.stats_json().expect("stats frame");
    assert!(stats_json.contains("\"schema\":\"hjsvd-serve-stats/v1\""));
    let final_json = client.shutdown(Duration::from_secs(5)).expect("shutdown frame");
    assert!(final_json.contains("\"completed\":12"), "{final_json}");
    handle.join().expect("server thread");
}

/// An already-expired relative deadline crosses the wire as a structured
/// error frame with the deadline code — and the server keeps serving: the
/// same connection then completes a normal solve.
#[test]
fn tcp_expired_deadline_is_a_structured_error_not_a_hang() {
    let (addr, handle) = spawn_server(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let mut client = Client::connect(addr).expect("connect");

    let a = gen::uniform(28, 9, 77);
    let err = client
        .submit(&a, SubmitOptions { deadline_ms: Some(0), ..SubmitOptions::default() })
        .expect_err("deadline 0 must fault");
    match err {
        ClientError::Remote { code, kind, .. } => {
            assert_eq!(code, CODE_DEADLINE);
            assert_eq!(kind, "deadline");
        }
        other => panic!("expected remote deadline error, got {other}"),
    }

    // The worker's workspace came back clean: the very next solve succeeds
    // and matches a direct call bitwise.
    let direct = HestenesSvd::new(SvdOptions::default()).singular_values(&a).unwrap();
    let remote = client.submit(&a, SubmitOptions::default()).expect("follow-up solve");
    for (r, d) in remote.values.iter().zip(direct.values.iter()) {
        assert_eq!(r.to_bits(), d.to_bits());
    }

    client.shutdown(Duration::from_secs(5)).expect("shutdown");
    handle.join().expect("server thread");
}
