//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! range and tuple strategies, [`Strategy::prop_map`], [`any`],
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! [`TestCaseError`] for `?`-style helpers.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test xoshiro256** stream (seeded from the test's module path and
//! name), and failing cases are **not shrunk** — the failure message
//! prints the case number so the run is reproducible by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

/// Everything a proptest-based test file imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Error produced by a failing (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    rejection: bool,
}

impl TestCaseError {
    /// A genuine assertion failure.
    pub fn fail(message: String) -> Self {
        TestCaseError { message, rejection: false }
    }

    /// A rejected case (`prop_assume!` miss): skipped, not failed.
    pub fn reject() -> Self {
        TestCaseError { message: "input rejected by prop_assume".into(), rejection: true }
    }

    /// True when the case should be skipped rather than failed.
    pub fn is_rejection(&self) -> bool {
        self.rejection
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the numeric-heavy suites in
        // this workspace fast while still sweeping a useful input volume.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic input stream for one property test (xoshiro256**).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed the stream from an arbitrary label (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case inputs.
///
/// Upstream strategies are shrink trees; this stand-in only samples.
pub trait Strategy {
    /// The produced input type.
    type Value;

    /// Draw one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced inputs with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            // Clamp rounding spill back inside the half-open range.
            f64::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let r = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(r)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Types with a full-domain uniform strategy, for [`any`].
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}
impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}
impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

/// Strategy over a type's full domain: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Define property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ::core::default::Default::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(16);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "gave up: {} of {} cases accepted after {} attempts \
                         (prop_assume rejects too many inputs)",
                        accepted, config.cases, attempts,
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err(e) if e.is_rejection() => continue,
                        Err(e) => panic!(
                            "proptest {} failed at case #{}: {}",
                            stringify!($name), accepted + 1, e,
                        ),
                    }
                }
            }
        )*
    };
}

/// Assert inside a property test; failure fails the *case* with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`", *l, *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", *l, *r, format!($($fmt)*)),
            ));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..100, 0u64..100)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2i32..9, z in 0.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..9).contains(&y));
            prop_assert!((0.5..2.5).contains(&z), "z = {z}");
        }

        #[test]
        fn tuples_and_map_compose((a, b) in pair(), c in (0u8..4, 0u8..4).prop_map(|(x, y)| x + y)) {
            prop_assert!(a < 100 && b < 100);
            prop_assert!(c <= 6);
            prop_assert_eq!(c as u32 + 1, c as u32 + 1);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_form_parses(bits in any::<u64>()) {
            let _ = f64::from_bits(bits);
            prop_assert!(true);
        }
    }

    #[test]
    fn question_mark_helpers_work() {
        fn helper(ok: bool) -> Result<(), TestCaseError> {
            prop_assert!(ok, "helper saw false");
            Ok(())
        }
        assert!(helper(true).is_ok());
        assert!(helper(false).is_err());
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
