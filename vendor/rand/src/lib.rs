//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny slice of the rand 0.9 API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::random_range`] over primitive
//! ranges. The generator is xoshiro256** seeded through SplitMix64 — not the
//! same stream as upstream `StdRng` (ChaCha12), but every consumer in this
//! workspace only relies on determinism from a `u64` seed, which this
//! provides bit-reproducibly across platforms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open, `lo..hi`).
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, &range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "empty f64 sample range");
        // 53 uniform mantissa bits -> u in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = range.start + u * (range.end - range.start);
        // Guard the open upper bound against rounding in the affine map.
        if v >= range.end {
            f64_prev(range.end)
        } else {
            v
        }
    }
}

fn f64_prev(x: f64) -> f64 {
    // Largest double strictly below a finite positive-direction bound.
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits - 1)
    } else {
        f64::from_bits(bits + 1)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "empty integer sample range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                // Modulo reduction: the bias is < 2^-64 per draw for every
                // span used in this workspace — irrelevant for test workloads.
                let r = ((rng.next_u64() as u128) % span) as $t;
                range.start.wrapping_add(r)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (offline `StdRng` stand-in).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0.0f64..1.0), b.random_range(0.0f64..1.0));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random_range(0u64..u64::MAX), c.random_range(0u64..u64::MAX));
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v), "{v} out of range");
        }
        for _ in 0..1_000 {
            let v = r.random_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v));
        }
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        let neg = r.random_range(-5i32..5);
        assert!((-5..5).contains(&neg));
    }
}
