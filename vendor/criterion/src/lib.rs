//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — with
//! a simple adaptive wall-clock measurement loop instead of criterion's
//! statistical machinery. Each benchmark prints `name ... time per iter` to
//! stdout. `--bench` and benchmark-name filter CLI arguments are accepted
//! (cargo passes them) and the filter is honoured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    /// Target measurement time per benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; any other free argument is a filter.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg.starts_with('-') {
                continue;
            }
            filter = Some(arg);
        }
        Criterion { filter, measure_for: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into() }
    }

    /// Benchmark a closure under `id` (ungrouped).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id.full, f);
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the adaptive loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the target measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measure_for = d;
        self
    }

    /// Benchmark a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.full);
        run_one(self.c, &full, f);
        self
    }

    /// Benchmark a closure over a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.full);
        run_one(self.c, &full, |b| f(b, input));
        self
    }

    /// End the group (upstream flushes reports here; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of one benchmark, optionally parameterized.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name` plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{}/{}", name.into(), parameter) }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { full: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { full: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    measure_for: Duration,
    /// (iterations, elapsed) recorded by the last `iter` call.
    result: Option<(u64, Duration)>,
}

/// Hint for how much setup state `iter_batched` keeps alive; accepted for
/// API compatibility and ignored by the simple runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per measured call.
    PerIteration,
}

impl Bencher {
    /// Measure `routine` on fresh state from `setup` each iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, T, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> T,
    {
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.measure_for && iters < 1 << 24 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            elapsed += t0.elapsed();
            iters += 1;
        }
        self.result = Some((iters, elapsed));
    }

    /// Measure `f` repeatedly: a short warm-up, then batches until the
    /// target measurement time is reached.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let mut batch: u64 = 1;
        while elapsed < self.measure_for {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed += t0.elapsed();
            iters += batch;
            // Grow batches so timer overhead stays negligible.
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.result = Some((iters, elapsed));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, full_name: &str, mut f: F) {
    if !c.matches(full_name) {
        return;
    }
    let mut b = Bencher { measure_for: c.measure_for, result: None };
    f(&mut b);
    match b.result {
        Some((iters, elapsed)) if iters > 0 => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            println!("{full_name:<48} {} / iter ({iters} iters)", fmt_time(per_iter));
        }
        _ => println!("{full_name:<48} (no measurement)"),
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions into a runnable group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion { filter: None, measure_for: Duration::from_millis(5) }
    }

    #[test]
    fn group_and_input_benches_record_results() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("plain", |b| b.iter(|| black_box(2u64 + 2)));
        let input = vec![1.0f64; 64];
        g.bench_with_input(BenchmarkId::new("sum", input.len()), &input, |b, v| {
            b.iter(|| v.iter().sum::<f64>())
        });
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("nomatch".into()), ..quick() };
        let mut hit = false;
        c.bench_function("something_else", |b| {
            hit = true;
            b.iter(|| 1u8);
        });
        assert!(!hit, "filtered benchmark must not run");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("build", 64).full, "build/64");
        assert_eq!(BenchmarkId::from_parameter("16x4").full, "16x4");
    }
}
