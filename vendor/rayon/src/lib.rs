//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of rayon it needs. The design goal — beyond API compatibility —
//! is **zero heap allocation per dispatch**: hj-core's round-synchronous
//! sweep drivers call into this pool once per Jacobi round and assert (with a
//! counting allocator) that the steady state allocates nothing.
//!
//! The pool is a *broadcast* pool: worker threads are spawned once, then each
//! [`broadcast_parts`] call hands every worker the same `Fn(worker, workers)`
//! closure through a raw pointer slot guarded by a mutex/condvar generation
//! counter. No job queue, no boxed closures, no channels — dispatch is two
//! mutex locks and two condvar signals.
//!
//! Semantics preserved from real rayon for the patterns used here:
//! * [`prelude`] provides `par_iter_mut().for_each(..)` on slices/`Vec`s;
//! * work partitioning is deterministic (contiguous blocks / fixed strides),
//!   so numerical results are identical at any thread count;
//! * nested calls from inside a worker run inline instead of deadlocking
//!   (rayon would cooperatively schedule; inline execution is the sequential
//!   special case of that).
//!
//! Thread count: `RAYON_NUM_THREADS` if set, else `available_parallelism`.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// One broadcast job: a type-erased `&F` plus its call shim.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize, usize),
    workers: usize,
}

// SAFETY: `data` points at a closure that outlives the job (the submitting
// thread blocks until every worker reports completion) and the `call` shim
// only requires `F: Sync`, which `broadcast_parts` enforces.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    seq: u64,
    remaining: usize,
    panicked: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    job_ready: Condvar,
    job_done: Condvar,
    /// Serializes submissions from independent user threads (e.g. parallel
    /// test binaries); held across the whole broadcast.
    submit: Mutex<()>,
    workers: usize,
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();
static DISPATCHES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = configured_threads();
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            state: Mutex::new(PoolState { job: None, seq: 0, remaining: 0, panicked: 0 }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
            submit: Mutex::new(()),
            workers,
        }));
        for idx in 0..workers {
            std::thread::Builder::new()
                .name(format!("hj-pool-{idx}"))
                .spawn(move || worker_loop(pool, idx))
                .expect("failed to spawn pool worker");
        }
        pool
    })
}

fn worker_loop(pool: &'static Pool, idx: usize) {
    IN_POOL.with(|c| c.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = pool.state.lock().expect("pool mutex");
            loop {
                if st.seq != seen {
                    seen = st.seq;
                    break st.job.expect("job present while seq advanced");
                }
                st = pool.job_ready.wait(st).expect("pool condvar");
            }
        };
        // SAFETY: see `Job`'s Send justification.
        let outcome =
            catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, idx, job.workers) }));
        let mut st = pool.state.lock().expect("pool mutex");
        if outcome.is_err() {
            st.panicked += 1;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            pool.job_done.notify_all();
        }
    }
}

/// Run `f(worker_index, worker_count)` once on every pool worker and block
/// until all calls return. Allocation-free after the pool has warmed up.
///
/// From inside a pool worker (nested parallelism) the call degenerates to
/// `f(0, 1)` inline. A panic in any worker is re-raised on the caller.
pub fn broadcast_parts<F>(f: F)
where
    F: Fn(usize, usize) + Sync,
{
    if IN_POOL.with(|c| c.get()) {
        f(0, 1);
        return;
    }
    let pool = pool();
    if pool.workers <= 1 {
        f(0, 1);
        return;
    }
    unsafe fn call_shim<F: Fn(usize, usize) + Sync>(p: *const (), i: usize, n: usize) {
        // SAFETY: `p` was derived from `&f` below and `f` is alive for the
        // whole broadcast because the submitter blocks on `job_done`.
        unsafe { (*(p as *const F))(i, n) }
    }
    let job = Job { data: (&raw const f).cast(), call: call_shim::<F>, workers: pool.workers };
    let _submission = pool.submit.lock().expect("pool submit mutex");
    DISPATCHES.fetch_add(1, Ordering::Relaxed);
    let panicked = {
        let mut st = pool.state.lock().expect("pool mutex");
        st.job = Some(job);
        st.seq = st.seq.wrapping_add(1);
        st.remaining = pool.workers;
        st.panicked = 0;
        pool.job_ready.notify_all();
        while st.remaining != 0 {
            st = pool.job_done.wait(st).expect("pool condvar");
        }
        st.job = None;
        st.panicked
    };
    if panicked > 0 {
        panic!("{panicked} pool worker(s) panicked during broadcast");
    }
}

/// Number of threads the pool runs (spawning it on first use).
pub fn current_num_threads() -> usize {
    pool().workers
}

/// Total broadcasts dispatched to the pool so far (telemetry for
/// `SolveStats`-style observability; inline/nested runs are not counted).
pub fn dispatch_count() -> usize {
    DISPATCHES.load(Ordering::Relaxed)
}

/// Contiguous block `[start, end)` of `len` items for worker `w` of `n`.
#[inline]
fn block(len: usize, w: usize, n: usize) -> (usize, usize) {
    (len * w / n, len * (w + 1) / n)
}

/// Parallel `for_each` over disjoint `&mut` items of a slice.
/// Deterministic: item `k` is always processed with the same inputs,
/// regardless of thread count.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let len = items.len();
    if len == 0 {
        return;
    }
    let base = SendPtr(items.as_mut_ptr());
    broadcast_parts(move |w, n| {
        let (start, end) = block(len, w, n);
        for k in start..end {
            // SAFETY: blocks are disjoint across workers and within bounds.
            f(unsafe { &mut *base.get().add(k) });
        }
    });
}

/// Parallel `for_each` over equally-sized disjoint chunks of a slice,
/// passing each chunk's index. The trailing remainder (if `data.len()` is not
/// a multiple of `chunk`) is left untouched, matching `chunks_exact_mut`.
pub fn par_chunks_for_each<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let nchunks = data.len() / chunk;
    if nchunks == 0 {
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    broadcast_parts(move |w, n| {
        let (start, end) = block(nchunks, w, n);
        for c in start..end {
            // SAFETY: chunk ranges are disjoint across workers and in bounds.
            let s = unsafe { std::slice::from_raw_parts_mut(base.get().add(c * chunk), chunk) };
            f(c, s);
        }
    });
}

/// Parallel `for_each` over variable-length disjoint partitions of a slice.
///
/// `starts` holds `rows + 1` ascending offsets; partition `r` is
/// `data[starts[r]..starts[r + 1]]`. Rows are assigned to workers in stride
/// order (`r % workers`), which balances triangular row-length profiles.
/// The caller owns `starts`, so steady-state callers allocate nothing.
pub fn par_rows_for_each<T, F>(data: &mut [T], starts: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let rows = starts.len().saturating_sub(1);
    if rows == 0 {
        return;
    }
    assert!(starts.windows(2).all(|w| w[0] <= w[1]), "starts must ascend");
    assert!(starts[rows] <= data.len(), "starts exceed buffer");
    let base = SendPtr(data.as_mut_ptr());
    broadcast_parts(move |w, n| {
        let mut r = w;
        while r < rows {
            let (lo, hi) = (starts[r], starts[r + 1]);
            // SAFETY: ascending `starts` make rows disjoint; stride `n`
            // partitions row indices across workers without overlap.
            let s = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
            f(r, s);
            r += n;
        }
    });
}

/// Raw pointer wrapper so worker closures (which only capture it by value)
/// satisfy the `Sync` bound of [`broadcast_parts`].
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Whole-struct accessor: closures must capture the `Sync` wrapper, not
    /// the raw-pointer field (2021 disjoint capture would otherwise grab
    /// `self.0` directly and lose the `Sync` impl).
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: only used to derive provably disjoint subslices inside this module.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// rayon-compatible import surface: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelRefMutIterator, ParIterMut};
}

/// Mutable parallel iteration over a collection's items.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item handed to the loop body.
    type Item: Send + 'a;
    /// Create the parallel iterator.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self.as_mut_slice() }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// Borrowed mutable parallel iterator (the only adaptor surface used here is
/// `for_each`, plus `enumerate().for_each`).
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Run `f` on every item, in parallel, deterministically partitioned.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        par_for_each_mut(self.items, f);
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIterMutEnumerate<'a, T> {
        ParIterMutEnumerate { items: self.items }
    }
}

/// Index-carrying variant of [`ParIterMut`].
pub struct ParIterMutEnumerate<'a, T> {
    items: &'a mut [T],
}

impl<T: Send> ParIterMutEnumerate<'_, T> {
    /// Run `f` on every `(index, item)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let len = self.items.len();
        if len == 0 {
            return;
        }
        let base = SendPtr(self.items.as_mut_ptr());
        broadcast_parts(move |w, n| {
            let (start, end) = block(len, w, n);
            for k in start..end {
                // SAFETY: blocks are disjoint across workers and in bounds.
                f((k, unsafe { &mut *base.get().add(k) }));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_for_each_mut_touches_every_item_once() {
        let mut v: Vec<u64> = (0..10_000).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn enumerate_gives_correct_indices() {
        let mut v = vec![0usize; 517];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 3);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn chunks_cover_exact_prefix() {
        let mut v = vec![0u32; 1003]; // 100 chunks of 10 + remainder 3
        par_chunks_for_each(&mut v, 10, |c, chunk| {
            for x in chunk {
                *x = c as u32 + 1;
            }
        });
        assert!(v[..1000].iter().all(|&x| x >= 1));
        assert!(v[1000..].iter().all(|&x| x == 0), "remainder untouched");
    }

    #[test]
    fn rows_partition_is_disjoint_and_complete() {
        // Triangle rows: lengths 5, 4, 3, 2, 1.
        let starts = [0usize, 5, 9, 12, 14, 15];
        let mut v = vec![0u8; 15];
        par_rows_for_each(&mut v, &starts, |r, row| {
            for x in row {
                *x += 1 + r as u8;
            }
        });
        let mut expect = Vec::new();
        for (r, len) in [5usize, 4, 3, 2, 1].into_iter().enumerate() {
            expect.extend(std::iter::repeat_n(1 + r as u8, len));
        }
        assert_eq!(v, expect);
    }

    #[test]
    fn nested_broadcast_runs_inline() {
        let mut outer = vec![0usize; 64];
        outer.par_iter_mut().for_each(|x| {
            // Nested: must not deadlock; runs inline on this worker.
            let mut inner = vec![1usize; 8];
            inner.par_iter_mut().for_each(|y| *y += 1);
            *x = inner.iter().sum();
        });
        assert!(outer.iter().all(|&x| x == 16));
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            let mut v = vec![0u8; 100];
            v.par_iter_mut().for_each(|_| panic!("boom"));
        });
        // Single-threaded pools run inline, where the panic also propagates.
        assert!(caught.is_err());
        // Pool still functional afterwards.
        let mut v = vec![1u8; 100];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
