//! Video background modelling via low-rank approximation — the paper's §I
//! time-sensitivity example (robust PCA for video surveillance, its
//! ref. \[4\], where repeated partial SVDs of frame matrices dominated the
//! runtime).
//!
//! Synthesizes a "video" whose frames are a fixed background plus a small
//! moving foreground object plus sensor noise, stacks frames as columns,
//! and recovers the background as the rank-1 component of the SVD. This is
//! exactly the tall-skinny workload (many pixels = rows, few frames =
//! columns) where the paper's architecture claims its largest speedups.
//!
//! Run: `cargo run --release --example background_subtraction`

use hjsvd::core::{HestenesSvd, SvdOptions};
use hjsvd::matrix::{gen, Matrix};

const W: usize = 24;
const H: usize = 18;
const FRAMES: usize = 40;
const OBJ: usize = 3; // foreground object size in pixels

fn main() {
    let pixels = W * H;

    // Static background: smooth gradient with a few "fixtures".
    let mut background = vec![0.0f64; pixels];
    for y in 0..H {
        for x in 0..W {
            let mut v = 0.3 + 0.4 * (x as f64 / W as f64) + 0.2 * (y as f64 / H as f64);
            if (8..12).contains(&x) && (4..14).contains(&y) {
                v += 0.25; // a doorway
            }
            background[y * W + x] = v;
        }
    }

    // Frames: background + moving bright object + noise.
    let noise = gen::gaussian(pixels, FRAMES, 77);
    let mut video = Matrix::zeros(pixels, FRAMES);
    for f in 0..FRAMES {
        let ox = (f * (W - OBJ)) / (FRAMES - 1); // object moves left→right
        let oy = H / 2;
        let col = video.col_mut(f);
        col.copy_from_slice(&background);
        for dy in 0..OBJ {
            for dx in 0..OBJ {
                col[(oy + dy) * W + (ox + dx)] += 0.9;
            }
        }
        for (p, n) in col.iter_mut().zip(noise.col(f)) {
            *p += 0.02 * n;
        }
    }

    // Rank-1 SVD model: the background is (nearly) constant across frames,
    // so it dominates the spectrum.
    let svd = HestenesSvd::new(SvdOptions::default()).decompose(&video).expect("valid input");
    println!(
        "leading singular values: {:?}",
        &svd.singular_values[..4.min(FRAMES)]
            .iter()
            .map(|s| (s * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    let energy_1: f64 = svd.singular_values[0] * svd.singular_values[0]
        / svd.singular_values.iter().map(|s| s * s).sum::<f64>();
    println!("rank-1 energy share: {:.2}%", 100.0 * energy_1);

    let model = svd.truncated(1);

    // Recovered background: per-pixel RMS error of the rank-1 model against
    // the true background (averaged over frames).
    let mut bg_err = 0.0f64;
    for f in 0..FRAMES {
        for (p, bg) in background.iter().enumerate() {
            let d = model.get(p, f) - bg;
            bg_err += d * d;
        }
    }
    bg_err = (bg_err / (pixels * FRAMES) as f64).sqrt();
    println!("background RMS error of rank-1 model: {bg_err:.4}");

    // Foreground = residual; the object must light up in the residual at
    // its known location, and be the dominant residual feature.
    let mut hits = 0usize;
    for f in 0..FRAMES {
        let ox = (f * (W - OBJ)) / (FRAMES - 1);
        let oy = H / 2;
        // Find the largest-|residual| pixel of the frame.
        let mut best = (0usize, 0.0f64);
        for p in 0..pixels {
            let r = (video.get(p, f) - model.get(p, f)).abs();
            if r > best.1 {
                best = (p, r);
            }
        }
        let (bx, by) = (best.0 % W, best.0 / W);
        if (ox..ox + OBJ).contains(&bx) && (oy..oy + OBJ).contains(&by) {
            hits += 1;
        }
    }
    println!("frames where the peak residual lands on the object: {hits}/{FRAMES}");

    assert!(bg_err < 0.05, "rank-1 model must recover the background (err {bg_err})");
    assert!(hits >= FRAMES * 9 / 10, "foreground must dominate the residual");
    println!("\nOK: background recovered, moving object isolated in the residual");
}
