//! Principal Component Analysis via Hestenes-Jacobi SVD — the paper's §I
//! motivating application ("SVD-based PCA has been used in many signal
//! processing applications").
//!
//! Builds a synthetic dataset of three Gaussian clusters living in a
//! 2-dimensional subspace of a 50-dimensional space, recovers the subspace
//! with the SVD, and shows that (a) two components capture almost all the
//! variance and (b) the clusters separate in the projected coordinates.
//!
//! Run: `cargo run --release --example pca`

use hjsvd::core::{HestenesSvd, SvdOptions};
use hjsvd::matrix::{gen, ops, Matrix};

const DIM: usize = 50;
const PER_CLUSTER: usize = 60;

fn main() {
    // Three cluster centres along two hidden directions.
    let dir1 = gen::random_orthonormal(DIM, 2, 1);
    let centres_2d = [(-6.0, 0.0), (6.0, -4.0), (3.0, 7.0)];

    // Samples = centre + small isotropic noise, rows = observations.
    let noise = gen::gaussian(3 * PER_CLUSTER, DIM, 2);
    let mut data = Matrix::zeros(3 * PER_CLUSTER, DIM);
    for (c, &(x, y)) in centres_2d.iter().enumerate() {
        for s in 0..PER_CLUSTER {
            let row = c * PER_CLUSTER + s;
            for d in 0..DIM {
                let centre = x * dir1.get(d, 0) + y * dir1.get(d, 1);
                data.set(row, d, centre + 0.3 * noise.get(row, d));
            }
        }
    }

    // Centre the data (PCA works on the mean-removed matrix).
    let rows = data.rows();
    for d in 0..DIM {
        let mean: f64 = (0..rows).map(|r| data.get(r, d)).sum::<f64>() / rows as f64;
        for r in 0..rows {
            let v = data.get(r, d) - mean;
            data.set(r, d, v);
        }
    }

    // SVD of the centred data: principal directions are V's columns,
    // variance along each is sigma²/(rows−1).
    let svd = HestenesSvd::new(SvdOptions::default()).decompose(&data).expect("valid input");
    let total_var: f64 = svd.singular_values.iter().map(|s| s * s).sum();
    println!("variance explained by leading components:");
    let mut cum = 0.0;
    for (i, s) in svd.singular_values.iter().take(5).enumerate() {
        cum += s * s;
        println!(
            "  PC{}: {:5.1}%  (cumulative {:5.1}%)",
            i + 1,
            100.0 * s * s / total_var,
            100.0 * cum / total_var
        );
    }

    // Project onto the first two principal components.
    let mut projected = vec![(0.0f64, 0.0f64); rows];
    for (r, p) in projected.iter_mut().enumerate() {
        let row = data.row(r);
        p.0 = ops::dot(&row, svd.v.col(0));
        p.1 = ops::dot(&row, svd.v.col(1));
    }

    // Cluster separation in the projected plane: centroid distances vs
    // average intra-cluster spread.
    let centroid = |c: usize| {
        let s = &projected[c * PER_CLUSTER..(c + 1) * PER_CLUSTER];
        let n = s.len() as f64;
        let cx = s.iter().map(|p| p.0).sum::<f64>() / n;
        let cy = s.iter().map(|p| p.1).sum::<f64>() / n;
        (cx, cy)
    };
    let spread = |c: usize| {
        let (cx, cy) = centroid(c);
        let s = &projected[c * PER_CLUSTER..(c + 1) * PER_CLUSTER];
        (s.iter().map(|p| (p.0 - cx).powi(2) + (p.1 - cy).powi(2)).sum::<f64>() / s.len() as f64)
            .sqrt()
    };
    println!("\nprojected cluster geometry (2 PCs):");
    let mut min_sep = f64::INFINITY;
    for c in 0..3 {
        let (x, y) = centroid(c);
        println!("  cluster {c}: centroid ({x:7.2}, {y:7.2}), spread {:.2}", spread(c));
    }
    for a in 0..3 {
        for b in a + 1..3 {
            let (ax, ay) = centroid(a);
            let (bx, by) = centroid(b);
            min_sep = min_sep.min(((ax - bx).powi(2) + (ay - by).powi(2)).sqrt());
        }
    }
    let max_spread = (0..3).map(spread).fold(0.0f64, f64::max);
    println!("  min centroid separation = {min_sep:.2}, max spread = {max_spread:.2}");
    assert!(
        min_sep > 4.0 * max_spread,
        "PCA must separate the clusters (sep {min_sep:.2} vs spread {max_spread:.2})"
    );
    let two_pc_share: f64 =
        svd.singular_values.iter().take(2).map(|s| s * s).sum::<f64>() / total_var;
    assert!(two_pc_share > 0.9, "two PCs must dominate ({:.1}%)", 100.0 * two_pc_share);
    println!(
        "\nOK: two components capture {:.1}% of variance and separate the clusters",
        100.0 * two_pc_share
    );
}
