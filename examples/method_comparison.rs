//! Accuracy shoot-out: every SVD method in the workspace against matrices
//! of increasing condition number.
//!
//! Prints the worst relative spectrum error of each method against the
//! known planted spectrum — the numerical side of the paper's §III survey
//! (Householder vs Jacobi families) in one table.
//!
//! Run: `cargo run --release --example method_comparison`

use hjsvd::baselines::lanczos::{lanczos_svd, LanczosOptions};
use hjsvd::baselines::partial_svd::{randomized_svd, PartialSvdOptions};
use hjsvd::baselines::{householder, naive_hestenes, preconditioned, two_sided};
use hjsvd::core::{HestenesSvd, SvdOptions};
use hjsvd::matrix::gen;

fn worst_rel(got: &[f64], want: &[f64]) -> f64 {
    got.iter().zip(want).map(|(g, w)| (g - w).abs() / w.max(1e-300)).fold(0.0f64, f64::max)
}

fn main() {
    const N: usize = 10;
    const M: usize = 40;
    println!("worst relative spectrum error vs planted singular values ({M}x{N}):\n");
    println!("{:<28} {:>12} {:>12} {:>12}", "method", "cond 1e3", "cond 1e6", "cond 1e9");

    let conds: [f64; 3] = [1e3, 1e6, 1e9];
    let spectra: Vec<Vec<f64>> = conds
        .iter()
        .map(|&c| (0..N).map(|t| c.powf(-(t as f64) / (N as f64 - 1.0))).collect())
        .collect();
    let mats: Vec<_> = spectra
        .iter()
        .enumerate()
        .map(|(i, s)| gen::with_singular_values(M, N, s, 100 + i as u64))
        .collect();

    type Method = Box<dyn Fn(&hjsvd::matrix::Matrix) -> Vec<f64>>;
    let methods: Vec<(&str, Method)> = vec![
        (
            "Hestenes (this work)",
            Box::new(|a| {
                HestenesSvd::new(SvdOptions::default()).decompose(a).unwrap().singular_values
            }),
        ),
        ("Householder/QR", Box::new(|a| householder::svd(a).unwrap().sigma)),
        ("naive Hestenes", Box::new(|a| naive_hestenes::svd(a, 40).factors.sigma)),
        (
            "QR-preconditioned Jacobi",
            Box::new(|a| preconditioned::svd(a, SvdOptions::default()).unwrap().factors.sigma),
        ),
        (
            "randomized (full rank)",
            Box::new(|a| {
                randomized_svd(
                    a,
                    N,
                    PartialSvdOptions { power_iterations: 4, ..Default::default() },
                )
                .sigma
            }),
        ),
        ("Lanczos (full rank)", Box::new(|a| lanczos_svd(a, N, LanczosOptions::default()).sigma)),
    ];

    for (name, f) in &methods {
        let errs: Vec<f64> = mats.iter().zip(&spectra).map(|(a, s)| worst_rel(&f(a), s)).collect();
        println!("{name:<28} {:>12.2e} {:>12.2e} {:>12.2e}", errs[0], errs[1], errs[2]);
    }

    // Two-sided Jacobi needs a square input: run it on its own matrix.
    let sq_spectrum: Vec<f64> =
        (0..N).map(|t| 1e6f64.powf(-(t as f64) / (N as f64 - 1.0))).collect();
    let sq = gen::with_singular_values(N, N, &sq_spectrum, 55);
    let ts_err = worst_rel(&two_sided::svd(&sq, 40).unwrap().sigma, &sq_spectrum);
    println!("{:<28} {:>12} {:>12.2e} {:>12}", "two-sided Jacobi (square)", "-", ts_err, "-");

    println!("\nreading the table: every method is exact through cond 1e6. At cond 1e9 the");
    println!("smallest singular value (1e-9) sits below the Gram noise floor sqrt(eps) of");
    println!("methods that form or implicitly work through AᵀA (Hestenes, preconditioned,");
    println!("Lanczos), while bidiagonalization-based Householder still resolves it in");
    println!("absolute terms — the classical trade-off between the two families, and the");
    println!("reason double precision (not single/fixed) is load-bearing for the paper.");
}
