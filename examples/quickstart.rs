//! Quickstart: decompose a random matrix, inspect the result, verify it.
//!
//! Run: `cargo run --release --example quickstart`

use hjsvd::baselines::householder;
use hjsvd::core::{HestenesSvd, SvdOptions};
use hjsvd::matrix::{gen, norms};

fn main() {
    // A 200-row, 12-column matrix — the tall-skinny shape the paper's
    // architecture is built for (many rows, modest column count).
    let a = gen::uniform(200, 12, 42);

    // Full SVD with the default (threshold-converged) options.
    let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).expect("valid input");

    println!("singular values ({} sweeps to converge):", svd.sweeps);
    for (i, s) in svd.singular_values.iter().enumerate() {
        println!("  sigma[{i}] = {s:.6}");
    }

    // Verify the factorization quality.
    let recon = norms::reconstruction_error(&a, &svd.u, &svd.singular_values, &svd.v);
    let u_orth = norms::orthonormality_error(&svd.u);
    let v_orth = norms::orthonormality_error(&svd.v);
    println!("\n‖A − UΣVᵀ‖/‖A‖ = {recon:.2e}");
    println!("‖UᵀU − I‖_max  = {u_orth:.2e}");
    println!("‖VᵀV − I‖_max  = {v_orth:.2e}");

    // Cross-check against the independent Householder/QR implementation.
    let baseline = householder::svd(&a).expect("baseline");
    let disagreement = norms::spectrum_disagreement(&svd.singular_values, &baseline.sigma);
    println!("max disagreement vs Householder baseline = {disagreement:.2e}");

    // The paper's operating mode: exactly 6 sweeps, values only.
    let paper = HestenesSvd::new(SvdOptions::paper()).singular_values(&a).expect("valid input");
    println!("\npaper mode (6 fixed sweeps): leading sigma = {:.6}", paper.values[0]);
    println!("convergence trace (mean |covariance| per sweep):");
    for rec in &paper.history {
        println!("  sweep {}: {:.3e}", rec.sweep, rec.mean_abs_cov);
    }

    assert!(recon < 1e-12 && disagreement < 1e-10, "quickstart must verify cleanly");
    println!("\nOK");
}
