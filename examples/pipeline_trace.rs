//! Zoom into the hardware pipeline: trace one Fig. 6 pair-group through the
//! architecture's components, cycle by cycle, for a small and a large
//! column dimension — showing the §V-C transition from rotation-issue-bound
//! to update-bound operation.
//!
//! Run: `cargo run --release --example pipeline_trace`

use hjsvd::arch::trace::trace_group;
use hjsvd::arch::ArchConfig;

fn main() {
    let cfg = ArchConfig::paper();

    for (n, kernels) in [(32usize, 12u64), (512, 12)] {
        println!("=== one group of 8 rotations, n = {n}, {kernels} update kernels ===");
        let t = trace_group(&cfg, 8, n, kernels);
        print!("{}", t.render());
        println!(
            "next rotation block may issue at cycle {}, group completes at {} → {}\n",
            t.next_issue_cycle,
            t.completion_cycle,
            if t.update_bound() {
                "UPDATE-BOUND (the update kernels set the pace)"
            } else {
                "ISSUE-BOUND (the rotation unit sets the pace)"
            }
        );
    }

    println!("This is the paper's §V-C observation in miniature: for large matrices");
    println!("\"performance is dominated by the amount of updates after each rotation\",");
    println!("which is why the preprocessor is reconfigured into extra update kernels.");
}
