//! Zoom into the hardware pipeline: trace one Fig. 6 pair-group through the
//! architecture's components, cycle by cycle, for a small and a large
//! column dimension — showing the §V-C transition from rotation-issue-bound
//! to update-bound operation. The final section replays the same timeline
//! through the `hj-core` trace layer, producing the JSON Lines stream the
//! `hjsvd svd --trace` flag emits for software solves — one schema for both
//! worlds.
//!
//! Run: `cargo run --release --example pipeline_trace`

use hjsvd::arch::trace::trace_group;
use hjsvd::arch::ArchConfig;
use hjsvd::core::JsonlSink;

fn main() {
    let cfg = ArchConfig::paper();

    for (n, kernels) in [(32usize, 12u64), (512, 12)] {
        println!("=== one group of 8 rotations, n = {n}, {kernels} update kernels ===");
        let t = trace_group(&cfg, 8, n, kernels);
        print!("{}", t.render());
        println!(
            "next rotation block may issue at cycle {}, group completes at {} → {}\n",
            t.next_issue_cycle,
            t.completion_cycle,
            if t.update_bound() {
                "UPDATE-BOUND (the update kernels set the pace)"
            } else {
                "ISSUE-BOUND (the rotation unit sets the pace)"
            }
        );
    }

    println!("This is the paper's §V-C observation in miniature: for large matrices");
    println!("\"performance is dominated by the amount of updates after each rotation\",");
    println!("which is why the preprocessor is reconfigured into extra update kernels.");

    // The same timeline as structured pipeline_stage events, in the JSONL
    // schema `hjsvd svd --trace` uses — simulator and software solves can be
    // inspected with the same tooling (grep, jq, the EXPERIMENTS.md recipes).
    println!("\n=== the n = 32 timeline as hj-core JSONL trace events ===");
    let t = trace_group(&cfg, 8, 32, 12);
    let mut sink = JsonlSink::new(Vec::new());
    t.emit(&mut sink);
    let jsonl = String::from_utf8(sink.finish().expect("in-memory sink cannot fail")).unwrap();
    print!("{jsonl}");
}
