//! A tour of the cycle-level architecture simulator: run the paper's
//! hardware configuration on a matrix, print the per-phase cycle breakdown,
//! the memory placement decision, the convergence trace, and the resource
//! bill of materials — everything §V/§VI of the paper describes, in one
//! program.
//!
//! Run: `cargo run --release --example architecture_tour`

use hjsvd::arch::{resource_usage, HestenesJacobiArch};
use hjsvd::core::{HestenesSvd, SvdOptions};
use hjsvd::fpsim::resources::ChipCapacity;
use hjsvd::matrix::gen;

fn main() {
    let arch = HestenesJacobiArch::paper();
    let cfg = *arch.config();
    println!("=== configuration (paper §VI-A) ===");
    println!("clock: {} MHz, sweeps: {}", cfg.clock_hz / 1e6, cfg.sweeps);
    println!(
        "preprocessor: {} x {} multipliers; rotation: {}/{} cycles; update kernels: {} (+{} reconfigured)",
        cfg.preprocessor_layers,
        cfg.preprocessor_mults_per_layer,
        cfg.rotations_per_block,
        cfg.rotation_block_cycles,
        cfg.update_kernels,
        cfg.reconfigured_kernels
    );

    let (m, n) = (256usize, 96usize);
    let a = gen::uniform(m, n, 2024);
    println!("\n=== simulating a {m}x{n} decomposition ===");
    let report = arch.simulate(&a).expect("valid input");

    println!(
        "preprocessing: {} MACs, {} cycles (compute {} / input {})",
        report.preprocess.mac_ops,
        report.preprocess.total_cycles,
        report.preprocess.compute_cycles,
        report.preprocess.input_cycles
    );
    println!("covariance placement: {:?}", report.placement);
    println!("\nper-sweep cycles (rotation / update / io -> total):");
    for s in &report.per_sweep {
        println!(
            "  sweep {}: {:>9} / {:>9} / {:>6} -> {:>9}",
            s.sweep, s.rotation_cycles, s.update_cycles, s.io_cycles, s.total_cycles
        );
    }
    println!("finalization: {} cycles", report.finalize_cycles);
    println!(
        "total: {} cycles = {:.3} ms at {} MHz",
        report.total_cycles,
        report.seconds * 1e3,
        cfg.clock_hz / 1e6
    );

    println!("\nconvergence (mean |covariance| per sweep):");
    for (i, v) in report.convergence.iter().enumerate() {
        println!("  sweep {}: {v:.3e}", i + 1);
    }

    // Numerical cross-check against the pure-software algorithm.
    let hw = report.singular_values.as_ref().expect("functional run");
    let sw = HestenesSvd::new(SvdOptions::default()).singular_values(&a).expect("valid input");
    let max_rel = hw
        .iter()
        .zip(&sw.values)
        .map(|(x, y)| (x - y).abs() / y.max(1e-300))
        .fold(0.0f64, f64::max);
    println!("\nmax relative deviation vs fully-converged software spectrum: {max_rel:.2e}");
    println!("(the architecture runs the paper's fixed 6 sweeps; the software runs to");
    println!(" machine-precision convergence — the gap above is the 6-sweep accuracy)");
    assert!(max_rel < 1e-4, "6 sweeps must deliver the paper's 'reasonable convergence'");

    println!("\n=== resource report (Table II) ===");
    let usage = resource_usage(&cfg);
    let chip = ChipCapacity::XC5VLX330;
    let (lut, bram, dsp) = usage.utilization(&chip);
    println!("{}: {lut:.1}% LUT, {bram:.1}% BRAM, {dsp:.1}% DSP (paper: 89/91/53)", chip.name);
    println!("fits: {}", usage.fits(&chip));
    println!("\nOK");
}
