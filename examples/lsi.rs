//! Latent Semantic Indexing via truncated SVD — the paper's stated future
//! work ("our proposed framework will be extended to perform principal
//! component analysis for latent semantic indexing", §VII).
//!
//! Builds a small term-document matrix over two topics, computes a rank-2
//! truncated SVD, and shows that (a) documents cluster by topic in latent
//! space even when they share few literal terms, and (b) a query matches
//! topically-related documents that have no term overlap with it.
//!
//! Run: `cargo run --release --example lsi`

use hjsvd::core::{HestenesSvd, SvdOptions};
use hjsvd::matrix::{ops, Matrix};

// Vocabulary: 5 "graphics" terms, 5 "numerics" terms.
const TERMS: [&str; 10] = [
    "render", "shader", "texture", "pixel", "mesh", // graphics
    "matrix", "eigen", "solver", "sparse", "norm", // numerics
];

// 8 documents as term-count vectors (rows = terms, cols = documents).
// d0-d3 graphics, d4-d7 numerics; d3 and d7 use disjoint vocabulary from
// their topic-mates (the polysemy/synonymy problem LSI addresses).
const DOCS: [[f64; 10]; 8] = [
    [3.0, 2.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [2.0, 3.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [1.0, 0.0, 3.0, 2.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [0.0, 0.0, 0.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [0.0, 0.0, 0.0, 0.0, 0.0, 3.0, 2.0, 1.0, 0.0, 0.0],
    [0.0, 0.0, 0.0, 0.0, 0.0, 2.0, 0.0, 3.0, 1.0, 0.0],
    [0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 3.0, 1.0],
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0, 3.0],
];

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    ops::dot(a, b) / (ops::norm(a) * ops::norm(b)).max(f64::MIN_POSITIVE)
}

fn main() {
    // Term-document matrix: terms on rows, documents on columns.
    let mut a = Matrix::zeros(TERMS.len(), DOCS.len());
    for (d, doc) in DOCS.iter().enumerate() {
        for (t, &count) in doc.iter().enumerate() {
            a.set(t, d, count);
        }
    }

    let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).expect("valid input");
    println!(
        "singular values: {:?}\n",
        svd.singular_values.iter().map(|s| (s * 100.0).round() / 100.0).collect::<Vec<_>>()
    );

    // Rank-2 latent space: document d ↦ (σ₁ v_d1, σ₂ v_d2).
    let k = 2;
    let doc_vec = |d: usize| -> Vec<f64> {
        (0..k).map(|t| svd.singular_values[t] * svd.v.get(d, t)).collect()
    };

    println!("documents in latent space:");
    for d in 0..DOCS.len() {
        let v = doc_vec(d);
        println!("  d{d}: ({:6.2}, {:6.2})", v[0], v[1]);
    }

    // In-topic similarity must beat cross-topic similarity, including for
    // d3/d7 which share no terms with some topic-mates.
    let sim = |x: usize, y: usize| cosine(&doc_vec(x), &doc_vec(y));
    println!("\nlatent similarities:");
    println!("  d0~d3 (same topic, 1 shared term):  {:.3}", sim(0, 3));
    println!("  d4~d7 (same topic, 1 shared term):  {:.3}", sim(4, 7));
    println!("  d0~d4 (different topics):           {:.3}", sim(0, 4));
    assert!(sim(0, 3) > 0.8 && sim(4, 7) > 0.8, "topic-mates must be close in latent space");
    assert!(sim(0, 4) < 0.3, "cross-topic documents must be far in latent space");

    // Query folding: q ↦ Σ⁻¹ Uᵀ q, compared to documents in latent space.
    let query_terms = ["pixel", "mesh"]; // graphics query, no overlap with d0's terms except none
    let mut q = vec![0.0; TERMS.len()];
    for qt in query_terms {
        let idx = TERMS.iter().position(|t| *t == qt).expect("term in vocabulary");
        q[idx] = 1.0;
    }
    let q_latent: Vec<f64> = (0..k)
        .map(|t| ops::dot(&q, svd.u.col(t)) / svd.singular_values[t].max(f64::MIN_POSITIVE))
        .collect();
    // Compare in the same scaled space as the documents.
    let q_scaled: Vec<f64> = (0..k).map(|t| q_latent[t] * svd.singular_values[t]).collect();

    println!("\nquery {:?} ranked against documents:", query_terms);
    let mut ranked: Vec<(usize, f64)> =
        (0..DOCS.len()).map(|d| (d, cosine(&q_scaled, &doc_vec(d)))).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (d, s) in &ranked {
        println!("  d{d}: {s:.3}");
    }
    // Every graphics doc must outrank every numerics doc — including d0 and
    // d1, which share zero terms with the query.
    let rank_of = |d: usize| ranked.iter().position(|&(x, _)| x == d).unwrap();
    for g in 0..4 {
        for n in 4..8 {
            assert!(rank_of(g) < rank_of(n), "graphics doc d{g} must outrank numerics doc d{n}");
        }
    }
    println!("\nOK: zero-term-overlap documents retrieved by topic");
}
