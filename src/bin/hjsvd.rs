//! `hjsvd` — command-line front end for the workspace.
//!
//! ```text
//! hjsvd svd <matrix.csv> [--values-only] [--rank K] [--out PREFIX] [--stats PATH]
//!           [--engine seq|par|blocked] [--ordering cyclic|row|greedy|presort]
//!           [--threshold-schedule] [--timeout-ms T]
//!           [--trace PATH] [--trace-level off|sweep|group|rotation]
//! hjsvd svd --batch <dir-or-csv-list> [--stats PATH] [--engine ...] [--ordering ...]
//! hjsvd pca <data.csv> --components K [--out PREFIX]
//! hjsvd eigh <symmetric.csv>
//! hjsvd simulate --rows M --cols N [--sweeps S]
//! hjsvd resources
//! hjsvd generate --rows M --cols N <out.csv> [--seed S] [--cond C]
//! hjsvd serve --addr HOST:PORT [--workers N] [--queue-cap N] [--tenant-cap N]
//! hjsvd submit <matrix.csv> --addr HOST:PORT [--deadline-ms T]
//!             [--priority interactive|batch] [--engine seq|par|blocked]
//!             [--ordering cyclic|row|greedy|presort] [--tenant NAME]
//! hjsvd submit-batch <dir-or-csv-list> --addr HOST:PORT [--tenant NAME]
//!                    [--deadline-ms T]
//! hjsvd shutdown --addr HOST:PORT [--drain-ms T]
//! ```
//!
//! Batch inputs (`svd --batch`, `submit-batch`) name either a directory —
//! every `*.csv` inside, sorted by file name — or a comma-separated list of
//! CSV paths. Problems succeed and fail individually: every slot is
//! reported, and the exit code is the first failing slot's (0 when all
//! succeed).
//!
//! Matrices are headerless CSV (one row per line, `#` comments allowed).
//! Argument parsing is hand-rolled — the workspace takes no CLI dependency.
//!
//! When both `--stats -` and `--trace -` are requested, stdout belongs to
//! the JSONL trace stream and the stats object is routed to **stderr**
//! instead — two JSON documents never interleave on one stream.
//!
//! Every failure exits with a *distinct* nonzero code and a single
//! machine-greppable stderr line `error[<kind>]: <message>`:
//!
//! | code | kind            | cause                                         |
//! |------|-----------------|-----------------------------------------------|
//! | 2    | `usage`         | bad arguments / unknown command               |
//! | 3    | `io`            | file read/write failure                       |
//! | 4    | `bad-input`     | empty or non-finite input matrix              |
//! | 5    | `bad-config`    | inconsistent solver configuration             |
//! | 6    | `not-converged` | iteration budget exhausted before convergence |
//! | 7    | `solve-fault`   | health check aborted the solve                |
//! | 8    | `timeout`       | `--timeout-ms` deadline exceeded              |
//! | 9    | `cancelled`     | solve cancelled via its cancellation flag     |
//! | 10   | `rejected`      | serve admission control rejected the job      |

use hjsvd::arch::{resource_usage, ArchConfig, HestenesJacobiArch};
use hjsvd::core::{
    eigh, EngineKind, HestenesSvd, JsonlSink, Ordering, Pca, SolveBudget, SvdError, SvdOptions,
    ThresholdSchedule, TraceLevel,
};
use hjsvd::fpsim::resources::ChipCapacity;
use hjsvd::matrix::{gen, io, norms, Matrix};
use hjsvd::serve::{
    Client, ClientError, Priority, Server, ServiceConfig, SubmitOptions, CODE_BAD_REQUEST,
    CODE_CANCELLED, CODE_DEADLINE, CODE_REJECTED,
};
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

/// A CLI failure: one stable kind string, one exit code, one message line.
#[derive(Debug)]
struct CliError {
    code: u8,
    kind: &'static str,
    message: String,
}

impl CliError {
    fn usage(message: impl Into<String>) -> CliError {
        CliError { code: 2, kind: "usage", message: message.into() }
    }

    fn io(message: impl Into<String>) -> CliError {
        CliError { code: 3, kind: "io", message: message.into() }
    }
}

impl From<SvdError> for CliError {
    fn from(e: SvdError) -> CliError {
        let (code, kind) = match &e {
            SvdError::EmptyInput | SvdError::NonFiniteInput => (4, "bad-input"),
            SvdError::EngineNeedsRoundRobin
            | SvdError::OrderingUnsupported { .. }
            | SvdError::ZeroSweepBudget => (5, "bad-config"),
            SvdError::TruncatedTailNotNegligible => (6, "not-converged"),
            SvdError::SolveFault { fault, .. } => match fault.kind() {
                "deadline" => (8, "timeout"),
                "cancelled" => (9, "cancelled"),
                _ => (7, "solve-fault"),
            },
        };
        CliError { code, kind, message: e.to_string() }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error[{}]: {}", e.kind, e.message);
            ExitCode::from(e.code)
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let mut parsed = ParsedArgs::parse(args).map_err(CliError::usage)?;
    match parsed.command.as_str() {
        "svd" => cmd_svd(&mut parsed),
        "pca" => cmd_pca(&mut parsed),
        "eigh" => cmd_eigh(&mut parsed),
        "simulate" => cmd_simulate(&mut parsed),
        "resources" => cmd_resources(&parsed),
        "generate" => cmd_generate(&mut parsed),
        "serve" => cmd_serve(&mut parsed),
        "submit" => cmd_submit(&mut parsed),
        "submit-batch" => cmd_submit_batch(&mut parsed),
        "shutdown" => cmd_shutdown(&mut parsed),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown command '{other}'"))),
    }
}

fn print_help() {
    println!(
        "hjsvd — Hestenes-Jacobi SVD toolkit

USAGE:
  hjsvd svd <matrix.csv> [--values-only] [--rank K] [--out PREFIX] [--stats PATH]
            [--engine seq|par|blocked] [--ordering cyclic|row|greedy|presort]
            [--threshold-schedule] [--timeout-ms T]
            [--trace PATH] [--trace-level off|sweep|group|rotation]
      Decompose a CSV matrix. Prints singular values; with --out, writes
      PREFIX_u.csv / PREFIX_s.csv / PREFIX_v.csv. --rank truncates.
      --stats writes the solve's SolveStats record as JSON (PATH of '-'
      prints it to stdout). --engine picks the sweep engine: seq
      (Algorithm 1, default), par (rayon round-synchronous), or blocked
      (cache-tiled groups). --ordering picks the sweep pair schedule:
      cyclic (round-robin, default), row (row-cyclic, seq only), greedy
      (largest off-diagonal pairs first, replanned every sweep), or
      presort (de Rijk descending-column-norm permutation up front).
      --threshold-schedule ramps the early-sweep rotation threshold down
      to the convergence tolerance, skipping negligible pairs early.
      --timeout-ms bounds wall-clock time: the solve
      aborts at the next sweep boundary past the deadline (exit code 8).
      --trace streams structured solve events as JSON Lines to PATH ('-'
      = stdout); --trace-level picks the verbosity (default sweep:
      per-sweep summaries; group adds pair-group dispatches; rotation
      adds every applied/skipped rotation).
  hjsvd svd --batch <dir-or-csv-list> [--stats PATH]
            [--engine seq|par|blocked] [--ordering cyclic|row|greedy|presort]
            [--threshold-schedule]
      Decompose a whole set of matrices in one batch solve (values only).
      The input names a directory (every *.csv inside, sorted) or a
      comma-separated list of CSV paths. Uniform batches of small problems
      (n <= 32, default engine/ordering) run on the batched SoA engine;
      everything else takes the looped per-matrix path. Slots succeed and
      fail independently; --stats writes one SolveStats JSON record per
      successful problem, in slot order, as JSON Lines ('-' = stdout).
  hjsvd pca <data.csv> --components K [--out PREFIX]
      PCA (rows = observations). Prints explained variance; with --out,
      writes PREFIX_scores.csv and PREFIX_components.csv.
  hjsvd eigh <symmetric.csv> [--ordering cyclic|row|greedy]
      Eigendecompose a symmetric matrix (Jacobi). presort is rejected:
      descending-norm pivoting assumes a PSD spectrum.
  hjsvd simulate --rows M --cols N [--sweeps S]
      Cycle-level timing estimate of the paper's architecture (150 MHz).
  hjsvd resources
      Resource utilization of the architecture on the XC5VLX330 (Table II).
  hjsvd generate --rows M --cols N <out.csv> [--seed S] [--cond C]
      Write a random test matrix (uniform, or graded to condition number C).
  hjsvd serve --addr HOST:PORT [--workers N] [--queue-cap N] [--tenant-cap N]
              [--max-attempts N]
      Run the multi-tenant solve service. Prints 'listening on HOST:PORT'
      (port 0 resolves to an ephemeral port), serves until a shutdown
      frame arrives, then prints the final stats JSON. --workers sizes
      the worker pool, --queue-cap bounds the admission queue,
      --tenant-cap limits per-tenant in-flight jobs (0 = unlimited).
  hjsvd submit <matrix.csv> --addr HOST:PORT [--deadline-ms T]
              [--priority interactive|batch] [--engine seq|par|blocked]
              [--ordering cyclic|row|greedy|presort] [--tenant NAME]
      Submit a matrix to a running server and print the singular values
      (bit-identical to a local 'svd --values-only' run). --deadline-ms
      bounds the job's wall-clock time (exit code 8 when exceeded);
      rejected submissions exit with code 10.
  hjsvd submit-batch <dir-or-csv-list> --addr HOST:PORT [--tenant NAME]
              [--deadline-ms T]
      Submit a whole set of matrices as ONE bulk job (protocol v3) and
      print every slot's spectrum. The input names a directory (every
      *.csv inside, sorted) or a comma-separated list of CSV paths.
      Bulk jobs ride the batch priority class; slots fail independently
      and the exit code is the first failing slot's.
  hjsvd shutdown --addr HOST:PORT [--drain-ms T]
      Gracefully stop a running server: drain in-flight jobs for up to
      --drain-ms (default 5000), then print the final stats JSON."
    );
}

/// Minimal deterministic argument cracker: positionals in order, `--flag`
/// booleans, `--key value` options.
struct ParsedArgs {
    command: String,
    positionals: Vec<String>,
    flags: Vec<String>,
    options: Vec<(String, String)>,
}

impl ParsedArgs {
    fn parse(args: &[String]) -> Result<ParsedArgs, String> {
        let command = args.first().cloned().unwrap_or_else(|| "help".to_string());
        let mut positionals = Vec::new();
        let mut flags = Vec::new();
        let mut options = Vec::new();
        let mut i = 1;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                // Boolean flags take no value; everything else consumes one.
                if matches!(name, "values-only" | "threshold-schedule" | "help" | "batch") {
                    flags.push(name.to_string());
                } else {
                    let v =
                        args.get(i + 1).ok_or_else(|| format!("option --{name} needs a value"))?;
                    options.push((name.to_string(), v.clone()));
                    i += 1;
                }
            } else {
                positionals.push(a.clone());
            }
            i += 1;
        }
        Ok(ParsedArgs { command, positionals, flags, options })
    }

    fn positional(&self, idx: usize, what: &str) -> Result<&str, String> {
        self.positionals.get(idx).map(String::as_str).ok_or_else(|| format!("missing {what}"))
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    fn opt(&self, name: &str) -> Option<&str> {
        self.options.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    fn opt_parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.opt(name) {
            None => Ok(None),
            Some(v) => {
                v.parse::<T>().map(Some).map_err(|_| format!("--{name}: cannot parse '{v}'"))
            }
        }
    }

    fn required<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        self.opt_parse(name)?.ok_or_else(|| format!("--{name} is required"))
    }
}

fn load(path: &str) -> Result<Matrix, CliError> {
    io::load_csv(path).map_err(|e| CliError::io(format!("{path}: {e}")))
}

fn save(m: &Matrix, path: &str) -> Result<(), CliError> {
    io::save_csv(m, path).map_err(|e| CliError::io(format!("{path}: {e}")))
}

/// Write a solve's JSON stats to `path` (`-` = stdout). When the trace
/// stream already owns stdout (`--trace -`), `-` routes to stderr instead:
/// interleaving a JSON object into a JSONL stream would corrupt both
/// documents, and consumers piping the trace must keep getting pure JSONL.
fn emit_stats(
    stats: &hjsvd::core::SolveStats,
    path: &str,
    trace_owns_stdout: bool,
) -> Result<(), CliError> {
    let json = stats.to_json();
    if path == "-" {
        if trace_owns_stdout {
            eprintln!("{json}");
        } else {
            println!("{json}");
        }
        Ok(())
    } else {
        std::fs::write(path, json + "\n").map_err(|e| CliError::io(format!("{path}: {e}")))
    }
}

/// Resolve the `--trace` / `--trace-level` pair: `Some((path, level))` when
/// tracing is requested. `--trace-level` without `--trace` is a usage error —
/// there would be nowhere to write the events.
fn trace_option(p: &ParsedArgs) -> Result<Option<(String, TraceLevel)>, CliError> {
    let level = match p.opt("trace-level") {
        None => TraceLevel::Sweep,
        Some(v) => TraceLevel::parse(v).ok_or_else(|| {
            CliError::usage(format!(
                "--trace-level: unknown level '{v}' (choose off, sweep, group, or rotation)"
            ))
        })?,
    };
    match p.opt("trace") {
        Some(path) => Ok(Some((path.to_string(), level))),
        None if p.opt("trace-level").is_some() => {
            Err(CliError::usage("--trace-level requires --trace PATH"))
        }
        None => Ok(None),
    }
}

/// Open the JSONL trace sink for `path` (`-` = stdout).
fn open_trace(path: &str) -> Result<JsonlSink<Box<dyn Write>>, CliError> {
    let w: Box<dyn Write> = if path == "-" {
        Box::new(std::io::stdout())
    } else {
        Box::new(std::fs::File::create(path).map_err(|e| CliError::io(format!("{path}: {e}")))?)
    };
    Ok(JsonlSink::new(w))
}

/// Flush the trace sink and surface any write error it swallowed mid-solve.
fn close_trace(sink: JsonlSink<Box<dyn Write>>, path: &str) -> Result<(), CliError> {
    let mut w = sink.finish().map_err(|e| CliError::io(format!("{path}: {e}")))?;
    w.flush().map_err(|e| CliError::io(format!("{path}: {e}")))
}

/// Parse the `--engine` option into an [`EngineKind`] (default: sequential).
fn engine_option(p: &ParsedArgs) -> Result<EngineKind, CliError> {
    match p.opt("engine") {
        None => Ok(EngineKind::default()),
        Some(v) => EngineKind::parse(v).ok_or_else(|| {
            CliError::usage(format!("--engine: unknown engine '{v}' (choose seq, par, or blocked)"))
        }),
    }
}

/// Parse the `--ordering` option into an [`Ordering`] (default: cyclic).
fn ordering_option(p: &ParsedArgs) -> Result<Ordering, CliError> {
    match p.opt("ordering") {
        None => Ok(Ordering::default()),
        Some(v) => Ordering::parse(v).ok_or_else(|| {
            CliError::usage(format!(
                "--ordering: unknown ordering '{v}' (choose cyclic, row, greedy, or presort)"
            ))
        }),
    }
}

/// Resolve a batch input spec — a directory (every `*.csv` inside, sorted
/// by file name, so batch order is reproducible across filesystems) or a
/// comma-separated list of CSV paths — into labelled matrices.
fn load_batch(spec: &str) -> Result<Vec<(String, Matrix)>, CliError> {
    let is_dir = std::fs::metadata(spec).map(|m| m.is_dir()).unwrap_or(false);
    let paths: Vec<String> = if is_dir {
        let entries = std::fs::read_dir(spec).map_err(|e| CliError::io(format!("{spec}: {e}")))?;
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "csv"))
            .map(|p| p.to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
    } else {
        spec.split(',').filter(|s| !s.is_empty()).map(str::to_string).collect()
    };
    if paths.is_empty() {
        return Err(CliError::usage(format!("{spec}: no CSV matrices to batch")));
    }
    paths.into_iter().map(|p| load(&p).map(|m| (p, m))).collect()
}

/// `hjsvd svd --batch`: values-only decomposition of a whole set of
/// matrices through [`HestenesSvd::singular_values_batch`] — uniform small
/// batches ride the SoA engine, everything else the looped path. Slots
/// succeed and fail independently; `--stats` emits one SolveStats record
/// per successful problem, in slot order, as JSON Lines.
fn cmd_svd_batch(p: &mut ParsedArgs) -> Result<(), CliError> {
    let spec = p
        .positional(0, "batch input (directory or comma-separated CSV list)")
        .map_err(CliError::usage)?
        .to_string();
    let engine = engine_option(p)?;
    let ordering = ordering_option(p)?;
    let threshold = p.flag("threshold-schedule").then(ThresholdSchedule::default);
    let solver = HestenesSvd::new(SvdOptions { engine, ordering, threshold, ..Default::default() });
    let inputs = load_batch(&spec)?;
    let mats: Vec<Matrix> = inputs.iter().map(|(_, m)| m.clone()).collect();
    let batch = solver.singular_values_batch(&mats);
    let mut stats_lines = Vec::new();
    let mut first_err: Option<CliError> = None;
    for ((path, _), res) in inputs.iter().zip(batch) {
        match res {
            Ok(sv) => {
                println!(
                    "# {path}: {} singular values ({} sweeps, engine {})",
                    sv.values.len(),
                    sv.sweeps,
                    sv.stats.engine
                );
                for v in &sv.values {
                    println!("{v}");
                }
                stats_lines.push(sv.stats.to_json());
            }
            Err(e) => {
                let ce = CliError::from(e);
                println!("# {path}: error[{}]: {}", ce.kind, ce.message);
                first_err.get_or_insert(ce);
            }
        }
    }
    if let Some(sp) = p.opt("stats") {
        let doc = stats_lines.join("\n") + "\n";
        if sp == "-" {
            print!("{doc}");
        } else {
            std::fs::write(sp, doc).map_err(|e| CliError::io(format!("{sp}: {e}")))?;
        }
    }
    first_err.map_or(Ok(()), Err)
}

fn cmd_svd(p: &mut ParsedArgs) -> Result<(), CliError> {
    if p.flag("batch") {
        return cmd_svd_batch(p);
    }
    let path = p.positional(0, "input matrix path").map_err(CliError::usage)?.to_string();
    let a = load(&path)?;
    let engine = engine_option(p)?;
    let ordering = ordering_option(p)?;
    let threshold = p.flag("threshold-schedule").then(ThresholdSchedule::default);
    let timeout_ms: Option<u64> = p.opt_parse("timeout-ms").map_err(CliError::usage)?;
    let trace = trace_option(p)?;
    let trace_level = trace.as_ref().map(|(_, l)| *l).unwrap_or(TraceLevel::Off);
    let mut solver = HestenesSvd::new(SvdOptions {
        engine,
        ordering,
        threshold,
        trace: trace_level,
        ..Default::default()
    });
    if let Some(ms) = timeout_ms {
        solver = solver.with_budget(SolveBudget::with_timeout(Duration::from_millis(ms)));
    }
    let stats_path = p.opt("stats").map(str::to_string);
    let trace_owns_stdout = matches!(&trace, Some((tp, _)) if tp == "-");
    if p.flag("values-only") {
        let sv = match &trace {
            Some((tp, _)) => {
                let mut sink = open_trace(tp)?;
                let sv = solver.singular_values_traced(&a, &mut sink)?;
                close_trace(sink, tp)?;
                sv
            }
            None => solver.singular_values(&a)?,
        };
        println!("# {} singular values ({} sweeps)", sv.values.len(), sv.sweeps);
        for v in &sv.values {
            println!("{v}");
        }
        if let Some(sp) = stats_path {
            emit_stats(&sv.stats, &sp, trace_owns_stdout)?;
        }
        return Ok(());
    }
    let svd = match &trace {
        Some((tp, _)) => {
            let mut sink = open_trace(tp)?;
            let svd = solver.decompose_traced(&a, &mut sink)?;
            close_trace(sink, tp)?;
            svd
        }
        None => solver.decompose(&a)?,
    };
    if let Some(sp) = stats_path {
        emit_stats(&svd.stats, &sp, trace_owns_stdout)?;
    }
    let rank: Option<usize> = p.opt_parse("rank").map_err(CliError::usage)?;
    let k = rank.unwrap_or(svd.singular_values.len()).min(svd.singular_values.len());
    println!(
        "# {}x{} matrix, {} sweeps, reconstruction error {:.3e}",
        a.rows(),
        a.cols(),
        svd.sweeps,
        norms::reconstruction_error(&a, &svd.u, &svd.singular_values, &svd.v)
    );
    for v in &svd.singular_values[..k] {
        println!("{v}");
    }
    if let Some(prefix) = p.opt("out") {
        let mut s = Matrix::zeros(k, 1);
        for t in 0..k {
            s.set(t, 0, svd.singular_values[t]);
        }
        save(&svd.u.leading_columns(k), &format!("{prefix}_u.csv"))?;
        save(&s, &format!("{prefix}_s.csv"))?;
        save(&svd.v.leading_columns(k), &format!("{prefix}_v.csv"))?;
        println!("# wrote {prefix}_u.csv, {prefix}_s.csv, {prefix}_v.csv");
    }
    Ok(())
}

fn cmd_pca(p: &mut ParsedArgs) -> Result<(), CliError> {
    let path = p.positional(0, "input data path").map_err(CliError::usage)?.to_string();
    let k: usize = p.required("components").map_err(CliError::usage)?;
    let data = load(&path)?;
    let pca = Pca::fit_default(&data, k)?;
    println!("# component, explained variance, ratio");
    for (i, (ev, r)) in
        pca.explained_variance().iter().zip(pca.explained_variance_ratio()).enumerate()
    {
        println!("{}, {ev}, {r}", i + 1);
    }
    println!("# total captured: {:.4}", pca.captured_variance());
    if let Some(prefix) = p.opt("out") {
        save(&pca.transform(&data), &format!("{prefix}_scores.csv"))?;
        save(pca.components(), &format!("{prefix}_components.csv"))?;
        println!("# wrote {prefix}_scores.csv, {prefix}_components.csv");
    }
    Ok(())
}

fn cmd_eigh(p: &mut ParsedArgs) -> Result<(), CliError> {
    let path = p.positional(0, "input matrix path").map_err(CliError::usage)?.to_string();
    let ordering = ordering_option(p)?;
    let s = load(&path)?;
    let e = eigh::eigh_dense_ordered(&s, 1e-14, ordering)?;
    println!("# {} eigenvalues ({} sweeps)", e.eigenvalues.len(), e.sweeps);
    for v in &e.eigenvalues {
        println!("{v}");
    }
    Ok(())
}

fn cmd_simulate(p: &mut ParsedArgs) -> Result<(), CliError> {
    let m: usize = p.required("rows").map_err(CliError::usage)?;
    let n: usize = p.required("cols").map_err(CliError::usage)?;
    let sweeps: Option<usize> = p.opt_parse("sweeps").map_err(CliError::usage)?;
    let mut cfg = ArchConfig::paper();
    if let Some(s) = sweeps {
        cfg.sweeps = s;
    }
    let arch = HestenesJacobiArch::new(cfg);
    let r = arch.estimate(m, n);
    println!("architecture estimate for a {m}x{n} decomposition ({} sweeps):", r.sweeps);
    println!("  covariance placement: {:?}", r.placement);
    println!(
        "  preprocess: {} cycles (compute {}, input {})",
        r.preprocess.total_cycles, r.preprocess.compute_cycles, r.preprocess.input_cycles
    );
    for s in &r.per_sweep {
        println!(
            "  sweep {}: rot {} / upd {} / io {} -> {}",
            s.sweep, s.rotation_cycles, s.update_cycles, s.io_cycles, s.total_cycles
        );
    }
    println!("  finalize: {} cycles", r.finalize_cycles);
    println!("  total: {} cycles = {:.6} s at 150 MHz", r.total_cycles, r.seconds);
    Ok(())
}

fn cmd_resources(_p: &ParsedArgs) -> Result<(), CliError> {
    let cfg = ArchConfig::paper();
    let usage = resource_usage(&cfg);
    let chip = ChipCapacity::XC5VLX330;
    println!("resource usage on {}:", chip.name);
    for (name, cost, bram) in usage.items() {
        println!("  {name:<14} {:>7} LUT {:>4} DSP {:>4} BRAM36", cost.luts, cost.dsps, bram);
    }
    let (lut, bram, dsp) = usage.utilization(&chip);
    println!("totals: {lut:.1}% LUT, {bram:.1}% BRAM, {dsp:.1}% DSP (paper: 89/91/53)");
    Ok(())
}

fn cmd_generate(p: &mut ParsedArgs) -> Result<(), CliError> {
    let m: usize = p.required("rows").map_err(CliError::usage)?;
    let n: usize = p.required("cols").map_err(CliError::usage)?;
    let out = p.positional(0, "output path").map_err(CliError::usage)?.to_string();
    let seed: u64 = p.opt_parse("seed").map_err(CliError::usage)?.unwrap_or(42);
    let cond: Option<f64> = p.opt_parse("cond").map_err(CliError::usage)?;
    let a = match cond {
        Some(c) => gen::with_condition_number(m, n, c, seed),
        None => gen::uniform(m, n, seed),
    };
    save(&a, &out)?;
    println!("# wrote {m}x{n} matrix to {out}");
    Ok(())
}

/// Map a serve-client failure onto the CLI's exit-code/kind table. Remote
/// error frames carry the wire code, which doubles as the exit code.
fn client_error(e: ClientError) -> CliError {
    match e {
        ClientError::Io(err) => CliError::io(err.to_string()),
        ClientError::Protocol(err) => CliError::io(format!("protocol error: {err}")),
        ClientError::Unexpected(what) => CliError::io(format!("unexpected server reply: {what}")),
        ClientError::Remote { code, kind, message } => remote_error(code, &kind, &message),
    }
}

/// Map a remote error frame's wire code onto the CLI table. Shared between
/// whole-request failures ([`ClientError::Remote`]) and per-slot failures
/// of a bulk job ([`hjsvd::serve::RemoteFailure`]).
fn remote_error(code: u8, kind: &str, message: &str) -> CliError {
    let static_kind = match code {
        CODE_REJECTED => "rejected",
        CODE_DEADLINE => "timeout",
        CODE_CANCELLED => "cancelled",
        CODE_BAD_REQUEST => "bad-input",
        _ => "solve-fault",
    };
    // Exit codes below 2 collide with success/panic conventions.
    let code = if code >= 2 { code } else { 7 };
    CliError { code, kind: static_kind, message: format!("[{kind}] {message}") }
}

fn cmd_serve(p: &mut ParsedArgs) -> Result<(), CliError> {
    let addr = p.opt("addr").ok_or_else(|| CliError::usage("--addr is required"))?.to_string();
    let mut config = ServiceConfig::default();
    if let Some(w) = p.opt_parse::<usize>("workers").map_err(CliError::usage)? {
        config.workers = w.max(1);
    }
    if let Some(c) = p.opt_parse::<usize>("queue-cap").map_err(CliError::usage)? {
        config.queue_capacity = c.max(1);
    }
    if let Some(t) = p.opt_parse::<usize>("tenant-cap").map_err(CliError::usage)? {
        config.tenant_cap = t;
    }
    if let Some(a) = p.opt_parse::<usize>("max-attempts").map_err(CliError::usage)? {
        config.max_attempts = a.max(1);
    }
    let server = Server::bind(&addr, config).map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    let local = server.local_addr().map_err(|e| CliError::io(e.to_string()))?;
    // One parseable line so scripts (and CI) can discover the ephemeral port.
    println!("listening on {local}");
    std::io::stdout().flush().ok();
    let stats = server.run().map_err(|e| CliError::io(e.to_string()))?;
    println!("{}", stats.to_json());
    Ok(())
}

fn cmd_submit(p: &mut ParsedArgs) -> Result<(), CliError> {
    let path = p.positional(0, "input matrix path").map_err(CliError::usage)?.to_string();
    let addr = p.opt("addr").ok_or_else(|| CliError::usage("--addr is required"))?.to_string();
    let a = load(&path)?;
    let engine = engine_option(p)?;
    let ordering = ordering_option(p)?;
    let priority = match p.opt("priority") {
        None => Priority::Interactive,
        Some(v) => Priority::parse(v).ok_or_else(|| {
            CliError::usage(format!(
                "--priority: unknown class '{v}' (choose interactive or batch)"
            ))
        })?,
    };
    let deadline_ms: Option<u64> = p.opt_parse("deadline-ms").map_err(CliError::usage)?;
    let tenant = p.opt("tenant").unwrap_or("").to_string();
    let mut client = Client::connect(&addr).map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    let outcome = client
        .submit(&a, SubmitOptions { engine, ordering, priority, deadline_ms, tenant })
        .map_err(client_error)?;
    println!(
        "# {} singular values ({} sweeps, job {})",
        outcome.values.len(),
        outcome.sweeps,
        outcome.job
    );
    for v in &outcome.values {
        println!("{v}");
    }
    Ok(())
}

/// `hjsvd submit-batch`: ship a whole set of matrices to a running server
/// as ONE bulk job (protocol v3 `SubmitBatch`) and print every slot's
/// spectrum. Bulk jobs ride the batch priority class; per-slot failures
/// are printed in place and the first one's code becomes the exit code.
fn cmd_submit_batch(p: &mut ParsedArgs) -> Result<(), CliError> {
    let spec = p
        .positional(0, "batch input (directory or comma-separated CSV list)")
        .map_err(CliError::usage)?
        .to_string();
    let addr = p.opt("addr").ok_or_else(|| CliError::usage("--addr is required"))?.to_string();
    let deadline_ms: Option<u64> = p.opt_parse("deadline-ms").map_err(CliError::usage)?;
    let tenant = p.opt("tenant").unwrap_or("").to_string();
    let inputs = load_batch(&spec)?;
    let mats: Vec<Matrix> = inputs.iter().map(|(_, m)| m.clone()).collect();
    let mut client = Client::connect(&addr).map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    let outcome = client
        .submit_batch(
            &mats,
            SubmitOptions { priority: Priority::Batch, deadline_ms, tenant, ..Default::default() },
        )
        .map_err(client_error)?;
    println!("# job {}: {} problems", outcome.job, outcome.items.len());
    let mut first_err: Option<CliError> = None;
    for ((path, _), item) in inputs.iter().zip(outcome.items) {
        match item {
            Ok(spectrum) => {
                println!(
                    "# {path}: {} singular values ({} sweeps)",
                    spectrum.values.len(),
                    spectrum.sweeps
                );
                for v in &spectrum.values {
                    println!("{v}");
                }
            }
            Err(f) => {
                let ce = remote_error(f.code, &f.kind, &f.message);
                println!("# {path}: error[{}]: {}", ce.kind, ce.message);
                first_err.get_or_insert(ce);
            }
        }
    }
    first_err.map_or(Ok(()), Err)
}

fn cmd_shutdown(p: &mut ParsedArgs) -> Result<(), CliError> {
    let addr = p.opt("addr").ok_or_else(|| CliError::usage("--addr is required"))?.to_string();
    let drain_ms: u64 = p.opt_parse("drain-ms").map_err(CliError::usage)?.unwrap_or(5000);
    let mut client = Client::connect(&addr).map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    let json = client.shutdown(Duration::from_millis(drain_ms)).map_err(client_error)?;
    println!("{json}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parser_splits_positionals_flags_options() {
        let p = ParsedArgs::parse(&args(&[
            "svd",
            "input.csv",
            "--values-only",
            "--rank",
            "3",
            "--out",
            "pre",
        ]))
        .unwrap();
        assert_eq!(p.command, "svd");
        assert_eq!(p.positional(0, "x").unwrap(), "input.csv");
        assert!(p.flag("values-only"));
        assert_eq!(p.opt("rank"), Some("3"));
        assert_eq!(p.opt_parse::<usize>("rank").unwrap(), Some(3));
        assert_eq!(p.opt("out"), Some("pre"));
    }

    #[test]
    fn parser_rejects_missing_values() {
        assert!(ParsedArgs::parse(&args(&["svd", "--rank"])).is_err());
    }

    #[test]
    fn required_option_errors_are_descriptive() {
        let p = ParsedArgs::parse(&args(&["simulate"])).unwrap();
        let err = p.required::<usize>("rows").unwrap_err();
        assert!(err.contains("--rows"));
    }

    #[test]
    fn unknown_command_fails() {
        assert!(run(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn end_to_end_generate_svd_pca() {
        let dir = std::env::temp_dir().join("hjsvd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let matrix_path = dir.join("m.csv");
        let mp = matrix_path.to_str().unwrap().to_string();
        run(&args(&["generate", "--rows", "12", "--cols", "4", &mp, "--seed", "7"])).unwrap();
        run(&args(&["svd", &mp, "--values-only"])).unwrap();
        let prefix = dir.join("out").to_str().unwrap().to_string();
        run(&args(&["svd", &mp, "--out", &prefix, "--rank", "2"])).unwrap();
        let u = io::load_csv(format!("{prefix}_u.csv")).unwrap();
        assert_eq!(u.shape(), (12, 2));
        run(&args(&["pca", &mp, "--components", "2"])).unwrap();
        run(&args(&["simulate", "--rows", "64", "--cols", "32"])).unwrap();
        run(&args(&["resources"])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn svd_stats_export_writes_json() {
        let dir = std::env::temp_dir().join("hjsvd_cli_stats");
        std::fs::create_dir_all(&dir).unwrap();
        let mp = dir.join("m.csv").to_str().unwrap().to_string();
        run(&args(&["generate", "--rows", "10", "--cols", "5", &mp, "--seed", "3"])).unwrap();
        let sp = dir.join("stats.json").to_str().unwrap().to_string();
        run(&args(&["svd", &mp, "--stats", &sp])).unwrap();
        let full = std::fs::read_to_string(&sp).unwrap();
        assert!(full.trim_start().starts_with('{') && full.contains("\"rotations_applied\":"));
        run(&args(&["svd", &mp, "--values-only", "--stats", &sp])).unwrap();
        let vo = std::fs::read_to_string(&sp).unwrap();
        assert!(vo.contains("\"sweeps\":") && vo.contains("\"gram_bytes\":"));
        run(&args(&["svd", &mp, "--stats", "-"])).unwrap(); // stdout path
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn svd_engine_option_selects_engines_and_rejects_unknown() {
        let dir = std::env::temp_dir().join("hjsvd_cli_engine");
        std::fs::create_dir_all(&dir).unwrap();
        let mp = dir.join("m.csv").to_str().unwrap().to_string();
        run(&args(&["generate", "--rows", "12", "--cols", "5", &mp, "--seed", "9"])).unwrap();
        run(&args(&["svd", &mp, "--engine", "par"])).unwrap();
        run(&args(&["svd", &mp, "--values-only", "--engine", "blocked"])).unwrap();
        run(&args(&["svd", &mp, "--engine", "sequential"])).unwrap();
        let err = run(&args(&["svd", &mp, "--engine", "warp"])).unwrap_err();
        assert!(err.message.contains("choose seq, par, or blocked"), "{}", err.message);
        assert_eq!((err.code, err.kind), (2, "usage"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn svd_ordering_options_select_strategies_and_reject_unknown() {
        let dir = std::env::temp_dir().join("hjsvd_cli_ordering");
        std::fs::create_dir_all(&dir).unwrap();
        let mp = dir.join("m.csv").to_str().unwrap().to_string();
        run(&args(&["generate", "--rows", "12", "--cols", "5", &mp, "--seed", "9"])).unwrap();
        run(&args(&["svd", &mp, "--ordering", "greedy"])).unwrap();
        run(&args(&["svd", &mp, "--ordering", "presort", "--engine", "blocked"])).unwrap();
        run(&args(&["svd", &mp, "--values-only", "--ordering", "cyclic", "--threshold-schedule"]))
            .unwrap();
        run(&args(&["svd", &mp, "--ordering", "row"])).unwrap();
        // Row-cyclic on a grouped engine is an invalid configuration.
        let e = run(&args(&["svd", &mp, "--ordering", "row", "--engine", "par"])).unwrap_err();
        assert_eq!((e.code, e.kind), (5, "bad-config"));
        let e = run(&args(&["svd", &mp, "--ordering", "zigzag"])).unwrap_err();
        assert_eq!((e.code, e.kind), (2, "usage"));
        assert!(e.message.contains("choose cyclic, row, greedy, or presort"), "{}", e.message);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eigh_rejects_presort_ordering_with_bad_config() {
        let dir = std::env::temp_dir().join("hjsvd_cli_eigh_ordering");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.csv");
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        io::save_csv(&s, &path).unwrap();
        let sp = path.to_str().unwrap().to_string();
        run(&args(&["eigh", &sp, "--ordering", "greedy"])).unwrap();
        let e = run(&args(&["eigh", &sp, "--ordering", "presort"])).unwrap_err();
        assert_eq!((e.code, e.kind), (5, "bad-config"));
        assert!(e.message.contains("presort"), "{}", e.message);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_paths_map_to_distinct_exit_codes() {
        let dir = std::env::temp_dir().join("hjsvd_cli_codes");
        std::fs::create_dir_all(&dir).unwrap();
        let mp = dir.join("m.csv").to_str().unwrap().to_string();
        run(&args(&["generate", "--rows", "10", "--cols", "4", &mp, "--seed", "11"])).unwrap();

        // usage: unknown command.
        let e = run(&args(&["frobnicate"])).unwrap_err();
        assert_eq!((e.code, e.kind), (2, "usage"));
        // io: nonexistent input file.
        let e = run(&args(&["svd", "/nonexistent/m.csv"])).unwrap_err();
        assert_eq!((e.code, e.kind), (3, "io"));
        // bad-input: NaN entry in the matrix.
        let bad = dir.join("bad.csv").to_str().unwrap().to_string();
        std::fs::write(&bad, "1.0,2.0\nNaN,4.0\n").unwrap();
        let e = run(&args(&["svd", &bad])).unwrap_err();
        assert_eq!((e.code, e.kind), (4, "bad-input"));
        // timeout: an already-expired deadline aborts before sweep one.
        let e = run(&args(&["svd", &mp, "--timeout-ms", "0"])).unwrap_err();
        assert_eq!((e.code, e.kind), (8, "timeout"));
        assert!(e.message.contains("deadline"), "{}", e.message);
        // A generous timeout solves normally.
        run(&args(&["svd", &mp, "--timeout-ms", "60000"])).unwrap();
        run(&args(&["svd", &mp, "--values-only", "--timeout-ms", "60000"])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn svd_trace_writes_valid_jsonl() {
        let dir = std::env::temp_dir().join("hjsvd_cli_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let mp = dir.join("m.csv").to_str().unwrap().to_string();
        run(&args(&["generate", "--rows", "14", "--cols", "6", &mp, "--seed", "5"])).unwrap();
        let tp = dir.join("trace.jsonl").to_str().unwrap().to_string();

        // Default level (sweep): starts and ends pair up, every line is a
        // one-object JSON record naming its event.
        run(&args(&["svd", &mp, "--trace", &tp])).unwrap();
        let text = std::fs::read_to_string(&tp).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "not JSONL: {line}");
            assert!(line.contains("\"event\":\""), "missing event key: {line}");
        }
        let starts = lines.iter().filter(|l| l.contains("\"event\":\"sweep_start\"")).count();
        let ends = lines.iter().filter(|l| l.contains("\"event\":\"sweep_end\"")).count();
        assert!(starts > 0 && starts == ends, "unbalanced sweeps: {starts} vs {ends}");
        assert!(!text.contains("rotation_applied"), "sweep level must not emit rotations");

        // Rotation level adds per-rotation events; the grouped engines also
        // report their round dispatches. Values-only path.
        run(&args(&[
            "svd",
            &mp,
            "--values-only",
            "--engine",
            "blocked",
            "--trace",
            &tp,
            "--trace-level",
            "rotation",
        ]))
        .unwrap();
        let rot = std::fs::read_to_string(&tp).unwrap();
        assert!(rot.contains("\"event\":\"rotation_applied\""));
        assert!(rot.contains("\"event\":\"pair_group_dispatched\""));

        // '-' streams to stdout without error.
        run(&args(&["svd", &mp, "--values-only", "--trace", "-"])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_usage_errors_are_code_2() {
        let dir = std::env::temp_dir().join("hjsvd_cli_trace_usage");
        std::fs::create_dir_all(&dir).unwrap();
        let mp = dir.join("m.csv").to_str().unwrap().to_string();
        run(&args(&["generate", "--rows", "8", "--cols", "4", &mp, "--seed", "2"])).unwrap();
        // --trace-level without --trace.
        let e = run(&args(&["svd", &mp, "--trace-level", "rotation"])).unwrap_err();
        assert_eq!((e.code, e.kind), (2, "usage"));
        assert!(e.message.contains("--trace"), "{}", e.message);
        // Unknown level.
        let tp = dir.join("t.jsonl").to_str().unwrap().to_string();
        let e = run(&args(&["svd", &mp, "--trace", &tp, "--trace-level", "verbose"])).unwrap_err();
        assert_eq!((e.code, e.kind), (2, "usage"));
        assert!(e.message.contains("choose off, sweep, group, or rotation"), "{}", e.message);
        // Unwritable trace path is an io error.
        let e = run(&args(&["svd", &mp, "--trace", "/nonexistent/dir/t.jsonl"])).unwrap_err();
        assert_eq!((e.code, e.kind), (3, "io"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_commands_validate_usage_and_connectivity() {
        // Missing --addr everywhere.
        let e = run(&args(&["serve"])).unwrap_err();
        assert_eq!((e.code, e.kind), (2, "usage"));
        let e = run(&args(&["shutdown"])).unwrap_err();
        assert_eq!((e.code, e.kind), (2, "usage"));
        let dir = std::env::temp_dir().join("hjsvd_cli_submit_usage");
        std::fs::create_dir_all(&dir).unwrap();
        let mp = dir.join("m.csv").to_str().unwrap().to_string();
        run(&args(&["generate", "--rows", "6", "--cols", "3", &mp, "--seed", "1"])).unwrap();
        let e = run(&args(&["submit", &mp])).unwrap_err();
        assert_eq!((e.code, e.kind), (2, "usage"));
        // Bad priority spelling.
        let e = run(&args(&["submit", &mp, "--addr", "127.0.0.1:1", "--priority", "urgent"]))
            .unwrap_err();
        assert_eq!((e.code, e.kind), (2, "usage"));
        assert!(e.message.contains("interactive or batch"), "{}", e.message);
        // A dead address is an io error, not a hang: bind an ephemeral port
        // and drop the listener so connecting to it is refused.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let e = run(&args(&["submit", &mp, "--addr", &dead])).unwrap_err();
        assert_eq!((e.code, e.kind), (3, "io"));
        let e = run(&args(&["shutdown", "--addr", &dead])).unwrap_err();
        assert_eq!((e.code, e.kind), (3, "io"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn client_error_mapping_covers_remote_codes() {
        let e = client_error(ClientError::Remote {
            code: CODE_REJECTED,
            kind: "queue-full".into(),
            message: "full".into(),
        });
        assert_eq!((e.code, e.kind), (10, "rejected"));
        assert!(e.message.contains("[queue-full]"));
        let e = client_error(ClientError::Remote {
            code: CODE_DEADLINE,
            kind: "deadline".into(),
            message: "late".into(),
        });
        assert_eq!((e.code, e.kind), (8, "timeout"));
        let e = client_error(ClientError::Remote {
            code: CODE_CANCELLED,
            kind: "cancelled".into(),
            message: "".into(),
        });
        assert_eq!((e.code, e.kind), (9, "cancelled"));
        let e =
            client_error(ClientError::Remote { code: 0, kind: "weird".into(), message: "".into() });
        assert_eq!(e.code, 7, "codes below 2 are remapped");
        let e = client_error(ClientError::Unexpected("x"));
        assert_eq!((e.code, e.kind), (3, "io"));
    }

    #[test]
    fn svd_batch_solves_directories_and_csv_lists() {
        let dir = std::env::temp_dir().join("hjsvd_cli_batch");
        std::fs::remove_dir_all(&dir).ok();
        let mats = dir.join("mats");
        std::fs::create_dir_all(&mats).unwrap();
        let mut paths = Vec::new();
        for k in 0..3 {
            let mp = mats.join(format!("m{k}.csv")).to_str().unwrap().to_string();
            let seed = (30 + k).to_string();
            run(&args(&["generate", "--rows", "16", "--cols", "8", &mp, "--seed", &seed])).unwrap();
            paths.push(mp);
        }
        // A stray non-CSV file in the directory is ignored.
        std::fs::write(mats.join("notes.txt"), "not a matrix\n").unwrap();

        // Directory input with per-problem stats as JSON Lines; a uniform
        // n=8 batch under default options rides the SoA engine.
        let sp = dir.join("stats.jsonl").to_str().unwrap().to_string();
        run(&args(&["svd", "--batch", mats.to_str().unwrap(), "--stats", &sp])).unwrap();
        let text = std::fs::read_to_string(&sp).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one stats record per problem: {text}");
        for line in &lines {
            assert!(line.starts_with('{'), "not JSONL: {line}");
            assert!(line.contains("\"engine\":\"batch-soa\""), "{line}");
        }

        // Comma-separated list input; a non-default engine opts out of the
        // SoA dispatch and the stats name the engine that actually ran.
        run(&args(&["svd", "--batch", &paths.join(","), "--engine", "blocked", "--stats", &sp]))
            .unwrap();
        let looped = std::fs::read_to_string(&sp).unwrap();
        assert_eq!(looped.lines().count(), 3);
        assert!(looped.contains("\"engine\":\"blocked\""), "{looped}");

        // A poisoned slot fails alone with the bad-input exit code while
        // every other slot still solves (and still reports stats).
        let bad = mats.join("a_bad.csv").to_str().unwrap().to_string();
        std::fs::write(&bad, "1.0,2.0\nNaN,4.0\n").unwrap();
        let e =
            run(&args(&["svd", "--batch", mats.to_str().unwrap(), "--stats", &sp])).unwrap_err();
        assert_eq!((e.code, e.kind), (4, "bad-input"));
        assert_eq!(std::fs::read_to_string(&sp).unwrap().lines().count(), 3);

        // Empty input specs are usage errors.
        let e = run(&args(&["svd", "--batch", ","])).unwrap_err();
        assert_eq!((e.code, e.kind), (2, "usage"));
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let e = run(&args(&["svd", "--batch", empty.to_str().unwrap()])).unwrap_err();
        assert_eq!((e.code, e.kind), (2, "usage"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn submit_batch_validates_usage_and_connectivity() {
        let dir = std::env::temp_dir().join("hjsvd_cli_submit_batch_usage");
        std::fs::create_dir_all(&dir).unwrap();
        let mp = dir.join("m.csv").to_str().unwrap().to_string();
        run(&args(&["generate", "--rows", "6", "--cols", "3", &mp, "--seed", "1"])).unwrap();
        // Missing --addr.
        let e = run(&args(&["submit-batch", &mp])).unwrap_err();
        assert_eq!((e.code, e.kind), (2, "usage"));
        // Missing input spec.
        let e = run(&args(&["submit-batch", "--addr", "127.0.0.1:1"])).unwrap_err();
        assert_eq!((e.code, e.kind), (2, "usage"));
        // A dead address is an io error, not a hang.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let e = run(&args(&["submit-batch", &mp, "--addr", &dead])).unwrap_err();
        assert_eq!((e.code, e.kind), (3, "io"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eigh_command_runs() {
        let dir = std::env::temp_dir().join("hjsvd_cli_eigh");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.csv");
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        io::save_csv(&s, &path).unwrap();
        run(&args(&["eigh", path.to_str().unwrap()])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
