//! # hjsvd — Hestenes-Jacobi Singular Value Decomposition
//!
//! A full Rust reproduction of *"An FPGA Implementation of the
//! Hestenes-Jacobi Algorithm for Singular Value Decomposition"*
//! (Wang & Zambreno, IPDPS workshops, 2014): the modified Gram-updating
//! Hestenes-Jacobi algorithm, a cycle-level simulator of the paper's
//! hardware architecture, the software baselines it compares against, and a
//! benchmark harness that regenerates every table and figure in the paper's
//! evaluation.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`matrix`] — dense matrix substrate (storage, generators, norms).
//! * [`core`] — the Hestenes-Jacobi algorithm itself.
//! * [`baselines`] — Householder/QR, two-sided Jacobi, naive Hestenes,
//!   GPU-model and fixed-point/CORDIC comparators.
//! * [`fpsim`] — FPGA component models (pipelined operators, FIFOs, BRAM,
//!   resource accounting).
//! * [`arch`] — the paper's architecture assembled from those components,
//!   with timing and resource reports.
//! * [`serve`] — the multi-tenant solve service: bounded job queue,
//!   deadline-aware scheduler, worker pool, and the TCP wire protocol
//!   behind `hjsvd serve` / `hjsvd submit`.
//!
//! ## Quickstart
//!
//! ```
//! use hjsvd::core::{HestenesSvd, SvdOptions};
//! use hjsvd::matrix::gen;
//!
//! let a = gen::uniform(64, 16, 42);
//! let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
//! assert_eq!(svd.singular_values.len(), 16);
//! // Singular values come out sorted descending:
//! assert!(svd.singular_values.windows(2).all(|w| w[0] >= w[1]));
//! ```

pub use hj_arch as arch;
pub use hj_baselines as baselines;
pub use hj_core as core;
pub use hj_fpsim as fpsim;
pub use hj_matrix as matrix;
pub use hj_serve as serve;

/// The names most programs need, importable in one line:
/// `use hjsvd::prelude::*;`
pub mod prelude {
    pub use hj_arch::{ArchConfig, HestenesJacobiArch};
    pub use hj_core::{
        Convergence, HestenesSvd, Ordering, Pca, RecoveryPolicy, SolveBudget, Svd, SvdError,
        SvdOptions,
    };
    pub use hj_matrix::{gen, norms, Matrix, PackedSymmetric};
    pub use hj_serve::{JobSpec, ServiceConfig, SolveService};
}
