//! The user-facing SVD drivers.
//!
//! [`HestenesSvd`] runs the modified Hestenes-Jacobi algorithm end to end:
//! Gram initialization (the preprocessor's job), iterated sweeps with the
//! chosen ordering and convergence rule, and the final square-root /
//! sort / normalization stage that turns the orthogonalized system into
//! `A = U Σ Vᵀ`.

use crate::convergence::{Convergence, SweepRecord, MAX_SWEEP_CAP};
use crate::engine::{
    Blocked, EngineKind, MonitoredRun, PairGuard, RotationTarget, Sequential, SolveDriver,
    SolveMonitor, SweepState,
};
use crate::gram::GramState;
use crate::ordering::{Ordering, SweepSchedule, ThresholdSchedule};
use crate::parallel::{Parallel, SweepWorkspace};
use crate::recovery::{HealthCheck, RecoveryAction, RecoveryContext, RecoveryPolicy, SolveBudget};
use crate::stats::SolveStats;
use crate::trace::{emit_to, TraceEvent, TraceLevel, TraceSink};
use crate::SvdError;
use hj_matrix::{ops, Matrix};

/// Relative tolerance for the wide-matrix truncated-tail check: the
/// discarded spectrum mass (sum of discarded `σ²`) must stay below this
/// fraction of `trace(D) = ‖A‖_F²`. Converged solves leave only Gram-noise
/// dust in the tail (≈ `n·ε·trace ≈ 1e-14·trace`), while an unconverged
/// spectrum parks O(1) fractions of the mass there — `1e-12` separates the
/// two regimes by orders of magnitude on both sides.
pub(crate) const WIDE_TAIL_TOL: f64 = 1e-12;

/// Guarded-numerics safe window: inputs whose largest-entry binary exponent
/// `e` satisfies `|e| ≤ SAFE_EXP` are solved as-is, so ordinary inputs
/// compute the exact same bits as before the guard existed. Outside the
/// window, the input is pre-multiplied by the power of two `2^-e` — an
/// exact operation, exactly undone on the singular values at output.
///
/// The bound is set by the *fourth* power of the input scale, not the
/// second: Gram entries are squares of the input (`2^2e`), and the
/// off-diagonal Frobenius accumulation squares those again (`2^4e`), so
/// `4·e` plus dimension headroom must stay under the f64 exponent limit of
/// 1024. `e = 250` (inputs up to ~1e75) leaves two decades of margin.
const SAFE_EXP: i32 = 250;

/// Above this magnitude the scale factor `2^k` itself leaves the normal
/// range, so the scaling is applied in two exact half-steps.
const EXP2_STEP_LIMIT: i32 = 900;

/// The injector slot threaded through the guarded solve. Without the
/// `fault-injection` feature the alias degenerates to an uninhabited option,
/// so the production call sites pass `None` and the whole hook folds away.
#[cfg(feature = "fault-injection")]
type InjectorSlot<'a> = Option<&'a mut dyn crate::inject::FaultInjector>;
#[cfg(not(feature = "fault-injection"))]
type InjectorSlot<'a> = Option<std::convert::Infallible>;

/// Binary exponent of `max_abs` (0 for zero or non-finite input).
fn max_exponent(max_abs: f64) -> i32 {
    if max_abs > 0.0 && max_abs.is_finite() {
        max_abs.log2().floor() as i32
    } else {
        0
    }
}

/// Pre-scaling exponent for an input whose largest entry has binary
/// exponent `e`: 0 inside the safe window (bit-preserving fast path),
/// `-e` outside it (normalizing the largest entry to `[1, 2)`).
pub(crate) fn prescale_exponent(max_abs: f64) -> i32 {
    let e = max_exponent(max_abs);
    if e.abs() <= SAFE_EXP {
        0
    } else {
        -e
    }
}

/// Unconditional normalizing exponent (the rescale-and-restart recovery
/// action): always bring the largest entry to `[1, 2)` for maximum headroom.
fn forced_exponent(max_abs: f64) -> i32 {
    -max_exponent(max_abs)
}

/// Multiply every entry by `2^k`, exactly (split into two half-steps when
/// `2^k` itself would be subnormal or infinite).
pub(crate) fn apply_exp2(m: &mut Matrix, k: i32) {
    if k == 0 {
        return;
    }
    if k.abs() > EXP2_STEP_LIMIT {
        let half = k / 2;
        m.scale_in_place(2.0f64.powi(half));
        m.scale_in_place(2.0f64.powi(k - half));
    } else {
        m.scale_in_place(2.0f64.powi(k));
    }
}

/// Undo the pre-scaling on computed singular values: `σ ← σ·2^-k` (two
/// exact half-steps when needed, mirroring [`apply_exp2`]).
pub(crate) fn unscale_values(values: &mut [f64], k: i32) {
    if k == 0 {
        return;
    }
    let mut steps = [0i32; 2];
    if k.abs() > EXP2_STEP_LIMIT {
        steps = [-(k / 2), -(k - k / 2)];
    } else {
        steps[0] = -k;
    }
    for s in steps {
        if s != 0 {
            let f = 2.0f64.powi(s);
            for v in values.iter_mut() {
                *v *= f;
            }
        }
    }
}

/// Configuration for a Hestenes-Jacobi decomposition.
///
/// All fields have useful defaults; override selectively with struct-update
/// syntax:
///
/// ```
/// use hj_core::{EngineKind, HestenesSvd, SvdOptions, TraceLevel};
/// use hj_matrix::gen;
///
/// let options = SvdOptions {
///     engine: EngineKind::Blocked,
///     trace: TraceLevel::Sweep,
///     ..Default::default()
/// };
/// let svd = HestenesSvd::new(options).decompose(&gen::uniform(30, 8, 1)).unwrap();
/// assert_eq!(svd.stats.engine, "blocked");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvdOptions {
    /// Stopping rule. Default: scale-relative covariance threshold.
    pub convergence: Convergence,
    /// Hard upper bound on sweeps regardless of the stopping rule.
    /// Default: [`MAX_SWEEP_CAP`].
    pub max_sweeps: usize,
    /// Pair visiting order (see [`crate::ordering`] for the strategy
    /// catalogue). Default: round-robin (the paper's cyclic order,
    /// bit-identical to the pre-subsystem schedule).
    pub ordering: Ordering,
    /// Optional per-sweep rotation-threshold ramp, composable with any
    /// ordering. `None` (the default) keeps the standard fixed pair guard —
    /// and the bit-identical default solve path.
    pub threshold: Option<ThresholdSchedule>,
    /// Sweep engine. [`EngineKind::Parallel`] and [`EngineKind::Blocked`]
    /// require an ordering with disjoint rounds (any but
    /// [`Ordering::RowCyclic`]). Default: sequential (faithful to
    /// Algorithm 1's data flow).
    pub engine: EngineKind,
    /// Event granularity for the `*_traced` entry points
    /// ([`HestenesSvd::decompose_traced`],
    /// [`HestenesSvd::singular_values_traced`]). Ignored — and costless — on
    /// the untraced entry points, which never construct events regardless of
    /// this setting. Default: [`TraceLevel::Off`] (a traced call promotes
    /// `Off` to [`TraceLevel::Sweep`] so an explicitly-passed sink is never
    /// silently ignored).
    pub trace: TraceLevel,
}

impl Default for SvdOptions {
    fn default() -> Self {
        SvdOptions {
            convergence: Convergence::default(),
            max_sweeps: MAX_SWEEP_CAP,
            ordering: Ordering::RoundRobin,
            threshold: None,
            engine: EngineKind::Sequential,
            trace: TraceLevel::Off,
        }
    }
}

impl SvdOptions {
    /// The paper's operating point: exactly 6 sweeps, cyclic order.
    pub fn paper() -> Self {
        SvdOptions {
            convergence: Convergence::FixedSweeps(6),
            max_sweeps: 6,
            ordering: Ordering::RoundRobin,
            threshold: None,
            engine: EngineKind::Sequential,
            trace: TraceLevel::Off,
        }
    }

    /// The level a `*_traced` entry point runs at: the configured level,
    /// with [`TraceLevel::Off`] promoted to [`TraceLevel::Sweep`].
    fn effective_trace_level(&self) -> TraceLevel {
        if self.trace == TraceLevel::Off {
            TraceLevel::Sweep
        } else {
            self.trace
        }
    }
}

/// A computed thin SVD `A ≈ U Σ Vᵀ` with diagnostics.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × k` with `k = min(m, n)`. Columns whose
    /// singular value is (numerically) zero are zero columns — see
    /// [`Svd::rank`].
    pub u: Matrix,
    /// Singular values, length `k`, sorted descending, non-negative.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `n × k`.
    pub v: Matrix,
    /// Number of sweeps executed.
    pub sweeps: usize,
    /// Per-sweep convergence measurements.
    pub history: Vec<SweepRecord>,
    /// Solve-level observability (timings, allocations, Gram traffic).
    pub stats: SolveStats,
}

impl Svd {
    /// Numerical rank: number of singular values above
    /// `tol · max(m, n) · σ_max` (the LAPACK default rank rule).
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        let (m, _) = self.u.shape();
        let n = self.v.rows();
        let cutoff = tol * m.max(n) as f64 * smax;
        self.singular_values.iter().take_while(|&&s| s > cutoff).count()
    }

    /// Reconstruct the rank-`r` truncation `A_r = U_r Σ_r V_rᵀ` — the
    /// dimensionality-reduction primitive behind the paper's PCA motivation.
    pub fn truncated(&self, r: usize) -> Matrix {
        let r = r.min(self.singular_values.len());
        let (m, _) = self.u.shape();
        let n = self.v.rows();
        let mut out = Matrix::zeros(m, n);
        for t in 0..r {
            let s = self.singular_values[t];
            if s == 0.0 {
                break;
            }
            let ut = self.u.col(t);
            for c in 0..n {
                let w = s * self.v.get(c, t);
                ops::axpy(w, ut, out.col_mut(c));
            }
        }
        out
    }
}

/// Result of the values-only driver.
#[derive(Debug, Clone)]
pub struct SingularValues {
    /// Singular values, length `min(m, n)`, sorted descending.
    pub values: Vec<f64>,
    /// Number of sweeps executed.
    pub sweeps: usize,
    /// Per-sweep convergence measurements.
    pub history: Vec<SweepRecord>,
    /// Solve-level observability (timings, allocations, Gram traffic).
    pub stats: SolveStats,
}

/// The Hestenes-Jacobi SVD solver.
///
/// ```
/// use hj_core::{HestenesSvd, SvdOptions};
/// use hj_matrix::{gen, norms};
///
/// let a = gen::uniform(40, 10, 7);
/// let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
/// let err = norms::reconstruction_error(&a, &svd.u, &svd.singular_values, &svd.v);
/// assert!(err < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HestenesSvd {
    options: SvdOptions,
    budget: SolveBudget,
    policy: RecoveryPolicy,
    health: HealthCheck,
}

impl HestenesSvd {
    /// Create a solver with the given options, an unlimited
    /// [`SolveBudget`], and the default [`RecoveryPolicy`] / [`HealthCheck`].
    pub fn new(options: SvdOptions) -> Self {
        HestenesSvd {
            options,
            budget: SolveBudget::unlimited(),
            policy: RecoveryPolicy::default(),
            health: HealthCheck::default(),
        }
    }

    /// The active options.
    pub fn options(&self) -> &SvdOptions {
        &self.options
    }

    /// The active solve budget (the batch engine checks it at shared sweep
    /// boundaries).
    pub(crate) fn budget(&self) -> &SolveBudget {
        &self.budget
    }

    /// The active health check (the batch engine runs its per-lane analogue
    /// with the same thresholds).
    pub(crate) fn health(&self) -> &HealthCheck {
        &self.health
    }

    /// Bound worst-case latency: the budget's deadline/cancellation flag is
    /// checked at every sweep boundary of every solve this solver runs.
    pub fn with_budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replace the recovery policy (e.g. [`RecoveryPolicy::abort_only`] to
    /// fail fast instead of self-healing).
    pub fn with_recovery_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the per-sweep health check (e.g. [`HealthCheck::disabled`]
    /// to run the unguarded PR-2 pipeline).
    pub fn with_health_check(mut self, health: HealthCheck) -> Self {
        self.health = health;
        self
    }

    pub(crate) fn validate(&self, a: &Matrix) -> Result<(), SvdError> {
        if a.is_empty() {
            return Err(SvdError::EmptyInput);
        }
        if !a.as_slice().iter().all(|v| v.is_finite()) {
            return Err(SvdError::NonFiniteInput);
        }
        if self.options.engine != EngineKind::Sequential
            && self.options.ordering == Ordering::RowCyclic
        {
            // Parallel/blocked engines consume rounds of disjoint pairs;
            // row-cyclic's one-pair rounds defeat them. Every other ordering
            // (cyclic, greedy, presort) produces legal disjoint rounds.
            return Err(SvdError::EngineNeedsRoundRobin);
        }
        if self.options.max_sweeps == 0 {
            return Err(SvdError::ZeroSweepBudget);
        }
        Ok(())
    }

    /// Compute only the singular values — the paper-faithful mode.
    ///
    /// Column data are read once (to form `D = AᵀA`); every subsequent sweep
    /// operates on `D` alone, exactly as the hardware does after
    /// reconfiguring the preprocessor into update kernels.
    ///
    /// ```
    /// use hj_core::{HestenesSvd, SvdOptions};
    /// use hj_matrix::gen;
    ///
    /// let a = gen::with_singular_values(30, 3, &[4.0, 2.0, 1.0], 5);
    /// let sv = HestenesSvd::new(SvdOptions::paper()).singular_values(&a).unwrap();
    /// assert_eq!(sv.sweeps, 6);                       // the paper's fixed budget
    /// assert!((sv.values[0] - 4.0).abs() < 1e-9);
    /// ```
    pub fn singular_values(&self, a: &Matrix) -> Result<SingularValues, SvdError> {
        let mut ws = SweepWorkspace::new();
        self.singular_values_with_workspace(a, &mut ws)
    }

    /// [`Self::singular_values`] over caller-owned scratch. Reusing a warm
    /// workspace across solves (e.g. from a [`crate::batch::WorkspacePool`])
    /// skips the warm-up allocations of the parallel and blocked engines;
    /// results are bit-identical either way.
    pub fn singular_values_with_workspace(
        &self,
        a: &Matrix,
        ws: &mut SweepWorkspace,
    ) -> Result<SingularValues, SvdError> {
        self.validate(a)?;
        let solved = self.solve_guarded(a, ws, false, None, None)?;
        self.finish_values(a, solved)
    }

    /// [`Self::singular_values`] with every solve event streamed into
    /// `sink` at the granularity of [`SvdOptions::trace`] ([`TraceLevel::Off`]
    /// is promoted to [`TraceLevel::Sweep`]). Results are bit-identical to
    /// the untraced call — events observe, never influence.
    ///
    /// ```
    /// use hj_core::{HestenesSvd, RingBufferSink, SvdOptions};
    /// use hj_matrix::gen;
    ///
    /// let a = gen::uniform(40, 10, 3);
    /// let mut sink = RingBufferSink::new(1024);
    /// let solver = HestenesSvd::new(SvdOptions::default());
    /// let sv = solver.singular_values_traced(&a, &mut sink).unwrap();
    /// let untraced = solver.singular_values(&a).unwrap();
    /// assert_eq!(sv.values, untraced.values);
    /// assert!(sink.recorded() >= 2 * sv.sweeps, "start + end per sweep");
    /// ```
    pub fn singular_values_traced(
        &self,
        a: &Matrix,
        sink: &mut dyn TraceSink,
    ) -> Result<SingularValues, SvdError> {
        self.validate(a)?;
        let mut ws = SweepWorkspace::new();
        let solved = self.solve_guarded(a, &mut ws, false, None, Some(sink))?;
        self.finish_values(a, solved)
    }

    /// [`Self::singular_values`] with a fault injector attached (robustness
    /// test harness only — the method does not exist in production builds).
    #[cfg(feature = "fault-injection")]
    pub fn singular_values_injected(
        &self,
        a: &Matrix,
        ws: &mut SweepWorkspace,
        injector: &mut dyn crate::inject::FaultInjector,
    ) -> Result<SingularValues, SvdError> {
        self.validate(a)?;
        let solved = self.solve_guarded(a, ws, false, Some(injector), None)?;
        self.finish_values(a, solved)
    }

    /// Run the guarded solve loop: pre-scale out-of-window inputs, run the
    /// monitored driver on the configured engine, and — when the monitor
    /// detects a [`crate::recovery::Fault`] — apply the recovery policy
    /// (rescale-and-restart / engine fallback / budget escalation) until the
    /// solve succeeds or the policy aborts.
    ///
    /// Every restart rebuilds `D` (and `B`, `V` in full mode) from the
    /// pristine input `a`, so no corrupted intermediate state survives a
    /// recovery. The final stats carry the last attempt's counters plus the
    /// cumulative `faults`/`recoveries`/`prescale_exp` accounting.
    #[cfg_attr(not(feature = "fault-injection"), allow(unused_variables))]
    fn solve_guarded<'a>(
        &self,
        a: &Matrix,
        ws: &mut SweepWorkspace,
        full: bool,
        injector: InjectorSlot<'a>,
        trace: Option<&'a mut dyn TraceSink>,
    ) -> Result<GuardedSolve, SvdError> {
        let n = a.cols();
        // One monitor serves every attempt (run_monitored resets its own
        // per-attempt detector state); the injector moves in once and keeps
        // its one-shot bookkeeping across restarts, and the trace sink sees
        // every attempt's events plus the recovery decisions between them.
        let mut monitor = SolveMonitor::new(self.budget.clone(), self.health);
        if let Some(sink) = trace {
            monitor = monitor.with_trace(sink, self.options.effective_trace_level());
        }
        #[cfg(feature = "fault-injection")]
        {
            monitor.injector = injector;
        }
        let max_abs = a.max_abs();
        let mut exp = prescale_exponent(max_abs);
        let mut engine = self.options.engine;
        let mut ordering = self.options.ordering;
        let mut max_sweeps = self.options.max_sweeps.min(MAX_SWEEP_CAP);
        let mut rescaled = exp != 0;
        let mut escalated = false;
        let mut ordering_fell_back = false;
        let mut recoveries = 0usize;
        let mut total_faults = 0usize;
        let mut cumulative_sweeps = 0usize;
        // Strategy + plan scratch pooled in the workspace: repeated solves
        // over a warm workspace replan without reallocating.
        let mut plan_buffers = ws.take_plan_buffers();
        loop {
            let presort = ordering == Ordering::ColumnNormPresort;
            // Build this attempt's working state from the pristine input.
            let (mut gram, mut b, mut v) = if full {
                let mut b = a.clone();
                apply_exp2(&mut b, exp);
                if presort {
                    // de Rijk presort: permute the working columns into
                    // descending-norm order and fold the permutation into
                    // V's starting value (B = A·V holds from sweep 0, so no
                    // undo pass is needed on output).
                    let perm = presort_permutation(&b);
                    let b = permuted_columns(&b, &perm);
                    let mut v = Matrix::zeros(n, n);
                    for (t, &c) in perm.iter().enumerate() {
                        v.set(c, t, 1.0);
                    }
                    let gram = GramState::from_matrix(&b);
                    (gram, Some(b), Some(v))
                } else {
                    let gram = GramState::from_matrix(&b);
                    (gram, Some(b), Some(Matrix::identity(n)))
                }
            } else if presort {
                // Values-only: the spectrum is permutation-invariant, so the
                // presorted Gram needs no bookkeeping at all.
                let mut scaled = a.clone();
                apply_exp2(&mut scaled, exp);
                let perm = presort_permutation(&scaled);
                (GramState::from_matrix(&permuted_columns(&scaled, &perm)), None, None)
            } else if exp == 0 {
                // Values-only fast path: D is built straight off the caller's
                // matrix, no clone.
                (GramState::from_matrix(a), None, None)
            } else {
                let mut scaled = a.clone();
                apply_exp2(&mut scaled, exp);
                (GramState::from_matrix(&scaled), None, None)
            };
            let driver = SolveDriver { convergence: self.options.convergence, max_sweeps };
            let target = match (b.as_mut(), v.as_mut()) {
                (Some(b), Some(v)) => RotationTarget::full(b, v),
                _ => RotationTarget::gram_only(),
            };
            let mut state = SweepState { gram: &mut gram, target, guard: PairGuard::default() };
            let (strategy, plan) = plan_buffers.schedule_parts(ordering);
            let mut schedule = SweepSchedule { strategy, plan, threshold: self.options.threshold };
            let run: MonitoredRun = match engine {
                EngineKind::Sequential => {
                    driver.run_monitored(&mut Sequential, &mut state, &mut schedule, &mut monitor)
                }
                EngineKind::Parallel => driver.run_monitored(
                    &mut Parallel::new(ws),
                    &mut state,
                    &mut schedule,
                    &mut monitor,
                ),
                EngineKind::Blocked => driver.run_monitored(
                    &mut Blocked::for_dim(ws, n),
                    &mut state,
                    &mut schedule,
                    &mut monitor,
                ),
            };
            cumulative_sweeps += run.stats.sweeps;
            total_faults += run.stats.faults;
            let Some(fault) = run.fault else {
                let mut stats = run.stats;
                stats.faults = total_faults;
                stats.recoveries = recoveries;
                stats.prescale_exp = exp;
                ws.put_plan_buffers(plan_buffers);
                return Ok(GuardedSolve {
                    gram,
                    b,
                    v,
                    history: run.history,
                    stats,
                    scale_exp: exp,
                });
            };
            let ctx = RecoveryContext {
                engine,
                rescaled,
                escalated,
                can_escalate: max_sweeps < MAX_SWEEP_CAP,
                adaptive_ordering: ordering.adaptive(),
                ordering_fell_back,
                recoveries,
            };
            let action = self.policy.action_for(&fault, &ctx);
            emit_to(
                &mut monitor.trace,
                monitor.trace_level,
                TraceEvent::RecoveryTriggered {
                    sweep: fault.sweep(),
                    fault: fault.kind(),
                    action: action.name(),
                    recoveries,
                },
            );
            match action {
                RecoveryAction::Abort => {
                    ws.put_plan_buffers(plan_buffers);
                    return Err(SvdError::SolveFault {
                        fault,
                        sweeps_completed: cumulative_sweeps,
                        recoveries,
                    });
                }
                RecoveryAction::RescaleRestart => {
                    exp = forced_exponent(max_abs);
                    rescaled = true;
                }
                RecoveryAction::FallBackToSequential => engine = EngineKind::Sequential,
                RecoveryAction::EscalateBudget => {
                    max_sweeps = (max_sweeps * 2).min(MAX_SWEEP_CAP);
                    escalated = true;
                }
                RecoveryAction::FallBackToCyclic => {
                    ordering = Ordering::RoundRobin;
                    ordering_fell_back = true;
                }
            }
            recoveries += 1;
        }
    }

    /// Extract sorted singular values from a finished guarded solve (the
    /// wide-matrix tail check runs on the scaled spectrum — the ratio it
    /// tests is invariant under the uniform pre-scaling).
    fn finish_values(&self, a: &Matrix, solved: GuardedSolve) -> Result<SingularValues, SvdError> {
        let GuardedSolve { gram, history, stats, scale_exp, .. } = solved;
        let sweeps = history.len();
        let mut values = gram.singular_values_unsorted();
        values.sort_by(|x, y| y.partial_cmp(x).expect("finite values"));
        let k = a.rows().min(a.cols());
        if k < values.len() {
            // Wide matrix: the Gram spectrum has n entries but rank(A) ≤ m,
            // so the discarded n − m values must be numerically zero. If the
            // iteration hasn't converged they are not — refuse rather than
            // silently truncate real spectrum mass.
            let tail_mass: f64 = values[k..].iter().map(|s| s * s).sum();
            let trace = gram.trace();
            if trace > 0.0 && tail_mass > trace * WIDE_TAIL_TOL {
                return Err(SvdError::TruncatedTailNotNegligible);
            }
        }
        values.truncate(k);
        unscale_values(&mut values, scale_exp);
        Ok(SingularValues { values, sweeps, history, stats })
    }

    /// Compute the full thin SVD `A = U Σ Vᵀ`.
    ///
    /// Unlike the values-only mode, columns are rotated in **every** sweep
    /// (maintaining `B = A·V`) and the rotations are accumulated into `V`;
    /// afterwards `U = B·Σ⁻¹` (paper's eq. (7)).
    pub fn decompose(&self, a: &Matrix) -> Result<Svd, SvdError> {
        let mut ws = SweepWorkspace::new();
        self.decompose_with_workspace(a, &mut ws)
    }

    /// [`Self::decompose`] over caller-owned scratch. Reusing a warm
    /// workspace across solves (e.g. from a [`crate::batch::WorkspacePool`])
    /// skips the warm-up allocations of the parallel and blocked engines;
    /// results are bit-identical either way.
    pub fn decompose_with_workspace(
        &self,
        a: &Matrix,
        ws: &mut SweepWorkspace,
    ) -> Result<Svd, SvdError> {
        self.validate(a)?;
        let solved = self.solve_guarded(a, ws, true, None, None)?;
        self.finish_decompose(a, solved)
    }

    /// [`Self::decompose`] with every solve event streamed into `sink` at
    /// the granularity of [`SvdOptions::trace`] ([`TraceLevel::Off`] is
    /// promoted to [`TraceLevel::Sweep`]). Results are bit-identical to the
    /// untraced call — events observe, never influence.
    ///
    /// ```
    /// use hj_core::{HestenesSvd, JsonlSink, SvdOptions};
    /// use hj_matrix::gen;
    ///
    /// let a = gen::uniform(30, 8, 11);
    /// let mut sink = JsonlSink::new(Vec::new());
    /// let svd = HestenesSvd::new(SvdOptions::default())
    ///     .decompose_traced(&a, &mut sink)
    ///     .unwrap();
    /// let jsonl = String::from_utf8(sink.finish().unwrap()).unwrap();
    /// assert_eq!(jsonl.lines().filter(|l| l.contains("sweep_end")).count(), svd.sweeps);
    /// ```
    pub fn decompose_traced(&self, a: &Matrix, sink: &mut dyn TraceSink) -> Result<Svd, SvdError> {
        self.validate(a)?;
        let mut ws = SweepWorkspace::new();
        let solved = self.solve_guarded(a, &mut ws, true, None, Some(sink))?;
        self.finish_decompose(a, solved)
    }

    /// [`Self::decompose`] with a fault injector attached (robustness test
    /// harness only — the method does not exist in production builds).
    #[cfg(feature = "fault-injection")]
    pub fn decompose_injected(
        &self,
        a: &Matrix,
        ws: &mut SweepWorkspace,
        injector: &mut dyn crate::inject::FaultInjector,
    ) -> Result<Svd, SvdError> {
        self.validate(a)?;
        let solved = self.solve_guarded(a, ws, true, Some(injector), None)?;
        self.finish_decompose(a, solved)
    }

    /// Extract `U`, `Σ`, `V` from a finished full-mode guarded solve. The
    /// factors are computed on the scaled system — `U` and `V` are invariant
    /// under the uniform pre-scaling (the scale cancels in `U = B·Σ⁻¹`), so
    /// only `Σ` is unscaled at the end.
    fn finish_decompose(&self, a: &Matrix, solved: GuardedSolve) -> Result<Svd, SvdError> {
        let GuardedSolve { b, v, history, stats, scale_exp, .. } = solved;
        let b = b.expect("full-mode solve maintains B");
        let v = v.expect("full-mode solve accumulates V");
        let (m, n) = a.shape();
        let k = m.min(n);
        let sweeps = history.len();

        // Σ from the Gram diagonal; recompute from the actual rotated columns
        // for the final values (slightly more accurate than the updated D and
        // free: one pass over B).
        let mut order_idx: Vec<usize> = (0..n).collect();
        let col_norms: Vec<f64> = (0..n).map(|c| ops::norm(b.col(c))).collect();
        order_idx.sort_by(|&x, &y| col_norms[y].partial_cmp(&col_norms[x]).expect("finite norms"));

        let mut u = Matrix::zeros(m, k);
        let mut sigma = Vec::with_capacity(k);
        let mut v_sorted = Matrix::zeros(n, k);
        // Zero-σ cutoff: below this, B's column is numerical noise and U's
        // column is left zero (its direction is not determined by the data).
        let smax = col_norms[order_idx[0]];
        let cutoff = smax * f64::EPSILON * m.max(n) as f64;
        for (t, &c) in order_idx.iter().take(k).enumerate() {
            let s = col_norms[c];
            sigma.push(s);
            if s > cutoff && s > 0.0 {
                let inv = 1.0 / s;
                let bc = b.col(c);
                let uc = u.col_mut(t);
                for (out, &x) in uc.iter_mut().zip(bc) {
                    *out = x * inv;
                }
            }
            v_sorted.col_mut(t).copy_from_slice(v.col(c));
        }
        unscale_values(&mut sigma, scale_exp);
        Ok(Svd { u, singular_values: sigma, v: v_sorted, sweeps, history, stats })
    }
}

/// Descending-column-norm permutation for the de Rijk presort: `perm[t]` is
/// the source column holding the `t`-th largest norm (ties break by column
/// index, keeping the permutation — and the whole solve — deterministic;
/// same comparator as [`crate::ordering::column_norm_permutation`]).
fn presort_permutation(b: &Matrix) -> Vec<usize> {
    let n = b.cols();
    let norms: Vec<f64> = (0..n).map(|c| ops::norm(b.col(c))).collect();
    let mut perm: Vec<usize> = (0..n).collect();
    perm.sort_by(|&x, &y| norms[y].total_cmp(&norms[x]).then(x.cmp(&y)));
    perm
}

/// A copy of `b` with column `t` taken from source column `perm[t]`.
fn permuted_columns(b: &Matrix, perm: &[usize]) -> Matrix {
    let (m, n) = b.shape();
    let mut out = Matrix::zeros(m, n);
    for (t, &c) in perm.iter().enumerate() {
        out.col_mut(t).copy_from_slice(b.col(c));
    }
    out
}

/// A finished guarded solve, before factor extraction: the converged `D`,
/// the rotated columns `B` and accumulated `V` (full mode only), the last
/// attempt's history/stats, and the pre-scaling exponent still baked into
/// the spectrum.
struct GuardedSolve {
    gram: GramState,
    b: Option<Matrix>,
    v: Option<Matrix>,
    history: Vec<SweepRecord>,
    stats: SolveStats,
    scale_exp: i32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hj_matrix::{gen, norms};

    fn check_svd(a: &Matrix, svd: &Svd, tol: f64) {
        let err = norms::reconstruction_error(a, &svd.u, &svd.singular_values, &svd.v);
        assert!(err < tol, "reconstruction error {err} ≥ {tol}");
        assert!(
            svd.singular_values.windows(2).all(|w| w[0] >= w[1]),
            "singular values must be sorted descending: {:?}",
            svd.singular_values
        );
        assert!(svd.singular_values.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn decompose_random_tall() {
        let a = gen::uniform(50, 12, 42);
        let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        check_svd(&a, &svd, 1e-12);
        assert!(norms::orthonormality_error(&svd.u) < 1e-12);
        assert!(norms::orthonormality_error(&svd.v) < 1e-12);
    }

    #[test]
    fn decompose_square() {
        let a = gen::uniform(16, 16, 1);
        let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        check_svd(&a, &svd, 1e-12);
    }

    #[test]
    fn decompose_wide_matrix() {
        // m < n: rank ≤ m, the trailing n−m implicit values are ~0 and the
        // thin factors have k = m columns.
        let a = gen::uniform(6, 20, 5);
        let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        assert_eq!(svd.singular_values.len(), 6);
        assert_eq!(svd.u.shape(), (6, 6));
        assert_eq!(svd.v.shape(), (20, 6));
        check_svd(&a, &svd, 1e-11);
    }

    #[test]
    fn known_spectrum_is_recovered() {
        let sigma = [10.0, 5.0, 1.0, 0.1];
        let a = gen::with_singular_values(30, 4, &sigma, 77);
        let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        for (got, want) in svd.singular_values.iter().zip(&sigma) {
            assert!(
                (got - want).abs() < 1e-12 * want.max(1.0),
                "singular value {got} vs expected {want}"
            );
        }
    }

    #[test]
    fn values_only_matches_decompose() {
        let a = gen::uniform(25, 10, 13);
        let solver = HestenesSvd::new(SvdOptions::default());
        let sv = solver.singular_values(&a).unwrap();
        let svd = solver.decompose(&a).unwrap();
        for (x, y) in sv.values.iter().zip(&svd.singular_values) {
            assert!((x - y).abs() < 1e-10 * x.max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn rank_deficient_input() {
        let a = gen::rank_deficient(20, 8, 3, 3);
        let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        check_svd(&a, &svd, 1e-11);
        assert_eq!(svd.rank(f64::EPSILON), 3);
        // Zero singular values land at the tail.
        assert!(svd.singular_values[3] < 1e-12);
    }

    #[test]
    fn paper_options_run_exactly_six_sweeps() {
        let a = gen::uniform(64, 32, 8);
        let sv = HestenesSvd::new(SvdOptions::paper()).singular_values(&a).unwrap();
        assert_eq!(sv.sweeps, 6);
        assert_eq!(sv.history.len(), 6);
        // ... and six sweeps reach "reasonable convergence" on this size
        // (the paper's claim): covariance mass down by ≥ 7 orders.
        let last = sv.history.last().unwrap();
        assert!(last.mean_abs_cov < 1e-7 * sv.history[0].mean_abs_cov.max(1.0));
    }

    #[test]
    fn history_is_monotonically_converging() {
        let a = gen::uniform(40, 16, 4);
        let sv = HestenesSvd::new(SvdOptions::default()).singular_values(&a).unwrap();
        for w in sv.history.windows(2) {
            assert!(
                w[1].off_frobenius <= w[0].off_frobenius * (1.0 + 1e-12),
                "off(D) must not grow between sweeps: {w:?}"
            );
        }
    }

    #[test]
    fn truncated_reconstruction_improves_with_rank() {
        let a = gen::with_singular_values(20, 6, &[8.0, 4.0, 2.0, 1.0, 0.5, 0.25], 31);
        let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        let mut prev = f64::INFINITY;
        for r in 1..=6 {
            let ar = svd.truncated(r);
            let err = norms::frobenius(&a.sub(&ar).unwrap());
            assert!(err < prev + 1e-12, "rank-{r} error {err} worse than rank-{} {prev}", r - 1);
            prev = err;
        }
        assert!(prev < 1e-10, "full-rank truncation must reconstruct A");
    }

    #[test]
    fn empty_and_nonfinite_inputs_error() {
        let solver = HestenesSvd::new(SvdOptions::default());
        assert!(matches!(solver.decompose(&Matrix::zeros(0, 4)), Err(SvdError::EmptyInput)));
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, f64::NAN);
        assert!(matches!(solver.decompose(&a), Err(SvdError::NonFiniteInput)));
        a.set(0, 0, f64::INFINITY);
        assert!(matches!(solver.singular_values(&a), Err(SvdError::NonFiniteInput)));
    }

    #[test]
    fn zero_matrix_decomposes() {
        let a = Matrix::zeros(5, 3);
        let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        assert!(svd.singular_values.iter().all(|&s| s == 0.0));
        check_svd(&a, &svd, 1e-12);
    }

    #[test]
    fn single_column_matrix() {
        let a = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        assert!((svd.singular_values[0] - 5.0).abs() < 1e-12);
        check_svd(&a, &svd, 1e-14);
    }

    #[test]
    fn hilbert_matrix_high_relative_accuracy() {
        // One-sided Jacobi's signature property (Drmač): tiny singular values
        // of an ill-conditioned matrix computed to high relative accuracy.
        let h = gen::hilbert(8);
        let svd = HestenesSvd::new(SvdOptions::default()).decompose(&h).unwrap();
        check_svd(&h, &svd, 1e-10);
        // κ(H₈) ≈ 1.5e10; the smallest σ is ~1e-10 and must be positive.
        assert!(svd.singular_values[7] > 0.0);
        assert!(svd.singular_values[0] / svd.singular_values[7] > 1e9);
    }

    #[test]
    fn stats_are_populated_in_all_engines() {
        let a = gen::uniform(30, 10, 77);
        for engine in [EngineKind::Sequential, EngineKind::Parallel, EngineKind::Blocked] {
            let opts = SvdOptions { engine, ..Default::default() };
            let svd = HestenesSvd::new(opts).decompose(&a).unwrap();
            assert_eq!(svd.stats.engine, engine.name());
            assert_eq!(svd.stats.sweeps, svd.sweeps);
            assert_eq!(svd.stats.sweep_seconds.len(), svd.sweeps);
            assert_eq!(
                svd.stats.rotations_applied,
                svd.history.iter().map(|r| r.rotations_applied).sum::<usize>()
            );
            assert!(svd.stats.gram_bytes > 0, "rotations imply Gram traffic");
            assert!(svd.stats.threads >= 1);
            match engine {
                EngineKind::Sequential => {
                    assert_eq!(svd.stats.workspace_allocations, 0);
                    assert_eq!(svd.stats.parallel_dispatches, 0);
                }
                EngineKind::Parallel => {
                    if svd.stats.threads == 1 {
                        // Sequential fallback: no workspace, no dispatches.
                        assert_eq!(svd.stats.workspace_allocations, 0);
                        assert_eq!(svd.stats.parallel_dispatches, 0);
                    } else {
                        assert!(svd.stats.workspace_allocations > 0, "warm-up allocates");
                    }
                }
                EngineKind::Blocked => {
                    // n = 10 fits one `for_dim` tile: the in-place fast
                    // path never stages or grows the workspace.
                    assert_eq!(svd.stats.workspace_allocations, 0);
                    assert_eq!(svd.stats.tile_refills, 0);
                    assert_eq!(svd.stats.parallel_dispatches, 0);
                    assert_eq!(svd.stats.threads, 1);
                }
            }
            let sv = HestenesSvd::new(opts).singular_values(&a).unwrap();
            assert_eq!(sv.stats.sweeps, sv.sweeps);
            assert!(sv.stats.to_json().contains("\"sweeps\""));
            assert!(sv.stats.to_json().contains(engine.name()));
        }
    }

    #[test]
    fn warm_workspace_solves_are_bit_identical_and_allocation_free() {
        let a = gen::uniform(30, 10, 78);
        for engine in [EngineKind::Parallel, EngineKind::Blocked] {
            let solver = HestenesSvd::new(SvdOptions { engine, ..Default::default() });
            let cold = solver.decompose(&a).unwrap();
            let mut ws = SweepWorkspace::new();
            let first = solver.decompose_with_workspace(&a, &mut ws).unwrap();
            let warm = solver.decompose_with_workspace(&a, &mut ws).unwrap();
            // At n = 10 the blocked engine takes the single-tile fast path
            // (no staging at all), and the parallel engine either falls back
            // to the sequential kernels (one-thread pool; workspace untouched)
            // or pays the documented bounded buffer exchange (fresh `B`/`V`
            // buffers swap through the column back buffer) per solve — never
            // more, and never growing on a warm same-shape solve.
            let bound = if engine == EngineKind::Parallel { 2 } else { 0 };
            assert!(
                warm.stats.workspace_allocations <= bound,
                "{engine:?}: warm solve allocated {} times (bound {bound})",
                warm.stats.workspace_allocations
            );
            assert!(warm.stats.workspace_allocations <= first.stats.workspace_allocations);
            for (x, y) in cold.singular_values.iter().zip(&warm.singular_values) {
                assert_eq!(x, y, "{engine:?}: pooled workspace changed the result");
            }
            assert_eq!(cold.u.as_slice(), warm.u.as_slice());
            assert_eq!(cold.v.as_slice(), warm.v.as_slice());
        }
    }

    #[test]
    fn wide_values_only_truncates_only_numerically_zero_tail() {
        // 6×20: the Gram spectrum has 20 entries, 14 of which must be dust.
        let a = gen::uniform(6, 20, 5);
        let solver = HestenesSvd::new(SvdOptions::default());
        let sv = solver.singular_values(&a).unwrap();
        assert_eq!(sv.values.len(), 6);
        let svd = solver.decompose(&a).unwrap();
        for (x, y) in sv.values.iter().zip(&svd.singular_values) {
            assert!((x - y).abs() < 1e-10 * x.max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn wide_values_only_rejects_unconverged_truncation() {
        // One sweep is nowhere near convergence for 6×20, so the 14 discarded
        // diagonal entries still carry real spectrum mass → hard error, not
        // silently wrong values.
        let a = gen::uniform(6, 20, 5);
        let opts = SvdOptions {
            convergence: Convergence::FixedSweeps(1),
            max_sweeps: 1,
            ..Default::default()
        };
        assert!(matches!(
            HestenesSvd::new(opts).singular_values(&a),
            Err(SvdError::TruncatedTailNotNegligible)
        ));
        // Tall inputs never truncate, so a single sweep still returns Ok.
        let tall = gen::uniform(20, 6, 5);
        assert!(HestenesSvd::new(opts).singular_values(&tall).is_ok());
    }

    #[test]
    fn finite_input_with_overflowing_gram_solves_via_prescaling() {
        // Entries ~1e160 are finite, but squaring them (the Gram build)
        // overflows f64 — the exact hole the guarded-numerics pass closes.
        // σ(c·A) = c·σ(A) for c > 0, so the guarded solve of the huge matrix
        // must match the plain solve of the ordinary one, rescaled.
        let base = gen::uniform(20, 6, 41);
        let huge = base.scaled(1e160);
        assert!(huge.as_slice().iter().all(|v| v.is_finite()), "input itself is finite");
        let solver = HestenesSvd::new(SvdOptions::default());
        let clean = solver.decompose(&base).unwrap();

        for engine in [EngineKind::Sequential, EngineKind::Parallel, EngineKind::Blocked] {
            let solver = HestenesSvd::new(SvdOptions { engine, ..Default::default() });
            let svd = solver.decompose(&huge).unwrap();
            assert_ne!(svd.stats.prescale_exp, 0, "{engine:?}: guard must have engaged");
            assert_eq!(svd.stats.faults, 0);
            assert!(svd.singular_values.iter().all(|s| s.is_finite()));
            assert!(svd.u.as_slice().iter().all(|v| v.is_finite()));
            for (got, want) in svd.singular_values.iter().zip(&clean.singular_values) {
                let scaled = want * 1e160;
                assert!(
                    (got - scaled).abs() <= 1e-10 * clean.singular_values[0] * 1e160,
                    "{engine:?}: σ {got:e} vs expected {scaled:e}"
                );
            }
            let sv = solver.singular_values(&huge).unwrap();
            assert_ne!(sv.stats.prescale_exp, 0);
            for (x, y) in sv.values.iter().zip(&svd.singular_values) {
                assert!((x - y).abs() <= 1e-10 * svd.singular_values[0], "{x:e} vs {y:e}");
            }
        }
    }

    #[test]
    fn tiny_input_with_underflowing_gram_solves_via_prescaling() {
        // Entries ~1e-170: every Gram entry (~1e-340) underflows to zero
        // without the guard, silently reporting an all-zero spectrum.
        let base = gen::uniform(15, 5, 42);
        let tiny = base.scaled(1e-170);
        let clean = HestenesSvd::new(SvdOptions::default()).decompose(&base).unwrap();
        let svd = HestenesSvd::new(SvdOptions::default()).decompose(&tiny).unwrap();
        assert_ne!(svd.stats.prescale_exp, 0);
        assert!(svd.singular_values[0] > 0.0, "spectrum must not underflow to zero");
        for (got, want) in svd.singular_values.iter().zip(&clean.singular_values) {
            let scaled = want * 1e-170;
            assert!(
                (got - scaled).abs() <= 1e-10 * clean.singular_values[0] * 1e-170,
                "σ {got:e} vs expected {scaled:e}"
            );
        }
    }

    #[test]
    fn prescaling_is_inactive_inside_the_safe_window() {
        // Ordinary inputs (anything within ±250 binary orders, ~1e±75) take
        // the bit-preserving fast path: no scaling, prescale_exp = 0.
        for scale in [1.0, 1e-70, 1e70] {
            let a = gen::uniform(12, 4, 9).scaled(scale);
            let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
            assert_eq!(svd.stats.prescale_exp, 0, "scale {scale:e}");
            assert_eq!(svd.stats.faults, 0);
            assert_eq!(svd.stats.recoveries, 0);
        }
    }

    #[test]
    fn expired_budget_surfaces_a_structured_solve_fault() {
        use crate::recovery::Fault;
        use std::time::{Duration, Instant};
        let a = gen::uniform(20, 8, 17);
        let solver = HestenesSvd::new(SvdOptions::default())
            .with_budget(SolveBudget::with_deadline(Instant::now() - Duration::from_millis(1)));
        match solver.decompose(&a) {
            Err(SvdError::SolveFault { fault, sweeps_completed, recoveries }) => {
                assert_eq!(fault, Fault::DeadlineExceeded { sweep: 1 });
                assert_eq!(sweeps_completed, 0);
                assert_eq!(recoveries, 0);
            }
            other => panic!("expected SolveFault, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_flag_stops_the_solve() {
        use crate::recovery::Fault;
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let a = gen::uniform(20, 8, 18);
        let flag = Arc::new(AtomicBool::new(true)); // pre-cancelled
        let solver = HestenesSvd::new(SvdOptions::default())
            .with_budget(SolveBudget::unlimited().cancelled_by(flag));
        match solver.singular_values(&a) {
            Err(SvdError::SolveFault { fault, .. }) => {
                assert_eq!(fault, Fault::Cancelled { sweep: 1 });
            }
            other => panic!("expected SolveFault, got {other:?}"),
        }
    }

    #[test]
    fn invalid_option_combinations_error() {
        let a = gen::uniform(4, 4, 0);
        for engine in [EngineKind::Parallel, EngineKind::Blocked] {
            let opts = SvdOptions { engine, ordering: Ordering::RowCyclic, ..Default::default() };
            assert!(matches!(
                HestenesSvd::new(opts).decompose(&a),
                Err(SvdError::EngineNeedsRoundRobin)
            ));
            // The disjoint-round orderings are legal on every engine.
            for ordering in [Ordering::SortedGreedy, Ordering::ColumnNormPresort] {
                let opts = SvdOptions { engine, ordering, ..Default::default() };
                assert!(HestenesSvd::new(opts).decompose(&a).is_ok(), "{engine:?}/{ordering:?}");
            }
        }
        let opts = SvdOptions { ordering: Ordering::RowCyclic, ..Default::default() };
        assert!(HestenesSvd::new(opts).decompose(&a).is_ok(), "sequential allows any ordering");
        let opts = SvdOptions { max_sweeps: 0, ..Default::default() };
        assert!(matches!(HestenesSvd::new(opts).decompose(&a), Err(SvdError::ZeroSweepBudget)));
    }

    #[test]
    fn every_ordering_converges_on_every_legal_engine() {
        let a = gen::uniform(40, 12, 19);
        let reference = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        for ordering in Ordering::ALL {
            for engine in [EngineKind::Sequential, EngineKind::Parallel, EngineKind::Blocked] {
                if engine != EngineKind::Sequential && ordering == Ordering::RowCyclic {
                    continue;
                }
                let opts = SvdOptions { engine, ordering, ..Default::default() };
                let svd = HestenesSvd::new(opts).decompose(&a).unwrap();
                check_svd(&a, &svd, 1e-11);
                assert_eq!(svd.stats.ordering, ordering.name(), "{engine:?}/{ordering:?}");
                assert!(svd.stats.replans >= 1, "scheduled solves must plan at least once");
                for (x, y) in svd.singular_values.iter().zip(&reference.singular_values) {
                    assert!(
                        (x - y).abs() < 1e-10 * y.max(1.0),
                        "{engine:?}/{ordering:?}: σ {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn cyclic_ordering_is_bit_identical_to_the_default_path() {
        // The Cyclic strategy must reproduce the pre-subsystem round-robin
        // schedule exactly, so the default options' results are pinned bitwise
        // across the refactor (same rotations in the same order).
        let a = gen::uniform(36, 11, 23);
        for engine in [EngineKind::Sequential, EngineKind::Parallel, EngineKind::Blocked] {
            let opts = SvdOptions { engine, ordering: Ordering::RoundRobin, ..Default::default() };
            let one = HestenesSvd::new(opts).decompose(&a).unwrap();
            let two = HestenesSvd::new(opts).decompose(&a).unwrap();
            assert_eq!(one.singular_values, two.singular_values);
            assert_eq!(one.u.as_slice(), two.u.as_slice());
            assert_eq!(one.v.as_slice(), two.v.as_slice());
            assert_eq!(one.stats.ordering, "cyclic");
        }
    }

    #[test]
    fn presort_folds_the_permutation_into_the_factors() {
        // Columns generated in descending-norm order make the presort
        // permutation the identity: the presorted solve must then be
        // bit-identical to the cyclic solve (same data, same plan). A
        // shuffled copy of the same matrix must still reconstruct exactly.
        let sigma = [9.0, 5.0, 3.0, 1.5, 0.75, 0.2];
        let a = gen::with_singular_values(24, 6, &sigma, 55);
        let cyclic = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        let presorted = HestenesSvd::new(SvdOptions {
            ordering: Ordering::ColumnNormPresort,
            ..Default::default()
        })
        .decompose(&a)
        .unwrap();
        check_svd(&a, &presorted, 1e-12);
        assert_eq!(presorted.stats.ordering, "presort");
        for (x, y) in presorted.singular_values.iter().zip(&cyclic.singular_values) {
            assert!((x - y).abs() < 1e-12 * y.max(1.0), "{x} vs {y}");
        }
        // U/V round-trip: the permutation is folded into V, so U·Σ·Vᵀ
        // reconstructs A without any undo pass, and V stays orthonormal.
        assert!(norms::orthonormality_error(&presorted.u) < 1e-12);
        assert!(norms::orthonormality_error(&presorted.v) < 1e-12);
    }

    #[test]
    fn threshold_schedule_converges_and_reports_skips() {
        let a = gen::uniform(48, 16, 29);
        let opts =
            SvdOptions { threshold: Some(ThresholdSchedule::default()), ..Default::default() };
        let svd = HestenesSvd::new(opts).decompose(&a).unwrap();
        check_svd(&a, &svd, 1e-11);
        assert!(
            svd.stats.pairs_skipped_by_threshold > 0,
            "the early coarse sweeps must defer some pairs"
        );
        // The default path must not carry threshold accounting.
        let plain = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
        assert_eq!(plain.stats.pairs_skipped_by_threshold, 0);
    }
}
