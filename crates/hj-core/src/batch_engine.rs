//! Batched SoA solve engine — high throughput for many tiny SVDs.
//!
//! The paper's §V utilization analysis shows that at small `n` the
//! Hestenes-Jacobi datapath is starved: per-pair coordination and memory
//! traffic dominate, not the rotations themselves. That is exactly the
//! regime of the "millions of tiny SVDs" workloads (sensor covariance
//! blocks, whitening, per-head attention analysis) the batch drivers in
//! [`crate::batch`] serve — and those drivers still pay the full per-solve
//! overhead once per matrix, because each worker loops one problem at a
//! time.
//!
//! This module batches *across* problems instead, the structure-of-arrays
//! trick of the GPU batch-SVD literature: the packed Gram triangles are
//! interleaved with the lane index fastest-moving ([`hj_matrix::soa`]
//! layout, lane-padded to [`hj_matrix::ops::ROTATE_LANES`]), so the
//! rotation of pair `(i, j)` touches one contiguous lanes-wide slice per
//! Gram entry and a whole sweep runs as straight-line vectorizable loops
//! ([`crate::kernel::batch_params_soa`] / [`crate::kernel::rotate_packed_soa`]).
//! The strided packed-triangle accesses that dominate the scalar
//! [`crate::kernel::rotate_packed`] at small `n` vanish entirely.
//!
//! For very large batches the interleave is additionally tiled into cache
//! *blocks* (AoSoA): lanes are grouped so one block's triangles stay inside
//! an L2-sized budget (`BLOCK_TRI_BYTES`), and the pair schedule runs
//! block by block so each pair's sweep streams a footprint the cache can
//! hold instead of the whole `tri·k` region. At the default `k = 256` and
//! `n ≤ 32` the footprint fits one block, so the batch runs *flat* — a
//! single full-width interleave, which measures fastest on cores with a
//! MiB-class L2 (narrow tiles trade cache residency for per-call overhead
//! and lose).
//!
//! [`BatchDriver`] runs the shared cyclic sweep schedule over a
//! [`BatchWorkspace`] with a **per-problem active mask**:
//!
//! * a problem that satisfies the solver's [`crate::Convergence`] criterion
//!   drops out (its lane gets identity rotation parameters — bit-preserving
//!   for its diagonal, hence for its spectrum) without stalling the batch;
//! * a problem that trips the per-lane health checks (non-finite Gram,
//!   materially negative diagonal, convergence stall — the same thresholds
//!   as [`crate::HealthCheck`]) faults **alone**: lanes never read each
//!   other, so a NaN-poisoned problem cannot perturb its neighbors' bits;
//! * a [`crate::SolveBudget`] deadline/cancellation aborts every
//!   still-active problem at the shared sweep boundary.
//!
//! Fault handling is deliberately *abort-only* per problem (no
//! rescale-restart / engine-fallback recovery inside the batch): restarting
//! one lane would force the whole batch through extra shared sweeps. The
//! guarded-numerics prescaling of [`crate::svd`] still applies per problem
//! at pack time, so the usual overflow/underflow classes never fault in the
//! first place. Callers who need the full recovery lattice for a flaky
//! problem can re-run it through [`crate::HestenesSvd::singular_values`].
//!
//! Results match the looped path within a `1e-12·σ_max` envelope (pinned by
//! proptest): the lanes-wide parameter kernel computes the textbook chain
//! in a vectorizable `sqrt`-based form that tracks the scalar one to ~1 ulp
//! (see [`crate::kernel::batch_params_soa`]), the rotation kernel applies
//! the scalar expressions (contracted to fused multiply-adds, ≤ 1 ulp, on
//! FMA hardware), the shared schedule keeps rotating a lane until *its own*
//! criterion fires, and sweep-boundary bookkeeping differs from the scalar
//! driver only in traversal.

use crate::convergence::{is_converged, SweepRecord, MAX_SWEEP_CAP};
use crate::engine::EngineKind;
use crate::kernel::{batch_params_soa, rotate_packed_soa};
use crate::ordering::{round_robin, Ordering};
use crate::recovery::{Fault, NEGATIVE_DIAG_TOL, STALL_MIN_PROGRESS, STALL_OFF_FLOOR};
use crate::stats::SolveStats;
use crate::svd::{prescale_exponent, unscale_values, HestenesSvd, SingularValues, WIDE_TAIL_TOL};
use crate::sweep::PAIR_TOL;
use crate::SvdError;
use hj_matrix::{ops, soa, Matrix};
use std::time::Instant;

/// Stable engine name reported in [`SolveStats::engine`] for batched-SoA
/// solves.
pub const BATCH_SOA_ENGINE: &str = "batch-soa";

/// Largest per-problem dimension `n` for which the automatic
/// [`crate::HestenesSvd::singular_values_batch`] dispatch prefers the SoA
/// engine. Beyond it the per-problem `O(n³)` rotation work amortizes the
/// scalar path's per-pair overhead on its own, and the interleaved triangle
/// (`n(n+1)/2 · lanes` doubles) stops fitting cache comfortably.
pub const SOA_DISPATCH_MAX_N: usize = 32;

/// Per-block cache budget for the interleaved triangles, in bytes. A block
/// of `B` lanes holds `n(n+1)/2 · B` doubles that every pair of a sweep
/// re-touches; keeping that within an L2-sized budget stops the rotation
/// kernel from streaming the whole batch footprint from L3/DRAM once per
/// pair. The budget is deliberately generous (~1.5 MiB): the default
/// `k = 256, n ≤ 32` workload fits a single block and runs flat, because
/// measured on wide-vector cores the per-block loop and call overhead of
/// narrow tiles costs far more than L2 misses save.
const BLOCK_TRI_BYTES: usize = 1536 * 1024;

/// A planned corruption of one problem's interleaved Gram lane — the batch
/// engine's analogue of [`crate::inject::Corruption::GramEntry`], used by
/// the fault-isolation robustness tests.
#[cfg(feature = "fault-injection")]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneCorruption {
    /// Problem (lane) index to poison.
    pub problem: usize,
    /// 1-based sweep before which the corruption is written (so the sweep's
    /// own record reflects it, mirroring `FaultInjector::before_sweep`).
    pub sweep: usize,
    /// Row index into the problem's `D`.
    pub i: usize,
    /// Column index into the problem's `D`.
    pub j: usize,
    /// The value written (need not be finite).
    pub value: f64,
}

#[cfg(feature = "fault-injection")]
type CorruptionPlan<'a> = &'a [LaneCorruption];
#[cfg(not(feature = "fault-injection"))]
type CorruptionPlan<'a> = &'a [std::convert::Infallible];

/// Why a lane stopped participating in the shared sweep loop.
#[derive(Debug, Clone)]
enum LaneOutcome {
    /// Still sweeping (or finished the budget without meeting the criterion
    /// — like the scalar driver, that is a clean result, not an error).
    Running,
    /// Rejected at pack time, before any sweep ran.
    Invalid(SvdError),
    /// Tripped a health check or the shared solve budget mid-flight.
    Faulted(Fault),
    /// Met the solver's convergence criterion.
    Converged,
}

/// Reusable scratch for one batch of interleaved problems: the SoA Gram
/// triangles, the per-pair parameter lanes, the active mask, and every
/// per-problem accumulator the driver needs — all reused across calls, so a
/// warm workspace solves batch after batch of the same shape with **zero**
/// steady-state heap allocations (pinned in `tests/zero_alloc.rs`).
///
/// Buffer growth events are counted in [`BatchWorkspace::allocations`],
/// following the [`crate::parallel::SweepWorkspace`] discipline.
#[derive(Debug, Default)]
pub struct BatchWorkspace {
    /// Problem dimension `n` of the loaded batch.
    n: usize,
    /// Problems actually loaded (lanes `problems..lanes` are padding).
    problems: usize,
    /// Lane count: `problems` rounded up to a whole number of blocks.
    lanes: usize,
    /// Lanes per cache block (the AoSoA tile width): the widest SIMD-friendly
    /// count whose interleaved triangles fit [`BLOCK_TRI_BYTES`].
    block: usize,
    /// Block-major interleaved packed triangles: entry `e` of problem `p`
    /// lives in block `b = p / block` at
    /// `d[b · tri · block + e · block + (p mod block)]`.
    d: Vec<f64>,
    /// Per-lane rotation parameters for the current pair.
    cos: Vec<f64>,
    sin: Vec<f64>,
    t: Vec<f64>,
    /// Per-lane "rotation applied" flag for the current pair.
    applied: Vec<u8>,
    /// Per-lane participation mask (0 for converged/faulted/padding lanes).
    active: Vec<u8>,
    /// Shared cyclic pair schedule for dimension `n`.
    pairs: Vec<(usize, usize)>,
    /// Per-problem prescale exponents (guarded numerics, applied at pack).
    exps: Vec<i32>,
    /// Per-problem outcome.
    outcome: Vec<LaneOutcome>,
    /// Per-problem sweep histories.
    histories: Vec<Vec<SweepRecord>>,
    /// Wall-clock seconds of each shared sweep.
    sweep_seconds: Vec<f64>,
    /// Per-lane rotations applied during the current sweep.
    applied_count: Vec<usize>,
    // Per-lane post-sweep metric accumulators (off-diagonal summary,
    // diagonal scan, trace) — one fused pass over the SoA triangle.
    abs_sum: Vec<f64>,
    sum_sq: Vec<f64>,
    max_abs: Vec<f64>,
    diag_min: Vec<f64>,
    diag_argmin: Vec<usize>,
    diag_max_abs: Vec<f64>,
    diag_finite: Vec<u8>,
    trace: Vec<f64>,
    // Per-lane stall-detector memory (same thresholds as HealthCheck).
    best_off: Vec<f64>,
    stalled: Vec<usize>,
    /// Prescale scratch: one problem's scaled column data.
    scaled: Vec<f64>,
    /// Buffer creation/growth events (the zero-alloc observability hook).
    allocations: usize,
}

impl BatchWorkspace {
    /// An empty workspace; buffers are sized by the first
    /// [`BatchDriver::load`].
    pub fn new() -> Self {
        BatchWorkspace::default()
    }

    /// Buffer creation/growth events since construction. Constant across
    /// repeated same-shape batches — the steady-state zero-allocation
    /// invariant.
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// Grow `buf` to exactly `len` zeros, counting a growth event only when
    /// the capacity actually increases.
    fn reset_f64(allocations: &mut usize, buf: &mut Vec<f64>, len: usize, fill: f64) {
        if buf.capacity() < len {
            *allocations += 1;
        }
        buf.clear();
        buf.resize(len, fill);
    }

    fn reset_usize(allocations: &mut usize, buf: &mut Vec<usize>, len: usize) {
        if buf.capacity() < len {
            *allocations += 1;
        }
        buf.clear();
        buf.resize(len, 0);
    }

    fn reset_u8(allocations: &mut usize, buf: &mut Vec<u8>, len: usize, fill: u8) {
        if buf.capacity() < len {
            *allocations += 1;
        }
        buf.clear();
        buf.resize(len, fill);
    }

    /// Number of cache blocks in the loaded batch.
    fn blocks(&self) -> usize {
        self.lanes.checked_div(self.block).unwrap_or(0)
    }

    /// Packed-triangle entry count for the loaded dimension.
    fn tri(&self) -> usize {
        self.n * (self.n + 1) / 2
    }

    /// Flat index of triangle entry `e` for problem `p` in the block-major
    /// layout.
    fn at(&self, e: usize, p: usize) -> usize {
        (p / self.block) * self.tri() * self.block + e * self.block + (p % self.block)
    }

    /// Size every buffer for a batch of `problems` problems of dimension
    /// `n`, clearing per-call state but never shrinking capacity.
    fn prepare(&mut self, n: usize, problems: usize) {
        let tri = n * (n + 1) / 2;
        // AoSoA tile width: the batch is split into the fewest blocks whose
        // per-block triangles fit BLOCK_TRI_BYTES, sized evenly so the last
        // block is not a ragged remnant, then rounded up to a whole number
        // of SIMD lane groups. Batches within budget (the common case) get
        // one full-width block — the flat interleave.
        let padded = soa::lane_padded(problems);
        let block = if padded == 0 {
            0
        } else {
            let cap = (BLOCK_TRI_BYTES / (tri * 8).max(1)).max(ops::ROTATE_LANES);
            let nblocks = padded.div_ceil(cap);
            padded.div_ceil(nblocks).div_ceil(ops::ROTATE_LANES) * ops::ROTATE_LANES
        };
        let lanes = if block == 0 { 0 } else { problems.div_ceil(block) * block };
        let a = &mut self.allocations;
        Self::reset_f64(a, &mut self.d, tri * lanes, 0.0);
        Self::reset_f64(a, &mut self.cos, lanes, 0.0);
        Self::reset_f64(a, &mut self.sin, lanes, 0.0);
        Self::reset_f64(a, &mut self.t, lanes, 0.0);
        Self::reset_u8(a, &mut self.applied, lanes, 0);
        Self::reset_u8(a, &mut self.active, lanes, 0);
        Self::reset_f64(a, &mut self.abs_sum, lanes, 0.0);
        Self::reset_f64(a, &mut self.sum_sq, lanes, 0.0);
        Self::reset_f64(a, &mut self.max_abs, lanes, 0.0);
        Self::reset_f64(a, &mut self.diag_min, lanes, 0.0);
        Self::reset_usize(a, &mut self.diag_argmin, lanes);
        Self::reset_f64(a, &mut self.diag_max_abs, lanes, 0.0);
        Self::reset_u8(a, &mut self.diag_finite, lanes, 1);
        Self::reset_f64(a, &mut self.trace, lanes, 0.0);
        Self::reset_f64(a, &mut self.best_off, lanes, f64::INFINITY);
        Self::reset_usize(a, &mut self.stalled, lanes);
        Self::reset_usize(a, &mut self.applied_count, lanes);
        if self.exps.capacity() < problems {
            self.allocations += 1;
        }
        self.exps.clear();
        self.exps.resize(problems, 0);
        if self.outcome.capacity() < problems {
            self.allocations += 1;
        }
        self.outcome.clear();
        self.outcome.resize(problems, LaneOutcome::Running);
        if self.histories.len() < problems {
            self.allocations += 1;
            self.histories.resize_with(problems, Vec::new);
        }
        for h in &mut self.histories[..problems] {
            h.clear();
        }
        self.sweep_seconds.clear();
        if self.pairs.is_empty() || self.n != n {
            self.allocations += 1;
            self.pairs.clear();
            self.pairs.extend(round_robin(n).pairs());
        }
        self.n = n;
        self.problems = problems;
        self.lanes = lanes;
        self.block = block;
    }

    /// One fused pass over the interleaved triangle computing, per lane, the
    /// off-diagonal summary (`abs_sum`, `sum_sq`, `max_abs` — the
    /// [`hj_matrix::OffDiagonalSummary`] fields), the diagonal scan
    /// (finiteness, min/argmin, max-abs — the [`crate::DiagonalScan`]
    /// fields), and the trace.
    fn scan_metrics(&mut self) {
        let (n, block) = (self.n, self.block);
        for p in 0..self.lanes {
            self.abs_sum[p] = 0.0;
            self.sum_sq[p] = 0.0;
            self.max_abs[p] = 0.0;
            self.diag_min[p] = f64::INFINITY;
            self.diag_argmin[p] = 0;
            self.diag_max_abs[p] = 0.0;
            self.diag_finite[p] = 1;
            self.trace[p] = 0.0;
        }
        let tri = self.tri();
        for b in 0..self.blocks() {
            let lane0 = b * block;
            let blk = &self.d[b * tri * block..(b + 1) * tri * block];
            let mut idx = 0usize;
            for r in 0..n {
                let base = idx * block;
                for q in 0..block {
                    let p = lane0 + q;
                    let v = blk[base + q];
                    self.trace[p] += v;
                    if !v.is_finite() {
                        self.diag_finite[p] = 0;
                    }
                    if v < self.diag_min[p] {
                        self.diag_min[p] = v;
                        self.diag_argmin[p] = r;
                    }
                    self.diag_max_abs[p] = self.diag_max_abs[p].max(v.abs());
                }
                idx += 1;
                for _ in (r + 1)..n {
                    let base = idx * block;
                    for q in 0..block {
                        let p = lane0 + q;
                        let v = blk[base + q];
                        let a = v.abs();
                        self.abs_sum[p] += a;
                        self.sum_sq[p] += v * v;
                        self.max_abs[p] = self.max_abs[p].max(a);
                    }
                    idx += 1;
                }
            }
        }
    }

    /// Overwrite entry `(i, j)` of problem `p`'s interleaved triangle.
    #[cfg(feature = "fault-injection")]
    fn poison(&mut self, p: usize, i: usize, j: usize, value: f64) {
        let (r, c) = if i <= j { (i, j) } else { (j, i) };
        let off = r * (2 * self.n - r + 1) / 2 + (c - r);
        let idx = self.at(off, p);
        self.d[idx] = value;
    }
}

/// Runs the shared cyclic sweep schedule over a [`BatchWorkspace`] with the
/// owning solver's convergence criterion, budget, and health thresholds.
///
/// The three phases are public so callers (and the zero-allocation tests)
/// can drive them separately; [`BatchDriver::solve`] chains them.
#[derive(Debug, Clone, Copy)]
pub struct BatchDriver<'a> {
    solver: &'a HestenesSvd,
}

impl<'a> BatchDriver<'a> {
    /// A driver borrowing the solver's configuration.
    pub fn new(solver: &'a HestenesSvd) -> Self {
        BatchDriver { solver }
    }

    /// Load + sweep + extract in one call.
    ///
    /// # Panics
    /// Panics if the matrices do not all share one column count (see
    /// [`BatchDriver::load`]).
    pub fn solve(
        &self,
        ws: &mut BatchWorkspace,
        mats: &[Matrix],
    ) -> Vec<Result<SingularValues, SvdError>> {
        self.load(ws, mats);
        self.sweep_to_convergence(ws);
        self.extract(ws, mats)
    }

    /// Pack the batch into the workspace's SoA layout: per problem,
    /// validate (empty / non-finite inputs are rejected into their own
    /// slot), choose the guarded-numerics prescale exponent, and build the
    /// Gram triangle straight into the problem's lane (the same
    /// [`ops::dot`] per entry as [`crate::GramState::from_matrix`]).
    ///
    /// # Panics
    /// Panics if the matrices do not all share one column count — the SoA
    /// layout interleaves same-shape triangles. (The automatic
    /// [`crate::HestenesSvd::singular_values_batch`] dispatch only routes
    /// uniform batches here; direct callers own the check.)
    pub fn load(&self, ws: &mut BatchWorkspace, mats: &[Matrix]) {
        let n = mats.first().map_or(0, Matrix::cols);
        assert!(
            mats.iter().all(|m| m.cols() == n),
            "batched SoA solve requires a uniform column count"
        );
        ws.prepare(n, mats.len());
        let zero_budget = self.solver.options().max_sweeps == 0;
        for (p, mat) in mats.iter().enumerate() {
            if mat.is_empty() {
                ws.outcome[p] = LaneOutcome::Invalid(SvdError::EmptyInput);
                continue;
            }
            if !mat.as_slice().iter().all(|v| v.is_finite()) {
                ws.outcome[p] = LaneOutcome::Invalid(SvdError::NonFiniteInput);
                continue;
            }
            if zero_budget {
                ws.outcome[p] = LaneOutcome::Invalid(SvdError::ZeroSweepBudget);
                continue;
            }
            ws.active[p] = 1;
            let exp = prescale_exponent(mat.max_abs());
            ws.exps[p] = exp;
            let block = ws.block;
            // Problem p's entries stride by `block` from its lane base.
            let base = (p / block) * ws.tri() * block + (p % block);
            if exp == 0 {
                let mut e = 0usize;
                for i in 0..n {
                    let ci = mat.col(i);
                    for j in i..n {
                        ws.d[base + e * block] = ops::dot(ci, mat.col(j));
                        e += 1;
                    }
                }
            } else {
                // Out-of-window input: scale a scratch copy by the exact
                // power of two first (squaring unscaled entries is what
                // overflows), then build the Gram from the scratch columns.
                let m = mat.rows();
                BatchWorkspace::reset_f64(
                    &mut ws.allocations,
                    &mut ws.scaled,
                    mat.as_slice().len(),
                    0.0,
                );
                ws.scaled.copy_from_slice(mat.as_slice());
                scale_exact(&mut ws.scaled, exp);
                let mut e = 0usize;
                for i in 0..n {
                    for j in i..n {
                        let ci = &ws.scaled[i * m..(i + 1) * m];
                        let cj = &ws.scaled[j * m..(j + 1) * m];
                        ws.d[base + e * block] = ops::dot(ci, cj);
                        e += 1;
                    }
                }
            }
        }
    }

    /// Run shared cyclic sweeps until every lane has converged, faulted, or
    /// exhausted the solver's sweep budget. Allocation-free in the steady
    /// state (same shape, warm workspace).
    pub fn sweep_to_convergence(&self, ws: &mut BatchWorkspace) {
        self.sweep_inner(ws, &[]);
    }

    /// [`BatchDriver::sweep_to_convergence`] with planned per-lane
    /// corruptions — the fault-isolation robustness harness (the method
    /// does not exist in production builds).
    #[cfg(feature = "fault-injection")]
    pub fn sweep_to_convergence_corrupted(&self, ws: &mut BatchWorkspace, plan: &[LaneCorruption]) {
        self.sweep_inner(ws, plan);
    }

    #[cfg_attr(not(feature = "fault-injection"), allow(unused_variables))]
    fn sweep_inner(&self, ws: &mut BatchWorkspace, plan: CorruptionPlan<'_>) {
        let opts = self.solver.options();
        let health = *self.solver.health();
        let budget = self.solver.budget();
        let max_sweeps = opts.max_sweeps.min(MAX_SWEEP_CAP);
        let n = ws.n;
        let pair_count = ws.pairs.len();
        for sweep in 1..=max_sweeps {
            if ws.active.iter().all(|&a| a == 0) {
                break;
            }
            if let Some(fault) = budget.check(sweep) {
                for p in 0..ws.problems {
                    if ws.active[p] != 0 {
                        ws.active[p] = 0;
                        ws.outcome[p] = LaneOutcome::Faulted(fault);
                    }
                }
                break;
            }
            #[cfg(feature = "fault-injection")]
            for c in plan {
                if c.sweep == sweep && c.problem < ws.problems {
                    ws.poison(c.problem, c.i, c.j, c.value);
                }
            }
            let started = Instant::now();
            ws.applied_count.iter_mut().for_each(|c| *c = 0);
            let (block, tri) = (ws.block, ws.tri());
            for b in 0..ws.blocks() {
                let lane0 = b * block;
                // The mask only changes at sweep boundaries, so a block
                // whose lanes have all dropped out skips the whole pair
                // schedule — finished blocks cost nothing while stragglers
                // keep sweeping.
                if ws.active[lane0..lane0 + block].iter().all(|&a| a == 0) {
                    continue;
                }
                let base = b * tri * block;
                let off = |r: usize, c: usize| r * (2 * n - r + 1) / 2 + (c - r);
                for pi in 0..pair_count {
                    let (i, j) = ws.pairs[pi];
                    let oi = base + off(i, i) * block;
                    let oj = base + off(j, j) * block;
                    let oc = base + off(i, j) * block;
                    let any_live = batch_params_soa(
                        &ws.d[oi..oi + block],
                        &ws.d[oj..oj + block],
                        &ws.d[oc..oc + block],
                        &ws.active[lane0..lane0 + block],
                        PAIR_TOL,
                        &mut ws.cos[lane0..lane0 + block],
                        &mut ws.sin[lane0..lane0 + block],
                        &mut ws.t[lane0..lane0 + block],
                        &mut ws.applied[lane0..lane0 + block],
                    );
                    if any_live {
                        rotate_packed_soa(
                            &mut ws.d[base..base + tri * block],
                            n,
                            block,
                            i,
                            j,
                            &ws.cos[lane0..lane0 + block],
                            &ws.sin[lane0..lane0 + block],
                            &ws.t[lane0..lane0 + block],
                            &ws.applied[lane0..lane0 + block],
                        );
                        for q in lane0..lane0 + block {
                            ws.applied_count[q] += usize::from(ws.applied[q]);
                        }
                    }
                }
            }
            ws.sweep_seconds.push(started.elapsed().as_secs_f64());
            ws.scan_metrics();
            for p in 0..ws.problems {
                if ws.active[p] == 0 {
                    continue;
                }
                let rec = SweepRecord {
                    sweep,
                    mean_abs_cov: if n < 2 {
                        0.0
                    } else {
                        ws.abs_sum[p] / ((n * (n - 1) / 2) as f64)
                    },
                    off_frobenius: (2.0 * ws.sum_sq[p]).sqrt(),
                    max_abs_cov: ws.max_abs[p],
                    rotations_applied: ws.applied_count[p],
                    rotations_skipped: pair_count - ws.applied_count[p],
                };
                ws.histories[p].push(rec);
                if let Some(fault) = lane_health(&health, ws, p, &rec) {
                    ws.active[p] = 0;
                    ws.outcome[p] = LaneOutcome::Faulted(fault);
                    continue;
                }
                if is_converged(&opts.convergence, &rec, ws.trace[p], n) {
                    ws.active[p] = 0;
                    ws.outcome[p] = LaneOutcome::Converged;
                }
            }
        }
    }

    /// Extract per-problem results: `σᵢ = √D_ii` sorted descending, the
    /// wide-matrix truncated-tail check, prescale undo, and a per-problem
    /// [`SolveStats`] under the `"batch-soa"` engine name. `mats` must be
    /// the slice passed to [`BatchDriver::load`] (the row counts size each
    /// problem's thin spectrum).
    pub fn extract(
        &self,
        ws: &BatchWorkspace,
        mats: &[Matrix],
    ) -> Vec<Result<SingularValues, SvdError>> {
        assert_eq!(mats.len(), ws.problems, "extract: batch size mismatch");
        let n = ws.n;
        let diag = |r: usize, p: usize| ws.d[ws.at(r * (2 * n - r + 1) / 2, p)];
        (0..ws.problems)
            .map(|p| {
                match &ws.outcome[p] {
                    LaneOutcome::Invalid(e) => return Err(e.clone()),
                    LaneOutcome::Faulted(fault) => {
                        return Err(SvdError::SolveFault {
                            fault: *fault,
                            sweeps_completed: ws.histories[p].len(),
                            recoveries: 0,
                        })
                    }
                    LaneOutcome::Running | LaneOutcome::Converged => {}
                }
                let mut values: Vec<f64> = (0..n).map(|r| diag(r, p).max(0.0).sqrt()).collect();
                values.sort_by(|x, y| y.partial_cmp(x).expect("finite values"));
                let k = mats[p].rows().min(n);
                if k < values.len() {
                    let tail_mass: f64 = values[k..].iter().map(|s| s * s).sum();
                    let trace: f64 = (0..n).map(|r| diag(r, p)).sum();
                    if trace > 0.0 && tail_mass > trace * WIDE_TAIL_TOL {
                        return Err(SvdError::TruncatedTailNotNegligible);
                    }
                }
                values.truncate(k);
                unscale_values(&mut values, ws.exps[p]);
                let history = ws.histories[p].clone();
                let sweeps = history.len();
                let mut stats = SolveStats {
                    engine: BATCH_SOA_ENGINE,
                    ordering: "cyclic",
                    threads: 1,
                    replans: 1,
                    prescale_exp: ws.exps[p],
                    // Buffer growth is batch-wide (the interleaved triangle
                    // serves every lane), so each problem reports the
                    // workspace's cumulative event count rather than a
                    // per-problem share.
                    workspace_allocations: ws.allocations,
                    ..SolveStats::default()
                };
                for (rec, &secs) in history.iter().zip(&ws.sweep_seconds) {
                    stats.record_sweep(secs, rec);
                }
                // Same accounting model as the sequential engine: the O(n)
                // in-place rotation touches 4n − 2 packed entries and the
                // pair's two logical columns.
                stats.gram_bytes = 8 * (4 * n as u64 - 2) * stats.rotations_applied as u64;
                stats.gram_col_touches = 2 * stats.rotations_applied as u64;
                Ok(SingularValues { values, sweeps, history, stats })
            })
            .collect()
    }
}

/// Per-lane replica of [`crate::HealthCheck`]'s inspection, over the
/// workspace's fused metric scan — same thresholds, same check order.
fn lane_health(
    health: &crate::HealthCheck,
    ws: &mut BatchWorkspace,
    p: usize,
    rec: &SweepRecord,
) -> Option<Fault> {
    if !health.enabled {
        return None;
    }
    if !rec.off_frobenius.is_finite() || !rec.mean_abs_cov.is_finite() {
        return Some(Fault::NonFiniteGram { sweep: rec.sweep });
    }
    if ws.diag_finite[p] == 0 {
        return Some(Fault::NonFiniteGram { sweep: rec.sweep });
    }
    if health.negative_diagonal && ws.diag_min[p] < -NEGATIVE_DIAG_TOL * ws.diag_max_abs[p] {
        return Some(Fault::NegativeDiagonal { sweep: rec.sweep, index: ws.diag_argmin[p] });
    }
    if health.stall_sweeps > 0 {
        let floor = STALL_OFF_FLOOR * ws.diag_max_abs[p] * ws.n as f64;
        let progressing = rec.off_frobenius <= floor
            || rec.off_frobenius < ws.best_off[p] * (1.0 - STALL_MIN_PROGRESS);
        if progressing {
            ws.stalled[p] = 0;
        } else {
            ws.stalled[p] += 1;
            if ws.stalled[p] >= health.stall_sweeps {
                return Some(Fault::ConvergenceStall {
                    sweep: rec.sweep,
                    stalled_sweeps: ws.stalled[p],
                });
            }
        }
        ws.best_off[p] = ws.best_off[p].min(rec.off_frobenius);
    }
    None
}

/// Multiply every slice entry by `2^k` exactly, mirroring the scalar
/// driver's `apply_exp2` two-half-step split for extreme exponents.
fn scale_exact(values: &mut [f64], k: i32) {
    if k == 0 {
        return;
    }
    let steps: [i32; 2] = if k.abs() > 900 { [k / 2, k - k / 2] } else { [k, 0] };
    for s in steps {
        if s != 0 {
            let f = 2.0f64.powi(s);
            for v in values.iter_mut() {
                *v *= f;
            }
        }
    }
}

/// True when [`crate::HestenesSvd::singular_values_batch`] should route the
/// batch through the SoA engine: at least two problems, one uniform shape,
/// `2 ≤ n ≤` [`SOA_DISPATCH_MAX_N`], and the solver running the default
/// sequential engine / cyclic ordering with no threshold ramp (the
/// configurations whose semantics the batch engine reproduces).
pub(crate) fn soa_eligible(solver: &HestenesSvd, mats: &[Matrix]) -> bool {
    if mats.len() < 2 {
        return false;
    }
    let opts = solver.options();
    if opts.engine != EngineKind::Sequential
        || opts.ordering != Ordering::RoundRobin
        || opts.threshold.is_some()
    {
        return false;
    }
    let shape = mats[0].shape();
    if shape.1 < 2 || shape.1 > SOA_DISPATCH_MAX_N {
        return false;
    }
    mats.iter().all(|m| m.shape() == shape)
}

impl HestenesSvd {
    /// Batched singular values through the SoA engine: all problems swept
    /// together, one rotation kernel invocation per `(i, j)` pair across
    /// the whole batch. Results are within `1e-12·σ_max` of the looped
    /// [`crate::HestenesSvd::singular_values`] per problem; per-problem
    /// errors (invalid input, mid-solve faults) land in their own slots.
    ///
    /// ```
    /// use hj_core::{HestenesSvd, SvdOptions};
    /// use hj_matrix::gen;
    ///
    /// let mats: Vec<_> = (0..64).map(|k| gen::uniform(24, 12, k)).collect();
    /// let solver = HestenesSvd::new(SvdOptions::default());
    /// let batch = solver.singular_values_batch_soa(&mats);
    /// let one = solver.singular_values(&mats[7]).unwrap();
    /// let soa = batch[7].as_ref().unwrap();
    /// for (x, y) in soa.values.iter().zip(&one.values) {
    ///     assert!((x - y).abs() <= 1e-12 * one.values[0]);
    /// }
    /// ```
    ///
    /// # Panics
    /// Panics if the matrices do not all share one column count.
    pub fn singular_values_batch_soa(
        &self,
        mats: &[Matrix],
    ) -> Vec<Result<SingularValues, SvdError>> {
        let mut ws = BatchWorkspace::new();
        self.singular_values_batch_soa_with_workspace(mats, &mut ws)
    }

    /// [`HestenesSvd::singular_values_batch_soa`] over caller-owned scratch.
    /// A warm workspace solves repeated same-shape batches with zero
    /// steady-state heap allocations.
    ///
    /// # Panics
    /// Panics if the matrices do not all share one column count.
    pub fn singular_values_batch_soa_with_workspace(
        &self,
        mats: &[Matrix],
        ws: &mut BatchWorkspace,
    ) -> Vec<Result<SingularValues, SvdError>> {
        BatchDriver::new(self).solve(ws, mats)
    }

    /// [`HestenesSvd::singular_values_batch`]'s dispatch over caller-owned
    /// SoA scratch: uniform small batches run the SoA engine on `ws`,
    /// everything else falls back to the looped per-matrix path (which
    /// manages its own scalar workspaces). Long-lived servers keep one warm
    /// [`BatchWorkspace`] per worker and route every bulk job through this.
    pub fn singular_values_batch_with_workspace(
        &self,
        mats: &[Matrix],
        ws: &mut BatchWorkspace,
    ) -> Vec<Result<SingularValues, SvdError>> {
        if soa_eligible(self, mats) {
            return self.singular_values_batch_soa_with_workspace(mats, ws);
        }
        self.singular_values_batch_looped(mats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Convergence, SvdOptions};
    use hj_matrix::gen;

    fn uniform_batch(m: usize, n: usize, count: usize) -> Vec<Matrix> {
        (0..count).map(|k| gen::uniform(m, n, 900 + k as u64)).collect()
    }

    #[test]
    fn soa_batch_matches_looped_within_envelope() {
        let mats = uniform_batch(20, 8, 11);
        let solver = HestenesSvd::new(SvdOptions::default());
        let batch = solver.singular_values_batch_soa(&mats);
        for (k, res) in batch.iter().enumerate() {
            let one = solver.singular_values(&mats[k]).unwrap();
            let soa = res.as_ref().unwrap();
            assert_eq!(soa.values.len(), one.values.len());
            let smax = one.values[0].max(f64::MIN_POSITIVE);
            for (x, y) in soa.values.iter().zip(&one.values) {
                assert!((x - y).abs() <= 1e-12 * smax, "slot {k}: σ {x} vs {y}");
            }
            assert_eq!(soa.stats.engine, "batch-soa");
            assert_eq!(soa.stats.ordering, "cyclic");
            assert!(soa.sweeps >= 1 && soa.sweeps == soa.history.len());
        }
    }

    #[test]
    fn converged_problems_drop_out_at_their_own_sweep() {
        // Each lane runs the same cyclic schedule, guard, and metric fold
        // as the scalar sequential driver (parameters track it to ~1 ulp),
        // so a problem must freeze at the sweep its own criterion fires —
        // independent of how long its batch neighbors keep going.
        // Conditioning stays ≤ 1e6: past that, forming AᵀA leaves σ_min
        // with so few correct bits that the ulp-level parameter difference
        // cascades to ~1e-11·σ_max drift — the Gram method's own accuracy
        // floor, not a batching defect (the looped path drifts as much
        // between equivalent-but-reordered schedules).
        let mats = vec![
            gen::with_singular_values(24, 6, &[32.0, 16.0, 8.0, 4.0, 2.0, 1.0], 3),
            gen::with_condition_number(24, 6, 1e6, 4),
            gen::uniform(24, 6, 5),
        ];
        let solver = HestenesSvd::new(SvdOptions::default());
        let batch = solver.singular_values_batch_soa(&mats);
        let mut sweep_counts = Vec::new();
        for (k, res) in batch.iter().enumerate() {
            let one = solver.singular_values(&mats[k]).unwrap();
            let soa = res.as_ref().unwrap();
            assert_eq!(soa.sweeps, one.sweeps, "slot {k} must stop at its own sweep");
            assert_eq!(soa.history.len(), one.history.len(), "slot {k}");
            for (got, want) in soa.history.iter().zip(&one.history) {
                assert_eq!(got.sweep, want.sweep, "slot {k}");
                assert_eq!(
                    got.rotations_applied + got.rotations_skipped,
                    want.rotations_applied + want.rotations_skipped,
                    "slot {k}: every lane sees the full shared schedule each sweep"
                );
            }
            let smax = one.values[0].max(f64::MIN_POSITIVE);
            for (x, y) in soa.values.iter().zip(&one.values) {
                assert!((x - y).abs() <= 1e-12 * smax, "slot {k}: σ {x} vs {y}");
            }
            sweep_counts.push(soa.sweeps);
        }
        assert!(
            sweep_counts.iter().any(|&s| s != sweep_counts[0]),
            "test wants problems with distinct convergence sweeps, got {sweep_counts:?}"
        );
    }

    #[test]
    fn invalid_problems_error_in_their_own_slot() {
        let mut mats = uniform_batch(10, 4, 4);
        let mut poisoned = Matrix::zeros(10, 4);
        poisoned.set(3, 2, f64::NAN);
        mats[1] = poisoned;
        let solver = HestenesSvd::new(SvdOptions::default());
        let batch = solver.singular_values_batch_soa(&mats);
        assert!(matches!(batch[1], Err(SvdError::NonFiniteInput)));
        for (k, res) in batch.iter().enumerate() {
            if k == 1 {
                continue;
            }
            let one = solver.singular_values(&mats[k]).unwrap();
            let soa = res.as_ref().unwrap();
            for (x, y) in soa.values.iter().zip(&one.values) {
                assert!((x - y).abs() <= 1e-12 * one.values[0], "slot {k}");
            }
        }
    }

    #[test]
    fn prescaled_lanes_solve_out_of_window_inputs() {
        let base = uniform_batch(16, 5, 3);
        let mut mats = base.clone();
        mats[1] = base[1].scaled(1e160); // Gram would overflow unscaled
        let solver = HestenesSvd::new(SvdOptions::default());
        let batch = solver.singular_values_batch_soa(&mats);
        let huge = batch[1].as_ref().unwrap();
        assert_ne!(huge.stats.prescale_exp, 0);
        let clean = solver.singular_values(&base[1]).unwrap();
        for (x, y) in huge.values.iter().zip(&clean.values) {
            let want = y * 1e160;
            assert!((x - want).abs() <= 1e-10 * clean.values[0] * 1e160, "{x:e} vs {want:e}");
        }
        // Neighbors unscaled and unaffected.
        assert_eq!(batch[0].as_ref().unwrap().stats.prescale_exp, 0);
    }

    #[test]
    fn expired_budget_aborts_every_active_lane() {
        use crate::SolveBudget;
        use std::time::{Duration, Instant};
        let mats = uniform_batch(12, 4, 3);
        let solver = HestenesSvd::new(SvdOptions::default())
            .with_budget(SolveBudget::with_deadline(Instant::now() - Duration::from_millis(1)));
        for res in solver.singular_values_batch_soa(&mats) {
            match res {
                Err(SvdError::SolveFault { fault, sweeps_completed, recoveries }) => {
                    assert_eq!(fault, Fault::DeadlineExceeded { sweep: 1 });
                    assert_eq!(sweeps_completed, 0);
                    assert_eq!(recoveries, 0);
                }
                other => panic!("expected SolveFault, got {other:?}"),
            }
        }
    }

    #[test]
    fn wide_batch_truncates_or_rejects_like_the_scalar_driver() {
        let mats = vec![gen::uniform(4, 9, 7), gen::uniform(4, 9, 8)];
        let solver = HestenesSvd::new(SvdOptions::default());
        let ok = solver.singular_values_batch_soa(&mats);
        for (res, mat) in ok.iter().zip(&mats) {
            let sv = res.as_ref().unwrap();
            assert_eq!(sv.values.len(), 4);
            let one = solver.singular_values(mat).unwrap();
            for (x, y) in sv.values.iter().zip(&one.values) {
                assert!((x - y).abs() <= 1e-12 * one.values[0]);
            }
        }
        // One sweep leaves real mass in the discarded tail → per-slot error.
        let rushed = HestenesSvd::new(SvdOptions {
            convergence: Convergence::FixedSweeps(1),
            max_sweeps: 1,
            ..Default::default()
        });
        for res in rushed.singular_values_batch_soa(&mats) {
            assert!(matches!(res, Err(SvdError::TruncatedTailNotNegligible)));
        }
    }

    #[test]
    fn warm_workspace_is_bit_stable_and_stops_allocating() {
        let mats = uniform_batch(18, 6, 9);
        let solver = HestenesSvd::new(SvdOptions::default());
        let mut ws = BatchWorkspace::new();
        let first = solver.singular_values_batch_soa_with_workspace(&mats, &mut ws);
        let warm_allocs = ws.allocations();
        assert!(warm_allocs > 0, "first load must size the buffers");
        let second = solver.singular_values_batch_soa_with_workspace(&mats, &mut ws);
        assert_eq!(ws.allocations(), warm_allocs, "steady-state batches must not grow buffers");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.as_ref().unwrap().values, b.as_ref().unwrap().values);
        }
    }

    #[test]
    fn empty_batch_and_n1_edge_cases() {
        let solver = HestenesSvd::new(SvdOptions::default());
        assert!(solver.singular_values_batch_soa(&[]).is_empty());
        let mats = vec![Matrix::from_rows(&[&[3.0], &[4.0]]); 3];
        let batch = solver.singular_values_batch_soa(&mats);
        for res in batch {
            let sv = res.unwrap();
            assert!((sv.values[0] - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dispatch_eligibility_matches_the_documented_gate() {
        let solver = HestenesSvd::new(SvdOptions::default());
        let uniform = uniform_batch(20, 8, 4);
        assert!(soa_eligible(&solver, &uniform));
        assert!(!soa_eligible(&solver, &uniform[..1]), "singleton batches stay looped");
        let mut mixed = uniform_batch(20, 8, 4);
        mixed[2] = gen::uniform(20, 9, 1);
        assert!(!soa_eligible(&solver, &mixed), "mixed shapes stay looped");
        let big = uniform_batch(40, SOA_DISPATCH_MAX_N + 1, 3);
        assert!(!soa_eligible(&solver, &big), "n above the gate stays looped");
        let blocked =
            HestenesSvd::new(SvdOptions { engine: EngineKind::Blocked, ..Default::default() });
        assert!(!soa_eligible(&blocked, &uniform), "explicit engines stay looped");
    }
}
