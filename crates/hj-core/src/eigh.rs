//! Symmetric eigendecomposition by cyclic Jacobi — a direct byproduct of
//! the SVD machinery.
//!
//! For a symmetric matrix, the two-sided Jacobi rotation is the same
//! congruence `D ← JᵀDJ` that [`crate::GramState`] already implements for
//! the maintained covariance matrix, so a full eigensolver costs this crate
//! almost nothing extra — and gives the workspace a second view of the SVD
//! (`A = UΣVᵀ ⇔ AᵀA = VΣ²Vᵀ`) that the tests exploit for cross-checking.
//! Works for indefinite symmetric matrices too (eigenvalues may be
//! negative; nothing here assumes positive semidefiniteness).

use crate::convergence::{Convergence, SweepRecord, MAX_SWEEP_CAP};
use crate::engine::{PairGuard, RotationTarget, Sequential, SolveDriver, SolveMonitor, SweepState};
use crate::gram::GramState;
use crate::ordering::{Ordering, PlanBuffers, SweepSchedule};
use crate::recovery::HealthCheck;
use crate::stats::SolveStats;
use crate::SvdError;
use hj_matrix::{Matrix, PackedSymmetric};

/// A symmetric eigendecomposition `S = V Λ Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, sorted descending (may be negative).
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, matching `eigenvalues`.
    pub eigenvectors: Matrix,
    /// Sweeps used.
    pub sweeps: usize,
    /// Per-sweep convergence measurements (same records as the SVD drivers).
    pub history: Vec<SweepRecord>,
    /// Solve-level observability (timings, rotation counts, Gram traffic).
    pub stats: SolveStats,
}

/// Eigendecompose a symmetric matrix given in packed form.
///
/// `tol` is the relative off-diagonal threshold: pairs with
/// `|off-diagonal| ≤ tol · max|diagonal|` are skipped, and iteration stops
/// on the first sweep that applies no rotation (use `1e-14` for
/// machine-precision eigenvalues). Runs on the unified
/// [`SolveDriver`] with the [`Sequential`] engine, a
/// [`PairGuard::DiagonalScale`] guard (valid for indefinite matrices), and
/// the sweep budget capped at [`MAX_SWEEP_CAP`] like the SVD drivers.
///
/// ```
/// use hj_core::eigh::eigh;
/// use hj_matrix::PackedSymmetric;
///
/// let mut s = PackedSymmetric::zeros(2);
/// s.set(0, 0, 2.0);
/// s.set(1, 1, 2.0);
/// s.set(0, 1, 1.0);
/// let e = eigh(&s, 1e-14).unwrap();
/// assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
/// assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
/// ```
pub fn eigh(s: &PackedSymmetric, tol: f64) -> Result<SymmetricEigen, SvdError> {
    eigh_ordered(s, tol, Ordering::RoundRobin)
}

/// [`eigh`] with an explicit pair-ordering strategy.
///
/// Any ordering with per-sweep plans is accepted **except**
/// [`Ordering::ColumnNormPresort`]: the presort ranks pivot columns by
/// descending column norm, which is a convergence heuristic for the
/// positive-semidefinite Gram spectrum. On an indefinite symmetric matrix
/// the diagonal carries both signs, so "largest norm first" no longer
/// orders pivots by dominance and the heuristic silently degrades into a
/// slow, arbitrary order. That combination is rejected up front with
/// [`SvdError::OrderingUnsupported`] instead.
pub fn eigh_ordered(
    s: &PackedSymmetric,
    tol: f64,
    ordering: Ordering,
) -> Result<SymmetricEigen, SvdError> {
    if ordering == Ordering::ColumnNormPresort {
        return Err(SvdError::OrderingUnsupported {
            ordering: ordering.name(),
            context: "the indefinite eigensolver",
        });
    }
    let n = s.dim();
    if n == 0 {
        return Err(SvdError::EmptyInput);
    }
    if !s.as_slice().iter().all(|v| v.is_finite()) {
        return Err(SvdError::NonFiniteInput);
    }
    let mut g = GramState::from_packed(s.clone());
    let mut v = Matrix::identity(n);
    let mut buffers = PlanBuffers::new();
    let (strategy, plan) = buffers.schedule_parts(ordering);
    let mut schedule = SweepSchedule { strategy, plan, threshold: None };
    let driver = SolveDriver { convergence: Convergence::NoRotations, max_sweeps: MAX_SWEEP_CAP };
    let mut state = SweepState {
        gram: &mut g,
        target: RotationTarget::accumulate(&mut v),
        guard: PairGuard::DiagonalScale { tol },
    };
    // Monitored run with the indefinite-safe health profile: negative
    // diagonals are legitimate eigenvalues here, but non-finite state and
    // stalls still abort with a structured error instead of returning a
    // silently corrupted spectrum.
    let mut monitor = SolveMonitor::new(Default::default(), HealthCheck::indefinite());
    let run = driver.run_monitored(&mut Sequential, &mut state, &mut schedule, &mut monitor);
    if let Some(fault) = run.fault {
        return Err(SvdError::SolveFault {
            fault,
            sweeps_completed: run.stats.sweeps,
            recoveries: 0,
        });
    }
    let (history, stats) = (run.history, run.stats);
    let sweeps = history.len();
    // Extract, sort descending by eigenvalue.
    let diag = g.packed().diagonal();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).expect("finite"));
    let mut eigenvalues = Vec::with_capacity(n);
    let mut eigenvectors = Matrix::zeros(n, n);
    for (t, &i) in idx.iter().enumerate() {
        eigenvalues.push(diag[i]);
        eigenvectors.col_mut(t).copy_from_slice(v.col(i));
    }
    Ok(SymmetricEigen { eigenvalues, eigenvectors, sweeps, history, stats })
}

/// Convenience: eigendecompose a dense symmetric matrix (symmetry is
/// enforced by averaging `(S + Sᵀ)/2` into the packed form).
pub fn eigh_dense(s: &Matrix, tol: f64) -> Result<SymmetricEigen, SvdError> {
    eigh_dense_ordered(s, tol, Ordering::RoundRobin)
}

/// [`eigh_dense`] with an explicit pair-ordering strategy; rejects
/// [`Ordering::ColumnNormPresort`] like [`eigh_ordered`].
pub fn eigh_dense_ordered(
    s: &Matrix,
    tol: f64,
    ordering: Ordering,
) -> Result<SymmetricEigen, SvdError> {
    let (m, n) = s.shape();
    if m != n {
        return Err(SvdError::EmptyInput);
    }
    let mut p = PackedSymmetric::zeros(n);
    for i in 0..n {
        for j in i..n {
            p.set(i, j, 0.5 * (s.get(i, j) + s.get(j, i)));
        }
    }
    eigh_ordered(&p, tol, ordering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hj_matrix::{gen, norms, ops};

    fn check_decomposition(s: &PackedSymmetric, e: &SymmetricEigen, tol: f64) {
        let n = s.dim();
        assert!(norms::orthonormality_error(&e.eigenvectors) < tol);
        assert!(e.eigenvalues.windows(2).all(|w| w[0] >= w[1]));
        // S·v_t = λ_t·v_t for every pair.
        let dense = s.to_dense();
        for t in 0..n {
            let vt = e.eigenvectors.col(t);
            for r in 0..n {
                let sv: f64 = (0..n).map(|c| dense.get(r, c) * vt[c]).sum();
                let want = e.eigenvalues[t] * vt[r];
                assert!(
                    (sv - want).abs() < tol * e.eigenvalues[0].abs().max(1.0),
                    "eigenpair {t} violated at row {r}: {sv} vs {want}"
                );
            }
        }
    }

    #[test]
    fn psd_gram_matrix() {
        let a = gen::uniform(20, 6, 1);
        let s = a.gram();
        let e = eigh(&s, 1e-14).unwrap();
        check_decomposition(&s, &e, 1e-9);
        assert!(e.eigenvalues.iter().all(|&l| l >= -1e-10), "Gram eigenvalues are ≥ 0");
    }

    #[test]
    fn eigenvalues_are_squared_singular_values() {
        let a = gen::uniform(25, 7, 2);
        let e = eigh(&a.gram(), 1e-14).unwrap();
        let sv = crate::HestenesSvd::new(crate::SvdOptions::default()).singular_values(&a).unwrap();
        for (l, s) in e.eigenvalues.iter().zip(&sv.values) {
            assert!((l - s * s).abs() < 1e-9 * (s * s).max(1.0), "λ {l} vs σ² {}", s * s);
        }
    }

    #[test]
    fn indefinite_matrix() {
        // Symmetric but not PSD: eigenvalues of both signs.
        let mut s = PackedSymmetric::zeros(3);
        s.set(0, 0, 2.0);
        s.set(1, 1, -3.0);
        s.set(2, 2, 0.5);
        s.set(0, 1, 1.0);
        s.set(0, 2, -0.5);
        s.set(1, 2, 0.25);
        let e = eigh(&s, 1e-14).unwrap();
        check_decomposition(&s, &e, 1e-10);
        assert!(e.eigenvalues[0] > 0.0 && e.eigenvalues[2] < 0.0);
        // Trace is preserved.
        let tr: f64 = e.eigenvalues.iter().sum();
        assert!((tr - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix_is_immediate() {
        let mut s = PackedSymmetric::zeros(4);
        for (i, &d) in [3.0, -1.0, 7.0, 0.0].iter().enumerate() {
            s.set(i, i, d);
        }
        let e = eigh(&s, 1e-14).unwrap();
        assert_eq!(e.sweeps, 1);
        assert_eq!(e.eigenvalues, vec![7.0, 3.0, 0.0, -1.0]);
    }

    #[test]
    fn history_and_stats_are_populated() {
        let a = gen::uniform(18, 5, 6);
        let e = eigh(&a.gram(), 1e-14).unwrap();
        assert_eq!(e.history.len(), e.sweeps);
        assert_eq!(e.stats.sweeps, e.sweeps);
        assert_eq!(e.stats.sweep_seconds.len(), e.sweeps);
        assert_eq!(e.stats.engine, "sequential");
        assert_eq!(e.stats.threads, 1);
        assert_eq!(
            e.stats.rotations_applied,
            e.history.iter().map(|r| r.rotations_applied).sum::<usize>()
        );
        assert_eq!(e.history.last().unwrap().rotations_applied, 0, "stops on a clean sweep");
        assert!(e
            .history
            .windows(2)
            .all(|w| w[1].off_frobenius <= w[0].off_frobenius * (1.0 + 1e-12)));
    }

    #[test]
    fn known_spectrum_via_conjugation() {
        // S = Q Λ Qᵀ with known Λ.
        let lambda = [5.0, 2.0, -1.0, -4.0];
        let q = gen::random_orthonormal(4, 4, 9);
        let mut s = PackedSymmetric::zeros(4);
        for i in 0..4 {
            for j in i..4 {
                let v: f64 = (0..4).map(|t| lambda[t] * q.get(i, t) * q.get(j, t)).sum();
                s.set(i, j, v);
            }
        }
        let e = eigh(&s, 1e-14).unwrap();
        for (got, want) in e.eigenvalues.iter().zip(&lambda) {
            assert!((got - want).abs() < 1e-11, "{got} vs {want}");
        }
        // Eigenvectors match up to sign.
        for t in 0..4 {
            let d = ops::dot(e.eigenvectors.col(t), q.col(t)).abs();
            assert!(d > 1.0 - 1e-10, "eigenvector {t}: |dot| = {d}");
        }
    }

    #[test]
    fn eigh_dense_symmetrizes() {
        // Slightly asymmetric input is averaged.
        let s = Matrix::from_rows(&[&[1.0, 0.5 + 1e-13], &[0.5 - 1e-13, 2.0]]);
        let e = eigh_dense(&s, 1e-14).unwrap();
        assert_eq!(e.eigenvalues.len(), 2);
        assert!((e.eigenvalues[0] + e.eigenvalues[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn errors() {
        assert!(matches!(eigh(&PackedSymmetric::zeros(0), 1e-14), Err(SvdError::EmptyInput)));
        let mut s = PackedSymmetric::zeros(2);
        s.set(0, 1, f64::NAN);
        assert!(matches!(eigh(&s, 1e-14), Err(SvdError::NonFiniteInput)));
        assert!(matches!(eigh_dense(&Matrix::zeros(2, 3), 1e-14), Err(SvdError::EmptyInput)));
    }

    #[test]
    fn presort_ordering_is_rejected_on_the_indefinite_path() {
        // Regression: descending-column-norm presort assumes a PSD spectrum;
        // on an indefinite matrix it used to be accepted and just converge
        // slowly. It must now fail fast with a structured error.
        let a = gen::uniform(12, 5, 11);
        let err = eigh_ordered(&a.gram(), 1e-14, Ordering::ColumnNormPresort).unwrap_err();
        assert_eq!(
            err,
            SvdError::OrderingUnsupported {
                ordering: "presort",
                context: "the indefinite eigensolver"
            }
        );
        // Every other ordering still solves, and the spectra agree.
        let reference = eigh(&a.gram(), 1e-14).unwrap();
        for ordering in [Ordering::RoundRobin, Ordering::RowCyclic, Ordering::SortedGreedy] {
            let e = eigh_ordered(&a.gram(), 1e-14, ordering).unwrap();
            check_decomposition(&a.gram(), &e, 1e-9);
            for (got, want) in e.eigenvalues.iter().zip(&reference.eigenvalues) {
                assert!((got - want).abs() < 1e-9 * want.abs().max(1.0));
            }
            assert_eq!(e.stats.ordering, ordering.name());
        }
    }

    #[test]
    fn cyclic_eigh_ordered_matches_eigh_bitwise() {
        let a = gen::uniform(16, 6, 12);
        let plain = eigh(&a.gram(), 1e-14).unwrap();
        let routed = eigh_ordered(&a.gram(), 1e-14, Ordering::RoundRobin).unwrap();
        assert_eq!(plain.eigenvalues, routed.eigenvalues);
        assert_eq!(plain.eigenvectors.as_slice(), routed.eigenvectors.as_slice());
        assert_eq!(plain.sweeps, routed.sweeps);
    }

    #[test]
    fn one_by_one() {
        let mut s = PackedSymmetric::zeros(1);
        s.set(0, 0, -2.5);
        let e = eigh(&s, 1e-14).unwrap();
        assert_eq!(e.eigenvalues, vec![-2.5]);
        assert_eq!(e.eigenvectors.get(0, 0), 1.0);
    }
}
