//! Principal Component Analysis on top of the Hestenes-Jacobi SVD.
//!
//! PCA is the paper's motivating application (§I: "Among the classical
//! solutions for PCA, Singular Value Decomposition is the most popular
//! technique") and its stated future work ("extended to perform principal
//! component analysis for latent semantic indexing", §VII). This module
//! provides the standard fit/transform API: observations are **rows**,
//! features are **columns**; the model centers the data, runs the SVD of
//! the centered matrix, and exposes components, explained variance, and
//! projection/reconstruction.

use crate::svd::{HestenesSvd, SvdOptions};
use crate::SvdError;
use hj_matrix::{ops, Matrix};

/// A fitted PCA model.
///
/// ```
/// use hj_core::Pca;
/// use hj_matrix::gen;
///
/// let data = gen::gaussian(50, 6, 1);                 // rows = observations
/// let pca = Pca::fit_default(&data, 2).unwrap();
/// let scores = pca.transform(&data);                  // 50 × 2 projection
/// assert_eq!(scores.shape(), (50, 2));
/// assert!(pca.explained_variance()[0] >= pca.explained_variance()[1]);
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    /// Per-feature means subtracted before the SVD (length = features).
    mean: Vec<f64>,
    /// Principal directions: `features × k`, orthonormal columns, ordered
    /// by decreasing explained variance.
    components: Matrix,
    /// Sample variance along each component (σ²/(n_samples − 1)).
    explained_variance: Vec<f64>,
    /// Total variance of the centered data.
    total_variance: f64,
}

impl Pca {
    /// Fit a PCA with `k` components to `data` (rows = observations).
    ///
    /// `k` is clamped to `min(n_samples, n_features)`. Requires at least
    /// two observations (variance needs a denominator).
    pub fn fit(data: &Matrix, k: usize, options: SvdOptions) -> Result<Pca, SvdError> {
        let (rows, cols) = data.shape();
        if rows < 2 || cols == 0 {
            return Err(SvdError::EmptyInput);
        }
        // Center by column (feature) means.
        let mut centered = data.clone();
        let mut mean = vec![0.0f64; cols];
        for (c, mu) in mean.iter_mut().enumerate() {
            *mu = (0..rows).map(|r| centered.get(r, c)).sum::<f64>() / rows as f64;
            for r in 0..rows {
                let v = centered.get(r, c) - *mu;
                centered.set(r, c, v);
            }
        }
        let svd = HestenesSvd::new(options).decompose(&centered)?;
        let kmax = svd.singular_values.len();
        let k = k.min(kmax).max(1);
        let denom = (rows - 1) as f64;
        let explained_variance: Vec<f64> =
            svd.singular_values[..k].iter().map(|s| s * s / denom).collect();
        let total_variance: f64 = svd.singular_values.iter().map(|s| s * s / denom).sum();
        let components = svd.v.leading_columns(k);
        Ok(Pca { mean, components, explained_variance, total_variance })
    }

    /// Fit with default SVD options.
    pub fn fit_default(data: &Matrix, k: usize) -> Result<Pca, SvdError> {
        Pca::fit(data, k, SvdOptions::default())
    }

    /// Number of components retained.
    pub fn n_components(&self) -> usize {
        self.components.cols()
    }

    /// The principal directions, `features × k` with orthonormal columns.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// The per-feature mean removed during fitting.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Sample variance captured by each retained component.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured by each retained component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        if self.total_variance == 0.0 {
            return vec![0.0; self.explained_variance.len()];
        }
        self.explained_variance.iter().map(|v| v / self.total_variance).collect()
    }

    /// Cumulative variance fraction captured by all retained components.
    pub fn captured_variance(&self) -> f64 {
        if self.total_variance == 0.0 {
            0.0
        } else {
            self.explained_variance.iter().sum::<f64>() / self.total_variance
        }
    }

    /// Project observations (rows = samples, features must match the fit)
    /// into the component space: returns `samples × k` scores.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let (rows, cols) = data.shape();
        assert_eq!(cols, self.mean.len(), "feature count must match the fitted model");
        let k = self.n_components();
        let mut out = Matrix::zeros(rows, k);
        let mut centered_row = vec![0.0f64; cols];
        for r in 0..rows {
            for (c, v) in centered_row.iter_mut().enumerate() {
                *v = data.get(r, c) - self.mean[c];
            }
            for t in 0..k {
                out.set(r, t, ops::dot(&centered_row, self.components.col(t)));
            }
        }
        out
    }

    /// Map component-space scores back to feature space (the rank-`k`
    /// reconstruction): `x̂ = mean + scores · componentsᵀ`.
    pub fn inverse_transform(&self, scores: &Matrix) -> Matrix {
        let (rows, k) = scores.shape();
        assert_eq!(k, self.n_components(), "score width must match component count");
        let cols = self.mean.len();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let mut v = self.mean[c];
                for t in 0..k {
                    v += scores.get(r, t) * self.components.get(c, t);
                }
                out.set(r, c, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hj_matrix::{gen, norms};

    /// Data with variance overwhelmingly along two known directions.
    fn planar_data(samples: usize, dim: usize, seed: u64) -> (Matrix, Matrix) {
        let basis = gen::random_orthonormal(dim, 2, seed);
        let coords = gen::gaussian(samples, 2, seed ^ 99);
        let noise = gen::gaussian(samples, dim, seed ^ 7);
        let mut data = Matrix::zeros(samples, dim);
        for r in 0..samples {
            for d in 0..dim {
                let v = 10.0 * coords.get(r, 0) * basis.get(d, 0)
                    + 4.0 * coords.get(r, 1) * basis.get(d, 1)
                    + 0.05 * noise.get(r, d);
                data.set(r, d, v);
            }
        }
        (data, basis)
    }

    #[test]
    fn recovers_planted_subspace() {
        let (data, basis) = planar_data(80, 12, 1);
        let pca = Pca::fit_default(&data, 2).unwrap();
        assert_eq!(pca.n_components(), 2);
        // The spans must agree: each planted basis vector is (almost)
        // entirely inside the recovered component span.
        for b in 0..2 {
            let mut in_span = 0.0;
            for t in 0..2 {
                let d = ops::dot(basis.col(b), pca.components().col(t));
                in_span += d * d;
            }
            assert!(in_span > 0.99, "basis vector {b} only {in_span:.4} inside the span");
        }
        assert!(pca.captured_variance() > 0.99);
    }

    #[test]
    fn explained_variance_is_sorted_and_ratios_sum_to_capture() {
        let (data, _) = planar_data(60, 8, 3);
        let pca = Pca::fit_default(&data, 4).unwrap();
        let ev = pca.explained_variance();
        assert!(ev.windows(2).all(|w| w[0] >= w[1]));
        let ratios = pca.explained_variance_ratio();
        let sum: f64 = ratios.iter().sum();
        assert!((sum - pca.captured_variance()).abs() < 1e-12);
        assert!(ratios[0] > ratios[1]);
    }

    #[test]
    fn transform_then_inverse_is_rank_k_reconstruction() {
        let (data, _) = planar_data(40, 10, 5);
        let pca = Pca::fit_default(&data, 2).unwrap();
        let scores = pca.transform(&data);
        assert_eq!(scores.shape(), (40, 2));
        let rec = pca.inverse_transform(&scores);
        // With ~99.9% captured variance, reconstruction is near-exact.
        let err = norms::frobenius(&data.sub(&rec).unwrap()) / norms::frobenius(&data);
        assert!(err < 0.02, "relative reconstruction error {err}");
    }

    #[test]
    fn scores_are_uncorrelated() {
        let (data, _) = planar_data(100, 6, 9);
        let pca = Pca::fit_default(&data, 3).unwrap();
        let scores = pca.transform(&data);
        // Score columns are orthogonal (they are U·Σ columns of the
        // centered data, up to sign).
        for i in 0..3 {
            for j in i + 1..3 {
                let covar = ops::dot(scores.col(i), scores.col(j));
                let scale = ops::norm(scores.col(i)) * ops::norm(scores.col(j));
                assert!(covar.abs() < 1e-8 * scale.max(1.0), "scores {i},{j} correlate: {covar}");
            }
        }
    }

    #[test]
    fn mean_is_removed() {
        let mut data = gen::uniform(30, 4, 11);
        // Shift feature 2 by a large constant; PCA must be invariant.
        for r in 0..30 {
            let v = data.get(r, 2) + 1000.0;
            data.set(r, 2, v);
        }
        let pca = Pca::fit_default(&data, 2).unwrap();
        assert!((pca.mean()[2] - 1000.0).abs() < 1.0);
        // Variance must not be dominated by the constant shift.
        assert!(pca.explained_variance()[0] < 10.0);
    }

    #[test]
    fn k_is_clamped() {
        let data = gen::uniform(10, 3, 13);
        let pca = Pca::fit_default(&data, 99).unwrap();
        assert_eq!(pca.n_components(), 3);
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(Pca::fit_default(&Matrix::zeros(1, 5), 2).is_err());
        assert!(Pca::fit_default(&Matrix::zeros(5, 0), 2).is_err());
    }

    #[test]
    fn constant_data_has_zero_variance() {
        let mut data = Matrix::zeros(10, 3);
        for r in 0..10 {
            for c in 0..3 {
                data.set(r, c, 7.0);
            }
        }
        let pca = Pca::fit_default(&data, 2).unwrap();
        assert_eq!(pca.captured_variance(), 0.0);
        assert!(pca.explained_variance_ratio().iter().all(|&r| r == 0.0));
    }

    #[test]
    #[should_panic(expected = "feature count")]
    fn transform_checks_feature_count() {
        let data = gen::uniform(10, 4, 17);
        let pca = Pca::fit_default(&data, 2).unwrap();
        let wrong = gen::uniform(3, 5, 18);
        let _ = pca.transform(&wrong);
    }
}
