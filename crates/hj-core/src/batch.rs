//! Batched solves over independent matrices.
//!
//! The paper's architecture processes one decomposition at a time, but the
//! motivating workloads (PCA over many sensor windows, blocks of a larger
//! problem) arrive as *batches* of independent matrices. These drivers fan
//! the batch across the thread pool, one solve per matrix:
//!
//! * **Deterministic ordering** — result `k` always corresponds to input
//!   `k`, regardless of which worker ran it or in what order solves
//!   finished.
//! * **Bit-identical results** — each solve is the exact same computation as
//!   its one-at-a-time counterpart (the engines are bit-deterministic at any
//!   thread count, and a solve running on a pool worker degrades its own
//!   inner parallelism to inline execution, which computes the same bits).
//! * **Per-solve isolation** — a bad input (e.g. NaN → `NonFiniteInput`)
//!   yields an `Err` in its own slot and leaves every other solve untouched.
//! * **Workspace pooling** — every solve checks a [`SweepWorkspace`] out of
//!   a shared [`WorkspacePool`] and returns it afterwards, so a fan-out of
//!   `B` matrices over `T` workers warms at most `min(B, T)` workspaces
//!   instead of allocating a fresh one per matrix. Pooling is transparent:
//!   the engines record per-solve counter deltas, and a warm workspace
//!   computes the same bits as a cold one.

use crate::parallel::SweepWorkspace;
use crate::svd::{HestenesSvd, SingularValues, Svd};
use crate::SvdError;
use hj_matrix::Matrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A checkout/checkin pool of [`SweepWorkspace`]s for fan-out solves.
///
/// `checkout` hands back the most recently returned workspace (warmest
/// first) or creates a fresh one when the pool is empty; `checkin` returns
/// it for the next solve. The pool never shrinks and is safe to share
/// across threads.
#[derive(Default)]
pub struct WorkspacePool {
    free: Mutex<Vec<SweepWorkspace>>,
    created: AtomicUsize,
}

impl WorkspacePool {
    /// An empty pool; workspaces are created on demand.
    pub fn new() -> Self {
        WorkspacePool::default()
    }

    /// Take a workspace (warmest available, or a fresh one).
    pub fn checkout(&self) -> SweepWorkspace {
        if let Some(ws) = self.free.lock().expect("workspace pool poisoned").pop() {
            return ws;
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        SweepWorkspace::new()
    }

    /// Return a workspace for reuse by later solves.
    pub fn checkin(&self, ws: SweepWorkspace) {
        self.free.lock().expect("workspace pool poisoned").push(ws);
    }

    /// Total workspaces ever created by this pool.
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Workspaces currently checked in and idle.
    pub fn available(&self) -> usize {
        self.free.lock().expect("workspace pool poisoned").len()
    }
}

impl HestenesSvd {
    /// Decompose every matrix of the batch with this solver's options.
    ///
    /// ```
    /// use hj_core::{HestenesSvd, SvdOptions};
    /// use hj_matrix::gen;
    ///
    /// let mats: Vec<_> = (0..4).map(|k| gen::uniform(16, 6, k)).collect();
    /// let solver = HestenesSvd::new(SvdOptions::default());
    /// let results = solver.decompose_batch(&mats);
    /// assert_eq!(results.len(), 4);
    /// assert!(results.iter().all(|r| r.is_ok()));
    /// ```
    pub fn decompose_batch(&self, mats: &[Matrix]) -> Vec<Result<Svd, SvdError>> {
        self.decompose_batch_pooled(mats, &WorkspacePool::new())
    }

    /// [`HestenesSvd::decompose_batch`] drawing scratch from a caller-owned
    /// pool — reuse one pool across repeated batches to keep the workspaces
    /// warm between calls.
    pub fn decompose_batch_pooled(
        &self,
        mats: &[Matrix],
        pool: &WorkspacePool,
    ) -> Vec<Result<Svd, SvdError>> {
        self.batch(mats, pool, |m, ws| self.decompose_with_workspace(m, ws))
    }

    /// Values-only counterpart of [`HestenesSvd::decompose_batch`].
    ///
    /// Uniform-shape batches of small problems (`2 ≤ n ≤ 32`, default
    /// sequential engine and cyclic ordering) dispatch to the batched SoA
    /// engine ([`HestenesSvd::singular_values_batch_soa`]), which sweeps
    /// every problem together — same per-slot error isolation, results
    /// within the documented `1e-12·σ_max` envelope of the looped path.
    /// Everything else (mixed shapes, larger problems, explicit engine or
    /// threshold configurations) takes the looped per-matrix path, which
    /// stays bit-identical to one-at-a-time solves.
    pub fn singular_values_batch(&self, mats: &[Matrix]) -> Vec<Result<SingularValues, SvdError>> {
        if crate::batch_engine::soa_eligible(self, mats) {
            return self.singular_values_batch_soa(mats);
        }
        self.singular_values_batch_looped(mats)
    }

    /// The looped per-matrix batch path, bypassing the SoA dispatch of
    /// [`HestenesSvd::singular_values_batch`] — one full scalar solve per
    /// matrix, bit-identical to [`HestenesSvd::singular_values`] per slot.
    /// This is the baseline the `batch_throughput` benchmark compares the
    /// SoA engine against.
    pub fn singular_values_batch_looped(
        &self,
        mats: &[Matrix],
    ) -> Vec<Result<SingularValues, SvdError>> {
        self.singular_values_batch_pooled(mats, &WorkspacePool::new())
    }

    /// [`HestenesSvd::singular_values_batch`] drawing scratch from a
    /// caller-owned pool.
    pub fn singular_values_batch_pooled(
        &self,
        mats: &[Matrix],
        pool: &WorkspacePool,
    ) -> Vec<Result<SingularValues, SvdError>> {
        self.batch(mats, pool, |m, ws| self.singular_values_with_workspace(m, ws))
    }

    fn batch<T, F>(
        &self,
        mats: &[Matrix],
        pool: &WorkspacePool,
        solve: F,
    ) -> Vec<Result<T, SvdError>>
    where
        T: Send,
        F: Fn(&Matrix, &mut SweepWorkspace) -> Result<T, SvdError> + Sync,
    {
        // One checkout per worker-sized chunk, not per matrix: per-item
        // checkout/checkin let a large batch cycle workspaces through the
        // pool faster than warm ones came back, re-creating (and re-warming)
        // workspaces mid-batch. Chunking pins the checkout count to the
        // chunk count — at most one workspace per worker, deterministically.
        let chunk = mats.len().div_ceil(rayon::current_num_threads().max(1)).max(1);
        let parts = mats.len().div_ceil(chunk);
        let starts: Vec<usize> = (0..=parts).map(|r| (r * chunk).min(mats.len())).collect();
        let mut out: Vec<Option<Result<T, SvdError>>> = (0..mats.len()).map(|_| None).collect();
        rayon::par_rows_for_each(&mut out, &starts, |r, slots| {
            let mut ws = pool.checkout();
            for (off, slot) in slots.iter_mut().enumerate() {
                *slot = Some(solve(&mats[r * chunk + off], &mut ws));
            }
            pool.checkin(ws);
        });
        out.into_iter().map(|r| r.expect("every batch slot is filled")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineKind;
    use crate::{Convergence, SvdOptions};
    use hj_matrix::gen;

    fn mixed_batch() -> Vec<Matrix> {
        vec![
            gen::uniform(20, 6, 1),
            gen::uniform(9, 9, 2),
            gen::uniform(6, 20, 3), // wide
            gen::with_singular_values(24, 4, &[8.0, 4.0, 2.0, 1.0], 4),
        ]
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let mats = mixed_batch();
        for engine in [EngineKind::Sequential, EngineKind::Parallel, EngineKind::Blocked] {
            let solver = HestenesSvd::new(SvdOptions { engine, ..Default::default() });
            let batch = solver.decompose_batch(&mats);
            assert_eq!(batch.len(), mats.len());
            for (k, res) in batch.iter().enumerate() {
                let one = solver.decompose(&mats[k]).unwrap();
                let b = res.as_ref().unwrap();
                assert_eq!(b.u.as_slice(), one.u.as_slice(), "U[{k}] differs");
                assert_eq!(b.singular_values, one.singular_values, "σ[{k}] differs");
                assert_eq!(b.v.as_slice(), one.v.as_slice(), "V[{k}] differs");
                assert_eq!(b.sweeps, one.sweeps);
            }
        }
    }

    #[test]
    fn values_batch_matches_sequential_bitwise() {
        let mats = mixed_batch();
        let solver = HestenesSvd::new(SvdOptions::default());
        let batch = solver.singular_values_batch(&mats);
        for (k, res) in batch.iter().enumerate() {
            let one = solver.singular_values(&mats[k]).unwrap();
            assert_eq!(res.as_ref().unwrap().values, one.values, "σ[{k}] differs");
        }
    }

    #[test]
    fn bad_input_does_not_poison_the_batch() {
        let mut mats = mixed_batch();
        let mut poisoned = Matrix::zeros(5, 3);
        poisoned.set(2, 1, f64::NAN);
        mats.insert(2, poisoned);
        mats.push(Matrix::zeros(0, 4)); // empty → EmptyInput

        let solver = HestenesSvd::new(SvdOptions::default());
        let batch = solver.decompose_batch(&mats);
        assert_eq!(batch.len(), mats.len());
        assert!(matches!(batch[2], Err(SvdError::NonFiniteInput)));
        assert!(matches!(batch[mats.len() - 1], Err(SvdError::EmptyInput)));
        for (k, res) in batch.iter().enumerate() {
            if k == 2 || k == mats.len() - 1 {
                continue;
            }
            let one = solver.decompose(&mats[k]).unwrap();
            let b = res.as_ref().expect("good input must solve");
            assert_eq!(b.singular_values, one.singular_values, "slot {k} perturbed");
        }
    }

    #[test]
    fn per_solve_errors_are_positional() {
        // An unconverged wide truncation errors in its own slot too.
        let mats = vec![gen::uniform(6, 20, 5), gen::uniform(20, 6, 5)];
        let opts = SvdOptions {
            convergence: Convergence::FixedSweeps(1),
            max_sweeps: 1,
            ..Default::default()
        };
        let batch = HestenesSvd::new(opts).singular_values_batch(&mats);
        assert!(matches!(batch[0], Err(SvdError::TruncatedTailNotNegligible)));
        assert!(batch[1].is_ok());
    }

    #[test]
    fn faulted_solves_do_not_poison_the_pool() {
        // Every solve under an already-expired deadline aborts with a
        // structured fault in its own slot — and the workspaces those
        // aborted solves checked back in must be indistinguishable from
        // fresh ones for the next batch.
        let mats = mixed_batch();
        let pool = WorkspacePool::new();
        let expired = std::time::Instant::now() - std::time::Duration::from_millis(1);
        let faulty =
            HestenesSvd::new(SvdOptions { engine: EngineKind::Blocked, ..Default::default() })
                .with_budget(crate::SolveBudget::with_deadline(expired))
                .with_recovery_policy(crate::RecoveryPolicy::abort_only());
        let batch = faulty.decompose_batch_pooled(&mats, &pool);
        for (k, res) in batch.iter().enumerate() {
            assert!(
                matches!(res, Err(SvdError::SolveFault { .. })),
                "slot {k} should abort on the expired deadline, got {res:?}"
            );
        }
        // Same pool, healthy solver: bit-identical to a fresh pool.
        let clean =
            HestenesSvd::new(SvdOptions { engine: EngineKind::Blocked, ..Default::default() });
        let reused = clean.decompose_batch_pooled(&mats, &pool);
        let fresh = clean.decompose_batch_pooled(&mats, &WorkspacePool::new());
        for (k, (r, f)) in reused.iter().zip(&fresh).enumerate() {
            let r = r.as_ref().expect("healthy solve");
            let f = f.as_ref().expect("healthy solve");
            assert_eq!(r.singular_values, f.singular_values, "slot {k} σ poisoned");
            assert_eq!(r.u.as_slice(), f.u.as_slice(), "slot {k} U poisoned");
            assert_eq!(r.v.as_slice(), f.v.as_slice(), "slot {k} V poisoned");
        }
    }

    #[test]
    fn uniform_small_batches_dispatch_to_the_soa_engine() {
        // Uniform shapes at n ≤ 32 under the default options take the SoA
        // path (visible through the stats engine name); mixed shapes keep
        // the looped path and its bit-identical guarantee.
        let uniform: Vec<_> = (0..6).map(|k| gen::uniform(20, 8, 50 + k)).collect();
        let solver = HestenesSvd::new(SvdOptions::default());
        let batch = solver.singular_values_batch(&uniform);
        for (k, res) in batch.iter().enumerate() {
            let sv = res.as_ref().unwrap();
            assert_eq!(sv.stats.engine, "batch-soa", "slot {k} should take the SoA path");
            let one = solver.singular_values(&uniform[k]).unwrap();
            let smax = one.values[0];
            for (x, y) in sv.values.iter().zip(&one.values) {
                assert!((x - y).abs() <= 1e-12 * smax, "slot {k}");
            }
        }
        let looped = solver.singular_values_batch(&mixed_batch());
        for res in &looped {
            assert_eq!(res.as_ref().unwrap().stats.engine, "sequential");
        }
        // The explicit escape hatch never dispatches.
        for res in solver.singular_values_batch_looped(&uniform) {
            assert_eq!(res.unwrap().stats.engine, "sequential");
        }
    }

    #[test]
    fn pool_checkout_is_chunk_deterministic() {
        // Regression: the per-item checkout/checkin cycle could create more
        // workspaces than workers when a big batch outpaced checkins. The
        // chunked path pins creation to min(batch, threads) exactly — and a
        // second batch over the warm pool creates nothing.
        let mats: Vec<_> = (0..64).map(|k| gen::uniform(12, 5, 300 + k)).collect();
        let solver =
            HestenesSvd::new(SvdOptions { engine: EngineKind::Blocked, ..Default::default() });
        let pool = WorkspacePool::new();
        solver.decompose_batch_pooled(&mats, &pool);
        let cap = rayon::current_num_threads().max(1).min(mats.len());
        assert!(pool.created() <= cap, "created {} workspaces for a cap of {cap}", pool.created());
        assert_eq!(pool.available(), pool.created());
        let created = pool.created();
        solver.decompose_batch_pooled(&mats, &pool);
        assert_eq!(pool.created(), created, "warm pool must not re-create workspaces");
    }

    #[test]
    fn empty_batch_is_fine() {
        let solver = HestenesSvd::new(SvdOptions::default());
        assert!(solver.decompose_batch(&[]).is_empty());
        assert!(solver.singular_values_batch(&[]).is_empty());
    }

    #[test]
    fn pool_bounds_workspace_creation_and_is_transparent() {
        // 8 same-shape solves through one pool: at most one workspace per
        // worker thread ever exists, all come back, and the results match
        // the unpooled path bit for bit.
        let mats: Vec<_> = (0..8).map(|k| gen::uniform(18, 7, 100 + k)).collect();
        for engine in [EngineKind::Parallel, EngineKind::Blocked] {
            let solver = HestenesSvd::new(SvdOptions { engine, ..Default::default() });
            let pool = WorkspacePool::new();
            let pooled = solver.decompose_batch_pooled(&mats, &pool);
            assert!(pool.created() >= 1);
            assert!(
                pool.created() <= rayon::current_num_threads().max(1),
                "pool created {} workspaces for {} workers",
                pool.created(),
                rayon::current_num_threads()
            );
            assert_eq!(pool.available(), pool.created(), "all workspaces checked back in");
            // A second batch over the same pool creates nothing new.
            let again = solver.singular_values_batch_pooled(&mats, &pool);
            assert_eq!(pool.available(), pool.created());
            for (k, res) in pooled.iter().enumerate() {
                let one = solver.decompose(&mats[k]).unwrap();
                let b = res.as_ref().unwrap();
                assert_eq!(b.singular_values, one.singular_values, "{engine:?} slot {k}");
                assert_eq!(b.u.as_slice(), one.u.as_slice());
                assert_eq!(b.v.as_slice(), one.v.as_slice());
                let one_values = solver.singular_values(&mats[k]).unwrap();
                assert_eq!(again[k].as_ref().unwrap().values, one_values.values);
            }
        }
    }
}
