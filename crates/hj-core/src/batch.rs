//! Batched solves over independent matrices.
//!
//! The paper's architecture processes one decomposition at a time, but the
//! motivating workloads (PCA over many sensor windows, blocks of a larger
//! problem) arrive as *batches* of independent matrices. These drivers fan
//! the batch across the thread pool, one solve per matrix:
//!
//! * **Deterministic ordering** — result `k` always corresponds to input
//!   `k`, regardless of which worker ran it or in what order solves
//!   finished.
//! * **Bit-identical results** — each solve is the exact same computation as
//!   its one-at-a-time counterpart (the engines are bit-deterministic at any
//!   thread count, and a solve running on a pool worker degrades its own
//!   inner parallelism to inline execution, which computes the same bits).
//! * **Per-solve isolation** — a bad input (e.g. NaN → `NonFiniteInput`)
//!   yields an `Err` in its own slot and leaves every other solve untouched.

use crate::svd::{HestenesSvd, SingularValues, Svd};
use crate::SvdError;
use hj_matrix::Matrix;
use rayon::prelude::*;

impl HestenesSvd {
    /// Decompose every matrix of the batch with this solver's options.
    ///
    /// ```
    /// use hj_core::{HestenesSvd, SvdOptions};
    /// use hj_matrix::gen;
    ///
    /// let mats: Vec<_> = (0..4).map(|k| gen::uniform(16, 6, k)).collect();
    /// let solver = HestenesSvd::new(SvdOptions::default());
    /// let results = solver.decompose_batch(&mats);
    /// assert_eq!(results.len(), 4);
    /// assert!(results.iter().all(|r| r.is_ok()));
    /// ```
    pub fn decompose_batch(&self, mats: &[Matrix]) -> Vec<Result<Svd, SvdError>> {
        self.batch(mats, |m| self.decompose(m))
    }

    /// Values-only counterpart of [`HestenesSvd::decompose_batch`].
    pub fn singular_values_batch(&self, mats: &[Matrix]) -> Vec<Result<SingularValues, SvdError>> {
        self.batch(mats, |m| self.singular_values(m))
    }

    fn batch<T, F>(&self, mats: &[Matrix], solve: F) -> Vec<Result<T, SvdError>>
    where
        T: Send,
        F: Fn(&Matrix) -> Result<T, SvdError> + Sync,
    {
        let mut out: Vec<Option<Result<T, SvdError>>> = (0..mats.len()).map(|_| None).collect();
        out.par_iter_mut().enumerate().for_each(|(k, slot)| *slot = Some(solve(&mats[k])));
        out.into_iter().map(|r| r.expect("every batch slot is filled")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Convergence, SvdOptions};
    use hj_matrix::gen;

    fn mixed_batch() -> Vec<Matrix> {
        vec![
            gen::uniform(20, 6, 1),
            gen::uniform(9, 9, 2),
            gen::uniform(6, 20, 3), // wide
            gen::with_singular_values(24, 4, &[8.0, 4.0, 2.0, 1.0], 4),
        ]
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let mats = mixed_batch();
        for parallel in [false, true] {
            let solver = HestenesSvd::new(SvdOptions { parallel, ..Default::default() });
            let batch = solver.decompose_batch(&mats);
            assert_eq!(batch.len(), mats.len());
            for (k, res) in batch.iter().enumerate() {
                let one = solver.decompose(&mats[k]).unwrap();
                let b = res.as_ref().unwrap();
                assert_eq!(b.u.as_slice(), one.u.as_slice(), "U[{k}] differs");
                assert_eq!(b.singular_values, one.singular_values, "σ[{k}] differs");
                assert_eq!(b.v.as_slice(), one.v.as_slice(), "V[{k}] differs");
                assert_eq!(b.sweeps, one.sweeps);
            }
        }
    }

    #[test]
    fn values_batch_matches_sequential_bitwise() {
        let mats = mixed_batch();
        let solver = HestenesSvd::new(SvdOptions::default());
        let batch = solver.singular_values_batch(&mats);
        for (k, res) in batch.iter().enumerate() {
            let one = solver.singular_values(&mats[k]).unwrap();
            assert_eq!(res.as_ref().unwrap().values, one.values, "σ[{k}] differs");
        }
    }

    #[test]
    fn bad_input_does_not_poison_the_batch() {
        let mut mats = mixed_batch();
        let mut poisoned = Matrix::zeros(5, 3);
        poisoned.set(2, 1, f64::NAN);
        mats.insert(2, poisoned);
        mats.push(Matrix::zeros(0, 4)); // empty → EmptyInput

        let solver = HestenesSvd::new(SvdOptions::default());
        let batch = solver.decompose_batch(&mats);
        assert_eq!(batch.len(), mats.len());
        assert!(matches!(batch[2], Err(SvdError::NonFiniteInput)));
        assert!(matches!(batch[mats.len() - 1], Err(SvdError::EmptyInput)));
        for (k, res) in batch.iter().enumerate() {
            if k == 2 || k == mats.len() - 1 {
                continue;
            }
            let one = solver.decompose(&mats[k]).unwrap();
            let b = res.as_ref().expect("good input must solve");
            assert_eq!(b.singular_values, one.singular_values, "slot {k} perturbed");
        }
    }

    #[test]
    fn per_solve_errors_are_positional() {
        // An unconverged wide truncation errors in its own slot too.
        let mats = vec![gen::uniform(6, 20, 5), gen::uniform(20, 6, 5)];
        let opts = SvdOptions {
            convergence: Convergence::FixedSweeps(1),
            max_sweeps: 1,
            ..Default::default()
        };
        let batch = HestenesSvd::new(opts).singular_values_batch(&mats);
        assert!(matches!(batch[0], Err(SvdError::TruncatedTailNotNegligible)));
        assert!(batch[1].is_ok());
    }

    #[test]
    fn empty_batch_is_fine() {
        let solver = HestenesSvd::new(SvdOptions::default());
        assert!(solver.decompose_batch(&[]).is_empty());
        assert!(solver.singular_values_batch(&[]).is_empty());
    }
}
