//! Vectorization-friendly inner kernels — the software mirror of the
//! paper's concurrent-dataflow units (Fig. 4).
//!
//! Every hot loop of the three sweep engines routes through this module.
//! Before it existed, the engines walked the packed covariance triangle
//! through [`PackedSymmetric::get`]/[`set`](PackedSymmetric::set) — a
//! branch (argument swap), a multiply (row-offset polynomial), and a bounds
//! check *per element*, which kept LLVM from vectorizing anything and made
//! the cache-tiled engine slower than the sequential one (the ROADMAP item-1
//! inversion). The kernels here replace that with slice traversals:
//!
//! * [`rotate_packed`] — the `O(n)` in-place Gram rotation of Algorithm 1
//!   lines 15–26, decomposed into the triangle's three natural regions so
//!   the dominant region runs on two contiguous slices (autovectorized via
//!   [`ops::rotate_pair`]) and the strided regions walk incrementally with
//!   no per-element offset math.
//! * [`gather_column`] / [`scatter_column`] — the blocked engine's tile
//!   staging: a logical column of `D` moved to/from a dense slice, with the
//!   `k ≥ c` majority as a single `memcpy`.
//! * [`batch_params`] — rotation parameters for a whole round-robin pair
//!   group at once, structure-of-arrays in (`D_ii`, `D_jj`, `D_ij` lanes)
//!   and SoA out (`cos`, `sin`, `t` lanes), mirroring the independent
//!   per-pair parameter units the paper's Fig. 6 schedules concurrently.
//!
//! # Bit-compat policy
//!
//! Every kernel computes **exactly** the elementwise expressions of the
//! scalar path it replaces — same operations, same order per element, no
//! re-association, no FMA contraction — so results are bit-identical to the
//! pre-kernel code. The only freedom taken is *traversal* order across
//! independent elements (chunking, region splitting, loop interchange),
//! which cannot change any bit because each element is read and written by
//! exactly one rotation expression. In particular [`batch_params`] runs the
//! `ρ → t → cos → sin` chain of [`crate::rotation::textbook_params`] per lane —
//! the SoA layout gives the batched shape of the paper's eqs. (8)–(10)
//! dataflow while keeping the engines' pinned bit-compat (the flattened
//! hardware form itself differs from the textbook chain by re-association;
//! `tests/kernel_compat.rs` carries the same `1e-12`-absolute pin on
//! `cos`/`sin` that the two scalar formulations have always had).
//!
//! Two kernels are deliberately exempt, both confined to the batch engine
//! whose accuracy contract is a pinned `1e-12·σ_max` envelope rather than
//! bit equality:
//!
//! * [`batch_params_soa`] computes the textbook chain branchlessly with
//!   `sqrt` in place of `f64::hypot` so the whole lanes-wide loop
//!   vectorizes (the libm call would serialize it). Its parameters agree
//!   with [`crate::rotation::textbook_params`] to ~1 ulp while its skip
//!   *decision* stays bit-exact against the scalar guard; see its doc for
//!   the exact formulation.
//! * [`rotate_packed_soa`]'s off-diagonal loop contracts to fused
//!   multiply-adds on targets with a hardware FMA unit (`cfg`-gated — never
//!   a software-fma fallback). Each rotated entry lands within 1 ulp of the
//!   scalar expression (the fused form is the *more* accurate of the two);
//!   diagonal, annihilated-covariance, and skipped-lane entries stay
//!   bit-exact on every target.
//!
//! Every other kernel's compat test pins exact equality against the scalar
//! references.
//!
//! # Lane layout and tails
//!
//! Contiguous runs are processed in [`ops::ROTATE_LANES`]-wide chunks with a
//! scalar tail (odd `n`, non-multiple-of-lane lengths — proptested). Strided
//! runs (the `k < i` head of a logical column) cannot vectorize on packed
//! storage; they instead walk with two adds per step, replacing the offset
//! polynomial + branch of the `get`/`set` path.

use crate::rotation::{rotate_norms, Rotation};
use hj_matrix::{ops, PackedSymmetric};

/// Shared live-lane threshold for the SoA kernels' sparse paths: with fewer
/// than one live lane in eight, walking live lanes one by one beats the
/// lanes-wide vector pass. [`batch_params_soa`] and [`rotate_packed_soa`]
/// must agree on this boundary — below it the params kernel only writes the
/// live lanes' outputs, and the rotation kernel only reads them.
#[inline]
fn sparse_lanes(live: usize, lanes: usize) -> bool {
    live * 8 <= lanes
}

/// Apply the plane rotation `rot` of column pair `(i, j)`, `i < j`, to the
/// packed triangle in place — Algorithm 1 lines 15–26, bit-identical to the
/// scalar `get`/`set` loop it replaces.
///
/// The "all `k ≠ i, j`" loop of the pseudocode splits into the triangle's
/// three regions, each with its own memory shape:
///
/// ```text
/// k < i     : (k,i) and (k,j) both strided — incremental walk, stride n−k−1
/// i < k < j : (i,k) contiguous in row i; (k,j) strided
/// k > j     : (i,k) and (j,k) two contiguous row tails — rotate_pair (SIMD)
/// ```
///
/// For a random pair each region averages a third of the column, and the
/// contiguous share grows as the round-robin ordering visits large `j`.
pub fn rotate_packed(d: &mut PackedSymmetric, i: usize, j: usize, rot: &Rotation) {
    debug_assert!(i != j, "degenerate pair");
    let n = d.dim();
    debug_assert!(i < n && j < n);
    let (i, j) = if i < j { (i, j) } else { (j, i) };
    let (cos, sin) = (rot.cos, rot.sin);
    let ri = d.row_offset(i);
    let rj = d.row_offset(j);
    let data = d.as_mut_slice();
    // Diagonal + annihilated covariance (lines 15–17): the exact O(1)
    // updates, identical to the rotate_norms expressions.
    let cov = data[ri + (j - i)];
    let (ni, nj, _) = rotate_norms(data[ri], data[rj], cov, rot);
    data[ri] = ni;
    data[rj] = nj;
    data[ri + (j - i)] = 0.0;
    // Region 1, k < i: offsets (k,i) and (k,j) start at i and j in row 0 and
    // advance by n − k − 1 per step (row k+1 is one entry shorter).
    let mut oi = i;
    let mut oj = j;
    for k in 0..i {
        let x = data[oi];
        let y = data[oj];
        data[oi] = x * cos - y * sin;
        data[oj] = x * sin + y * cos;
        let step = n - k - 1;
        oi += step;
        oj += step;
    }
    // Region 2, i < k < j: (i,k) walks row i contiguously; (k,j) continues
    // the strided walk below row i.
    let mut okj = ri + (n - i) + (j - i - 1); // offset(i+1, j)
    for (oik, k) in (ri + 1..).zip((i + 1)..j) {
        let x = data[oik];
        let y = data[okj];
        data[oik] = x * cos - y * sin;
        data[okj] = x * sin + y * cos;
        okj += n - k - 1;
    }
    // Region 3, k > j: two contiguous row tails — the vectorized majority.
    let tail = n - j - 1;
    if tail > 0 {
        let (head, row_j) = data.split_at_mut(rj + 1);
        let row_i = &mut head[ri + (j - i) + 1..ri + (j - i) + 1 + tail];
        ops::rotate_pair(row_i, &mut row_j[..tail], cos, sin);
    }
}

/// Copy logical column `c` of the packed triangle (`out[k] = D[k][c]` for
/// all `k`) into a dense slice — the blocked engine's tile staging read.
///
/// The `k < c` head is the strided walk described on
/// [`PackedSymmetric::row_offset`]; the `k ≥ c` tail is row `c` itself,
/// copied with one `memcpy`.
///
/// # Panics
/// Panics if `out.len() != n` or `c ≥ n` (debug: explicit asserts; release:
/// slice bounds).
pub fn gather_column(d: &PackedSymmetric, c: usize, out: &mut [f64]) {
    let n = d.dim();
    debug_assert!(c < n);
    debug_assert_eq!(out.len(), n);
    let data = d.as_slice();
    let mut o = c;
    for (k, slot) in out[..c].iter_mut().enumerate() {
        *slot = data[o];
        o += n - k - 1;
    }
    let rc = d.row_offset(c);
    out[c..n].copy_from_slice(&data[rc..rc + (n - c)]);
}

/// Write a dense slice back as logical column `c` of the packed triangle
/// (`D[k][c] = src[k]` for all `k`) — the blocked engine's tile write-back.
/// Mirror image of [`gather_column`].
pub fn scatter_column(d: &mut PackedSymmetric, c: usize, src: &[f64]) {
    let n = d.dim();
    debug_assert!(c < n);
    debug_assert_eq!(src.len(), n);
    let rc = d.row_offset(c);
    let data = d.as_mut_slice();
    let mut o = c;
    for (k, &v) in src[..c].iter().enumerate() {
        data[o] = v;
        o += n - k - 1;
    }
    data[rc..rc + (n - c)].copy_from_slice(&src[c..n]);
}

/// Rotation parameters for a whole pair group at once, SoA in / SoA out.
///
/// `norms_i[k]`, `norms_j[k]`, `covs[k]` are the `(D_ii, D_jj, D_ij)` of the
/// group's `k`-th pair; the outputs land in `cos[k]`, `sin[k]`, `t[k]`.
/// Each lane runs exactly the [`crate::rotation::textbook_params`] chain
/// (including its `cov == 0 → identity` case and `sign(0) = +1`
/// convention), so the batched output is bit-identical to calling the
/// scalar kernel per pair — the bit-compat policy above. The SoA shape is
/// what lets the round planner compute a whole round-robin group's
/// parameters in one straight-line loop, the software analogue of the
/// paper's concurrently-scheduled parameter units.
///
/// # Panics
/// Panics in debug builds if the six slices disagree on length.
pub fn batch_params(
    norms_i: &[f64],
    norms_j: &[f64],
    covs: &[f64],
    cos: &mut [f64],
    sin: &mut [f64],
    t: &mut [f64],
) {
    let len = norms_i.len();
    debug_assert!(
        norms_j.len() == len
            && covs.len() == len
            && cos.len() == len
            && sin.len() == len
            && t.len() == len,
        "batch_params: SoA lanes disagree on length"
    );
    for k in 0..len {
        let (ni, nj, cov) = (norms_i[k], norms_j[k], covs[k]);
        if cov == 0.0 {
            cos[k] = 1.0;
            sin[k] = 0.0;
            t[k] = 0.0;
            continue;
        }
        let zeta = (nj - ni) / (2.0 * cov);
        let sign = if zeta >= 0.0 { 1.0 } else { -1.0 };
        let tk = sign / (zeta.abs() + f64::hypot(1.0, zeta));
        let ck = 1.0 / f64::hypot(1.0, tk);
        cos[k] = ck;
        sin[k] = ck * tk;
        t[k] = tk;
    }
}

/// Rotation parameters for the **same** pair `(i, j)` across a whole batch
/// of interleaved problems — the cross-problem SoA counterpart of
/// [`batch_params`].
///
/// `norms_i`, `norms_j`, `covs` hold one lane per problem (`(D_ii, D_jj,
/// D_ij)` of problem `p` in lane `p`); `active` masks lanes that still
/// participate (converged/faulted problems and padding lanes carry 0).
/// Each lane makes the same *decision* chain as the scalar sweep loop:
///
/// * inactive lane → identity parameters (`cos = 1, sin = 0, t = 0`),
///   `applied[p] = 0`;
/// * pair already orthogonal under the Drmač guard
///   (`cov² ≤ tol²·D_ii·D_jj`, the [`crate::rotation::pair_converged`]
///   test the scalar engines use, evaluated with the exact same
///   expression) → identity, `applied[p] = 0`;
/// * otherwise the [`crate::rotation::textbook_params`] `ρ → t → cos → sin`
///   chain, `applied[p] = 1`.
///
/// # Throughput formulation (the one deliberate deviation)
///
/// This is the only kernel exempt from the module's bit-compat policy.
/// The scalar chain branches per pair and calls `f64::hypot` twice — an
/// opaque libm call per lane that serializes the whole loop. Here the
/// chain is straight-line (branches become selects) and the two hypots
/// become `sqrt(1 + x²)`, which LLVM vectorizes lanes-wide:
///
/// * `cos` uses `1/√(1 + t²)` directly — safe because `|t| ≤ 1` always;
/// * `t` uses `sign/(|ζ| + √(1 + ζ²))` while `|ζ| ≤ 1e150` (no overflow
///   possible) and the asymptotic `sign/(2|ζ|)` beyond it, whose relative
///   distance to the exact value is below `1/(4ζ²) < 1e-300`.
///
/// The results agree with `textbook_params` to ~1 ulp per parameter, which
/// the batch engine's pinned `1e-12·σ_max` accuracy envelope absorbs; the
/// *skip decision* (`applied`) is still bit-exact against the scalar guard.
/// Dead lanes fall out of the arithmetic itself: `t = 0` forces
/// `cos = 1/√1 = 1` and `sin = 1·0 = 0` with no extra masking.
///
/// Lanes never read each other, so a NaN-poisoned problem computes NaN
/// parameters for *its own lane only* — the per-problem fault isolation the
/// batch driver builds on.
///
/// Returns `true` when at least one lane applies a rotation. The decision
/// pass (compares and multiplies only) runs first; the expensive
/// `div`/`sqrt` chain runs only when some lane is live, so pairs that the
/// whole batch has orthogonalized — the common case in late sweeps — cost
/// a mask scan and nothing else. **When it returns `false`, `cos`/`sin`/`t`
/// are unspecified** (every `applied` lane is 0, so there is no rotation to
/// read them). When fewer than one lane in eight is live, only the *live*
/// lanes' outputs are specified — the matching sparse walk in
/// [`rotate_packed_soa`] (same threshold) reads no others.
///
/// # Panics
/// Panics in debug builds if the slices disagree on length.
// Inlined because the batch engine calls it once per (block, pair): at
// block width 16 the fixed call cost would rival the lane arithmetic.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn batch_params_soa(
    norms_i: &[f64],
    norms_j: &[f64],
    covs: &[f64],
    active: &[u8],
    tol: f64,
    cos: &mut [f64],
    sin: &mut [f64],
    t: &mut [f64],
    applied: &mut [u8],
) -> bool {
    let lanes = norms_i.len();
    debug_assert!(
        norms_j.len() == lanes
            && covs.len() == lanes
            && active.len() == lanes
            && cos.len() == lanes
            && sin.len() == lanes
            && t.len() == lanes
            && applied.len() == lanes,
        "batch_params_soa: SoA lanes disagree on length"
    );
    // Re-slice to a proven common length so the loop bodies carry no
    // per-element bounds checks — one check per slice here, then the lane
    // loops auto-vectorize (including the div/sqrt chain).
    let (norms_j, covs, active) = (&norms_j[..lanes], &covs[..lanes], &active[..lanes]);
    let (cos, sin, t, applied) =
        (&mut cos[..lanes], &mut sin[..lanes], &mut t[..lanes], &mut applied[..lanes]);
    // Decision pass: the same guard expression as the scalar sweep loop,
    // computed as a mask so the loop stays branch-free — and with no
    // divider-unit work, so it is cheap enough to run unconditionally.
    let mut live_lanes = 0usize;
    for p in 0..lanes {
        let live = (active[p] != 0)
            & !crate::rotation::pair_converged(norms_i[p], norms_j[p], covs[p], tol);
        applied[p] = u8::from(live);
        live_lanes += usize::from(live);
    }
    if live_lanes == 0 {
        return false;
    }
    // Sparse path: with only straggler lanes live, the lanes-wide div/sqrt
    // chain (divider-throughput-bound, so its cost scales with the full
    // width) wastes most of its work on dead lanes. Compute just the live
    // lanes with the exact same expressions — bit-identical outputs for
    // them; dead lanes' outputs stay unspecified, which is fine because
    // `rotate_packed_soa`'s sparse walk (same threshold) never reads them.
    if sparse_lanes(live_lanes, lanes) {
        for p in 0..lanes {
            if applied[p] == 0 {
                continue;
            }
            let (ni, nj, cov) = (norms_i[p], norms_j[p], covs[p]);
            let zeta = (nj - ni) / (2.0 * cov);
            let azeta = zeta.abs();
            let sign = if zeta >= 0.0 { 1.0 } else { -1.0 };
            let root = (1.0 + zeta * zeta).sqrt();
            let tp_near = sign / (azeta + root);
            let tp_far = sign / (2.0 * azeta);
            let tp = if azeta <= 1e150 { tp_near } else { tp_far };
            let cp = 1.0 / (1.0 + tp * tp).sqrt();
            cos[p] = cp;
            sin[p] = cp * tp;
            t[p] = tp;
        }
        return true;
    }
    for p in 0..lanes {
        let (ni, nj, cov) = (norms_i[p], norms_j[p], covs[p]);
        let live = applied[p] != 0;
        // Unconditional textbook chain. Dead lanes may produce inf/NaN
        // intermediates here (e.g. cov = 0 → ζ = ±inf); the `live` select
        // on `t` discards them before they reach any output.
        let zeta = (nj - ni) / (2.0 * cov);
        let azeta = zeta.abs();
        let sign = if zeta >= 0.0 { 1.0 } else { -1.0 };
        let root = (1.0 + zeta * zeta).sqrt();
        let tp_near = sign / (azeta + root);
        let tp_far = sign / (2.0 * azeta);
        let tp_live = if azeta <= 1e150 { tp_near } else { tp_far };
        let tp = if live { tp_live } else { 0.0 };
        let cp = 1.0 / (1.0 + tp * tp).sqrt();
        cos[p] = cp;
        sin[p] = cp * tp;
        t[p] = tp;
    }
    true
}

/// Apply per-lane plane rotations of pair `(i, j)`, `i < j`, to a batch of
/// interleaved packed triangles — the cross-problem SoA counterpart of
/// [`rotate_packed`].
///
/// `d` holds the `n(n+1)/2` packed-triangle entries of every problem with
/// the problem index fastest-moving: entry `(r, c)` of problem `p` lives at
/// `(row_offset(r) + c − r) · lanes + p` (see [`hj_matrix::soa`]). The
/// per-lane parameters come straight from [`batch_params_soa`]: non-applied
/// lanes carry the identity `(cos, sin) = (1, 0)`, under which the lanes-wide
/// off-diagonal update `x' = x·1 − y·0` reproduces `x` exactly for every
/// non-zero value (only a `−0.0` can flip sign — invisible to the
/// diagonal-derived spectrum and to every magnitude-based metric). The
/// diagonal and annihilated-covariance updates are masked explicitly, so
/// skipped lanes keep their `D_ii`, `D_jj`, `D_ij` bit-for-bit.
///
/// Where the AoS [`rotate_packed`] splits the `k ≠ i, j` loop into three
/// memory regions (two of them strided), the SoA layout has no strided
/// region at all: every `(k, i)`/`(k, j)` entry is a contiguous `lanes`-wide
/// slice, so the whole update is one straight-line vectorizable loop — the
/// point of batching across problems.
///
/// When fewer than one lane in eight applies the rotation, the kernel
/// switches to a sparse per-lane walk that touches only the live lanes'
/// strided entries (same expressions, hence bit-identical output) instead
/// of streaming the full batch — the late-sweep straggler case.
///
/// On targets with a hardware FMA unit the off-diagonal updates contract to
/// fused multiply-adds (both paths, so path choice never changes a bit) —
/// the module-level bit-compat exemption. Each affected entry stays within
/// 1 ulp of the plain expression; identity lanes still reproduce their
/// values exactly (`fma(x, 1, −0·s) = x`), and the diagonal/covariance
/// updates above are uncontracted everywhere.
///
/// # Panics
/// Panics in debug builds on slice-length mismatches; release builds panic
/// on the underlying slice indexing.
// Inlined for the same per-(block, pair) call cadence as
// `batch_params_soa`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn rotate_packed_soa(
    d: &mut [f64],
    n: usize,
    lanes: usize,
    i: usize,
    j: usize,
    cos: &[f64],
    sin: &[f64],
    t: &[f64],
    applied: &[u8],
) {
    debug_assert!(i < j && j < n, "rotate_packed_soa: bad pair ({i}, {j}) for n={n}");
    debug_assert_eq!(d.len(), n * (n + 1) / 2 * lanes);
    debug_assert!(
        cos.len() == lanes && sin.len() == lanes && t.len() == lanes && applied.len() == lanes
    );
    // Re-slice to a proven common length so the lane loops carry no
    // per-element bounds checks and auto-vectorize.
    let (cos, sin, t, applied) = (&cos[..lanes], &sin[..lanes], &t[..lanes], &applied[..lanes]);
    // Packed-triangle offset of entry (r, c) with r ≤ c, in logical units.
    let off = |r: usize, c: usize| r * (2 * n - r + 1) / 2 + (c - r);
    // Diagonal + annihilated covariance (the rotate_norms expressions),
    // selected per lane so skipped problems are untouched bit-for-bit.
    let (oi, oj, oc) = (off(i, i) * lanes, off(j, j) * lanes, off(i, j) * lanes);
    // Sparse path: when only a handful of lanes still rotate this pair
    // (stragglers in late sweeps), streaming every lane wastes the whole
    // batch's bandwidth on identity updates. Walking just the live lanes'
    // strided entries costs ~2n scalar rotations per lane, which beats the
    // lanes-wide stream once live lanes drop under ~1/8 of the batch. The
    // per-entry expressions are the exact ones below, so the result is
    // bit-identical to the dense path for every lane (untouched lanes keep
    // even the −0.0s the dense identity update would normalize).
    let live: usize = applied.iter().map(|&a| usize::from(a)).sum();
    if sparse_lanes(live, lanes) {
        for p in 0..lanes {
            if applied[p] == 0 {
                continue;
            }
            let (cp, sp, tp) = (cos[p], sin[p], t[p]);
            let cov = d[oc + p];
            let ni = d[oi + p] - tp * cov;
            let nj = d[oj + p] + tp * cov;
            d[oi + p] = ni;
            d[oj + p] = nj;
            d[oc + p] = 0.0;
            for k in 0..n {
                if k == i || k == j {
                    continue;
                }
                let a = off(k.min(i), k.max(i)) * lanes + p;
                let b = off(k.min(j), k.max(j)) * lanes + p;
                let x = d[a];
                let y = d[b];
                // Same (cfg-gated) expressions as the dense loop below, so
                // path selection never changes a bit.
                if cfg!(target_feature = "fma") {
                    d[a] = x.mul_add(cp, -(y * sp));
                    d[b] = x.mul_add(sp, y * cp);
                } else {
                    d[a] = x * cp - y * sp;
                    d[b] = x * sp + y * cp;
                }
            }
        }
        return;
    }
    for p in 0..lanes {
        let m = applied[p] != 0;
        let cov = d[oc + p];
        let ni = d[oi + p] - t[p] * cov;
        let nj = d[oj + p] + t[p] * cov;
        d[oi + p] = if m { ni } else { d[oi + p] };
        d[oj + p] = if m { nj } else { d[oj + p] };
        d[oc + p] = if m { 0.0 } else { cov };
    }
    // All k ≠ i, j: rotate the lanes-wide entry pairs ((k,i),(k,j)) /
    // ((i,k),(k,j)) / ((i,k),(j,k)). The i-side offset is always the
    // smaller one (its row index is min(k,i) ≤ min(k,j)), so one
    // split_at_mut yields the two disjoint slices.
    for k in 0..n {
        if k == i || k == j {
            continue;
        }
        let a = off(k.min(i), k.max(i)) * lanes;
        let b = off(k.min(j), k.max(j)) * lanes;
        let (head, tail) = d.split_at_mut(b);
        let xs = &mut head[a..a + lanes];
        let ys = &mut tail[..lanes];
        if cfg!(target_feature = "fma") {
            // Fused form: 4 FP ops per entry pair instead of 6 on hardware
            // with an FMA unit — the off-diagonal exemption documented
            // above. Never taken on targets without the unit, where
            // `mul_add` would fall back to (slow, but still correct)
            // software fma.
            for p in 0..lanes {
                let x = xs[p];
                let y = ys[p];
                xs[p] = x.mul_add(cos[p], -(y * sin[p]));
                ys[p] = x.mul_add(sin[p], y * cos[p]);
            }
        } else {
            for p in 0..lanes {
                let x = xs[p];
                let y = ys[p];
                xs[p] = x * cos[p] - y * sin[p];
                ys[p] = x * sin[p] + y * cos[p];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotation::textbook_params;
    use hj_matrix::gen;

    fn packed_from_seed(n: usize, seed: u64) -> PackedSymmetric {
        let a = gen::uniform(2 * n + 3, n, seed);
        a.gram()
    }

    /// The scalar reference: the pre-kernel get/set loop, verbatim.
    fn rotate_reference(d: &mut PackedSymmetric, i: usize, j: usize, rot: &Rotation) {
        let n = d.dim();
        let (cos, sin) = (rot.cos, rot.sin);
        let cov = d.get(i, j);
        let (ni, nj, _) = rotate_norms(d.get(i, i), d.get(j, j), cov, rot);
        d.set(i, i, ni);
        d.set(j, j, nj);
        d.set(i, j, 0.0);
        for k in 0..n {
            if k == i || k == j {
                continue;
            }
            let dki = d.get(k, i);
            let dkj = d.get(k, j);
            d.set(k, i, dki * cos - dkj * sin);
            d.set(k, j, dki * sin + dkj * cos);
        }
    }

    #[test]
    fn rotate_packed_is_bit_identical_to_scalar_reference() {
        for n in [2usize, 3, 5, 8, 13, 17] {
            let base = packed_from_seed(n, 7 + n as u64);
            for i in 0..n {
                for j in (i + 1)..n {
                    let rot = {
                        let g = &base;
                        textbook_params(g.get(i, i), g.get(j, j), g.get(i, j))
                    };
                    let mut fast = base.clone();
                    let mut refr = base.clone();
                    rotate_packed(&mut fast, i, j, &rot);
                    rotate_reference(&mut refr, i, j, &rot);
                    assert_eq!(fast.as_slice(), refr.as_slice(), "n={n} pair ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn rotate_packed_accepts_swapped_pair_order() {
        let base = packed_from_seed(6, 3);
        let rot = textbook_params(base.get(1, 1), base.get(4, 4), base.get(1, 4));
        let mut a = base.clone();
        let mut b = base;
        rotate_packed(&mut a, 1, 4, &rot);
        rotate_packed(&mut b, 4, 1, &rot);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn gather_scatter_round_trip_every_column() {
        for n in [1usize, 2, 4, 7, 12] {
            let d = packed_from_seed(n, 100 + n as u64);
            for c in 0..n {
                let mut col = vec![0.0; n];
                gather_column(&d, c, &mut col);
                for (k, &v) in col.iter().enumerate() {
                    assert_eq!(v, d.get(k, c), "n={n} col {c} row {k}");
                }
                let mut back = d.clone();
                scatter_column(&mut back, c, &col);
                assert_eq!(back.as_slice(), d.as_slice(), "n={n} col {c}");
            }
        }
    }

    #[test]
    fn batch_params_matches_scalar_textbook_bitwise() {
        let inputs: Vec<(f64, f64, f64)> = (0..64)
            .map(|k| {
                let x = (k as f64 + 1.0) * 0.7;
                (x, 65.0 - x, if k % 3 == 0 { 0.0 } else { (k as f64 - 30.0) * 0.11 })
            })
            .collect();
        let ni: Vec<f64> = inputs.iter().map(|p| p.0).collect();
        let nj: Vec<f64> = inputs.iter().map(|p| p.1).collect();
        let cv: Vec<f64> = inputs.iter().map(|p| p.2).collect();
        let (mut c, mut s, mut t) = (vec![0.0; 64], vec![0.0; 64], vec![0.0; 64]);
        batch_params(&ni, &nj, &cv, &mut c, &mut s, &mut t);
        for k in 0..64 {
            let r = textbook_params(ni[k], nj[k], cv[k]);
            assert_eq!((c[k], s[k], t[k]), (r.cos, r.sin, r.t), "lane {k}");
        }
    }

    #[test]
    fn batch_params_soa_masks_inactive_and_converged_lanes() {
        use crate::sweep::PAIR_TOL;
        let ni = [4.0, 9.0, 1.0, 16.0];
        let nj = [2.0, 3.0, 1.0, 8.0];
        // Lane 2's covariance sits under the Drmač guard; lane 3 is inactive.
        let cv = [1.5, -2.0, 1e-18, 5.0];
        let active = [1u8, 1, 1, 0];
        let (mut c, mut s, mut t) = ([0.0; 4], [0.0; 4], [0.0; 4]);
        let mut applied = [9u8; 4];
        batch_params_soa(&ni, &nj, &cv, &active, PAIR_TOL, &mut c, &mut s, &mut t, &mut applied);
        for p in [0usize, 1] {
            // Live lanes: the sqrt-based chain tracks the hypot-based scalar
            // one to a few ulps (documented deviation), and the skip
            // decision is exact.
            let r = textbook_params(ni[p], nj[p], cv[p]);
            assert_eq!(applied[p], 1, "lane {p}");
            assert!(
                (c[p] - r.cos).abs() <= 4.0 * f64::EPSILON,
                "lane {p} cos {} vs {}",
                c[p],
                r.cos
            );
            assert!(
                (s[p] - r.sin).abs() <= 4.0 * f64::EPSILON,
                "lane {p} sin {} vs {}",
                s[p],
                r.sin
            );
            assert!((t[p] - r.t).abs() <= 4.0 * f64::EPSILON, "lane {p} t {} vs {}", t[p], r.t);
        }
        for p in [2usize, 3] {
            // Masked lanes are exact identity — no tolerance.
            assert_eq!((c[p], s[p], t[p], applied[p]), (1.0, 0.0, 0.0, 0), "lane {p}");
        }
    }

    /// Compare a deinterleaved SoA lane against its scalar reference: exact
    /// on non-FMA targets; on FMA hardware the off-diagonal contraction may
    /// move each rotated entry by ≤ 1 ulp, bounded here by a few ulps of
    /// the triangle's magnitude (cancellation makes a relative per-entry
    /// bound meaningless near zero).
    fn assert_lane_matches(got: &[f64], want: &[f64], ctx: &str) {
        if cfg!(target_feature = "fma") {
            let scale = want.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
            for (k, (a, b)) in got.iter().zip(want).enumerate() {
                assert!((a - b).abs() <= 4.0 * f64::EPSILON * scale, "{ctx} entry {k}: {a} vs {b}");
            }
        } else {
            assert_eq!(got, want, "{ctx}");
        }
    }

    #[test]
    fn rotate_packed_soa_sparse_path_is_bit_identical_too() {
        use hj_matrix::soa;
        // 32 problems with only 2 live lanes trips the sparse (< 1/8) walk;
        // its output must match the per-problem scalar reference bit-for-bit
        // and leave every dead lane untouched.
        let n = 9usize;
        let problems: Vec<PackedSymmetric> =
            (0..32).map(|p| packed_from_seed(n, 300 + p as u64)).collect();
        let lanes = soa::lane_padded(problems.len());
        let tri = n * (n + 1) / 2;
        let mut d = vec![0.0; tri * lanes];
        for (p, g) in problems.iter().enumerate() {
            soa::interleave(g.as_slice(), p, lanes, &mut d);
        }
        let (i, j) = (2usize, 6usize);
        let (mut c, mut s, mut t) = (vec![1.0; lanes], vec![0.0; lanes], vec![0.0; lanes]);
        let mut applied = vec![0u8; lanes];
        for p in [5usize, 20] {
            let g = &problems[p];
            let r = textbook_params(g.get(i, i), g.get(j, j), g.get(i, j));
            c[p] = r.cos;
            s[p] = r.sin;
            t[p] = r.t;
            applied[p] = 1;
        }
        let before = d.clone();
        rotate_packed_soa(&mut d, n, lanes, i, j, &c, &s, &t, &applied);
        for (p, g) in problems.iter().enumerate() {
            let mut back = vec![0.0; tri];
            soa::deinterleave(&d, p, lanes, &mut back);
            if applied[p] != 0 {
                let r = textbook_params(g.get(i, i), g.get(j, j), g.get(i, j));
                let mut reference = g.clone();
                rotate_packed(&mut reference, i, j, &r);
                assert_lane_matches(&back, reference.as_slice(), &format!("live lane {p}"));
            } else {
                let mut untouched = vec![0.0; tri];
                soa::deinterleave(&before, p, lanes, &mut untouched);
                assert_eq!(back, untouched, "dead lane {p} must keep its bits");
            }
        }
    }

    #[test]
    fn rotate_packed_soa_matches_per_problem_rotate_packed() {
        use hj_matrix::soa;
        // Four problems interleaved; lane 3 skipped (identity params) must
        // keep its triangle bit-for-bit on the diagonal/cov and up to
        // -0.0 → +0.0 flips elsewhere (none arise from random data here).
        for n in [2usize, 3, 5, 8, 13] {
            let problems: Vec<PackedSymmetric> =
                (0..4).map(|p| packed_from_seed(n, 40 + p + n as u64)).collect();
            let lanes = soa::lane_padded(problems.len());
            let tri = n * (n + 1) / 2;
            let mut d = vec![0.0; tri * lanes];
            for (p, g) in problems.iter().enumerate() {
                soa::interleave(g.as_slice(), p, lanes, &mut d);
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    let (mut c, mut s, mut t) =
                        (vec![1.0; lanes], vec![0.0; lanes], vec![0.0; lanes]);
                    let mut applied = vec![0u8; lanes];
                    for (p, g) in problems.iter().enumerate().take(3) {
                        let r = textbook_params(g.get(i, i), g.get(j, j), g.get(i, j));
                        c[p] = r.cos;
                        s[p] = r.sin;
                        t[p] = r.t;
                        applied[p] = 1;
                    }
                    let mut batch = d.clone();
                    rotate_packed_soa(&mut batch, n, lanes, i, j, &c, &s, &t, &applied);
                    for (p, g) in problems.iter().enumerate() {
                        let mut back = vec![0.0; tri];
                        soa::deinterleave(&batch, p, lanes, &mut back);
                        let mut reference = g.clone();
                        if p < 3 {
                            let r = textbook_params(g.get(i, i), g.get(j, j), g.get(i, j));
                            rotate_packed(&mut reference, i, j, &r);
                            assert_lane_matches(
                                &back,
                                reference.as_slice(),
                                &format!("n={n} pair ({i},{j}) problem {p}"),
                            );
                        } else {
                            // Skipped lanes keep their bits on every target.
                            assert_eq!(
                                back,
                                reference.as_slice(),
                                "n={n} pair ({i},{j}) skipped problem {p}"
                            );
                        }
                    }
                }
            }
        }
    }
}
