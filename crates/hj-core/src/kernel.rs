//! Vectorization-friendly inner kernels — the software mirror of the
//! paper's concurrent-dataflow units (Fig. 4).
//!
//! Every hot loop of the three sweep engines routes through this module.
//! Before it existed, the engines walked the packed covariance triangle
//! through [`PackedSymmetric::get`]/[`set`](PackedSymmetric::set) — a
//! branch (argument swap), a multiply (row-offset polynomial), and a bounds
//! check *per element*, which kept LLVM from vectorizing anything and made
//! the cache-tiled engine slower than the sequential one (the ROADMAP item-1
//! inversion). The kernels here replace that with slice traversals:
//!
//! * [`rotate_packed`] — the `O(n)` in-place Gram rotation of Algorithm 1
//!   lines 15–26, decomposed into the triangle's three natural regions so
//!   the dominant region runs on two contiguous slices (autovectorized via
//!   [`ops::rotate_pair`]) and the strided regions walk incrementally with
//!   no per-element offset math.
//! * [`gather_column`] / [`scatter_column`] — the blocked engine's tile
//!   staging: a logical column of `D` moved to/from a dense slice, with the
//!   `k ≥ c` majority as a single `memcpy`.
//! * [`batch_params`] — rotation parameters for a whole round-robin pair
//!   group at once, structure-of-arrays in (`D_ii`, `D_jj`, `D_ij` lanes)
//!   and SoA out (`cos`, `sin`, `t` lanes), mirroring the independent
//!   per-pair parameter units the paper's Fig. 6 schedules concurrently.
//!
//! # Bit-compat policy
//!
//! Every kernel computes **exactly** the elementwise expressions of the
//! scalar path it replaces — same operations, same order per element, no
//! re-association, no FMA contraction — so results are bit-identical to the
//! pre-kernel code. The only freedom taken is *traversal* order across
//! independent elements (chunking, region splitting, loop interchange),
//! which cannot change any bit because each element is read and written by
//! exactly one rotation expression. In particular [`batch_params`] runs the
//! `ρ → t → cos → sin` chain of [`crate::rotation::textbook_params`] per lane —
//! the SoA layout gives the batched shape of the paper's eqs. (8)–(10)
//! dataflow while keeping the engines' pinned bit-compat (the flattened
//! hardware form itself differs from the textbook chain by re-association;
//! `tests/kernel_compat.rs` carries the same `1e-12`-absolute pin on
//! `cos`/`sin` that the two scalar formulations have always had). Nothing
//! in this module needs a looser budget of its own: the kernel-compat
//! tests pin exact equality against the scalar references.
//!
//! # Lane layout and tails
//!
//! Contiguous runs are processed in [`ops::ROTATE_LANES`]-wide chunks with a
//! scalar tail (odd `n`, non-multiple-of-lane lengths — proptested). Strided
//! runs (the `k < i` head of a logical column) cannot vectorize on packed
//! storage; they instead walk with two adds per step, replacing the offset
//! polynomial + branch of the `get`/`set` path.

use crate::rotation::{rotate_norms, Rotation};
use hj_matrix::{ops, PackedSymmetric};

/// Apply the plane rotation `rot` of column pair `(i, j)`, `i < j`, to the
/// packed triangle in place — Algorithm 1 lines 15–26, bit-identical to the
/// scalar `get`/`set` loop it replaces.
///
/// The "all `k ≠ i, j`" loop of the pseudocode splits into the triangle's
/// three regions, each with its own memory shape:
///
/// ```text
/// k < i     : (k,i) and (k,j) both strided — incremental walk, stride n−k−1
/// i < k < j : (i,k) contiguous in row i; (k,j) strided
/// k > j     : (i,k) and (j,k) two contiguous row tails — rotate_pair (SIMD)
/// ```
///
/// For a random pair each region averages a third of the column, and the
/// contiguous share grows as the round-robin ordering visits large `j`.
pub fn rotate_packed(d: &mut PackedSymmetric, i: usize, j: usize, rot: &Rotation) {
    debug_assert!(i != j, "degenerate pair");
    let n = d.dim();
    debug_assert!(i < n && j < n);
    let (i, j) = if i < j { (i, j) } else { (j, i) };
    let (cos, sin) = (rot.cos, rot.sin);
    let ri = d.row_offset(i);
    let rj = d.row_offset(j);
    let data = d.as_mut_slice();
    // Diagonal + annihilated covariance (lines 15–17): the exact O(1)
    // updates, identical to the rotate_norms expressions.
    let cov = data[ri + (j - i)];
    let (ni, nj, _) = rotate_norms(data[ri], data[rj], cov, rot);
    data[ri] = ni;
    data[rj] = nj;
    data[ri + (j - i)] = 0.0;
    // Region 1, k < i: offsets (k,i) and (k,j) start at i and j in row 0 and
    // advance by n − k − 1 per step (row k+1 is one entry shorter).
    let mut oi = i;
    let mut oj = j;
    for k in 0..i {
        let x = data[oi];
        let y = data[oj];
        data[oi] = x * cos - y * sin;
        data[oj] = x * sin + y * cos;
        let step = n - k - 1;
        oi += step;
        oj += step;
    }
    // Region 2, i < k < j: (i,k) walks row i contiguously; (k,j) continues
    // the strided walk below row i.
    let mut okj = ri + (n - i) + (j - i - 1); // offset(i+1, j)
    for (oik, k) in (ri + 1..).zip((i + 1)..j) {
        let x = data[oik];
        let y = data[okj];
        data[oik] = x * cos - y * sin;
        data[okj] = x * sin + y * cos;
        okj += n - k - 1;
    }
    // Region 3, k > j: two contiguous row tails — the vectorized majority.
    let tail = n - j - 1;
    if tail > 0 {
        let (head, row_j) = data.split_at_mut(rj + 1);
        let row_i = &mut head[ri + (j - i) + 1..ri + (j - i) + 1 + tail];
        ops::rotate_pair(row_i, &mut row_j[..tail], cos, sin);
    }
}

/// Copy logical column `c` of the packed triangle (`out[k] = D[k][c]` for
/// all `k`) into a dense slice — the blocked engine's tile staging read.
///
/// The `k < c` head is the strided walk described on
/// [`PackedSymmetric::row_offset`]; the `k ≥ c` tail is row `c` itself,
/// copied with one `memcpy`.
///
/// # Panics
/// Panics if `out.len() != n` or `c ≥ n` (debug: explicit asserts; release:
/// slice bounds).
pub fn gather_column(d: &PackedSymmetric, c: usize, out: &mut [f64]) {
    let n = d.dim();
    debug_assert!(c < n);
    debug_assert_eq!(out.len(), n);
    let data = d.as_slice();
    let mut o = c;
    for (k, slot) in out[..c].iter_mut().enumerate() {
        *slot = data[o];
        o += n - k - 1;
    }
    let rc = d.row_offset(c);
    out[c..n].copy_from_slice(&data[rc..rc + (n - c)]);
}

/// Write a dense slice back as logical column `c` of the packed triangle
/// (`D[k][c] = src[k]` for all `k`) — the blocked engine's tile write-back.
/// Mirror image of [`gather_column`].
pub fn scatter_column(d: &mut PackedSymmetric, c: usize, src: &[f64]) {
    let n = d.dim();
    debug_assert!(c < n);
    debug_assert_eq!(src.len(), n);
    let rc = d.row_offset(c);
    let data = d.as_mut_slice();
    let mut o = c;
    for (k, &v) in src[..c].iter().enumerate() {
        data[o] = v;
        o += n - k - 1;
    }
    data[rc..rc + (n - c)].copy_from_slice(&src[c..n]);
}

/// Rotation parameters for a whole pair group at once, SoA in / SoA out.
///
/// `norms_i[k]`, `norms_j[k]`, `covs[k]` are the `(D_ii, D_jj, D_ij)` of the
/// group's `k`-th pair; the outputs land in `cos[k]`, `sin[k]`, `t[k]`.
/// Each lane runs exactly the [`crate::rotation::textbook_params`] chain
/// (including its `cov == 0 → identity` case and `sign(0) = +1`
/// convention), so the batched output is bit-identical to calling the
/// scalar kernel per pair — the bit-compat policy above. The SoA shape is
/// what lets the round planner compute a whole round-robin group's
/// parameters in one straight-line loop, the software analogue of the
/// paper's concurrently-scheduled parameter units.
///
/// # Panics
/// Panics in debug builds if the six slices disagree on length.
pub fn batch_params(
    norms_i: &[f64],
    norms_j: &[f64],
    covs: &[f64],
    cos: &mut [f64],
    sin: &mut [f64],
    t: &mut [f64],
) {
    let len = norms_i.len();
    debug_assert!(
        norms_j.len() == len
            && covs.len() == len
            && cos.len() == len
            && sin.len() == len
            && t.len() == len,
        "batch_params: SoA lanes disagree on length"
    );
    for k in 0..len {
        let (ni, nj, cov) = (norms_i[k], norms_j[k], covs[k]);
        if cov == 0.0 {
            cos[k] = 1.0;
            sin[k] = 0.0;
            t[k] = 0.0;
            continue;
        }
        let zeta = (nj - ni) / (2.0 * cov);
        let sign = if zeta >= 0.0 { 1.0 } else { -1.0 };
        let tk = sign / (zeta.abs() + f64::hypot(1.0, zeta));
        let ck = 1.0 / f64::hypot(1.0, tk);
        cos[k] = ck;
        sin[k] = ck * tk;
        t[k] = tk;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotation::textbook_params;
    use hj_matrix::gen;

    fn packed_from_seed(n: usize, seed: u64) -> PackedSymmetric {
        let a = gen::uniform(2 * n + 3, n, seed);
        a.gram()
    }

    /// The scalar reference: the pre-kernel get/set loop, verbatim.
    fn rotate_reference(d: &mut PackedSymmetric, i: usize, j: usize, rot: &Rotation) {
        let n = d.dim();
        let (cos, sin) = (rot.cos, rot.sin);
        let cov = d.get(i, j);
        let (ni, nj, _) = rotate_norms(d.get(i, i), d.get(j, j), cov, rot);
        d.set(i, i, ni);
        d.set(j, j, nj);
        d.set(i, j, 0.0);
        for k in 0..n {
            if k == i || k == j {
                continue;
            }
            let dki = d.get(k, i);
            let dkj = d.get(k, j);
            d.set(k, i, dki * cos - dkj * sin);
            d.set(k, j, dki * sin + dkj * cos);
        }
    }

    #[test]
    fn rotate_packed_is_bit_identical_to_scalar_reference() {
        for n in [2usize, 3, 5, 8, 13, 17] {
            let base = packed_from_seed(n, 7 + n as u64);
            for i in 0..n {
                for j in (i + 1)..n {
                    let rot = {
                        let g = &base;
                        textbook_params(g.get(i, i), g.get(j, j), g.get(i, j))
                    };
                    let mut fast = base.clone();
                    let mut refr = base.clone();
                    rotate_packed(&mut fast, i, j, &rot);
                    rotate_reference(&mut refr, i, j, &rot);
                    assert_eq!(fast.as_slice(), refr.as_slice(), "n={n} pair ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn rotate_packed_accepts_swapped_pair_order() {
        let base = packed_from_seed(6, 3);
        let rot = textbook_params(base.get(1, 1), base.get(4, 4), base.get(1, 4));
        let mut a = base.clone();
        let mut b = base;
        rotate_packed(&mut a, 1, 4, &rot);
        rotate_packed(&mut b, 4, 1, &rot);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn gather_scatter_round_trip_every_column() {
        for n in [1usize, 2, 4, 7, 12] {
            let d = packed_from_seed(n, 100 + n as u64);
            for c in 0..n {
                let mut col = vec![0.0; n];
                gather_column(&d, c, &mut col);
                for (k, &v) in col.iter().enumerate() {
                    assert_eq!(v, d.get(k, c), "n={n} col {c} row {k}");
                }
                let mut back = d.clone();
                scatter_column(&mut back, c, &col);
                assert_eq!(back.as_slice(), d.as_slice(), "n={n} col {c}");
            }
        }
    }

    #[test]
    fn batch_params_matches_scalar_textbook_bitwise() {
        let inputs: Vec<(f64, f64, f64)> = (0..64)
            .map(|k| {
                let x = (k as f64 + 1.0) * 0.7;
                (x, 65.0 - x, if k % 3 == 0 { 0.0 } else { (k as f64 - 30.0) * 0.11 })
            })
            .collect();
        let ni: Vec<f64> = inputs.iter().map(|p| p.0).collect();
        let nj: Vec<f64> = inputs.iter().map(|p| p.1).collect();
        let cv: Vec<f64> = inputs.iter().map(|p| p.2).collect();
        let (mut c, mut s, mut t) = (vec![0.0; 64], vec![0.0; 64], vec![0.0; 64]);
        batch_params(&ni, &nj, &cv, &mut c, &mut s, &mut t);
        for k in 0..64 {
            let r = textbook_params(ni[k], nj[k], cv[k]);
            assert_eq!((c[k], s[k], t[k]), (r.cos, r.sin, r.t), "lane {k}");
        }
    }
}
