//! Vector-pairing orderings (the paper's §V-D) as a pluggable subsystem.
//!
//! A sweep must visit every unordered column pair at most once
//! (`n(n−1)/2` pairs for the classical cyclic family). The *order* matters
//! twice over:
//!
//! * **Convergence** — cyclic orderings are the classical provably-convergent
//!   family; data-adaptive orderings (largest pivots first) often converge in
//!   fewer sweeps but lack the classical proof, which is why the recovery
//!   lattice can fall back to cyclic on a stall.
//! * **Parallelism** — the round-robin ("caterpillar"/Brent-Luk) cyclic order
//!   arranges each sweep into `rounds` of **pairwise-disjoint** pairs, which
//!   is exactly what lets the paper's hardware (Fig. 6) issue groups of
//!   rotations concurrently, and what lets our [`crate::parallel`] driver
//!   apply a whole round with rayon.
//!
//! The subsystem has three layers:
//!
//! * [`Sweep`] — one sweep's plan: rounds of disjoint pairs.
//! * [`OrderingStrategy`] — plans each sweep's rounds, possibly *adaptively*
//!   from the current Gram state (e.g. [`SortedGreedy`] sorts pairs by
//!   relative covariance). Strategies own their scratch and recycle the
//!   plan's round
//!   vectors, so steady-state replanning is allocation-free.
//! * [`SweepSchedule`] — the strategy + plan buffer + optional
//!   [`ThresholdSchedule`] bundle the [`crate::engine::SolveDriver`] consumes.

use crate::gram::GramState;
use crate::sweep::PAIR_TOL;

/// One sweep's worth of pair visits, grouped into rounds.
///
/// Within a round all pairs are disjoint (no column appears twice), so the
/// rounds are the natural unit of parallel execution. Every
/// [`OrderingStrategy`] upholds this invariant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sweep {
    rounds: Vec<Vec<(usize, usize)>>,
}

impl Sweep {
    /// An empty plan (no rounds). Strategies fill it via
    /// [`OrderingStrategy::plan_sweep`].
    pub fn new() -> Sweep {
        Sweep::default()
    }

    /// The rounds, in execution order.
    pub fn rounds(&self) -> &[Vec<(usize, usize)>] {
        &self.rounds
    }

    /// Iterate over every pair in sweep order, flattening rounds.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rounds.iter().flatten().copied()
    }

    /// Total number of pairs in the sweep.
    pub fn pair_count(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// Number of rounds.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Split each round into chunks of at most `group` pairs — modelling the
    /// paper's Fig. 6 dashed box: the hardware processes a bounded number of
    /// vector pairs simultaneously, so an `n/2`-pair round enters the
    /// architecture as successive groups.
    pub fn grouped(&self, group: usize) -> Vec<Vec<(usize, usize)>> {
        assert!(group > 0, "group size must be positive");
        self.grouped_iter(group).map(|chunk| chunk.to_vec()).collect()
    }

    /// Borrowing counterpart of [`Sweep::grouped`]: iterate the same pair
    /// groups as slices into the schedule, without allocating. Round
    /// boundaries are preserved (a group never spans two rounds), so every
    /// group consists of disjoint pairs.
    pub fn grouped_iter(&self, group: usize) -> impl Iterator<Item = &[(usize, usize)]> + '_ {
        assert!(group > 0, "group size must be positive");
        self.rounds.iter().flat_map(move |round| round.chunks(group))
    }

    /// Drain the plan's rounds into `spare`, clearing each (capacity kept).
    /// The recycle half of the allocation-free replanning handshake.
    pub(crate) fn recycle_into(&mut self, spare: &mut Vec<Vec<(usize, usize)>>) {
        for mut round in self.rounds.drain(..) {
            round.clear();
            spare.push(round);
        }
    }

    /// Append an (empty, recycled) round and return it for filling.
    pub(crate) fn push_round(
        &mut self,
        spare: &mut Vec<Vec<(usize, usize)>>,
    ) -> &mut Vec<(usize, usize)> {
        self.rounds.push(spare.pop().unwrap_or_default());
        self.rounds.last_mut().expect("round just pushed")
    }

    /// Mutable access to round `r` (must exist) — used by the greedy
    /// strategy's first-fit matcher.
    pub(crate) fn round_mut(&mut self, r: usize) -> &mut Vec<(usize, usize)> {
        &mut self.rounds[r]
    }
}

/// Pairing order selection for the sweep drivers.
///
/// `OrderingKind` is the name the options/wire layers use for this enum; the
/// two are the same type (see [`OrderingKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ordering {
    /// Round-robin (tournament) cyclic order: `n−1` rounds of `⌊n/2⌋`
    /// disjoint pairs — the paper's Fig. 6 order and the library default.
    /// Provably convergent; legal on every engine.
    #[default]
    RoundRobin,
    /// Row-cyclic order: `(0,1), (0,2), …, (0,n−1), (1,2), …` — the literal
    /// loop nest of Algorithm 1. Sequential only (rounds of one pair).
    RowCyclic,
    /// Data-adaptive greedy order: every sweep re-sorts all pairs by the
    /// current relative covariance `D_ij²/(D_ii·D_jj)` (largest first) and
    /// first-fit-matches them into disjoint rounds. Typically converges in
    /// fewer sweeps than cyclic, but
    /// lacks the classical convergence proof — the recovery lattice can fall
    /// back to [`Ordering::RoundRobin`] on a stall.
    SortedGreedy,
    /// de Rijk-style column presort: columns are permuted once up front into
    /// descending-norm order (the permutation is folded into `V`, so output
    /// needs no undo pass), then swept with the round-robin cyclic order.
    /// Provably convergent (it *is* cyclic after the permutation).
    ColumnNormPresort,
}

/// The options-/wire-layer alias for [`Ordering`].
pub type OrderingKind = Ordering;

impl Ordering {
    /// Every ordering, in canonical (CLI/bench) order.
    pub const ALL: [Ordering; 4] = [
        Ordering::RoundRobin,
        Ordering::RowCyclic,
        Ordering::SortedGreedy,
        Ordering::ColumnNormPresort,
    ];

    /// Canonical short name, as reported in [`crate::SolveStats::ordering`]
    /// and accepted by [`Ordering::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Ordering::RoundRobin => "cyclic",
            Ordering::RowCyclic => "row-cyclic",
            Ordering::SortedGreedy => "greedy",
            Ordering::ColumnNormPresort => "presort",
        }
    }

    /// Parse a CLI/wire spelling. Accepts the canonical names plus the
    /// aliases the CLI documents (`round-robin`, `row`, `sorted-greedy`,
    /// `column-presort`).
    pub fn parse(s: &str) -> Option<Ordering> {
        match s {
            "cyclic" | "round-robin" => Some(Ordering::RoundRobin),
            "row" | "row-cyclic" => Some(Ordering::RowCyclic),
            "greedy" | "sorted-greedy" => Some(Ordering::SortedGreedy),
            "presort" | "column-presort" => Some(Ordering::ColumnNormPresort),
            _ => None,
        }
    }

    /// `true` for orderings that replan from the Gram state each sweep and
    /// therefore sit outside the classical cyclic convergence proof. The
    /// recovery lattice only falls back to cyclic for these.
    pub fn adaptive(self) -> bool {
        matches!(self, Ordering::SortedGreedy)
    }

    /// Dense index (the wire-protocol byte); inverse of
    /// [`Ordering::from_index`], matching the position in [`Ordering::ALL`].
    pub fn index(self) -> usize {
        match self {
            Ordering::RoundRobin => 0,
            Ordering::RowCyclic => 1,
            Ordering::SortedGreedy => 2,
            Ordering::ColumnNormPresort => 3,
        }
    }

    /// Inverse of [`Ordering::index`]; `None` for out-of-range bytes.
    pub fn from_index(i: usize) -> Option<Ordering> {
        Ordering::ALL.get(i).copied()
    }
}

/// Build one sweep of the given ordering over `n` columns, with no Gram
/// state to adapt to.
///
/// For the static orderings this is the whole schedule. The adaptive
/// [`Ordering::SortedGreedy`] (and [`Ordering::ColumnNormPresort`], whose
/// permutation lives in the solver, not the plan) degrade to the round-robin
/// rounds here — use an [`OrderingStrategy`] for the real per-sweep plans.
/// For `n < 2` the sweep is empty.
pub fn build_sweep(ordering: Ordering, n: usize) -> Sweep {
    match ordering {
        Ordering::RoundRobin | Ordering::SortedGreedy | Ordering::ColumnNormPresort => {
            round_robin(n)
        }
        Ordering::RowCyclic => row_cyclic(n),
    }
}

/// Round-robin tournament schedule over `n` columns.
///
/// The classic circle method: fix index `n−1` (or the bye slot for odd `n`),
/// rotate the rest. Produces `n−1` rounds (`n` rounds for odd `n`), each of
/// `⌊n/2⌋` disjoint pairs; every unordered pair appears exactly once per
/// sweep. Pairs are emitted as `(min, max)`.
///
/// ```
/// use hj_core::ordering::round_robin;
///
/// let sweep = round_robin(8);
/// assert_eq!(sweep.round_count(), 7);
/// assert_eq!(sweep.pair_count(), 28); // C(8, 2): every pair, once
/// // The paper's hardware takes the rounds in groups of 8 pairs:
/// assert!(sweep.grouped(8).iter().all(|g| g.len() <= 8));
/// ```
pub fn round_robin(n: usize) -> Sweep {
    let mut sweep = Sweep::new();
    let mut ring = Vec::new();
    let mut spare = Vec::new();
    fill_round_robin(n, &mut sweep, &mut spare, &mut ring);
    sweep
}

/// Row-cyclic order: the literal `for i { for j in i+1.. }` of Algorithm 1.
/// Each pair is its own round (no intra-round parallelism).
pub fn row_cyclic(n: usize) -> Sweep {
    let mut sweep = Sweep::new();
    let mut spare = Vec::new();
    fill_row_cyclic(n, &mut sweep, &mut spare);
    sweep
}

/// The circle-method planner shared by [`round_robin`], [`Cyclic`], and
/// [`ColumnNormPresort`]. Writes into recycled round vectors; `ring` is the
/// caller-owned rotation scratch (`slots` entries after the call).
fn fill_round_robin(
    n: usize,
    out: &mut Sweep,
    spare: &mut Vec<Vec<(usize, usize)>>,
    ring: &mut Vec<usize>,
) {
    out.recycle_into(spare);
    if n < 2 {
        return;
    }
    // Treat odd n by adding a phantom "bye" slot.
    let slots = if n.is_multiple_of(2) { n } else { n + 1 };
    let rounds_count = slots - 1;
    ring.clear();
    ring.extend(0..slots);
    for _ in 0..rounds_count {
        let round = out.push_round(spare);
        for k in 0..slots / 2 {
            let a = ring[k];
            let b = ring[slots - 1 - k];
            if a < n && b < n {
                round.push((a.min(b), a.max(b)));
            }
        }
        // Circle method: slot 0 stays fixed, the remaining slots rotate
        // right by one each round.
        let last = ring[slots - 1];
        for idx in (2..slots).rev() {
            ring[idx] = ring[idx - 1];
        }
        ring[1] = last;
    }
}

/// Row-cyclic planner writing into recycled round vectors.
fn fill_row_cyclic(n: usize, out: &mut Sweep, spare: &mut Vec<Vec<(usize, usize)>>) {
    out.recycle_into(spare);
    for i in 0..n.saturating_sub(1) {
        for j in i + 1..n {
            out.push_round(spare).push((i, j));
        }
    }
}

/// Plans each sweep's rounds of disjoint pairs.
///
/// The [`crate::engine::SolveDriver`] calls [`OrderingStrategy::plan_sweep`]
/// before every sweep with the **same** plan buffer (see [`SweepSchedule`]);
/// a strategy may leave a still-valid plan untouched (returning `false`) or
/// rebuild it from the current Gram state (returning `true`). Strategies own
/// all planning scratch and recycle the plan's round vectors, so replanning
/// is allocation-free once warm.
///
/// Every produced plan must keep the pairs of each round pairwise disjoint
/// and visit each unordered pair at most once — the invariant the parallel
/// and blocked engines (and the hardware they model) rely on.
pub trait OrderingStrategy {
    /// Which [`Ordering`] this strategy implements.
    fn kind(&self) -> Ordering;

    /// Canonical name for stats/trace labels (defaults to the kind's name).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Ensure `out` holds this strategy's plan for the sweep about to run.
    /// `sweep_index` is 1-based. Returns `true` if the plan was rebuilt
    /// (a *replan*), `false` if the existing plan was reused.
    ///
    /// `out` must be the same buffer on every call for a given solve —
    /// strategies cache what it holds to skip redundant rebuilds.
    fn plan_sweep(&mut self, gram: &GramState, sweep_index: usize, out: &mut Sweep) -> bool;
}

/// Today's default: the round-robin cyclic order, planned once per dimension
/// and reused for every sweep — bit-identical to the pre-subsystem schedule.
#[derive(Debug, Default)]
pub struct Cyclic {
    planned_dim: Option<usize>,
    ring: Vec<usize>,
    spare: Vec<Vec<(usize, usize)>>,
}

impl Cyclic {
    /// A fresh strategy with empty scratch.
    pub fn new() -> Cyclic {
        Cyclic::default()
    }
}

impl OrderingStrategy for Cyclic {
    fn kind(&self) -> Ordering {
        Ordering::RoundRobin
    }

    fn plan_sweep(&mut self, gram: &GramState, _sweep_index: usize, out: &mut Sweep) -> bool {
        let n = gram.dim();
        if self.planned_dim == Some(n) {
            return false;
        }
        fill_round_robin(n, out, &mut self.spare, &mut self.ring);
        self.planned_dim = Some(n);
        true
    }
}

/// The row-cyclic order of Algorithm 1's literal loop nest, planned once per
/// dimension. Sequential engines only (rounds of one pair).
#[derive(Debug, Default)]
pub struct RowCyclic {
    planned_dim: Option<usize>,
    spare: Vec<Vec<(usize, usize)>>,
}

impl RowCyclic {
    /// A fresh strategy with empty scratch.
    pub fn new() -> RowCyclic {
        RowCyclic::default()
    }
}

impl OrderingStrategy for RowCyclic {
    fn kind(&self) -> Ordering {
        Ordering::RowCyclic
    }

    fn plan_sweep(&mut self, gram: &GramState, _sweep_index: usize, out: &mut Sweep) -> bool {
        let n = gram.dim();
        if self.planned_dim == Some(n) {
            return false;
        }
        fill_row_cyclic(n, out, &mut self.spare);
        self.planned_dim = Some(n);
        true
    }
}

/// Largest-pivots-first adaptive order: every sweep sorts all `n(n−1)/2`
/// pairs by the current relative covariance `D_ij²/(D_ii·D_jj)` descending
/// (the squared cosine of the angle between columns `i` and `j` — the same
/// normalisation the pair guards use, so the pairs that most need a rotation
/// sort first regardless of column scale) and first-fit-matches them into
/// disjoint rounds, so the heaviest covariances are annihilated before the
/// round snapshot drifts. Replans every sweep; allocation-free once the
/// scratch (pair keys, sort indices, round occupancy) is warm.
#[derive(Debug, Default)]
pub struct SortedGreedy {
    pairs: Vec<(usize, usize)>,
    keys: Vec<f64>,
    idx: Vec<usize>,
    /// Round-occupancy grid, `round · n + column`, grown a round at a time.
    used: Vec<bool>,
    spare: Vec<Vec<(usize, usize)>>,
}

impl SortedGreedy {
    /// A fresh strategy with empty scratch.
    pub fn new() -> SortedGreedy {
        SortedGreedy::default()
    }
}

impl OrderingStrategy for SortedGreedy {
    fn kind(&self) -> Ordering {
        Ordering::SortedGreedy
    }

    fn plan_sweep(&mut self, gram: &GramState, _sweep_index: usize, out: &mut Sweep) -> bool {
        let n = gram.dim();
        out.recycle_into(&mut self.spare);
        if n < 2 {
            return true;
        }
        self.pairs.clear();
        self.keys.clear();
        for i in 0..n {
            for j in i + 1..n {
                self.pairs.push((i, j));
                let cov = gram.covariance(i, j);
                let scale = gram.norm_sq(i) * gram.norm_sq(j);
                self.keys.push(if scale > 0.0 { cov * cov / scale } else { 0.0 });
            }
        }
        self.idx.clear();
        self.idx.extend(0..self.pairs.len());
        // Descending relative covariance; ties (and NaN, which total_cmp
        // orders above every finite value) break by pair index for
        // determinism.
        let keys = &self.keys;
        self.idx.sort_unstable_by(|&a, &b| keys[b].total_cmp(&keys[a]).then(a.cmp(&b)));
        // First-fit matching: place each pair into the earliest round where
        // neither column is taken, opening a new round when none fits.
        self.used.clear();
        let mut rounds = 0usize;
        for t in 0..self.idx.len() {
            let (i, j) = self.pairs[self.idx[t]];
            let mut r = 0;
            loop {
                if r == rounds {
                    self.used.resize((rounds + 1) * n, false);
                    out.push_round(&mut self.spare);
                    rounds += 1;
                }
                if !self.used[r * n + i] && !self.used[r * n + j] {
                    self.used[r * n + i] = true;
                    self.used[r * n + j] = true;
                    out.round_mut(r).push((i, j));
                    break;
                }
                r += 1;
            }
        }
        true
    }
}

/// de Rijk-style presort: the *plan* is plain round-robin cyclic — the
/// descending-column-norm permutation is applied to the data once, at solve
/// setup, by the solver (which folds it into `V`, so no undo pass is
/// needed). Kept as its own strategy so stats/trace report the ordering the
/// user asked for.
#[derive(Debug, Default)]
pub struct ColumnNormPresort {
    planned_dim: Option<usize>,
    ring: Vec<usize>,
    spare: Vec<Vec<(usize, usize)>>,
}

impl ColumnNormPresort {
    /// A fresh strategy with empty scratch.
    pub fn new() -> ColumnNormPresort {
        ColumnNormPresort::default()
    }
}

impl OrderingStrategy for ColumnNormPresort {
    fn kind(&self) -> Ordering {
        Ordering::ColumnNormPresort
    }

    fn plan_sweep(&mut self, gram: &GramState, _sweep_index: usize, out: &mut Sweep) -> bool {
        let n = gram.dim();
        if self.planned_dim == Some(n) {
            return false;
        }
        fill_round_robin(n, out, &mut self.spare, &mut self.ring);
        self.planned_dim = Some(n);
        true
    }
}

/// Adapter for callers that bring a ready-made [`Sweep`] (the legacy
/// `SolveDriver::run` path and direct-engine tests): never replans, reports
/// no ordering name (stats show `""`).
#[derive(Debug, Default)]
pub struct Preplanned;

impl OrderingStrategy for Preplanned {
    fn kind(&self) -> Ordering {
        Ordering::RoundRobin
    }

    fn name(&self) -> &'static str {
        ""
    }

    fn plan_sweep(&mut self, _gram: &GramState, _sweep_index: usize, _out: &mut Sweep) -> bool {
        false
    }
}

/// Per-sweep rotation-threshold ramp, composable with any ordering.
///
/// Sweep `s` (1-based) skips pairs whose `|D_ij| ≤ tol(s)·√(D_ii·D_jj)`
/// with `tol(s) = max(PAIR_TOL, initial·decay^(s−1))` — coarse early sweeps
/// spend no rotations on covariances a later sweep would disturb anyway,
/// ramping down to the standard [`PAIR_TOL`] guard. While the ramp is above
/// the floor the driver suppresses the [`crate::Convergence::NoRotations`]
/// stopping rule (a coarse guard's "no rotations" is not convergence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdSchedule {
    /// Sweep 1's relative threshold.
    pub initial: f64,
    /// Multiplicative decay per sweep (in `(0, 1)`).
    pub decay: f64,
}

impl ThresholdSchedule {
    /// A schedule starting at `initial` and multiplying by `decay` each
    /// sweep. Non-finite or out-of-range inputs are clamped to the default.
    pub fn new(initial: f64, decay: f64) -> ThresholdSchedule {
        let d = ThresholdSchedule::default();
        ThresholdSchedule {
            initial: if initial.is_finite() && initial > 0.0 { initial } else { d.initial },
            decay: if decay.is_finite() && decay > 0.0 && decay < 1.0 { decay } else { d.decay },
        }
    }

    /// The relative rotation threshold for 1-based sweep `s`, floored at
    /// [`PAIR_TOL`].
    pub fn tol(&self, sweep_index: usize) -> f64 {
        let s = sweep_index.max(1);
        let exp = (s - 1).min(i32::MAX as usize) as i32;
        (self.initial * self.decay.powi(exp)).max(PAIR_TOL)
    }

    /// Whether the ramp is still above the [`PAIR_TOL`] floor at sweep `s`
    /// (i.e. the threshold guard is coarser than the default pair guard).
    pub fn active(&self, sweep_index: usize) -> bool {
        self.tol(sweep_index) > PAIR_TOL
    }
}

impl Default for ThresholdSchedule {
    /// `initial = 1e-2`, `decay = 1e-2`: tol 1e-2, 1e-4, 1e-6, …, reaching
    /// the [`PAIR_TOL`] floor by sweep 8. Sweep 1's threshold sits above the
    /// `~1/√m` correlation scale of random columns, so the coarse sweeps
    /// actually defer near-orthogonal pairs, while the two-orders-per-sweep
    /// ramp stays below the iteration's own convergence trajectory and never
    /// blocks a rotation the tail sweeps need.
    fn default() -> ThresholdSchedule {
        ThresholdSchedule { initial: 1e-2, decay: 1e-2 }
    }
}

/// The per-solve schedule the [`crate::engine::SolveDriver`] consumes: a
/// planning strategy, its (reused) plan buffer, and an optional rotation
/// threshold ramp.
pub struct SweepSchedule<'a> {
    /// Plans each sweep's rounds (same plan buffer every call).
    pub strategy: &'a mut dyn OrderingStrategy,
    /// The plan buffer the strategy writes into and the engines read.
    pub plan: &'a mut Sweep,
    /// Optional per-sweep rotation-threshold ramp.
    pub threshold: Option<ThresholdSchedule>,
}

/// One instance of every strategy plus a dedicated plan buffer per strategy,
/// pooled inside [`crate::parallel::SweepWorkspace`] so repeated solves
/// replan without reallocating. Each strategy gets its *own* plan buffer —
/// a shared one would invalidate the once-per-dimension caches whenever the
/// selected ordering changes between solves.
#[derive(Debug, Default)]
pub struct PlanBuffers {
    cyclic: Cyclic,
    row: RowCyclic,
    greedy: SortedGreedy,
    presort: ColumnNormPresort,
    plan_cyclic: Sweep,
    plan_row: Sweep,
    plan_greedy: Sweep,
    plan_presort: Sweep,
}

impl PlanBuffers {
    /// Fresh, empty buffers (everything sized lazily on first plan).
    pub fn new() -> PlanBuffers {
        PlanBuffers::default()
    }

    /// Borrow the strategy and plan buffer for `kind`, ready to assemble a
    /// [`SweepSchedule`].
    pub fn schedule_parts(&mut self, kind: Ordering) -> (&mut dyn OrderingStrategy, &mut Sweep) {
        match kind {
            Ordering::RoundRobin => (&mut self.cyclic, &mut self.plan_cyclic),
            Ordering::RowCyclic => (&mut self.row, &mut self.plan_row),
            Ordering::SortedGreedy => (&mut self.greedy, &mut self.plan_greedy),
            Ordering::ColumnNormPresort => (&mut self.presort, &mut self.plan_presort),
        }
    }
}

/// Compute the descending-column-norm permutation for
/// [`Ordering::ColumnNormPresort`]: `perm[k]` is the source column holding
/// the `k`-th largest `D_ii` (ties break by column index, so the
/// permutation — and therefore the whole solve — is deterministic).
pub fn column_norm_permutation(gram: &GramState, perm: &mut Vec<usize>) {
    let n = gram.dim();
    perm.clear();
    perm.extend(0..n);
    perm.sort_by(|&a, &b| gram.norm_sq(b).total_cmp(&gram.norm_sq(a)).then(a.cmp(&b)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_full_coverage(sweep: &Sweep, n: usize) {
        let mut seen = HashSet::new();
        for (i, j) in sweep.pairs() {
            assert!(i < j, "pairs must be (min, max): ({i},{j})");
            assert!(j < n);
            assert!(seen.insert((i, j)), "pair ({i},{j}) visited twice");
        }
        assert_eq!(seen.len(), n * (n - 1) / 2, "sweep must visit every pair for n={n}");
    }

    fn assert_rounds_disjoint(sweep: &Sweep) {
        for round in sweep.rounds() {
            let mut used = HashSet::new();
            for &(i, j) in round {
                assert!(used.insert(i), "index {i} reused within a round");
                assert!(used.insert(j), "index {j} reused within a round");
            }
        }
    }

    fn gram_for(n: usize, seed: u64) -> GramState {
        GramState::from_matrix(&hj_matrix::gen::uniform(2 * n + 3, n, seed))
    }

    #[test]
    fn round_robin_covers_all_pairs_even() {
        for n in [2usize, 4, 8, 32, 64] {
            let s = round_robin(n);
            assert_eq!(s.round_count(), n - 1);
            assert_full_coverage(&s, n);
            assert_rounds_disjoint(&s);
            for round in s.rounds() {
                assert_eq!(round.len(), n / 2);
            }
        }
    }

    #[test]
    fn round_robin_covers_all_pairs_odd() {
        for n in [3usize, 5, 7, 31] {
            let s = round_robin(n);
            assert_eq!(s.round_count(), n);
            assert_full_coverage(&s, n);
            assert_rounds_disjoint(&s);
        }
    }

    #[test]
    fn round_robin_degenerate() {
        assert_eq!(round_robin(0).pair_count(), 0);
        assert_eq!(round_robin(1).pair_count(), 0);
        let s = round_robin(2);
        assert_eq!(s.pair_count(), 1);
        assert_eq!(s.rounds()[0], vec![(0, 1)]);
    }

    #[test]
    fn row_cyclic_matches_algorithm_one_order() {
        let s = row_cyclic(4);
        let pairs: Vec<_> = s.pairs().collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_full_coverage(&s, 4);
    }

    #[test]
    fn grouped_respects_group_size() {
        let s = round_robin(32);
        // The paper's configuration: groups of 8 pairs enter the architecture.
        let groups = s.grouped(8);
        assert!(groups.iter().all(|g| g.len() <= 8 && !g.is_empty()));
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 32 * 31 / 2);
        // Disjointness within groups is inherited from rounds.
        for g in &groups {
            let mut used = HashSet::new();
            for &(i, j) in g {
                assert!(used.insert(i) && used.insert(j));
            }
        }
    }

    #[test]
    fn grouped_iter_matches_grouped() {
        for n in [5usize, 8, 17, 32] {
            let s = round_robin(n);
            for group in [1usize, 3, 8] {
                let owned = s.grouped(group);
                let borrowed: Vec<&[(usize, usize)]> = s.grouped_iter(group).collect();
                assert_eq!(owned.len(), borrowed.len(), "n={n} group={group}");
                for (o, b) in owned.iter().zip(&borrowed) {
                    assert_eq!(o.as_slice(), *b);
                }
            }
        }
    }

    #[test]
    fn build_sweep_dispatches() {
        assert_eq!(build_sweep(Ordering::RoundRobin, 6), round_robin(6));
        assert_eq!(build_sweep(Ordering::RowCyclic, 6), row_cyclic(6));
        // With no Gram state the adaptive/presort plans degrade to cyclic.
        assert_eq!(build_sweep(Ordering::SortedGreedy, 6), round_robin(6));
        assert_eq!(build_sweep(Ordering::ColumnNormPresort, 6), round_robin(6));
    }

    #[test]
    fn names_and_parse_round_trip() {
        for kind in Ordering::ALL {
            assert_eq!(Ordering::parse(kind.name()), Some(kind));
        }
        assert_eq!(Ordering::parse("round-robin"), Some(Ordering::RoundRobin));
        assert_eq!(Ordering::parse("row"), Some(Ordering::RowCyclic));
        assert_eq!(Ordering::parse("sorted-greedy"), Some(Ordering::SortedGreedy));
        assert_eq!(Ordering::parse("column-presort"), Some(Ordering::ColumnNormPresort));
        assert_eq!(Ordering::parse("warp"), None);
        assert!(Ordering::SortedGreedy.adaptive());
        assert!(!Ordering::RoundRobin.adaptive());
        assert!(!Ordering::ColumnNormPresort.adaptive());
        for (i, kind) in Ordering::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert_eq!(Ordering::from_index(i), Some(*kind));
        }
        assert_eq!(Ordering::from_index(Ordering::ALL.len()), None);
    }

    #[test]
    fn cyclic_strategy_is_bit_identical_to_round_robin() {
        for n in [2usize, 7, 8, 24] {
            let gram = gram_for(n, 5);
            let mut strat = Cyclic::new();
            let mut plan = Sweep::new();
            assert!(strat.plan_sweep(&gram, 1, &mut plan), "first call must plan");
            assert_eq!(plan, round_robin(n), "n={n}");
            // Later sweeps reuse the plan verbatim.
            assert!(!strat.plan_sweep(&gram, 2, &mut plan));
            assert_eq!(plan, round_robin(n));
        }
    }

    #[test]
    fn strategies_replan_on_dimension_change() {
        let mut strat = Cyclic::new();
        let mut plan = Sweep::new();
        assert!(strat.plan_sweep(&gram_for(6, 1), 1, &mut plan));
        assert!(strat.plan_sweep(&gram_for(9, 2), 1, &mut plan), "new dim must replan");
        assert_eq!(plan, round_robin(9));
    }

    #[test]
    fn greedy_covers_all_pairs_in_disjoint_rounds() {
        for (n, seed) in [(2usize, 1u64), (5, 2), (8, 3), (17, 4), (24, 5)] {
            let gram = gram_for(n, seed);
            let mut strat = SortedGreedy::new();
            let mut plan = Sweep::new();
            assert!(strat.plan_sweep(&gram, 1, &mut plan), "greedy replans every sweep");
            assert_full_coverage(&plan, n);
            assert_rounds_disjoint(&plan);
            assert!(strat.plan_sweep(&gram, 2, &mut plan));
            assert_full_coverage(&plan, n);
        }
    }

    #[test]
    fn greedy_puts_the_largest_covariance_first() {
        let gram = gram_for(9, 77);
        let mut best = (0, 1);
        let mut best_key = -1.0;
        for i in 0..9 {
            for j in i + 1..9 {
                let cov = gram.covariance(i, j);
                let key = cov * cov / (gram.norm_sq(i) * gram.norm_sq(j));
                if key > best_key {
                    best_key = key;
                    best = (i, j);
                }
            }
        }
        let mut strat = SortedGreedy::new();
        let mut plan = Sweep::new();
        strat.plan_sweep(&gram, 1, &mut plan);
        assert_eq!(plan.rounds()[0][0], best, "heaviest pair must open round 0");
    }

    #[test]
    fn greedy_is_deterministic() {
        let gram = gram_for(12, 9);
        let plan_of = |_: ()| {
            let mut strat = SortedGreedy::new();
            let mut plan = Sweep::new();
            strat.plan_sweep(&gram, 1, &mut plan);
            plan
        };
        assert_eq!(plan_of(()), plan_of(()));
    }

    #[test]
    fn presort_strategy_plans_cyclic_rounds() {
        let gram = gram_for(10, 3);
        let mut strat = ColumnNormPresort::new();
        let mut plan = Sweep::new();
        assert!(strat.plan_sweep(&gram, 1, &mut plan));
        assert_eq!(plan, round_robin(10));
        assert_eq!(strat.name(), "presort");
    }

    #[test]
    fn column_norm_permutation_sorts_descending() {
        let gram = gram_for(11, 13);
        let mut perm = Vec::new();
        column_norm_permutation(&gram, &mut perm);
        assert_eq!(perm.len(), 11);
        let mut seen: Vec<usize> = perm.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..11).collect::<Vec<_>>(), "must be a permutation");
        for w in perm.windows(2) {
            assert!(
                gram.norm_sq(w[0]) >= gram.norm_sq(w[1]),
                "norms must descend along the permutation"
            );
        }
    }

    #[test]
    fn threshold_schedule_ramps_down_to_pair_tol() {
        let th = ThresholdSchedule::default();
        assert!(th.tol(1) > th.tol(2));
        assert!(th.tol(2) > th.tol(3));
        assert!(th.active(1));
        // The ramp bottoms out exactly at the floor and stays there.
        assert_eq!(th.tol(40), PAIR_TOL);
        assert!(!th.active(40));
        // Sanitization: bad inputs fall back to the default schedule.
        assert_eq!(ThresholdSchedule::new(f64::NAN, 2.0), ThresholdSchedule::default());
        let custom = ThresholdSchedule::new(1e-2, 0.1);
        assert_eq!(custom.tol(1), 1e-2);
        assert!((custom.tol(2) - 1e-3).abs() < 1e-18);
    }

    #[test]
    fn plan_buffers_hand_out_matching_parts() {
        let gram = gram_for(8, 21);
        let mut bufs = PlanBuffers::new();
        for kind in Ordering::ALL {
            let (strategy, plan) = bufs.schedule_parts(kind);
            assert_eq!(strategy.kind(), kind);
            strategy.plan_sweep(&gram, 1, plan);
            assert_full_coverage(plan, 8);
            assert_rounds_disjoint(plan);
        }
        // A second checkout of the same kind sees the cached plan.
        let (strategy, plan) = bufs.schedule_parts(Ordering::RoundRobin);
        assert!(!strategy.plan_sweep(&gram, 2, plan));
    }

    #[test]
    fn preplanned_never_replans() {
        let gram = gram_for(6, 2);
        let mut strat = Preplanned;
        let mut plan = round_robin(6);
        let before = plan.clone();
        assert!(!strat.plan_sweep(&gram, 1, &mut plan));
        assert_eq!(plan, before);
        assert_eq!(strat.name(), "");
    }

    #[test]
    fn replanning_recycles_round_vectors() {
        // After warm-up, greedy replanning must not grow the total capacity
        // footprint: recycled vectors are reused, not reallocated. We proxy
        // this by checking the spare pool absorbs and re-issues rounds.
        let gram = gram_for(16, 8);
        let mut strat = SortedGreedy::new();
        let mut plan = Sweep::new();
        strat.plan_sweep(&gram, 1, &mut plan);
        let rounds_before = plan.round_count();
        strat.plan_sweep(&gram, 2, &mut plan);
        // Same gram → same plan shape, rebuilt in place.
        assert_eq!(plan.round_count(), rounds_before);
    }
}
