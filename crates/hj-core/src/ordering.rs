//! Vector-pairing orderings (the paper's §V-D).
//!
//! A sweep must visit every unordered column pair exactly once
//! (`n(n−1)/2` pairs). The *order* matters twice over:
//!
//! * **Convergence** — cyclic orderings are the classical provably-convergent
//!   family.
//! * **Parallelism** — the round-robin ("caterpillar"/Brent-Luk) cyclic order
//!   arranges each sweep into `rounds` of **pairwise-disjoint** pairs, which
//!   is exactly what lets the paper's hardware (Fig. 6) issue groups of
//!   rotations concurrently, and what lets our [`crate::parallel`] driver
//!   apply a whole round with rayon.

/// One sweep's worth of pair visits, grouped into rounds.
///
/// Within a round all pairs are disjoint (no column appears twice), so the
/// rounds are the natural unit of parallel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sweep {
    rounds: Vec<Vec<(usize, usize)>>,
}

impl Sweep {
    /// The rounds, in execution order.
    pub fn rounds(&self) -> &[Vec<(usize, usize)>] {
        &self.rounds
    }

    /// Iterate over every pair in sweep order, flattening rounds.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rounds.iter().flatten().copied()
    }

    /// Total number of pairs in the sweep.
    pub fn pair_count(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// Number of rounds.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Split each round into chunks of at most `group` pairs — modelling the
    /// paper's Fig. 6 dashed box: the hardware processes a bounded number of
    /// vector pairs simultaneously, so an `n/2`-pair round enters the
    /// architecture as successive groups.
    pub fn grouped(&self, group: usize) -> Vec<Vec<(usize, usize)>> {
        assert!(group > 0, "group size must be positive");
        self.grouped_iter(group).map(|chunk| chunk.to_vec()).collect()
    }

    /// Borrowing counterpart of [`Sweep::grouped`]: iterate the same pair
    /// groups as slices into the schedule, without allocating. Round
    /// boundaries are preserved (a group never spans two rounds), so every
    /// group consists of disjoint pairs.
    pub fn grouped_iter(&self, group: usize) -> impl Iterator<Item = &[(usize, usize)]> + '_ {
        assert!(group > 0, "group size must be positive");
        self.rounds.iter().flat_map(move |round| round.chunks(group))
    }
}

/// Pairing order selection for the sweep drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ordering {
    /// Round-robin (tournament) cyclic order: `n−1` rounds of `⌊n/2⌋`
    /// disjoint pairs — the paper's Fig. 6 order, and the only one the
    /// parallel driver accepts.
    #[default]
    RoundRobin,
    /// Row-cyclic order: `(0,1), (0,2), …, (0,n−1), (1,2), …` — the literal
    /// loop nest of Algorithm 1. Sequential only (rounds of one pair).
    RowCyclic,
}

/// Build one sweep of the given ordering over `n` columns.
///
/// For `n < 2` the sweep is empty.
pub fn build_sweep(ordering: Ordering, n: usize) -> Sweep {
    match ordering {
        Ordering::RoundRobin => round_robin(n),
        Ordering::RowCyclic => row_cyclic(n),
    }
}

/// Round-robin tournament schedule over `n` columns.
///
/// The classic circle method: fix index `n−1` (or the bye slot for odd `n`),
/// rotate the rest. Produces `n−1` rounds (`n` rounds for odd `n`), each of
/// `⌊n/2⌋` disjoint pairs; every unordered pair appears exactly once per
/// sweep. Pairs are emitted as `(min, max)`.
///
/// ```
/// use hj_core::ordering::round_robin;
///
/// let sweep = round_robin(8);
/// assert_eq!(sweep.round_count(), 7);
/// assert_eq!(sweep.pair_count(), 28); // C(8, 2): every pair, once
/// // The paper's hardware takes the rounds in groups of 8 pairs:
/// assert!(sweep.grouped(8).iter().all(|g| g.len() <= 8));
/// ```
pub fn round_robin(n: usize) -> Sweep {
    if n < 2 {
        return Sweep { rounds: Vec::new() };
    }
    // Treat odd n by adding a phantom "bye" slot.
    let slots = if n.is_multiple_of(2) { n } else { n + 1 };
    let rounds_count = slots - 1;
    let mut ring: Vec<usize> = (0..slots).collect();
    let mut rounds = Vec::with_capacity(rounds_count);
    for _ in 0..rounds_count {
        let mut round = Vec::with_capacity(n / 2);
        for k in 0..slots / 2 {
            let a = ring[k];
            let b = ring[slots - 1 - k];
            if a < n && b < n {
                round.push((a.min(b), a.max(b)));
            }
        }
        rounds.push(round);
        // Circle method: slot 0 stays fixed, the remaining slots rotate
        // right by one each round.
        let last = ring[slots - 1];
        for idx in (2..slots).rev() {
            ring[idx] = ring[idx - 1];
        }
        ring[1] = last;
    }
    Sweep { rounds }
}

/// Row-cyclic order: the literal `for i { for j in i+1.. }` of Algorithm 1.
/// Each pair is its own round (no intra-round parallelism).
pub fn row_cyclic(n: usize) -> Sweep {
    let mut rounds = Vec::new();
    for i in 0..n.saturating_sub(1) {
        for j in i + 1..n {
            rounds.push(vec![(i, j)]);
        }
    }
    Sweep { rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_full_coverage(sweep: &Sweep, n: usize) {
        let mut seen = HashSet::new();
        for (i, j) in sweep.pairs() {
            assert!(i < j, "pairs must be (min, max): ({i},{j})");
            assert!(j < n);
            assert!(seen.insert((i, j)), "pair ({i},{j}) visited twice");
        }
        assert_eq!(seen.len(), n * (n - 1) / 2, "sweep must visit every pair for n={n}");
    }

    fn assert_rounds_disjoint(sweep: &Sweep) {
        for round in sweep.rounds() {
            let mut used = HashSet::new();
            for &(i, j) in round {
                assert!(used.insert(i), "index {i} reused within a round");
                assert!(used.insert(j), "index {j} reused within a round");
            }
        }
    }

    #[test]
    fn round_robin_covers_all_pairs_even() {
        for n in [2usize, 4, 8, 32, 64] {
            let s = round_robin(n);
            assert_eq!(s.round_count(), n - 1);
            assert_full_coverage(&s, n);
            assert_rounds_disjoint(&s);
            for round in s.rounds() {
                assert_eq!(round.len(), n / 2);
            }
        }
    }

    #[test]
    fn round_robin_covers_all_pairs_odd() {
        for n in [3usize, 5, 7, 31] {
            let s = round_robin(n);
            assert_eq!(s.round_count(), n);
            assert_full_coverage(&s, n);
            assert_rounds_disjoint(&s);
        }
    }

    #[test]
    fn round_robin_degenerate() {
        assert_eq!(round_robin(0).pair_count(), 0);
        assert_eq!(round_robin(1).pair_count(), 0);
        let s = round_robin(2);
        assert_eq!(s.pair_count(), 1);
        assert_eq!(s.rounds()[0], vec![(0, 1)]);
    }

    #[test]
    fn row_cyclic_matches_algorithm_one_order() {
        let s = row_cyclic(4);
        let pairs: Vec<_> = s.pairs().collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_full_coverage(&s, 4);
    }

    #[test]
    fn grouped_respects_group_size() {
        let s = round_robin(32);
        // The paper's configuration: groups of 8 pairs enter the architecture.
        let groups = s.grouped(8);
        assert!(groups.iter().all(|g| g.len() <= 8 && !g.is_empty()));
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 32 * 31 / 2);
        // Disjointness within groups is inherited from rounds.
        for g in &groups {
            let mut used = HashSet::new();
            for &(i, j) in g {
                assert!(used.insert(i) && used.insert(j));
            }
        }
    }

    #[test]
    fn grouped_iter_matches_grouped() {
        for n in [5usize, 8, 17, 32] {
            let s = round_robin(n);
            for group in [1usize, 3, 8] {
                let owned = s.grouped(group);
                let borrowed: Vec<&[(usize, usize)]> = s.grouped_iter(group).collect();
                assert_eq!(owned.len(), borrowed.len(), "n={n} group={group}");
                for (o, b) in owned.iter().zip(&borrowed) {
                    assert_eq!(o.as_slice(), *b);
                }
            }
        }
    }

    #[test]
    fn build_sweep_dispatches() {
        assert_eq!(build_sweep(Ordering::RoundRobin, 6), round_robin(6));
        assert_eq!(build_sweep(Ordering::RowCyclic, 6), row_cyclic(6));
    }
}
