//! The maintained covariance matrix `D` — the paper's key optimization.
//!
//! A naive Hestenes sweep recomputes `‖aᵢ‖²`, `‖aⱼ‖²`, and `aᵢᵀaⱼ` from the
//! full `m`-long columns for every pair, every sweep (`O(m·n²)` per sweep;
//! this is the "repeated calculations" the paper criticizes in the earlier
//! FPGA design \[12\]). The modified algorithm computes `D = AᵀA` **once** and
//! thereafter updates it in place after each rotation in `O(n)`:
//! when columns `i`, `j` are rotated, only row/column `i` and `j` of `D`
//! change, by the same plane rotation (Algorithm 1 lines 15–26).
//!
//! [`GramState`] owns that matrix and implements the update — with the
//! temporaries that the paper's pseudocode forgets (see DESIGN.md).

use crate::rotation::Rotation;
use hj_matrix::{Matrix, OffDiagonalSummary, PackedSymmetric};

/// The covariance matrix `D` of Algorithm 1, plus rotation bookkeeping.
///
/// ```
/// use hj_core::{GramState, rotation::textbook_params};
/// use hj_matrix::gen;
///
/// let a = gen::uniform(100, 8, 7);
/// let mut d = GramState::from_matrix(&a);          // O(m·n²), once
/// let rot = textbook_params(d.norm_sq(0), d.norm_sq(3), d.covariance(0, 3));
/// d.rotate(0, 3, &rot);                            // O(n), per rotation
/// assert_eq!(d.covariance(0, 3), 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct GramState {
    d: PackedSymmetric,
}

impl GramState {
    /// Build `D = AᵀA` from a matrix — the work of the paper's Hestenes
    /// preprocessor in the first sweep.
    pub fn from_matrix(a: &Matrix) -> Self {
        GramState { d: a.gram() }
    }

    /// Parallel Gram construction (rayon): one task per packed-triangle row.
    ///
    /// Bit-identical to [`GramState::from_matrix`] (each entry is the same
    /// single dot product, just computed on a different thread), so the two
    /// are interchangeable; use this for large `n` where the `O(m·n²)`
    /// build dominates.
    pub fn from_matrix_parallel(a: &Matrix) -> Self {
        use rayon::prelude::*;
        let n = a.cols();
        let mut d = PackedSymmetric::zeros(n);
        // Split the packed buffer into its triangle rows.
        let mut rows: Vec<(usize, &mut [f64])> = Vec::with_capacity(n);
        {
            let mut rest = d.as_mut_slice();
            for i in 0..n {
                let (row, tail) = rest.split_at_mut(n - i);
                rows.push((i, row));
                rest = tail;
            }
        }
        rows.par_iter_mut().for_each(|(i, row)| {
            let ci = a.col(*i);
            for (off, out) in row.iter_mut().enumerate() {
                *out = hj_matrix::ops::dot(ci, a.col(*i + off));
            }
        });
        GramState { d }
    }

    /// Wrap an existing packed symmetric matrix (must be a Gram matrix, i.e.
    /// positive semidefinite, for the algorithm's invariants to hold).
    pub fn from_packed(d: PackedSymmetric) -> Self {
        GramState { d }
    }

    /// Dimension `n` (number of columns of the original matrix).
    #[inline]
    pub fn dim(&self) -> usize {
        self.d.dim()
    }

    /// Squared 2-norm of column `i` (diagonal entry `D_ii`).
    #[inline]
    pub fn norm_sq(&self, i: usize) -> f64 {
        self.d.get(i, i)
    }

    /// Covariance between columns `i` and `j`.
    #[inline]
    pub fn covariance(&self, i: usize, j: usize) -> f64 {
        self.d.get(i, j)
    }

    /// Borrow the underlying packed matrix.
    #[inline]
    pub fn packed(&self) -> &PackedSymmetric {
        &self.d
    }

    /// Mutable borrow of the underlying packed matrix — for the blocked
    /// engine's tiled write-back, which updates `D` entries in place.
    #[inline]
    pub(crate) fn packed_mut(&mut self) -> &mut PackedSymmetric {
        &mut self.d
    }

    /// Consume into the underlying packed matrix.
    pub fn into_packed(self) -> PackedSymmetric {
        self.d
    }

    /// O(1)-swap the maintained `D` with `buf` — the publish step of the
    /// double-buffered parallel round update ([`crate::parallel`]). `buf`
    /// must hold a same-dimension triangle (the new `D` after the round).
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn swap_packed(&mut self, buf: &mut PackedSymmetric) {
        assert_eq!(self.d.dim(), buf.dim(), "swap_packed: dimension mismatch");
        self.d.swap(buf);
    }

    /// Apply the plane rotation `rot` of column pair `(i, j)` to `D`
    /// (Algorithm 1 lines 15–26, with the required temporaries).
    ///
    /// Cost: `O(n)` — this is the work the paper's Update operator performs
    /// for the covariances, `n − 2` element-pair rotations plus the O(1)
    /// diagonal update. Runs on [`crate::kernel::rotate_packed`], the
    /// three-region slice kernel that is bit-identical to the scalar
    /// `get`/`set` traversal of "all k ≠ i, j".
    pub fn rotate(&mut self, i: usize, j: usize, rot: &Rotation) {
        crate::kernel::rotate_packed(&mut self.d, i, j, rot);
    }

    /// Mean absolute off-diagonal covariance — the paper's convergence metric
    /// (Figs. 10–11).
    pub fn mean_abs_covariance(&self) -> f64 {
        self.d.off_diagonal_mean_abs()
    }

    /// `off(D)`: Frobenius norm of the off-diagonal part.
    pub fn off_frobenius(&self) -> f64 {
        self.d.off_diagonal_frobenius()
    }

    /// Largest absolute off-diagonal covariance.
    pub fn max_abs_covariance(&self) -> f64 {
        self.d.off_diagonal_max_abs()
    }

    /// All three off-diagonal convergence reductions in one fused pass over
    /// the packed triangle (see [`PackedSymmetric::off_diagonal_summary`]);
    /// each field is bit-identical to the corresponding standalone metric.
    /// The per-sweep record uses this so instrumentation reads `D` once per
    /// sweep instead of three times.
    pub fn off_summary(&self) -> OffDiagonalSummary {
        self.d.off_diagonal_summary()
    }

    /// Trace of `D` (= `‖A‖_F²`), invariant under rotations.
    pub fn trace(&self) -> f64 {
        self.d.trace()
    }

    /// Singular values implied by the current diagonal: `σᵢ = √D_ii`,
    /// unsorted (Algorithm 1 lines 28–29). Negative diagonal dust from
    /// roundoff is clamped to zero.
    pub fn singular_values_unsorted(&self) -> Vec<f64> {
        (0..self.d.dim()).map(|i| self.d.get(i, i).max(0.0).sqrt()).collect()
    }

    /// One allocation-free `O(n)` pass over the diagonal of `D`, summarizing
    /// what the per-sweep health check needs: finiteness, the smallest entry
    /// (and where), and the largest magnitude. Unlike
    /// [`PackedSymmetric::diagonal`], this copies nothing — it is safe to
    /// call every sweep without breaking the engines' steady-state
    /// zero-allocation invariant.
    pub fn diagonal_scan(&self) -> DiagonalScan {
        let mut scan = DiagonalScan { finite: true, min: f64::INFINITY, argmin: 0, max_abs: 0.0 };
        for i in 0..self.d.dim() {
            let d = self.d.get(i, i);
            if !d.is_finite() {
                scan.finite = false;
                return scan;
            }
            scan.max_abs = scan.max_abs.max(d.abs());
            if d < scan.min {
                scan.min = d;
                scan.argmin = i;
            }
        }
        scan
    }
}

/// Summary of one [`GramState::diagonal_scan`] pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiagonalScan {
    /// All diagonal entries are finite (when `false` the other fields stop
    /// at the first non-finite entry and are not meaningful).
    pub finite: bool,
    /// Smallest diagonal entry (`+∞` for an empty matrix).
    pub min: f64,
    /// Index of the smallest diagonal entry.
    pub argmin: usize,
    /// Largest absolute diagonal entry (0 for an empty matrix).
    pub max_abs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotation::textbook_params;
    use hj_matrix::gen;

    /// Reference: rotate the actual matrix columns, recompute the Gram matrix
    /// from scratch, and compare against the in-place O(n) update.
    #[test]
    fn gram_update_matches_recomputation() {
        let mut a = gen::uniform(17, 6, 123);
        let mut g = GramState::from_matrix(&a);
        // Rotate a few pairs in a fixed order.
        for &(i, j) in &[(0usize, 3usize), (1, 2), (4, 5), (0, 1), (2, 5)] {
            let rot = textbook_params(g.norm_sq(i), g.norm_sq(j), g.covariance(i, j));
            g.rotate(i, j, &rot);
            a.column_pair(i, j).unwrap().rotate(rot.cos, rot.sin);
            let fresh = GramState::from_matrix(&a);
            for p in 0..6 {
                for q in p..6 {
                    let got = g.covariance(p, q);
                    let want = fresh.covariance(p, q);
                    assert!(
                        (got - want).abs() < 1e-16 * g.trace() + 1e-12,
                        "D[{p}][{q}] diverged after rotating ({i},{j}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn rotate_zeroes_target_covariance() {
        let a = gen::uniform(10, 4, 7);
        let mut g = GramState::from_matrix(&a);
        let rot = textbook_params(g.norm_sq(1), g.norm_sq(3), g.covariance(1, 3));
        g.rotate(1, 3, &rot);
        assert_eq!(g.covariance(1, 3), 0.0);
    }

    #[test]
    fn rotate_preserves_trace() {
        let a = gen::uniform(20, 8, 99);
        let mut g = GramState::from_matrix(&a);
        let before = g.trace();
        for &(i, j) in &[(0usize, 7usize), (2, 3), (1, 6)] {
            let rot = textbook_params(g.norm_sq(i), g.norm_sq(j), g.covariance(i, j));
            g.rotate(i, j, &rot);
        }
        assert!((g.trace() - before).abs() < 1e-12 * before);
    }

    #[test]
    fn rotate_reduces_off_mass() {
        // A single Jacobi rotation removes exactly 2·cov² from off(D)²; the
        // off-diagonal Frobenius norm must strictly decrease when cov ≠ 0.
        let a = gen::uniform(12, 5, 55);
        let mut g = GramState::from_matrix(&a);
        let before = g.off_frobenius();
        let rot = textbook_params(g.norm_sq(0), g.norm_sq(4), g.covariance(0, 4));
        assert!(g.covariance(0, 4) != 0.0);
        g.rotate(0, 4, &rot);
        assert!(g.off_frobenius() < before);
    }

    #[test]
    fn identity_rotation_only_zeroes_cov_when_cov_zero() {
        // Applying IDENTITY must leave D unchanged except D_ij (set to 0,
        // correct only if cov was already 0 — which is the only case callers
        // use it for).
        let mut d = PackedSymmetric::zeros(3);
        d.set(0, 0, 1.0);
        d.set(1, 1, 2.0);
        d.set(2, 2, 3.0);
        d.set(1, 2, 0.0);
        d.set(0, 1, 0.5);
        let mut g = GramState::from_packed(d);
        g.rotate(1, 2, &Rotation::IDENTITY);
        assert_eq!(g.covariance(0, 1), 0.5, "unrelated covariances untouched");
        assert_eq!(g.norm_sq(1), 2.0);
    }

    #[test]
    fn singular_values_clamp_negative_dust() {
        let mut d = PackedSymmetric::zeros(2);
        d.set(0, 0, 4.0);
        d.set(1, 1, -1e-18); // roundoff dust
        let g = GramState::from_packed(d);
        assert_eq!(g.singular_values_unsorted(), vec![2.0, 0.0]);
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        for &(m, n) in &[(10usize, 3usize), (50, 17), (7, 7), (3, 20)] {
            let a = gen::uniform(m, n, (m * 100 + n) as u64);
            let seq = GramState::from_matrix(&a);
            let par = GramState::from_matrix_parallel(&a);
            assert_eq!(seq.packed().as_slice(), par.packed().as_slice(), "{m}x{n}");
        }
    }

    #[test]
    fn diagonal_scan_summarizes_without_allocating() {
        let mut d = PackedSymmetric::zeros(4);
        d.set(0, 0, 4.0);
        d.set(1, 1, -2.0);
        d.set(2, 2, 0.5);
        d.set(3, 3, 1.0);
        let scan = GramState::from_packed(d.clone()).diagonal_scan();
        assert!(scan.finite);
        assert_eq!(scan.min, -2.0);
        assert_eq!(scan.argmin, 1);
        assert_eq!(scan.max_abs, 4.0);

        d.set(2, 2, f64::NAN);
        assert!(!GramState::from_packed(d).diagonal_scan().finite);
    }

    #[test]
    fn accessors() {
        let a = gen::uniform(5, 3, 1);
        let g = GramState::from_matrix(&a);
        assert_eq!(g.dim(), 3);
        assert_eq!(g.packed().dim(), 3);
        let p = g.clone().into_packed();
        assert_eq!(p.dim(), 3);
    }
}
