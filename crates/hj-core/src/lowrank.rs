//! Low-rank and spectral utilities built on the SVD: best rank-k
//! approximation errors, numerical rank, condition number, pseudoinverse,
//! and nuclear/spectral norms.
//!
//! These are the downstream operations the paper's introduction motivates
//! (dimensionality reduction, robust PCA's repeated partial SVDs) packaged
//! over [`crate::Svd`] so every example and experiment uses one audited
//! implementation.

// Index loops below mirror the paper's mathematical notation across
// several coupled arrays; iterator rewrites would obscure the algebra.
#![allow(clippy::needless_range_loop)]

use crate::svd::Svd;
use hj_matrix::{ops, Matrix};

/// Spectral norm `‖A‖₂ = σ₁`.
pub fn spectral_norm(svd: &Svd) -> f64 {
    svd.singular_values.first().copied().unwrap_or(0.0)
}

/// Nuclear norm `‖A‖₊ = Σ σᵢ`.
pub fn nuclear_norm(svd: &Svd) -> f64 {
    svd.singular_values.iter().sum()
}

/// Condition number `κ₂ = σ_max / σ_min` (∞ when rank-deficient at the
/// given tolerance).
pub fn condition_number(svd: &Svd, tol: f64) -> f64 {
    let smax = spectral_norm(svd);
    if smax == 0.0 {
        return f64::INFINITY;
    }
    let r = svd.rank(tol);
    if r < svd.singular_values.len() {
        return f64::INFINITY;
    }
    smax / svd.singular_values[r - 1]
}

/// The Frobenius error of the best rank-`r` approximation,
/// `√(Σ_{t>r} σ_t²)` (Eckart-Young).
pub fn rank_r_error(svd: &Svd, r: usize) -> f64 {
    svd.singular_values.iter().skip(r).map(|s| s * s).sum::<f64>().sqrt()
}

/// The smallest rank whose best approximation achieves a relative
/// Frobenius error ≤ `rel_tol` (the "how many components do I need"
/// question of every PCA application).
pub fn rank_for_error(svd: &Svd, rel_tol: f64) -> usize {
    let total: f64 = svd.singular_values.iter().map(|s| s * s).sum();
    if total == 0.0 {
        return 0;
    }
    let budget = rel_tol * rel_tol * total;
    let mut tail = total;
    for (r, s) in svd.singular_values.iter().enumerate() {
        if tail <= budget {
            return r;
        }
        tail -= s * s;
    }
    svd.singular_values.len()
}

/// Moore-Penrose pseudoinverse `A⁺ = V Σ⁺ Uᵀ` (an `n × m` matrix).
/// Singular values ≤ `tol · σ_max` are treated as zero.
///
/// ```
/// use hj_core::{lowrank, HestenesSvd, SvdOptions};
/// use hj_matrix::{gen, norms, Matrix};
///
/// let a = gen::uniform(8, 3, 2);
/// let svd = HestenesSvd::new(SvdOptions::default()).decompose(&a).unwrap();
/// let pinv = lowrank::pseudoinverse(&svd, 1e-12);
/// let should_be_identity = pinv.matmul(&a).unwrap();
/// let err = norms::frobenius(&should_be_identity.sub(&Matrix::identity(3)).unwrap());
/// assert!(err < 1e-10);
/// ```
pub fn pseudoinverse(svd: &Svd, tol: f64) -> Matrix {
    let (m, k) = svd.u.shape();
    let n = svd.v.rows();
    let smax = spectral_norm(svd);
    let cutoff = tol * smax;
    let mut out = Matrix::zeros(n, m);
    for t in 0..k {
        let s = svd.singular_values[t];
        if s <= cutoff || s == 0.0 {
            continue;
        }
        let inv = 1.0 / s;
        // out += inv · v_t · u_tᵀ
        let vt = svd.v.col(t);
        let ut = svd.u.col(t);
        for c in 0..m {
            let w = inv * ut[c];
            if w != 0.0 {
                ops::axpy(w, vt, out.col_mut(c));
            }
        }
    }
    out
}

/// Least-squares solve `min ‖Ax − b‖₂` via the pseudoinverse factors
/// (without forming `A⁺` explicitly): `x = V Σ⁺ Uᵀ b`.
pub fn lstsq(svd: &Svd, b: &[f64], tol: f64) -> Vec<f64> {
    let (m, k) = svd.u.shape();
    assert_eq!(b.len(), m, "rhs length must equal the row count");
    let n = svd.v.rows();
    let cutoff = tol * spectral_norm(svd);
    let mut x = vec![0.0f64; n];
    for t in 0..k {
        let s = svd.singular_values[t];
        if s <= cutoff || s == 0.0 {
            continue;
        }
        let coeff = ops::dot(svd.u.col(t), b) / s;
        ops::axpy(coeff, svd.v.col(t), &mut x);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HestenesSvd, SvdOptions};
    use hj_matrix::{gen, norms, Matrix};

    fn svd_of(a: &Matrix) -> Svd {
        HestenesSvd::new(SvdOptions::default()).decompose(a).unwrap()
    }

    #[test]
    fn norms_and_condition() {
        let sigma = [4.0, 2.0, 1.0];
        let a = gen::with_singular_values(10, 3, &sigma, 1);
        let s = svd_of(&a);
        assert!((spectral_norm(&s) - 4.0).abs() < 1e-12);
        assert!((nuclear_norm(&s) - 7.0).abs() < 1e-12);
        assert!((condition_number(&s, f64::EPSILON) - 4.0).abs() < 1e-10);
    }

    #[test]
    fn rank_deficient_condition_is_infinite() {
        let a = gen::rank_deficient(12, 5, 2, 3);
        let s = svd_of(&a);
        assert_eq!(condition_number(&s, f64::EPSILON), f64::INFINITY);
        let z = svd_of(&Matrix::zeros(3, 3));
        assert_eq!(condition_number(&z, f64::EPSILON), f64::INFINITY);
    }

    #[test]
    fn eckart_young_error_formula() {
        let sigma = [5.0, 3.0, 2.0, 1.0];
        let a = gen::with_singular_values(12, 4, &sigma, 7);
        let s = svd_of(&a);
        for r in 0..=4 {
            let direct = rank_r_error(&s, r);
            let ar = s.truncated(r);
            let measured = norms::frobenius(&a.sub(&ar).unwrap());
            assert!((direct - measured).abs() < 1e-9, "rank {r}: {direct} vs {measured}");
        }
        assert_eq!(rank_r_error(&s, 4), 0.0);
    }

    #[test]
    fn rank_for_error_budgeting() {
        let sigma = [10.0, 1.0, 0.1, 0.01];
        let a = gen::with_singular_values(15, 4, &sigma, 9);
        let s = svd_of(&a);
        // Full accuracy needs all components...
        assert_eq!(rank_for_error(&s, 0.0), 4);
        // ...10% relative error is reached with just the top component
        // (tail = √(1+0.01+0.0001) ≈ 1.005 vs 0.1·‖A‖ ≈ 1.005) — boundary;
        // 11% comfortably needs 1.
        assert!(rank_for_error(&s, 0.11) <= 1);
        // Everything fits in rank 0 only if the tolerance swallows ‖A‖.
        assert_eq!(rank_for_error(&s, 1.0), 0);
        let z = svd_of(&Matrix::zeros(3, 2));
        assert_eq!(rank_for_error(&z, 0.5), 0);
    }

    #[test]
    fn pseudoinverse_properties() {
        let a = gen::uniform(10, 4, 11);
        let s = svd_of(&a);
        let pinv = pseudoinverse(&s, 1e-12);
        assert_eq!(pinv.shape(), (4, 10));
        // A⁺·A = I (full column rank).
        let prod = pinv.matmul(&a).unwrap();
        let err = norms::frobenius(&prod.sub(&Matrix::identity(4)).unwrap());
        assert!(err < 1e-10, "A⁺A deviates from I by {err}");
        // A·A⁺·A = A (Moore-Penrose axiom 1).
        let apa = a.matmul(&pinv).unwrap().matmul(&a).unwrap();
        assert!(norms::frobenius(&apa.sub(&a).unwrap()) < 1e-10);
    }

    #[test]
    fn pseudoinverse_of_rank_deficient() {
        let a = gen::rank_deficient(8, 4, 2, 13);
        let s = svd_of(&a);
        let pinv = pseudoinverse(&s, 1e-10);
        // A·A⁺·A = A still holds for rank-deficient inputs.
        let apa = a.matmul(&pinv).unwrap().matmul(&a).unwrap();
        assert!(norms::frobenius(&apa.sub(&a).unwrap()) < 1e-10);
    }

    #[test]
    fn lstsq_solves_consistent_system() {
        let a = gen::uniform(12, 5, 17);
        let x_true: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let mut b = vec![0.0; 12];
        for c in 0..5 {
            hj_matrix::ops::axpy(x_true[c], a.col(c), &mut b);
        }
        let s = svd_of(&a);
        let x = lstsq(&s, &b, 1e-12);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn lstsq_minimizes_residual_for_inconsistent_system() {
        let a = gen::uniform(10, 3, 19);
        let b: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let s = svd_of(&a);
        let x = lstsq(&s, &b, 1e-12);
        // Residual must be orthogonal to the column space: Aᵀ(Ax − b) = 0.
        let mut resid = b.clone();
        for c in 0..3 {
            hj_matrix::ops::axpy(-x[c], a.col(c), &mut resid);
        }
        for c in 0..3 {
            let g = hj_matrix::ops::dot(a.col(c), &resid);
            assert!(g.abs() < 1e-9, "gradient component {c} = {g}");
        }
    }

    #[test]
    #[should_panic(expected = "rhs length")]
    fn lstsq_checks_dimensions() {
        let a = gen::uniform(6, 2, 21);
        let s = svd_of(&a);
        let _ = lstsq(&s, &[1.0, 2.0], 1e-12);
    }
}
