//! Deterministic fault-injection harness (feature `fault-injection` only).
//!
//! The robustness campaign in `tests/fault_injection.rs` needs to corrupt a
//! solve *mid-flight* — after validation has passed and sweeps are running —
//! to prove the health check detects each fault class within one sweep and
//! the recovery policy either heals the solve or rejects it loudly. This
//! module is that corruption source: a [`FaultInjector`] hook called by
//! [`crate::SolveDriver::run_monitored`] around every sweep, and a
//! deterministic [`SeededInjector`] that fires planned [`Corruption`]s at
//! chosen sweep coordinates.
//!
//! The entire module (and the hook fields/calls in the engine path) is
//! gated behind the `fault-injection` cargo feature; production builds
//! compile none of it, which CI proves with a `--no-default-features`
//! build.

use crate::gram::GramState;
use crate::rotation::Rotation;
use std::time::Duration;

/// A corruption source threaded through the monitored sweep loop.
///
/// `before_sweep` runs ahead of the sweep so the sweep's own
/// [`crate::SweepRecord`] metrics reflect the corruption — the health check
/// must see the fault in the same sweep's record, never declare convergence
/// on poisoned state. `after_sweep` runs once the sweep (and its record) is
/// done, before the health inspection.
pub trait FaultInjector {
    /// Called before sweep `sweep` (1-based) executes.
    fn before_sweep(&mut self, sweep: usize, gram: &mut GramState) {
        let _ = (sweep, gram);
    }

    /// Called after sweep `sweep` executes, before the health check runs.
    fn after_sweep(&mut self, sweep: usize, gram: &mut GramState) {
        let _ = (sweep, gram);
    }
}

/// One planned corruption of the solve state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// Overwrite `D[i][j]` with an arbitrary value (NaN/∞ models an
    /// escaped overflow; a negative value on the diagonal models a
    /// corrupted norm update).
    GramEntry {
        /// Row index into `D`.
        i: usize,
        /// Column index into `D`.
        j: usize,
        /// The value written (need not be finite).
        value: f64,
    },
    /// Apply a non-orthonormal "rotation" to pair `(i, j)` of `D` — models
    /// a broken rotation kernel. `cos² + sin² ≠ 1` inflates or deflates the
    /// pair's mass every time it fires (persistent mode wedges convergence;
    /// a one-shot perturbs the spectrum and trips the diagonal checks).
    BogusRotation {
        /// First column of the corrupted pair.
        i: usize,
        /// Second column of the corrupted pair.
        j: usize,
        /// Claimed cosine (unchecked).
        cos: f64,
        /// Claimed sine (unchecked).
        sin: f64,
    },
    /// Sleep this long — models a slow sweep, for exercising the
    /// [`crate::recovery::SolveBudget`] deadline path deterministically.
    Delay {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
}

struct Planned {
    sweep: usize,
    corruption: Corruption,
    fired: bool,
}

/// A deterministic injector: corruptions planned at exact sweep indices, an
/// xorshift coordinate picker seeded once (so campaigns are reproducible
/// from a seed alone), and a log of everything that fired.
///
/// By default each corruption fires exactly once, at its planned sweep — a
/// transient fault that a rescale-and-restart recovery genuinely clears
/// (the restart rebuilds `D` from the pristine input). [`SeededInjector::persistent`]
/// switches to firing at every sweep at or past the planned index, modeling
/// a hard fault that no restart can outrun (the abort-path tests).
pub struct SeededInjector {
    state: u64,
    planned: Vec<Planned>,
    fired: Vec<(usize, Corruption)>,
    persistent: bool,
}

impl SeededInjector {
    /// Injector with no planned corruptions and the given RNG seed.
    pub fn new(seed: u64) -> Self {
        SeededInjector {
            state: seed.max(1), // xorshift has a zero fixed point
            planned: Vec::new(),
            fired: Vec::new(),
            persistent: false,
        }
    }

    /// Plan `corruption` to fire before sweep `sweep` (1-based).
    pub fn at_sweep(mut self, sweep: usize, corruption: Corruption) -> Self {
        self.planned.push(Planned { sweep, corruption, fired: false });
        self
    }

    /// Fire every planned corruption at *every* sweep at or past its planned
    /// index, instead of once — a hard fault that restarts cannot clear.
    pub fn persistent(mut self) -> Self {
        self.persistent = true;
        self
    }

    /// Everything that fired so far, as `(sweep, corruption)` pairs.
    pub fn fired(&self) -> &[(usize, Corruption)] {
        &self.fired
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Deterministically pick a distinct column pair `(i, j)`, `i < j`, for
    /// an `n`-column problem.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn pick_pair(&mut self, n: usize) -> (usize, usize) {
        assert!(n >= 2, "a pair needs at least two columns");
        let i = (self.next() % n as u64) as usize;
        let mut j = (self.next() % n as u64) as usize;
        if j == i {
            j = (i + 1) % n;
        }
        (i.min(j), i.max(j))
    }

    fn apply(gram: &mut GramState, corruption: Corruption) {
        match corruption {
            Corruption::GramEntry { i, j, value } => gram.packed_mut().set(i, j, value),
            Corruption::BogusRotation { i, j, cos, sin } => {
                let t = if cos != 0.0 { sin / cos } else { 0.0 };
                let rot = Rotation { cos, sin, t };
                // A finite bogus rotation corrupts through the normal O(n)
                // update path; a non-finite one is written straight onto the
                // pair (rotating by NaN would poison columns either way, this
                // just keeps the blast radius defined).
                if rot.is_finite() {
                    gram.rotate(i, j, &rot);
                } else {
                    gram.packed_mut().set(i, i, f64::NAN);
                    gram.packed_mut().set(i, j, f64::NAN);
                }
            }
            Corruption::Delay { millis } => std::thread::sleep(Duration::from_millis(millis)),
        }
    }
}

impl FaultInjector for SeededInjector {
    fn before_sweep(&mut self, sweep: usize, gram: &mut GramState) {
        let persistent = self.persistent;
        let mut fired_now = Vec::new();
        for p in &mut self.planned {
            let due = if persistent { sweep >= p.sweep } else { sweep == p.sweep && !p.fired };
            if due {
                Self::apply(gram, p.corruption);
                p.fired = true;
                fired_now.push((sweep, p.corruption));
            }
        }
        self.fired.extend(fired_now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hj_matrix::gen;

    #[test]
    fn one_shot_corruption_fires_exactly_once() {
        let a = gen::uniform(10, 4, 1);
        let mut g = GramState::from_matrix(&a);
        let mut inj = SeededInjector::new(7)
            .at_sweep(2, Corruption::GramEntry { i: 0, j: 1, value: f64::NAN });
        inj.before_sweep(1, &mut g);
        assert!(g.covariance(0, 1).is_finite());
        inj.before_sweep(2, &mut g);
        assert!(g.covariance(0, 1).is_nan());
        assert_eq!(inj.fired().len(), 1);
        // Rebuild (as a recovery restart does) and keep sweeping: one-shot
        // corruption does not re-fire.
        let mut g = GramState::from_matrix(&a);
        inj.before_sweep(2, &mut g);
        inj.before_sweep(3, &mut g);
        assert!(g.covariance(0, 1).is_finite());
        assert_eq!(inj.fired().len(), 1);
    }

    #[test]
    fn persistent_corruption_refires_after_restart() {
        let a = gen::uniform(10, 4, 2);
        let mut inj = SeededInjector::new(7)
            .at_sweep(1, Corruption::GramEntry { i: 2, j: 2, value: -5.0 })
            .persistent();
        for attempt in 0..3 {
            let mut g = GramState::from_matrix(&a);
            inj.before_sweep(1, &mut g);
            assert_eq!(g.norm_sq(2), -5.0, "attempt {attempt}");
        }
        assert_eq!(inj.fired().len(), 3);
    }

    #[test]
    fn bogus_rotation_inflates_pair_mass() {
        // cos = sin = 1 is "rotation" by a matrix with determinant 2: each
        // application roughly doubles the pair's off-diagonal mass
        // ((x−y)² + (x+y)² = 2(x² + y²)), which is exactly the
        // non-convergent behavior the stall detector must catch.
        let a = gen::uniform(10, 4, 3);
        let mut g = GramState::from_matrix(&a);
        let before = g.off_frobenius();
        SeededInjector::apply(&mut g, Corruption::BogusRotation { i: 0, j: 1, cos: 1.0, sin: 1.0 });
        assert!(
            g.off_frobenius() > before,
            "non-orthonormal rotation must grow the off-diagonal mass"
        );
        assert!(Rotation { cos: 1.0, sin: 1.0, t: 1.0 }.is_finite());
    }

    #[test]
    fn non_finite_bogus_rotation_poisons_the_pair() {
        let a = gen::uniform(10, 4, 4);
        let mut g = GramState::from_matrix(&a);
        SeededInjector::apply(
            &mut g,
            Corruption::BogusRotation { i: 1, j: 3, cos: f64::NAN, sin: 0.5 },
        );
        assert!(!g.diagonal_scan().finite);
    }

    #[test]
    fn pick_pair_is_deterministic_and_valid() {
        let mut x = SeededInjector::new(99);
        let mut y = SeededInjector::new(99);
        for _ in 0..50 {
            let (i, j) = x.pick_pair(7);
            assert_eq!((i, j), y.pick_pair(7));
            assert!(i < j && j < 7);
        }
    }
}
