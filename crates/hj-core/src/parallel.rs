//! Round-synchronous parallel sweeps (rayon).
//!
//! The round-robin ordering groups each sweep into rounds of pairwise
//! disjoint column pairs — the same structure the paper's hardware exploits
//! to issue groups of rotations concurrently (Fig. 6). Within a round:
//!
//! 1. every pair's rotation parameters depend only on `D` entries that no
//!    other pair in the round writes (`D_ii`, `D_jj`, `D_ij`), so they can be
//!    computed from a single snapshot;
//! 2. the combined covariance update is `D ← JᵀDJ` with `J` the product of
//!    the round's commuting plane rotations. Applied in place it would race
//!    (entry `D_ik` is written by both pair-of-`i` and pair-of-`k`), so we
//!    apply it **functionally**: each row of the new packed triangle is
//!    computed from the old `D` in parallel — double-buffering instead of
//!    locks, exactly the "compute group, then update" phasing of the
//!    hardware's FIFO-synchronized pipeline;
//! 3. column (and `V`) rotations are applied the same way: the new column
//!    set is written into a back buffer from the old one (each column reads
//!    only itself and its round partner), then the buffers swap.
//!
//! # Zero allocation after warm-up
//!
//! All scratch — the back triangle, the per-column roles, the pair lookup,
//! the rotation list, the triangle row offsets, and the column back buffer —
//! lives in a reusable [`SweepWorkspace`]. A problem's first sweep sizes it
//! (the warm-up); every later round of that problem runs with **zero heap
//! allocations**: buffers are swapped, never reallocated, and the
//! thread-pool dispatch itself is allocation-free. Because swap-publishing
//! trades buffers with the caller's matrices, pointing a warm workspace at a
//! *new* problem may cost a bounded handful of buffer exchanges in that
//! problem's first sweep — never per round or per sweep.
//! `tests/zero_alloc.rs` pins both halves down with a counting global
//! allocator, and [`SweepWorkspace::allocations`] exposes the warm-up count
//! to [`crate::SolveStats`].
//!
//! Determinism: given the same input and ordering, the round-synchronous
//! path produces bit-identical results to itself at any thread count ≥ 2
//! (the reduction order within each output entry is fixed). It differs from
//! the sequential driver only in rounding (sequential applies rotations of
//! a round one-by-one; this applies them jointly from the round snapshot) —
//! both converge to the same spectrum, which the tests verify.
//!
//! On a **single-threaded** pool the engine does not run that machinery at
//! all: [`Parallel::new`] detects `rayon::current_num_threads() == 1` and
//! falls through to the in-place [`Sequential`] kernels, which are strictly
//! faster there (no double-buffer traffic, no functional `JᵀDJ`). The
//! fallback is bit-identical to the sequential engine — so results at one
//! thread differ in rounding from results at two or more, exactly as the
//! sequential and parallel engines always have.

use crate::convergence::SweepRecord;
use crate::engine::{PairGuard, ReadyGuard, RotationTarget, Sequential, SweepEngine, SweepState};
use crate::gram::GramState;
use crate::ordering::Sweep;
use crate::rotation::Rotation;
use crate::stats::SolveStats;
use crate::sweep::finish_record;
use crate::trace::{TraceEvent, Tracer};
use hj_matrix::{Matrix, PackedSymmetric};

/// Per-column rotation role within a round: `new_col_p = alpha·col_p + beta·col_partner`.
#[derive(Clone, Copy)]
struct Role {
    alpha: f64,
    beta: f64,
    partner: usize,
}

impl Role {
    const UNPAIRED: Role = Role { alpha: 1.0, beta: 0.0, partner: usize::MAX };
}

/// Split borrows handed to the blocked engine's tiled group application:
/// `(rotations, tile, diag_new, gram_bytes)`.
pub(crate) type TileParts<'a> =
    (&'a [(usize, usize, Rotation)], &'a mut [f64], &'a mut Vec<f64>, &'a mut u64);

/// Reusable scratch for the round-synchronous parallel engine and the
/// cache-tiled [`crate::engine::Blocked`] engine.
///
/// Holds the double-buffered packed triangle, the per-column role/pair
/// lookups, the rotation list, the triangle row offsets, the column back
/// buffer, and the blocked engine's staging tile. Sized lazily on first use
/// (the warm-up) and resized only when a larger problem arrives;
/// steady-state rounds allocate nothing. One workspace may serve solves of
/// different shapes back to back — each `prepare` re-derives the layout from
/// the incoming dimensions.
///
/// ```
/// use hj_core::engine::{PairGuard, RotationTarget, SolveDriver, SweepState};
/// use hj_core::parallel::{Parallel, SweepWorkspace};
/// use hj_core::{ordering::round_robin, Convergence, GramState};
/// use hj_matrix::gen;
///
/// let a = gen::uniform(30, 12, 17);
/// let mut g = GramState::from_matrix(&a);
/// let order = round_robin(12);
/// let mut ws = SweepWorkspace::new(); // allocates only during sweep 1
/// let mut state = SweepState {
///     gram: &mut g,
///     target: RotationTarget::gram_only(),
///     guard: PairGuard::default(),
/// };
/// let driver = SolveDriver {
///     convergence: Convergence::MaxCovariance { tol: 1e-12 },
///     max_sweeps: 30,
/// };
/// let (_history, stats) = driver.run(&mut Parallel::new(&mut ws), &mut state, &order);
/// assert_eq!(stats.engine, "parallel");
/// assert!(g.max_abs_covariance() < 1e-12 * g.trace());
/// ```
#[derive(Default)]
pub struct SweepWorkspace {
    /// Back buffer for the double-buffered `D` update.
    back: PackedSymmetric,
    /// Role of every column in the current round.
    roles: Vec<Role>,
    /// `pair_of[p]` = index into `rotations` if `p` is paired this round.
    pair_of: Vec<usize>,
    /// The current round's planned rotations.
    rotations: Vec<(usize, usize, Rotation)>,
    /// `n + 1` ascending offsets of the packed triangle's rows.
    row_starts: Vec<usize>,
    /// Back buffer for column (and `V`) rotations, resized between uses
    /// (length changes are free once capacity covers the largest matrix).
    col_back: Vec<f64>,
    /// The blocked engine's staging tile: the current group's logical
    /// columns of `D`, column-major, `2·pairs` columns of `n` entries.
    tile: Vec<f64>,
    /// The blocked engine's captured exact diagonal updates (two per pair).
    diag_new: Vec<f64>,
    /// The unskipped pairs of the round being planned, in visit order —
    /// the index map for the batched rotation-parameter lanes.
    batch_pairs: Vec<(usize, usize)>,
    /// One buffer holding the six SoA lanes of the batched
    /// rotation-parameter kernel (`ni | nj | cov | cos | sin | t`, each
    /// `n/2 + 1` wide) — a single allocation, split per round.
    batch_soa: Vec<f64>,
    /// Pooled ordering strategies + plan buffers for the scheduled solve
    /// path (`None` while a solve has them checked out). Not charged to
    /// `allocations`: planning happens outside the sweep engines.
    plan: Option<Box<crate::ordering::PlanBuffers>>,
    /// Buffer creations/growths performed so far (warm-up accounting).
    allocations: usize,
    /// Modeled bytes of packed-triangle traffic (see [`crate::SolveStats`]).
    gram_bytes: u64,
}

impl SweepWorkspace {
    /// Create an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        SweepWorkspace::default()
    }

    /// Heap allocation events performed by this workspace so far. Constant
    /// across steady-state rounds — the zero-allocation invariant.
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// Accumulated modeled bytes of packed-triangle (Gram) traffic.
    pub fn gram_bytes(&self) -> u64 {
        self.gram_bytes
    }

    /// Check out the pooled ordering scratch (fresh buffers the first time;
    /// the warmed pool on every later solve). Pair with
    /// [`SweepWorkspace::put_plan_buffers`].
    pub(crate) fn take_plan_buffers(&mut self) -> Box<crate::ordering::PlanBuffers> {
        self.plan.take().unwrap_or_default()
    }

    /// Return checked-out ordering scratch to the pool for the next solve.
    pub(crate) fn put_plan_buffers(&mut self, buffers: Box<crate::ordering::PlanBuffers>) {
        self.plan = Some(buffers);
    }

    /// Size the Gram-side buffers for dimension `n` (no-op once sized).
    fn prepare(&mut self, n: usize) {
        if self.back.dim() != n {
            if self.back.reset_for_dim(n) {
                self.allocations += 1;
            }
            self.row_starts.clear();
            if self.row_starts.capacity() < n + 1 {
                self.allocations += 1;
            }
            // Row p of the triangle starts after rows 0..p, which hold
            // n + (n-1) + … + (n-p+1) = p·(2n − p + 1)/2 entries.
            self.row_starts.extend((0..=n).map(|p| p * (2 * n + 1 - p) / 2));
        }
        self.prepare_plan(n);
    }

    /// Size only the round-planning scratch (roles, pair lookup, rotation
    /// list) for dimension `n` — all the blocked engine needs besides its
    /// tile; the parallel engine's `prepare` builds on this.
    pub(crate) fn prepare_plan(&mut self, n: usize) {
        if self.roles.capacity() < n {
            self.allocations += 1;
            self.roles.reserve(n - self.roles.capacity());
        }
        if self.pair_of.capacity() < n {
            self.allocations += 1;
            self.pair_of.reserve(n - self.pair_of.capacity());
        }
        if self.rotations.capacity() < n / 2 + 1 {
            self.allocations += 1;
            self.rotations.reserve(n / 2 + 1 - self.rotations.capacity());
        }
        let lanes = n / 2 + 1;
        if self.batch_pairs.capacity() < lanes {
            self.allocations += 1;
            self.batch_pairs.reserve(lanes - self.batch_pairs.capacity());
        }
        if self.batch_soa.len() < 6 * lanes {
            if self.batch_soa.capacity() < 6 * lanes {
                self.allocations += 1;
            }
            self.batch_soa.resize(6 * lanes, 0.0);
        }
    }

    /// Size the blocked engine's staging tile for up to `cols` logical `D`
    /// columns of `n` entries (plus the matching diagonal-capture scratch).
    pub(crate) fn prepare_tile(&mut self, cols: usize, n: usize) {
        let len = cols * n;
        if self.tile.capacity() < len {
            self.allocations += 1;
        }
        self.tile.clear();
        self.tile.resize(len, 0.0);
        if self.diag_new.capacity() < cols {
            self.allocations += 1;
            self.diag_new.reserve(cols - self.diag_new.capacity());
        }
    }

    /// The current round's planned rotations (filled by `plan_round`).
    pub(crate) fn rotations(&self) -> &[(usize, usize, Rotation)] {
        &self.rotations
    }

    /// Split borrows for the blocked engine's tiled group application.
    pub(crate) fn tile_parts(&mut self) -> TileParts<'_> {
        (&self.rotations, &mut self.tile, &mut self.diag_new, &mut self.gram_bytes)
    }

    /// Size the column back buffer for a `len`-element matrix, zero-filling.
    /// Contents are fully overwritten by the round kernel before use.
    fn prepare_cols(&mut self, len: usize) {
        if self.col_back.capacity() < len {
            self.allocations += 1;
        }
        self.col_back.clear();
        self.col_back.resize(len, 0.0);
    }
}

/// Compute the rotation set for one round (or pair group) from the current
/// `D` snapshot into the workspace's role/pair/rotation scratch, emitting
/// per-pair trace events (the planning loop is serial, so emission here is
/// race-free even though application is parallel). Returns
/// `(applied, skipped)`.
pub(crate) fn plan_round(
    gram: &GramState,
    round: &[(usize, usize)],
    guard: &ReadyGuard,
    sweep: usize,
    tracer: &mut Tracer<'_, '_>,
    ws: &mut SweepWorkspace,
) -> (usize, usize) {
    let n = gram.dim();
    ws.roles.clear();
    ws.roles.resize(n, Role::UNPAIRED);
    ws.pair_of.clear();
    ws.pair_of.resize(n, usize::MAX);
    ws.rotations.clear();
    ws.batch_pairs.clear();
    let mut skipped = 0;
    let lanes = ws.batch_soa.len() / 6;
    debug_assert!(lanes >= round.len(), "workspace not prepared for this round size");
    let (ni_l, rest) = ws.batch_soa.split_at_mut(lanes);
    let (nj_l, rest) = rest.split_at_mut(lanes);
    let (cov_l, rest) = rest.split_at_mut(lanes);
    let (cos_l, rest) = rest.split_at_mut(lanes);
    let (sin_l, t_l) = rest.split_at_mut(lanes);
    // Pass 1 — guard every pair against the round snapshot, gathering the
    // survivors' (D_ii, D_jj, D_ij) triples into the SoA input lanes. Trace
    // events are emitted here, in visit order, so the stream is identical
    // to the one the old fused per-pair loop produced.
    for &(i, j) in round {
        let (ni, nj, cov) = (gram.norm_sq(i), gram.norm_sq(j), gram.covariance(i, j));
        if guard.skip(ni, nj, cov) {
            skipped += 1;
            if tracer.rotation_enabled() {
                tracer.emit(TraceEvent::RotationSkipped { sweep, i, j, reason: guard.reason() });
            }
            continue;
        }
        let k = ws.batch_pairs.len();
        ni_l[k] = ni;
        nj_l[k] = nj;
        cov_l[k] = cov;
        ws.batch_pairs.push((i, j));
        if tracer.rotation_enabled() {
            tracer.emit(TraceEvent::RotationApplied { sweep, i, j });
        }
    }
    let applied = ws.batch_pairs.len();
    // Pass 2 — one batched SoA kernel call computes every survivor's
    // (cos, sin, t); bit-identical to calling `textbook_params` per pair.
    crate::kernel::batch_params(
        &ni_l[..applied],
        &nj_l[..applied],
        &cov_l[..applied],
        &mut cos_l[..applied],
        &mut sin_l[..applied],
        &mut t_l[..applied],
    );
    // Pass 3 — scatter the parameters into the role/pair/rotation scratch.
    for (k, &(i, j)) in ws.batch_pairs.iter().enumerate() {
        let rot = Rotation { cos: cos_l[k], sin: sin_l[k], t: t_l[k] };
        // aᵢ' = cos·aᵢ − sin·aⱼ ; aⱼ' = sin·aᵢ + cos·aⱼ
        ws.roles[i] = Role { alpha: rot.cos, beta: -rot.sin, partner: j };
        ws.roles[j] = Role { alpha: rot.cos, beta: rot.sin, partner: i };
        ws.pair_of[i] = ws.rotations.len();
        ws.pair_of[j] = ws.rotations.len();
        ws.rotations.push((i, j, rot));
    }
    (applied, skipped)
}

/// Apply the planned round to `D`: write the new triangle into the
/// workspace's back buffer row-parallel from the old one, then swap.
fn apply_round_to_gram(gram: &mut GramState, ws: &mut SweepWorkspace) {
    if ws.rotations.is_empty() {
        return;
    }
    let SweepWorkspace { back, roles, pair_of, rotations, row_starts, gram_bytes, .. } = ws;
    {
        let old = gram.packed();
        let roles = roles.as_slice();
        let pair_of = pair_of.as_slice();
        let rotations = rotations.as_slice();
        rayon::par_rows_for_each(back.as_mut_slice(), row_starts, |p, row| {
            let rp = roles[p];
            for (off, out) in row.iter_mut().enumerate() {
                let q = p + off;
                let rq = roles[q];
                if p == q {
                    // Diagonal: if paired, use the exact O(1) norm update
                    // (more accurate than the quadratic form).
                    *out = if pair_of[p] != usize::MAX {
                        let (i, j, rot) = rotations[pair_of[p]];
                        let cov = old.get(i, j);
                        if p == i {
                            old.get(i, i) - rot.t * cov
                        } else {
                            old.get(j, j) + rot.t * cov
                        }
                    } else {
                        old.get(p, p)
                    };
                } else if pair_of[p] != usize::MAX && pair_of[p] == pair_of[q] {
                    // The pair's own covariance is annihilated exactly.
                    *out = 0.0;
                } else {
                    // General entry: new_D[p][q] = (row transform p) ⊗ (row transform q).
                    let mut acc = rp.alpha * rq.alpha * old.get(p, q);
                    if rq.partner != usize::MAX {
                        acc += rp.alpha * rq.beta * old.get(p, rq.partner);
                    }
                    if rp.partner != usize::MAX {
                        acc += rp.beta * rq.alpha * old.get(rp.partner, q);
                    }
                    if rp.partner != usize::MAX && rq.partner != usize::MAX {
                        acc += rp.beta * rq.beta * old.get(rp.partner, rq.partner);
                    }
                    *out = acc;
                }
            }
        });
    }
    // One write plus up to four reads per packed entry (SolveStats model).
    *gram_bytes += 40 * gram.packed().len() as u64;
    gram.swap_packed(back);
}

/// Rotate the round's column pairs of `mat`: each new column is computed
/// into the workspace back buffer from the old column set (itself and, if
/// paired, its partner), then the buffers swap. Bit-identical to rotating
/// the pairs in place (the per-element expressions commute bitwise).
fn apply_round_to_columns(mat: &mut Matrix, ws: &mut SweepWorkspace) {
    if ws.rotations.is_empty() {
        return;
    }
    let (m, ncols) = mat.shape();
    if m == 0 || ncols == 0 {
        return;
    }
    // The kernel below addresses column `c` as buffer chunk `c·m..(c+1)·m`;
    // pin that to Matrix's column-major contiguity contract.
    debug_assert!(
        mat.as_slice().len() == m * ncols
            && (0..ncols).all(|c| {
                let col = mat.col(c);
                col.len() == m && std::ptr::eq(col.as_ptr(), mat.as_slice()[c * m..].as_ptr())
            }),
        "Matrix backing buffer is not contiguous column-major; chunked kernel would corrupt data"
    );
    debug_assert_eq!(ws.roles.len(), ncols, "round was planned for a different column count");
    ws.prepare_cols(m * ncols);
    let SweepWorkspace { roles, col_back, .. } = ws;
    {
        let roles = roles.as_slice();
        let front = mat.as_slice();
        rayon::par_chunks_for_each(col_back.as_mut_slice(), m, |c, out| {
            let r = roles[c];
            let src = &front[c * m..(c + 1) * m];
            if r.partner == usize::MAX {
                out.copy_from_slice(src);
            } else {
                let partner = &front[r.partner * m..(r.partner + 1) * m];
                for ((o, &x), &y) in out.iter_mut().zip(src).zip(partner) {
                    *o = r.alpha * x + r.beta * y;
                }
            }
        });
    }
    mat.swap_data(col_back);
}

/// The round-synchronous parallel engine over caller-owned scratch.
///
/// One sweep = for each round of disjoint pairs: plan from the `D` snapshot,
/// apply `D ← JᵀDJ` functionally (row-parallel into the back triangle), then
/// rotate the target's columns (and `V`) through the column back buffer.
/// Allocation-free once the workspace is warm.
///
/// Workspace counters are sampled at construction, so the stats an engine
/// folds into [`SolveStats`] are per-solve deltas even when the workspace is
/// pooled and already warm.
pub struct Parallel<'ws> {
    ws: &'ws mut SweepWorkspace,
    allocations0: usize,
    gram_bytes0: u64,
    dispatches0: usize,
    col_touches: u64,
    /// With a single worker thread the round-synchronous machinery (double
    /// buffering, functional `JᵀDJ`) is pure overhead over the in-place
    /// `O(n)`-per-pair kernels, so the engine falls through to the
    /// [`Sequential`] sweep. Detected once at construction.
    sequential_fallback: bool,
}

impl<'ws> Parallel<'ws> {
    /// Engine over caller-owned scratch (reuse the workspace across solves
    /// to amortize warm-up). On a single-threaded pool this engine runs the
    /// sequential in-place sweep instead of the round-synchronous one —
    /// same converged spectrum, none of the double-buffering overhead.
    pub fn new(ws: &'ws mut SweepWorkspace) -> Parallel<'ws> {
        Parallel::with_fallback(ws, rayon::current_num_threads() <= 1)
    }

    /// Force the round-synchronous path even on a single-threaded pool.
    ///
    /// [`Parallel::new`] falls back to the sequential kernels at one worker
    /// because the double-buffered machinery is pure overhead there; this
    /// constructor opts out of the fallback. Useful for tests (and
    /// cross-machine reproducibility checks) that need the round-snapshot
    /// arithmetic regardless of the host's core count.
    pub fn round_synchronous(ws: &'ws mut SweepWorkspace) -> Parallel<'ws> {
        Parallel::with_fallback(ws, false)
    }

    fn with_fallback(ws: &'ws mut SweepWorkspace, sequential_fallback: bool) -> Parallel<'ws> {
        let allocations0 = ws.allocations();
        let gram_bytes0 = ws.gram_bytes();
        Parallel {
            ws,
            allocations0,
            gram_bytes0,
            dispatches0: rayon::dispatch_count(),
            col_touches: 0,
            sequential_fallback,
        }
    }
}

impl SweepEngine for Parallel<'_> {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn sweep_traced(
        &mut self,
        state: &mut SweepState<'_>,
        order: &Sweep,
        idx: usize,
        tracer: &mut Tracer<'_, '_>,
    ) -> SweepRecord {
        if self.sequential_fallback {
            return Sequential.sweep_traced(state, order, idx, tracer);
        }
        let guard = state.guard.ready(state.gram);
        let n = state.gram.dim();
        self.ws.prepare(n);
        let mut applied = 0;
        let mut skipped = 0;
        for (r, round) in order.rounds().iter().enumerate() {
            let (a, s) = plan_round(state.gram, round, &guard, idx, tracer, self.ws);
            if tracer.group_enabled() {
                tracer.emit(TraceEvent::PairGroupDispatched {
                    sweep: idx,
                    round: r,
                    pairs: round.len(),
                    applied: a,
                    skipped: s,
                });
            }
            if a > 0 {
                // The functional round update rewrites every logical column
                // of `D` from the round snapshot.
                self.col_touches += n as u64;
            }
            apply_round_to_gram(state.gram, self.ws);
            if let Some(b) = state.target.columns.as_deref_mut() {
                apply_round_to_columns(b, self.ws);
            }
            if let Some(vm) = state.target.v.as_deref_mut() {
                apply_round_to_columns(vm, self.ws);
            }
            applied += a;
            skipped += s;
        }
        finish_record(state.gram, idx, applied, skipped)
    }

    fn finish(&mut self, stats: &mut SolveStats, n: usize) {
        if self.sequential_fallback {
            // The sweeps ran on the sequential kernels; report their cost
            // model, plus the (zero) workspace/dispatch deltas honestly.
            Sequential.finish(stats, n);
            stats.workspace_allocations = self.ws.allocations().saturating_sub(self.allocations0);
            stats.parallel_dispatches = rayon::dispatch_count().saturating_sub(self.dispatches0);
            return;
        }
        stats.workspace_allocations = self.ws.allocations().saturating_sub(self.allocations0);
        stats.gram_bytes = self.ws.gram_bytes().saturating_sub(self.gram_bytes0);
        stats.gram_col_touches = self.col_touches;
        stats.parallel_dispatches = rayon::dispatch_count().saturating_sub(self.dispatches0);
        stats.threads = rayon::current_num_threads();
    }
}

/// Parallel gram-only sweep (values-only mode) with caller-owned scratch.
/// Round-synchronous; allocation-free once `ws` is warm.
pub fn parallel_sweep_gram_ws(
    gram: &mut GramState,
    order: &Sweep,
    sweep_index: usize,
    ws: &mut SweepWorkspace,
) -> SweepRecord {
    let mut state =
        SweepState { gram, target: RotationTarget::gram_only(), guard: PairGuard::default() };
    Parallel::new(ws).sweep(&mut state, order, sweep_index)
}

/// Parallel gram-only sweep with a throwaway workspace. Prefer
/// [`parallel_sweep_gram_ws`] when running more than one sweep.
pub fn parallel_sweep_gram(gram: &mut GramState, order: &Sweep, sweep_index: usize) -> SweepRecord {
    let mut ws = SweepWorkspace::new();
    parallel_sweep_gram_ws(gram, order, sweep_index, &mut ws)
}

/// Parallel full sweep — gram + columns (+ optional `V` accumulation) —
/// with caller-owned scratch. Allocation-free once `ws` is warm.
pub fn parallel_sweep_full_ws(
    a: &mut Matrix,
    gram: &mut GramState,
    v: Option<&mut Matrix>,
    order: &Sweep,
    sweep_index: usize,
    ws: &mut SweepWorkspace,
) -> SweepRecord {
    let target = match v {
        Some(vm) => RotationTarget::full(a, vm),
        None => RotationTarget::with_columns(a),
    };
    let mut state = SweepState { gram, target, guard: PairGuard::default() };
    Parallel::new(ws).sweep(&mut state, order, sweep_index)
}

/// Parallel full sweep with a throwaway workspace. Prefer
/// [`parallel_sweep_full_ws`] when running more than one sweep.
pub fn parallel_sweep_full(
    a: &mut Matrix,
    gram: &mut GramState,
    v: Option<&mut Matrix>,
    order: &Sweep,
    sweep_index: usize,
) -> SweepRecord {
    let mut ws = SweepWorkspace::new();
    parallel_sweep_full_ws(a, gram, v, order, sweep_index, &mut ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::round_robin;
    use hj_matrix::{gen, norms};

    /// One round-synchronous gram-only sweep (bypasses the single-thread
    /// sequential fallback so the double-buffered machinery is exercised
    /// regardless of the host's core count).
    fn rs_sweep_gram(
        gram: &mut GramState,
        order: &Sweep,
        sweep_index: usize,
        ws: &mut SweepWorkspace,
    ) -> SweepRecord {
        let mut state =
            SweepState { gram, target: RotationTarget::gram_only(), guard: PairGuard::default() };
        Parallel::round_synchronous(ws).sweep(&mut state, order, sweep_index)
    }

    /// One round-synchronous full sweep (gram + columns + optional `V`).
    fn rs_sweep_full(
        a: &mut Matrix,
        gram: &mut GramState,
        v: Option<&mut Matrix>,
        order: &Sweep,
        sweep_index: usize,
        ws: &mut SweepWorkspace,
    ) -> SweepRecord {
        let target = match v {
            Some(vm) => RotationTarget::full(a, vm),
            None => RotationTarget::with_columns(a),
        };
        let mut state = SweepState { gram, target, guard: PairGuard::default() };
        Parallel::round_synchronous(ws).sweep(&mut state, order, sweep_index)
    }

    #[test]
    fn parallel_gram_sweep_converges() {
        let a = gen::uniform(30, 12, 17);
        let mut g = GramState::from_matrix(&a);
        let order = round_robin(12);
        let mut ws = SweepWorkspace::new();
        (1..=12).for_each(|s| {
            rs_sweep_gram(&mut g, &order, s, &mut ws);
        });
        assert!(g.max_abs_covariance() < 1e-12 * g.trace() / 12.0);
    }

    #[test]
    fn single_thread_pool_falls_back_to_sequential_bitwise() {
        // On a one-thread pool, Parallel::new must be the sequential engine
        // bit for bit (and report sequential-model stats with zero
        // dispatches). On wider pools the engines legitimately differ in
        // rounding, so the bitwise half only runs where the fallback does.
        if rayon::current_num_threads() > 1 {
            return;
        }
        let a = gen::uniform(40, 10, 23);
        let order = round_robin(10);
        let mut g_seq = GramState::from_matrix(&a);
        let mut g_par = GramState::from_matrix(&a);
        let mut ws = SweepWorkspace::new();
        (1..=10).for_each(|s| {
            crate::sweep::sweep_gram_only(&mut g_seq, &order, s);
            parallel_sweep_gram_ws(&mut g_par, &order, s, &mut ws);
        });
        assert_eq!(g_seq.packed().as_slice(), g_par.packed().as_slice());
        assert_eq!(ws.allocations(), 0, "fallback must not touch the workspace");
        assert_eq!(ws.gram_bytes(), 0);
    }

    #[test]
    fn parallel_and_sequential_agree_on_spectrum() {
        let a = gen::uniform(40, 10, 23);
        let order = round_robin(10);

        let mut g_seq = GramState::from_matrix(&a);
        let mut g_par = GramState::from_matrix(&a);
        let mut ws = SweepWorkspace::new();
        (1..=15).for_each(|s| {
            crate::sweep::sweep_gram_only(&mut g_seq, &order, s);
            rs_sweep_gram(&mut g_par, &order, s, &mut ws);
        });
        let mut s1 = g_seq.singular_values_unsorted();
        let mut s2 = g_par.singular_values_unsorted();
        s1.sort_by(|a, b| b.partial_cmp(a).unwrap());
        s2.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (x, y) in s1.iter().zip(&s2) {
            assert!((x - y).abs() < 1e-10 * x.max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn parallel_gram_matches_recomputation_after_each_round() {
        let mut a = gen::uniform(20, 8, 5);
        let mut g = GramState::from_matrix(&a);
        let order = round_robin(8);
        let mut ws = SweepWorkspace::new();
        ws.prepare(8);
        let guard = PairGuard::default().ready(&g);
        for round in order.rounds() {
            plan_round(&g, round, &guard, 1, &mut Tracer::disabled(), &mut ws);
            apply_round_to_gram(&mut g, &mut ws);
            apply_round_to_columns(&mut a, &mut ws);
            let fresh = GramState::from_matrix(&a);
            for p in 0..8 {
                for q in p..8 {
                    assert!(
                        (g.covariance(p, q) - fresh.covariance(p, q)).abs() < 1e-11,
                        "D[{p}][{q}] inconsistent after parallel round"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_full_sweep_produces_orthogonal_b_and_v() {
        let a0 = gen::uniform(25, 9, 41);
        let mut b = a0.clone();
        let mut g = GramState::from_matrix(&b);
        let mut v = Matrix::identity(9);
        let order = round_robin(9);
        let mut ws = SweepWorkspace::new();
        (1..=12).for_each(|s| {
            rs_sweep_full(&mut b, &mut g, Some(&mut v), &order, s, &mut ws);
        });
        assert!(norms::orthonormality_error(&v) < 1e-12);
        let av = a0.matmul(&v).unwrap();
        let diff = norms::frobenius(&av.sub(&b).unwrap());
        assert!(diff < 1e-10);
    }

    #[test]
    fn parallel_is_deterministic() {
        let a = gen::uniform(30, 14, 2);
        let order = round_robin(14);
        let run = || {
            let mut g = GramState::from_matrix(&a);
            let mut ws = SweepWorkspace::new();
            (1..=8).for_each(|s| {
                rs_sweep_gram(&mut g, &order, s, &mut ws);
            });
            g.packed().as_slice().to_vec()
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1, r2, "same input must give bit-identical output");
    }

    #[test]
    fn round_with_all_pairs_converged_is_noop() {
        let q = gen::random_orthonormal(20, 6, 3);
        let mut g = GramState::from_matrix(&q);
        let before = g.packed().clone();
        let order = round_robin(6);
        let rec = rs_sweep_gram(&mut g, &order, 1, &mut SweepWorkspace::new());
        assert_eq!(rec.rotations_applied, 0);
        assert_eq!(g.packed().as_slice(), before.as_slice());
    }

    #[test]
    fn workspace_reuse_matches_throwaway_workspaces_bitwise() {
        let a = gen::uniform(35, 11, 31);
        let order = round_robin(11);
        let mut g_fresh = GramState::from_matrix(&a);
        let mut g_reuse = GramState::from_matrix(&a);
        let mut ws = SweepWorkspace::new();
        (1..=10).for_each(|s| {
            rs_sweep_gram(&mut g_fresh, &order, s, &mut SweepWorkspace::new());
            rs_sweep_gram(&mut g_reuse, &order, s, &mut ws);
        });
        assert_eq!(g_fresh.packed().as_slice(), g_reuse.packed().as_slice());
    }

    #[test]
    fn workspace_allocations_stop_after_warmup() {
        let a = gen::uniform(40, 16, 7);
        let mut g = GramState::from_matrix(&a);
        let order = round_robin(16);
        let mut ws = SweepWorkspace::new();
        rs_sweep_gram(&mut g, &order, 1, &mut ws);
        let warm = ws.allocations();
        assert!(warm > 0, "warm-up must size the buffers");
        for s in 2..=10 {
            rs_sweep_gram(&mut g, &order, s, &mut ws);
        }
        assert_eq!(ws.allocations(), warm, "steady-state sweeps must not allocate");
    }

    #[test]
    fn workspace_serves_different_shapes_back_to_back() {
        // One workspace across a full solve of one shape, then another —
        // results must be bit-identical to per-solve workspaces.
        let mut ws = SweepWorkspace::new();
        for &(m, n, seed) in &[(20usize, 9usize, 3u64), (14, 6, 4), (25, 12, 5)] {
            let a = gen::uniform(m, n, seed);
            let order = round_robin(n);
            let mut b_shared = a.clone();
            let mut g_shared = GramState::from_matrix(&b_shared);
            let mut v_shared = Matrix::identity(n);
            let mut b_own = a.clone();
            let mut g_own = GramState::from_matrix(&b_own);
            let mut v_own = Matrix::identity(n);
            (1..=8).for_each(|s| {
                rs_sweep_full(
                    &mut b_shared,
                    &mut g_shared,
                    Some(&mut v_shared),
                    &order,
                    s,
                    &mut ws,
                );
                rs_sweep_full(
                    &mut b_own,
                    &mut g_own,
                    Some(&mut v_own),
                    &order,
                    s,
                    &mut SweepWorkspace::new(),
                );
            });
            assert_eq!(g_shared.packed().as_slice(), g_own.packed().as_slice(), "{m}x{n}");
            assert_eq!(b_shared.as_slice(), b_own.as_slice(), "{m}x{n}");
            assert_eq!(v_shared.as_slice(), v_own.as_slice(), "{m}x{n}");
        }
    }

    #[test]
    fn column_rotation_matches_inplace_pair_kernel_bitwise() {
        // The double-buffered column path must reproduce ColumnPair::rotate
        // bit for bit, on non-square shapes in both aspect ratios (guards the
        // chunks-of-m ↔ column-major layout tie-in).
        for &(m, n, seed) in &[(9usize, 4usize, 11u64), (3, 8, 12), (17, 5, 13)] {
            let a = gen::uniform(m, n, seed);
            let order = round_robin(n);
            let mut via_ws = a.clone();
            let mut inplace = a.clone();
            let mut g = GramState::from_matrix(&a);
            let mut ws = SweepWorkspace::new();
            ws.prepare(n);
            let guard = PairGuard::default().ready(&g);
            for round in order.rounds() {
                plan_round(&g, round, &guard, 1, &mut Tracer::disabled(), &mut ws);
                apply_round_to_gram(&mut g, &mut ws);
                apply_round_to_columns(&mut via_ws, &mut ws);
                for &(i, j, rot) in &ws.rotations {
                    inplace.column_pair(i, j).unwrap().rotate(rot.cos, rot.sin);
                }
                assert_eq!(via_ws.as_slice(), inplace.as_slice(), "{m}x{n} diverged");
            }
        }
    }

    #[test]
    fn gram_traffic_accumulates_only_on_applied_rounds() {
        let q = gen::random_orthonormal(20, 6, 3);
        let mut g = GramState::from_matrix(&q);
        let order = round_robin(6);
        let mut ws = SweepWorkspace::new();
        rs_sweep_gram(&mut g, &order, 1, &mut ws);
        assert_eq!(ws.gram_bytes(), 0, "converged input applies no rounds");

        let a = gen::uniform(20, 6, 9);
        let mut g = GramState::from_matrix(&a);
        rs_sweep_gram(&mut g, &order, 1, &mut ws);
        let tri = (6 * 7 / 2) as u64;
        assert!(ws.gram_bytes() > 0);
        assert_eq!(ws.gram_bytes() % (40 * tri), 0, "traffic is a whole number of rounds");
    }
}
