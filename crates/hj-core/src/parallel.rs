//! Round-synchronous parallel sweeps (rayon).
//!
//! The round-robin ordering groups each sweep into rounds of pairwise
//! disjoint column pairs — the same structure the paper's hardware exploits
//! to issue groups of rotations concurrently (Fig. 6). Within a round:
//!
//! 1. every pair's rotation parameters depend only on `D` entries that no
//!    other pair in the round writes (`D_ii`, `D_jj`, `D_ij`), so they can be
//!    computed from a single snapshot;
//! 2. the combined covariance update is `D ← JᵀDJ` with `J` the product of
//!    the round's commuting plane rotations. Applied in place it would race
//!    (entry `D_ik` is written by both pair-of-`i` and pair-of-`k`), so we
//!    apply it **functionally**: each row of the new packed triangle is
//!    computed from the old `D` in parallel — double-buffering instead of
//!    locks, exactly the "compute group, then update" phasing of the
//!    hardware's FIFO-synchronized pipeline;
//! 3. column (and `V`) rotations touch disjoint column pairs and are
//!    parallelized directly.
//!
//! Determinism: given the same input and ordering, the parallel driver
//! produces bit-identical results to itself at any thread count (the
//! reduction order within each output entry is fixed). It differs from the
//! sequential driver only in rounding (sequential applies rotations of a
//! round one-by-one; this applies them jointly from the round snapshot) —
//! both converge to the same spectrum, which the tests verify.

use crate::convergence::SweepRecord;
use crate::gram::GramState;
use crate::ordering::Sweep;
use crate::rotation::{pair_converged, textbook_params, Rotation};
use crate::sweep::{finish_record, PAIR_TOL};
use hj_matrix::{Matrix, PackedSymmetric};
use rayon::prelude::*;

/// Per-column rotation role within a round: `new_col_p = alpha·col_p + beta·col_partner`.
#[derive(Clone, Copy)]
struct Role {
    alpha: f64,
    beta: f64,
    partner: usize,
}

impl Role {
    const UNPAIRED: Role = Role { alpha: 1.0, beta: 0.0, partner: usize::MAX };
}

/// Compute the rotation set for one round from the current `D` snapshot.
/// Returns the per-column roles, the per-pair rotations, and counts of
/// applied/skipped pairs.
/// One planned round: per-column roles, the pair rotations, and the
/// applied/skipped counts.
type RoundPlan = (Vec<Role>, Vec<(usize, usize, Rotation)>, usize, usize);

fn plan_round(gram: &GramState, round: &[(usize, usize)]) -> RoundPlan {
    let n = gram.dim();
    let mut roles = vec![Role::UNPAIRED; n];
    let mut rotations = Vec::with_capacity(round.len());
    let mut applied = 0;
    let mut skipped = 0;
    for &(i, j) in round {
        let (ni, nj, cov) = (gram.norm_sq(i), gram.norm_sq(j), gram.covariance(i, j));
        if pair_converged(ni, nj, cov, PAIR_TOL) {
            skipped += 1;
            continue;
        }
        let rot = textbook_params(ni, nj, cov);
        // aᵢ' = cos·aᵢ − sin·aⱼ ; aⱼ' = sin·aᵢ + cos·aⱼ
        roles[i] = Role { alpha: rot.cos, beta: -rot.sin, partner: j };
        roles[j] = Role { alpha: rot.cos, beta: rot.sin, partner: i };
        rotations.push((i, j, rot));
        applied += 1;
    }
    (roles, rotations, applied, skipped)
}

/// Apply one round's rotations to `D`, double-buffered and row-parallel.
fn apply_round_to_gram(gram: &mut GramState, roles: &[Role], rotations: &[(usize, usize, Rotation)]) {
    if rotations.is_empty() {
        return;
    }
    let n = gram.dim();
    let old = gram.packed().clone();
    let mut new = PackedSymmetric::zeros(n);

    // Pair membership lookup for the diagonal special case.
    // in_pair[p] = index into `rotations` if p participates, else usize::MAX.
    let mut pair_of = vec![usize::MAX; n];
    for (idx, &(i, j, _)) in rotations.iter().enumerate() {
        pair_of[i] = idx;
        pair_of[j] = idx;
    }

    // Split the packed buffer into its triangle rows so rayon can hand each
    // row to a worker without unsafe aliasing.
    let mut row_slices: Vec<(usize, &mut [f64])> = Vec::with_capacity(n);
    {
        let mut rest = new.as_mut_slice();
        for p in 0..n {
            let (row, tail) = rest.split_at_mut(n - p);
            row_slices.push((p, row));
            rest = tail;
        }
    }

    row_slices.par_iter_mut().for_each(|(p, row)| {
        let p = *p;
        let rp = roles[p];
        for (off, out) in row.iter_mut().enumerate() {
            let q = p + off;
            let rq = roles[q];
            if p == q {
                // Diagonal: if paired, use the exact O(1) norm update
                // (more accurate than the quadratic form).
                *out = if pair_of[p] != usize::MAX {
                    let (i, j, rot) = rotations[pair_of[p]];
                    let cov = old.get(i, j);
                    if p == i {
                        old.get(i, i) - rot.t * cov
                    } else {
                        old.get(j, j) + rot.t * cov
                    }
                } else {
                    old.get(p, p)
                };
            } else if pair_of[p] != usize::MAX && pair_of[p] == pair_of[q] {
                // The pair's own covariance is annihilated exactly.
                *out = 0.0;
            } else {
                // General entry: new_D[p][q] = (row transform p) ⊗ (row transform q).
                let mut acc = rp.alpha * rq.alpha * old.get(p, q);
                if rq.partner != usize::MAX {
                    acc += rp.alpha * rq.beta * old.get(p, rq.partner);
                }
                if rp.partner != usize::MAX {
                    acc += rp.beta * rq.alpha * old.get(rp.partner, q);
                }
                if rp.partner != usize::MAX && rq.partner != usize::MAX {
                    acc += rp.beta * rq.beta * old.get(rp.partner, rq.partner);
                }
                *out = acc;
            }
        }
    });

    *gram = GramState::from_packed(new);
}

/// Rotate the round's column pairs of `mat` in parallel (disjoint pairs →
/// disjoint column slices).
fn apply_round_to_columns(mat: &mut Matrix, rotations: &[(usize, usize, Rotation)]) {
    if rotations.is_empty() {
        return;
    }
    let m = mat.rows();
    // Hand out one Option<&mut [f64]> slot per column, then move the needed
    // pairs out — safe disjoint mutable access without unsafe code.
    let mut slots: Vec<Option<&mut [f64]>> =
        mat.as_mut_slice().chunks_exact_mut(m).map(Some).collect();
    let mut work: Vec<(&mut [f64], &mut [f64], Rotation)> = Vec::with_capacity(rotations.len());
    for &(i, j, rot) in rotations {
        let ci = slots[i].take().expect("column used once per round");
        let cj = slots[j].take().expect("column used once per round");
        work.push((ci, cj, rot));
    }
    work.par_iter_mut().for_each(|(ci, cj, rot)| {
        for (x, y) in ci.iter_mut().zip(cj.iter_mut()) {
            let xi = *x;
            let yj = *y;
            *x = xi * rot.cos - yj * rot.sin;
            *y = xi * rot.sin + yj * rot.cos;
        }
    });
}

/// Parallel gram-only sweep (values-only mode). Round-synchronous.
pub fn parallel_sweep_gram(gram: &mut GramState, order: &Sweep, sweep_index: usize) -> SweepRecord {
    let mut applied = 0;
    let mut skipped = 0;
    for round in order.rounds() {
        let (roles, rotations, a, s) = plan_round(gram, round);
        apply_round_to_gram(gram, &roles, &rotations);
        applied += a;
        skipped += s;
    }
    finish_record(gram, sweep_index, applied, skipped)
}

/// Parallel full sweep: gram + columns (+ optional `V` accumulation).
pub fn parallel_sweep_full(
    a: &mut Matrix,
    gram: &mut GramState,
    mut v: Option<&mut Matrix>,
    order: &Sweep,
    sweep_index: usize,
) -> SweepRecord {
    let mut applied = 0;
    let mut skipped = 0;
    for round in order.rounds() {
        let (roles, rotations, ap, sk) = plan_round(gram, round);
        apply_round_to_gram(gram, &roles, &rotations);
        apply_round_to_columns(a, &rotations);
        if let Some(vm) = v.as_deref_mut() {
            apply_round_to_columns(vm, &rotations);
        }
        applied += ap;
        skipped += sk;
    }
    finish_record(gram, sweep_index, applied, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::round_robin;
    use hj_matrix::{gen, norms};

    #[test]
    fn parallel_gram_sweep_converges() {
        let a = gen::uniform(30, 12, 17);
        let mut g = GramState::from_matrix(&a);
        let order = round_robin(12);
        for s in 1..=12 {
            parallel_sweep_gram(&mut g, &order, s);
        }
        assert!(g.max_abs_covariance() < 1e-12 * g.trace() / 12.0);
    }

    #[test]
    fn parallel_and_sequential_agree_on_spectrum() {
        let a = gen::uniform(40, 10, 23);
        let order = round_robin(10);

        let mut g_seq = GramState::from_matrix(&a);
        let mut g_par = GramState::from_matrix(&a);
        for s in 1..=15 {
            crate::sweep::sweep_gram_only(&mut g_seq, &order, s);
            parallel_sweep_gram(&mut g_par, &order, s);
        }
        let mut s1 = g_seq.singular_values_unsorted();
        let mut s2 = g_par.singular_values_unsorted();
        s1.sort_by(|a, b| b.partial_cmp(a).unwrap());
        s2.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (x, y) in s1.iter().zip(&s2) {
            assert!((x - y).abs() < 1e-10 * x.max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn parallel_gram_matches_recomputation_after_each_round() {
        let mut a = gen::uniform(20, 8, 5);
        let mut g = GramState::from_matrix(&a);
        let order = round_robin(8);
        for round in order.rounds() {
            let (roles, rotations, _, _) = plan_round(&g, round);
            apply_round_to_gram(&mut g, &roles, &rotations);
            apply_round_to_columns(&mut a, &rotations);
            let fresh = GramState::from_matrix(&a);
            for p in 0..8 {
                for q in p..8 {
                    assert!(
                        (g.covariance(p, q) - fresh.covariance(p, q)).abs() < 1e-11,
                        "D[{p}][{q}] inconsistent after parallel round"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_full_sweep_produces_orthogonal_b_and_v() {
        let a0 = gen::uniform(25, 9, 41);
        let mut b = a0.clone();
        let mut g = GramState::from_matrix(&b);
        let mut v = Matrix::identity(9);
        let order = round_robin(9);
        for s in 1..=12 {
            parallel_sweep_full(&mut b, &mut g, Some(&mut v), &order, s);
        }
        assert!(norms::orthonormality_error(&v) < 1e-12);
        let av = a0.matmul(&v).unwrap();
        let diff = norms::frobenius(&av.sub(&b).unwrap());
        assert!(diff < 1e-10);
    }

    #[test]
    fn parallel_is_deterministic() {
        let a = gen::uniform(30, 14, 2);
        let order = round_robin(14);
        let run = || {
            let mut g = GramState::from_matrix(&a);
            for s in 1..=8 {
                parallel_sweep_gram(&mut g, &order, s);
            }
            g.packed().as_slice().to_vec()
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1, r2, "same input must give bit-identical output");
    }

    #[test]
    fn round_with_all_pairs_converged_is_noop() {
        let q = gen::random_orthonormal(20, 6, 3);
        let mut g = GramState::from_matrix(&q);
        let before = g.packed().clone();
        let order = round_robin(6);
        let rec = parallel_sweep_gram(&mut g, &order, 1);
        assert_eq!(rec.rotations_applied, 0);
        assert_eq!(g.packed().as_slice(), before.as_slice());
    }
}
