//! Jacobi rotation parameter kernels — the arithmetic heart of the paper's
//! "Jacobi rotation component" (§V-B).
//!
//! Given the squared 2-norms of two columns and the covariance between them,
//! these kernels produce the `(cos, sin, t)` of the plane rotation that
//! orthogonalizes the pair. Two algebraically-equivalent formulations are
//! provided:
//!
//! * [`textbook_params`] — the `ρ → t → cos → sin` chain of the paper's
//!   Algorithm 1 (lines 8–14), which is the classical stable formulation
//!   (Rutishauser / Golub & Van Loan).
//! * [`hardware_params`] — the flattened dataflow of the paper's
//!   eqs. (8)–(10), which trades the data-dependent chain for independent
//!   subexpressions so that the FPGA's adders/multipliers/divider/sqrt can
//!   run concurrently (see the paper's Fig. 4).
//!
//! A property test (`tests::hw_matches_textbook`) pins the two to agree to
//! ~1 ulp across twelve orders of magnitude.
//!
//! ## Sign convention (documented deviation from the paper)
//!
//! The update equations (11)–(12) rotate columns as
//! `aᵢ' = aᵢ·cos − aⱼ·sin`, `aⱼ' = aᵢ·sin + aⱼ·cos`. Requiring the rotated
//! covariance `aᵢ'ᵀaⱼ' = 0` forces
//!
//! ```text
//! t² + 2ζt − 1 = 0,   ζ = (‖aⱼ‖² − ‖aᵢ‖²) / (2·aᵢᵀaⱼ)
//! ```
//!
//! whose smaller root is `t = sign(ζ) / (|ζ| + √(1+ζ²))`. The paper's
//! Algorithm 1 line 11 defines `ρ = (D_ii − D_jj)/(2·cov) = −ζ` yet keeps the
//! `+sign(ρ)` root — a sign slip that would *increase* the covariance if
//! taken literally together with eqs. (11)–(12). We implement the
//! self-consistent convention and verify it by construction in the tests:
//! after applying the returned rotation, the pair's covariance is ~0.

/// Plane rotation parameters for one column pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rotation {
    /// Cosine of the rotation angle; always non-negative in this convention.
    pub cos: f64,
    /// Sine of the rotation angle; carries the sign of `t`.
    pub sin: f64,
    /// Tangent `t = sin/cos`; the quantity used for the O(1) norm updates
    /// `‖aᵢ‖²' = ‖aᵢ‖² − t·cov`, `‖aⱼ‖²' = ‖aⱼ‖² + t·cov`.
    pub t: f64,
}

impl Rotation {
    /// The identity rotation (used when a pair is already orthogonal).
    pub const IDENTITY: Rotation = Rotation { cos: 1.0, sin: 0.0, t: 0.0 };

    /// True if this rotation is exactly the identity.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.sin == 0.0 && self.cos == 1.0
    }

    /// The rotation angle in radians, `atan2(sin, cos)`.
    pub fn angle(&self) -> f64 {
        self.sin.atan2(self.cos)
    }

    /// True if all three parameters are finite. A rotation computed from
    /// finite, in-range Gram entries always is; the fault-injection harness
    /// uses this to tell deliberately poisoned rotations apart.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.cos.is_finite() && self.sin.is_finite() && self.t.is_finite()
    }
}

/// Classical formulation (paper's Algorithm 1 lines 8–14, sign-corrected).
///
/// `norm_i`, `norm_j` are squared 2-norms (`D_ii`, `D_jj`); `cov` is `D_ij`.
/// Returns [`Rotation::IDENTITY`] when `cov == 0` (nothing to annihilate).
///
/// ```
/// use hj_core::rotation::textbook_params;
///
/// let rot = textbook_params(1.0, 2.0, 0.5);
/// // The rotation annihilates the pair's covariance:
/// let rotated_cov = rot.cos * rot.sin * (1.0 - 2.0)
///     + (rot.cos * rot.cos - rot.sin * rot.sin) * 0.5;
/// assert!(rotated_cov.abs() < 1e-15);
/// ```
#[inline]
pub fn textbook_params(norm_i: f64, norm_j: f64, cov: f64) -> Rotation {
    if cov == 0.0 {
        return Rotation::IDENTITY;
    }
    let zeta = (norm_j - norm_i) / (2.0 * cov);
    // sign(0) must be +1 so that equal norms give the full 45° rotation.
    let sign = if zeta >= 0.0 { 1.0 } else { -1.0 };
    // hypot is overflow-safe for |ζ| near f64::MAX.
    let t = sign / (zeta.abs() + f64::hypot(1.0, zeta));
    let cos = 1.0 / f64::hypot(1.0, t);
    let sin = cos * t;
    Rotation { cos, sin, t }
}

/// Hardware dataflow formulation (paper's eqs. (8)–(10)).
///
/// All three outputs are computed from the shared subexpressions
/// `Δ = norm_j − norm_i`, `4·cov²`, and `r = √(Δ² + 4·cov²)`, exactly as the
/// paper's Fig. 4 schedules them onto one divider and one square-root unit.
/// The `(sign)` factor of eq. (10) is the sign of `t`, i.e.
/// `sign(ζ) = sign(Δ)·sign(cov)` with `sign(0) = +1`.
#[inline]
pub fn hardware_params(norm_i: f64, norm_j: f64, cov: f64) -> Rotation {
    if cov == 0.0 {
        return Rotation::IDENTITY;
    }
    let delta = norm_j - norm_i;
    // sign(ζ) with sign(±0) = +1, matching textbook_params (where ζ = ±0.0
    // both take the >= 0 branch). For Δ = 0 any 45° rotation annihilates the
    // covariance; +1 is the shared convention.
    let sign = if delta == 0.0 || (delta >= 0.0) == (cov >= 0.0) { 1.0 } else { -1.0 };
    // r = √(Δ² + 4c²), computed overflow-safely (the paper's FP cores work on
    // normalized doubles and do not hit this; hypot costs us nothing here).
    let r = f64::hypot(delta, 2.0 * cov);
    // eq. (8): |t| = 2|c| / (|Δ| + r)
    let t = sign * (2.0 * cov.abs()) / (delta.abs() + r);
    // eq. (9)/(10) share the denominator Δ² + 4c² + |Δ|·r = r² + |Δ|·r = r(r + |Δ|).
    let denom = r * (r + delta.abs());
    // eq. (9): cos² = (Δ² + 2c² + |Δ|·r) / denom
    let cos = ((delta * delta + 2.0 * cov * cov + delta.abs() * r) / denom).sqrt();
    // eq. (10): sin² = 2c² / denom
    let sin = sign * (2.0 * cov * cov / denom).sqrt();
    Rotation { cos, sin, t }
}

/// Apply the O(1) Gram-diagonal update of Algorithm 1 lines 15–17:
/// returns the rotated `(norm_i', norm_j', cov')` where `cov'` is exactly 0.
#[inline]
pub fn rotate_norms(norm_i: f64, norm_j: f64, cov: f64, rot: &Rotation) -> (f64, f64, f64) {
    (norm_i - rot.t * cov, norm_j + rot.t * cov, 0.0)
}

/// Decide whether a pair needs rotating at all.
///
/// This is the classical Jacobi small-covariance guard (Drmač '97, the
/// paper's ref. \[15\]): a pair is numerically orthogonal when
/// `|cov| ≤ tol·√(norm_i·norm_j)`. Skipping such pairs is both a performance
/// win and a stability requirement — rotating on roundoff noise stalls
/// convergence detection.
#[inline]
pub fn pair_converged(norm_i: f64, norm_j: f64, cov: f64, tol: f64) -> bool {
    // norms are squared 2-norms, so the bound is tol²·nᵢ·nⱼ vs cov².
    cov * cov <= tol * tol * norm_i * norm_j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_orthogonalizes(norm_i: f64, norm_j: f64, cov: f64, rot: &Rotation) {
        // Rotated covariance: cs·(nᵢ − nⱼ)... derive from the quadratic:
        // cov' = cos·sin·(nᵢ − nⱼ) + (cos² − sin²)·cov  must vanish.
        let cov_new =
            rot.cos * rot.sin * (norm_i - norm_j) + (rot.cos * rot.cos - rot.sin * rot.sin) * cov;
        let scale = norm_i.abs().max(norm_j.abs()).max(cov.abs()).max(1.0);
        assert!(
            cov_new.abs() <= 1e-14 * scale,
            "rotation failed to annihilate covariance: nᵢ={norm_i} nⱼ={norm_j} c={cov} → cov'={cov_new}"
        );
    }

    #[test]
    fn zero_covariance_is_identity() {
        assert!(textbook_params(3.0, 5.0, 0.0).is_identity());
        assert!(hardware_params(3.0, 5.0, 0.0).is_identity());
    }

    #[test]
    fn textbook_annihilates_covariance() {
        for &(a, b, c) in &[
            (1.0, 2.0, 0.5),
            (2.0, 1.0, 0.5),
            (1.0, 2.0, -0.5),
            (5.0, 5.0, 1.0),
            (5.0, 5.0, -1.0),
            (1e-8, 1e8, 3.0),
            (1e8, 1e-8, -3.0),
        ] {
            let rot = textbook_params(a, b, c);
            check_orthogonalizes(a, b, c, &rot);
        }
    }

    #[test]
    fn hardware_annihilates_covariance() {
        for &(a, b, c) in &[
            (1.0, 2.0, 0.5),
            (2.0, 1.0, 0.5),
            (1.0, 2.0, -0.5),
            (5.0, 5.0, 1.0),
            (5.0, 5.0, -1.0),
            (1e-8, 1e8, 3.0),
        ] {
            let rot = hardware_params(a, b, c);
            check_orthogonalizes(a, b, c, &rot);
        }
    }

    #[test]
    fn rotation_is_orthonormal() {
        let rot = textbook_params(1.0, 4.0, 0.7);
        assert!((rot.cos * rot.cos + rot.sin * rot.sin - 1.0).abs() < 1e-15);
        let rot = hardware_params(1.0, 4.0, 0.7);
        assert!((rot.cos * rot.cos + rot.sin * rot.sin - 1.0).abs() < 1e-15);
    }

    #[test]
    fn equal_norms_give_45_degrees() {
        let rot = textbook_params(2.0, 2.0, 1.0);
        assert!((rot.t.abs() - 1.0).abs() < 1e-15, "t = {}", rot.t);
        assert!((rot.angle().abs() - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
    }

    #[test]
    fn t_is_small_root() {
        // |t| ≤ 1 always: Jacobi picks the inner rotation, which is what
        // guarantees sweep convergence.
        for &(a, b, c) in &[(1.0, 100.0, 5.0), (100.0, 1.0, 5.0), (3.0, 3.0, -2.0)] {
            assert!(textbook_params(a, b, c).t.abs() <= 1.0 + 1e-15);
            assert!(hardware_params(a, b, c).t.abs() <= 1.0 + 1e-15);
        }
    }

    #[test]
    fn rotate_norms_preserves_trace_and_zeroes_cov() {
        let (a, b, c) = (3.0, 7.0, 1.5);
        let rot = textbook_params(a, b, c);
        let (a2, b2, c2) = rotate_norms(a, b, c, &rot);
        assert_eq!(c2, 0.0);
        assert!((a2 + b2 - (a + b)).abs() < 1e-14);
        // The rotated norms must equal the directly-computed rotated norms.
        let a_direct = rot.cos * rot.cos * a - 2.0 * rot.cos * rot.sin * c + rot.sin * rot.sin * b;
        assert!((a2 - a_direct).abs() < 1e-13 * a.max(b));
    }

    #[test]
    fn norms_stay_nonnegative_for_psd_inputs() {
        // For a genuine Gram pair, cov² ≤ nᵢ·nⱼ (Cauchy-Schwarz); rotated
        // norms are eigenvalues of a PSD 2×2 and must stay ≥ 0.
        for &(a, b, c) in &[(1.0, 1.0, 1.0 - 1e-12), (4.0, 1.0, 1.9), (1e-6, 1e6, 0.9)] {
            assert!(c * c <= a * b, "test case must satisfy Cauchy-Schwarz");
            let rot = textbook_params(a, b, c);
            let (a2, b2, _) = rotate_norms(a, b, c, &rot);
            assert!(a2 >= -1e-12 && b2 >= -1e-12, "a2={a2} b2={b2}");
        }
    }

    #[test]
    fn hw_matches_textbook_on_grid() {
        for &a in &[1e-10, 0.5, 1.0, 3.0, 1e10] {
            for &b in &[1e-10, 0.5, 1.0, 3.0, 1e10] {
                for &c in &[-1e5, -1.0, -1e-7, 1e-7, 1.0, 1e5] {
                    let tx = textbook_params(a, b, c);
                    let hw = hardware_params(a, b, c);
                    assert!(
                        (tx.cos - hw.cos).abs() < 1e-12 && (tx.sin - hw.sin).abs() < 1e-12,
                        "mismatch at ({a},{b},{c}): tx={tx:?} hw={hw:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pair_converged_threshold() {
        assert!(pair_converged(1.0, 1.0, 0.0, 1e-15));
        assert!(pair_converged(1.0, 1.0, 9e-16, 1e-15));
        assert!(!pair_converged(1.0, 1.0, 2e-15, 1e-15));
        // Scales with the norms:
        assert!(pair_converged(1e8, 1e8, 50.0, 1e-6));
        assert!(!pair_converged(1e-8, 1e-8, 50.0, 1e-6));
    }
}
