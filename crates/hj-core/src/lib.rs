//! # hj-core — the modified Hestenes-Jacobi SVD algorithm
//!
//! This crate is the paper's primary contribution in library form: one-sided
//! Jacobi SVD over arbitrary `m × n` matrices with the **maintained
//! covariance matrix** optimization (the paper's Algorithm 1). The Gram
//! matrix `D = AᵀA` is computed once; every subsequent plane rotation
//! updates `D` in place in `O(n)` instead of recomputing dot products from
//! the `m`-long columns — the same data-reuse idea that the hardware's
//! reconfigurable preprocessor / update-operator split implements.
//!
//! Module map (each mirrors a hardware component or design decision):
//!
//! * [`rotation`] — the Jacobi rotation component's arithmetic: textbook
//!   `ρ→t→cos→sin` chain and the paper's flattened eqs. (8)–(10).
//! * [`gram`] — the maintained covariance matrix and its O(n) rotation
//!   update (the Update operator's covariance path).
//! * [`kernel`] — the vectorization-friendly inner kernels every engine's
//!   hot loop runs on: the three-region packed rotation, tile
//!   gather/scatter, and SoA-batched rotation parameters (bit-identical to
//!   the scalar paths; see the module's bit-compat policy).
//! * [`ordering`] — the pluggable sweep-schedule subsystem: the
//!   [`ordering::OrderingStrategy`] trait planning each sweep's rounds of
//!   disjoint pairs, the cyclic round-robin pairing (the paper's Fig. 6),
//!   the row-cyclic order of the pseudocode, the adaptive sorted-greedy
//!   planner, the de Rijk column-norm presort, and the
//!   [`ordering::ThresholdSchedule`] rotation-threshold ramp composable
//!   with any ordering.
//! * [`engine`] — the unified sweep pipeline: the [`engine::SweepEngine`]
//!   trait, the [`engine::RotationTarget`] / [`engine::PairGuard`]
//!   abstractions, the [`engine::Sequential`] and cache-tiled
//!   [`engine::Blocked`] engines, and the single [`engine::SolveDriver`]
//!   loop every solver runs on.
//! * [`sweep`] — sequential single-sweep entry points (gram-only and full),
//!   thin wrappers over the [`engine::Sequential`] engine.
//! * [`parallel`] — the round-synchronous rayon engine
//!   ([`parallel::Parallel`]) exploiting the same disjoint-pair structure
//!   the hardware's parallel groups use, built on a reusable
//!   zero-allocation [`parallel::SweepWorkspace`].
//! * [`batch`] — batched drivers ([`HestenesSvd::decompose_batch`]) fanning
//!   independent solves across the pool with per-solve error isolation and
//!   a shared [`batch::WorkspacePool`] of warm scratch.
//! * [`batch_engine`] — the batched SoA engine for many tiny SVDs:
//!   `k` interleaved Gram triangles swept together by one lanes-wide kernel
//!   invocation per pair ([`batch_engine::BatchWorkspace`] /
//!   [`batch_engine::BatchDriver`]), with a per-problem active mask and
//!   per-problem fault isolation. [`HestenesSvd::singular_values_batch`]
//!   dispatches uniform small-`n` batches here automatically.
//! * [`stats`] — [`SolveStats`] observability record (timings, rotation
//!   counts, allocation events, Gram traffic) attached to every solve.
//! * [`trace`] — structured solve tracing: the [`trace::TraceSink`]
//!   contract, typed [`trace::TraceEvent`]s for every sweep / pair group /
//!   rotation / recovery decision, and the no-op, ring-buffer, and JSONL
//!   sinks. Zero cost when disabled.
//! * [`convergence`] — stopping rules and per-sweep instrumentation
//!   (the paper's Figs. 10–11 metric).
//! * [`recovery`] — the fault-tolerance layer: [`recovery::Fault`]
//!   taxonomy, per-sweep [`recovery::HealthCheck`], the
//!   [`recovery::RecoveryPolicy`] lattice (rescale / engine fallback /
//!   budget escalation / abort), and [`recovery::SolveBudget`]
//!   deadline/cancellation.
//! * `inject` *(feature `fault-injection` only)* — deterministic
//!   fault-injection harness used by the robustness test campaign; compiles
//!   out of production builds entirely.
//! * [`svd`] — user-facing drivers: [`HestenesSvd::singular_values`]
//!   (paper-faithful, D-only after the first pass) and
//!   [`HestenesSvd::decompose`] (full `A = UΣVᵀ`).
//! * [`pca`], [`lowrank`] — the downstream applications the paper
//!   motivates: PCA (fit/transform/explained variance) and low-rank /
//!   pseudoinverse / least-squares utilities.
//!
//! ## Quickstart
//!
//! ```
//! use hj_core::{HestenesSvd, SvdOptions};
//! use hj_matrix::gen;
//!
//! let a = gen::uniform(128, 32, 42);
//! let solver = HestenesSvd::new(SvdOptions::default());
//! let svd = solver.decompose(&a).unwrap();
//! assert_eq!(svd.singular_values.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod batch;
pub mod batch_engine;
pub mod convergence;
pub mod eigh;
pub mod engine;
mod error;
pub mod gram;
#[cfg(feature = "fault-injection")]
pub mod inject;
pub mod kernel;
pub mod lowrank;
pub mod ordering;
pub mod parallel;
pub mod pca;
pub mod recovery;
pub mod rotation;
pub mod stats;
pub mod svd;
pub mod sweep;
pub mod trace;

pub use batch::WorkspacePool;
pub use batch_engine::{BatchDriver, BatchWorkspace};
pub use convergence::{Convergence, SweepRecord};
pub use engine::{
    EngineKind, MonitoredRun, PairGuard, RotationTarget, SolveDriver, SolveMonitor, SweepEngine,
    SweepState,
};
pub use error::SvdError;
pub use gram::{DiagonalScan, GramState};
#[cfg(feature = "fault-injection")]
pub use inject::{Corruption, FaultInjector, SeededInjector};
pub use ordering::{
    Ordering, OrderingKind, OrderingStrategy, PlanBuffers, SweepSchedule, ThresholdSchedule,
};
pub use parallel::SweepWorkspace;
pub use pca::Pca;
pub use recovery::{Fault, HealthCheck, RecoveryAction, RecoveryPolicy, SolveBudget};
pub use rotation::{hardware_params, textbook_params, Rotation};
pub use stats::SolveStats;
pub use svd::{HestenesSvd, SingularValues, Svd, SvdOptions};
pub use trace::{
    JsonlSink, NoopSink, RingBufferSink, SkipReason, TraceEvent, TraceLevel, TraceSink, Tracer,
};
