use crate::recovery::Fault;
use std::fmt;

/// Errors from the SVD drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvdError {
    /// Input matrix has a zero dimension.
    EmptyInput,
    /// Input contains NaN or ±∞; the rotation kernels require finite data.
    NonFiniteInput,
    /// The selected engine (parallel or blocked) requires the round-robin
    /// ordering (rounds of disjoint pairs are its unit of work).
    EngineNeedsRoundRobin,
    /// The selected ordering is not valid in this context — e.g.
    /// [`crate::ordering::Ordering::ColumnNormPresort`] on the indefinite
    /// eigensolver path, where sign-indefinite diagonals make descending-norm
    /// pivot ordering meaningless.
    OrderingUnsupported {
        /// Canonical name of the rejected ordering.
        ordering: &'static str,
        /// Short description of the context that rejects it.
        context: &'static str,
    },
    /// `max_sweeps` was 0; at least one sweep is required.
    ZeroSweepBudget,
    /// Values-only mode on a wide matrix (`m < n`) truncates the Gram
    /// spectrum from `n` to `m` entries; the discarded tail must be
    /// numerically zero (rank(A) ≤ m guarantees this once converged). A
    /// non-negligible tail means the iteration had not converged enough for
    /// the truncation to be sound, so the driver refuses to return silently
    /// wrong values. Raise the sweep budget or loosen the stopping rule.
    TruncatedTailNotNegligible,
    /// A mid-solve fault was detected by the health check or solve budget
    /// and the [`crate::recovery::RecoveryPolicy`] exhausted its options (or
    /// chose to abort). The solver never returns a silently corrupted
    /// factorization: it either recovers fully or surfaces this.
    SolveFault {
        /// The fault that ended the solve.
        fault: Fault,
        /// Sweeps executed across all attempts (including recovered ones).
        sweeps_completed: usize,
        /// Recovery actions taken before giving up.
        recoveries: usize,
    },
}

impl fmt::Display for SvdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvdError::EmptyInput => write!(f, "input matrix has a zero dimension"),
            SvdError::NonFiniteInput => write!(f, "input matrix contains NaN or infinite entries"),
            SvdError::EngineNeedsRoundRobin => {
                write!(f, "the selected engine requires the round-robin ordering")
            }
            SvdError::OrderingUnsupported { ordering, context } => {
                write!(f, "the {ordering} ordering is not supported by {context}")
            }
            SvdError::ZeroSweepBudget => write!(f, "max_sweeps must be at least 1"),
            SvdError::TruncatedTailNotNegligible => write!(
                f,
                "wide-matrix truncation would discard non-negligible spectrum mass \
                 (iteration not converged; increase the sweep budget)"
            ),
            SvdError::SolveFault { fault, sweeps_completed, recoveries } => write!(
                f,
                "solve aborted on fault [{}]: {fault} \
                 (sweeps completed: {sweeps_completed}, recoveries attempted: {recoveries})",
                fault.kind()
            ),
        }
    }
}

impl std::error::Error for SvdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(SvdError::EmptyInput.to_string().contains("zero dimension"));
        assert!(SvdError::NonFiniteInput.to_string().contains("NaN"));
        assert!(SvdError::EngineNeedsRoundRobin.to_string().contains("round-robin"));
        let unsupported =
            SvdError::OrderingUnsupported { ordering: "presort", context: "the eigensolver" };
        assert!(unsupported.to_string().contains("presort"));
        assert!(unsupported.to_string().contains("eigensolver"));
        assert!(SvdError::ZeroSweepBudget.to_string().contains("at least 1"));
        assert!(SvdError::TruncatedTailNotNegligible.to_string().contains("non-negligible"));
        let fault = SvdError::SolveFault {
            fault: Fault::NonFiniteGram { sweep: 3 },
            sweeps_completed: 7,
            recoveries: 2,
        };
        let msg = fault.to_string();
        assert!(msg.contains("[non-finite-gram]"));
        assert!(msg.contains("sweeps completed: 7"));
        assert!(msg.contains("recoveries attempted: 2"));
    }
}
