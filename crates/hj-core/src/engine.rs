//! The unified sweep-execution pipeline: one driver loop, pluggable engines.
//!
//! The paper's machine is a single pipeline with pluggable phases
//! (preprocessor → rotation → update); this module is the software mirror of
//! that structure. Every solver in the crate — [`crate::HestenesSvd`]'s
//! values-only and full drivers, [`crate::eigh`], PCA, and the batch API —
//! runs its sweeps through exactly one loop, [`SolveDriver::run`], against an
//! engine implementing [`SweepEngine`]:
//!
//! * [`Sequential`] — faithful to Algorithm 1's data flow: pairs are visited
//!   one at a time and `D` (plus any columns) is rotated in place.
//! * [`crate::parallel::Parallel`] — the round-synchronous rayon engine
//!   (double-buffered functional round updates on a reusable zero-allocation
//!   [`crate::parallel::SweepWorkspace`]).
//! * [`Blocked`] — a cache-tiled engine that stages round-robin pair groups
//!   in `D`-tiles sized to L1/L2, the software analogue of the paper's
//!   BRAM-resident covariance matrix (§V).
//!
//! What gets rotated is expressed once, by [`RotationTarget`]: the Gram
//! matrix alone (values-only mode), Gram + matrix columns (maintaining
//! `B = A·V`), Gram + columns + accumulated `V`, or Gram + `V` only (the
//! eigensolver). Which pairs are *skipped* is expressed once too, by
//! [`PairGuard`]: the SVD drivers' relative Drmač guard or the classical
//! eigensolver's diagonal-scaled threshold.
//!
//! The driver owns the shared machinery the old per-driver loops hand-copied:
//! per-sweep wall-clock timing, [`SweepRecord`] history, convergence
//! checking, and [`SolveStats`] accounting (engines fold their own counters
//! in via [`SweepEngine::finish`]).

use crate::convergence::{is_converged, Convergence, SweepRecord, MAX_SWEEP_CAP};
use crate::gram::GramState;
use crate::ordering::{Preplanned, Sweep, SweepSchedule};
use crate::parallel::{plan_round, SweepWorkspace};
use crate::recovery::{Fault, HealthCheck, HealthState, SolveBudget};
use crate::rotation::{pair_converged, textbook_params};
use crate::stats::SolveStats;
use crate::sweep::{finish_record, PAIR_TOL};
use crate::trace::{SkipReason, TraceEvent, TraceLevel, TraceSink, Tracer};
use hj_matrix::Matrix;
use std::time::Instant;

/// Which sweep engine a solver should run on. The string forms accepted by
/// [`EngineKind::parse`] (`seq` / `par` / `blocked`) are what the `hjsvd`
/// CLI's `--engine` flag takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// In-place pair-at-a-time execution ([`Sequential`]); works with any
    /// ordering. The default.
    #[default]
    Sequential,
    /// Round-synchronous rayon execution ([`crate::parallel::Parallel`]);
    /// requires an ordering with disjoint rounds (any but row-cyclic).
    Parallel,
    /// Cache-tiled group execution ([`Blocked`]); requires an ordering with
    /// disjoint rounds (any but row-cyclic).
    Blocked,
}

impl EngineKind {
    /// Parse a CLI spelling: `seq`/`sequential`, `par`/`parallel`, `blocked`.
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "seq" | "sequential" => Some(EngineKind::Sequential),
            "par" | "parallel" => Some(EngineKind::Parallel),
            "blocked" => Some(EngineKind::Blocked),
            _ => None,
        }
    }

    /// Canonical lowercase name (matches [`SweepEngine::name`]).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Sequential => "sequential",
            EngineKind::Parallel => "parallel",
            EngineKind::Blocked => "blocked",
        }
    }
}

/// Per-pair skip rule — decides, once per visited pair, whether the pair is
/// already numerically orthogonal and needs no rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PairGuard {
    /// Skip when `|D_ij| ≤ tol·√(D_ii·D_jj)` — the Drmač guard the SVD
    /// drivers use (valid for the PSD Gram matrix).
    Relative {
        /// Relative tolerance (the drivers use [`PAIR_TOL`]).
        tol: f64,
    },
    /// Skip when `|D_ij| ≤ tol·max_k|D_kk|`, with the scale re-measured at
    /// the start of every sweep — the classical Jacobi eigensolver guard,
    /// valid for indefinite symmetric matrices (negative diagonals would make
    /// the `√(D_ii·D_jj)` guard meaningless).
    DiagonalScale {
        /// Relative tolerance against the largest |diagonal|.
        tol: f64,
    },
    /// The same `|D_ij| ≤ tol·√(D_ii·D_jj)` rule as [`PairGuard::Relative`]
    /// but with a *per-sweep* tolerance set by an active
    /// [`crate::ordering::ThresholdSchedule`] ramp — skipped pairs report
    /// [`SkipReason::ThresholdGuard`] so traces distinguish "converged"
    /// from "deferred by the ramp". Installed by the driver, not by callers.
    Threshold {
        /// This sweep's ramp tolerance (≥ [`PAIR_TOL`]).
        tol: f64,
    },
}

impl Default for PairGuard {
    /// The SVD drivers' guard: [`PairGuard::Relative`] at [`PAIR_TOL`].
    fn default() -> Self {
        PairGuard::Relative { tol: PAIR_TOL }
    }
}

impl PairGuard {
    /// Resolve the guard against the current `D` for one sweep (the
    /// diagonal-scaled rule samples `max|D_kk|` here).
    pub(crate) fn ready(&self, gram: &GramState) -> ReadyGuard {
        match *self {
            PairGuard::Relative { tol } => {
                ReadyGuard { relative: true, tol, scale: 0.0, reason: SkipReason::RelativeGuard }
            }
            PairGuard::Threshold { tol } => {
                ReadyGuard { relative: true, tol, scale: 0.0, reason: SkipReason::ThresholdGuard }
            }
            PairGuard::DiagonalScale { tol } => {
                let scale = gram.packed().diagonal().iter().fold(0.0f64, |m, &d| m.max(d.abs()));
                ReadyGuard {
                    relative: false,
                    tol,
                    scale: scale.max(f64::MIN_POSITIVE),
                    reason: SkipReason::DiagonalScaleGuard,
                }
            }
        }
    }
}

/// A [`PairGuard`] resolved for one sweep; cheap to copy into round kernels.
#[derive(Clone, Copy)]
pub(crate) struct ReadyGuard {
    relative: bool,
    tol: f64,
    scale: f64,
    reason: SkipReason,
}

impl ReadyGuard {
    /// True if the pair is already orthogonal enough to skip.
    #[inline]
    pub(crate) fn skip(&self, norm_i: f64, norm_j: f64, cov: f64) -> bool {
        if self.relative {
            pair_converged(norm_i, norm_j, cov, self.tol)
        } else {
            cov.abs() <= self.tol * self.scale
        }
    }

    /// The [`SkipReason`] this guard reports for skipped pairs.
    #[inline]
    pub(crate) fn reason(&self) -> SkipReason {
        self.reason
    }
}

/// What a sweep rotates besides the maintained covariance matrix `D` —
/// the single place the Gram-only / Gram+columns / Gram+columns+V decision
/// lives. Every engine consumes this; no driver re-encodes it.
#[derive(Debug, Default)]
pub struct RotationTarget<'a> {
    /// Column data kept in sync with `D` (the evolving `B = A·V`);
    /// `None` in values-only mode.
    pub columns: Option<&'a mut Matrix>,
    /// Accumulated right-rotation matrix `V`; `None` when singular/eigen
    /// vectors are not needed.
    pub v: Option<&'a mut Matrix>,
}

impl<'a> RotationTarget<'a> {
    /// Rotate `D` only — the paper-faithful values-only mode.
    pub fn gram_only() -> RotationTarget<'static> {
        RotationTarget { columns: None, v: None }
    }

    /// Rotate `D` and the matrix columns (no `V` accumulation).
    pub fn with_columns(columns: &'a mut Matrix) -> RotationTarget<'a> {
        RotationTarget { columns: Some(columns), v: None }
    }

    /// Rotate `D`, the matrix columns, and accumulate `V` — full SVD mode.
    pub fn full(columns: &'a mut Matrix, v: &'a mut Matrix) -> RotationTarget<'a> {
        RotationTarget { columns: Some(columns), v: Some(v) }
    }

    /// Rotate `D` and accumulate `V` only — the eigensolver's mode (there is
    /// no separate column matrix; `D` *is* the data).
    pub fn accumulate(v: &'a mut Matrix) -> RotationTarget<'a> {
        RotationTarget { columns: None, v: Some(v) }
    }
}

/// Everything a sweep acts on: the maintained `D`, the rotation target, and
/// the pair guard. Borrowed mutably by [`SweepEngine::sweep`] each sweep.
#[derive(Debug)]
pub struct SweepState<'a> {
    /// The maintained covariance matrix `D`.
    pub gram: &'a mut GramState,
    /// What gets rotated alongside `D`.
    pub target: RotationTarget<'a>,
    /// The per-pair skip rule.
    pub guard: PairGuard,
}

/// A sweep-execution strategy. Implementations run exactly one sweep per
/// call and report it; the surrounding loop, timing, convergence checking,
/// and stats accounting belong to [`SolveDriver`].
pub trait SweepEngine {
    /// Canonical lowercase engine name (recorded into [`SolveStats`]).
    fn name(&self) -> &'static str;

    /// Run sweep number `idx` (1-based, label only) over `state` in the
    /// given pair order, emitting [`TraceEvent`]s through `tracer` at
    /// whatever granularity its level admits. With a disabled tracer this
    /// must be bit-identical to an untraced sweep (the emission sites cost
    /// one branch each).
    fn sweep_traced(
        &mut self,
        state: &mut SweepState<'_>,
        order: &Sweep,
        idx: usize,
        tracer: &mut Tracer<'_, '_>,
    ) -> SweepRecord;

    /// Run sweep number `idx` (1-based, label only) over `state` in the
    /// given pair order, without tracing. Provided: delegates to
    /// [`SweepEngine::sweep_traced`] with a disabled tracer.
    fn sweep(&mut self, state: &mut SweepState<'_>, order: &Sweep, idx: usize) -> SweepRecord {
        self.sweep_traced(state, order, idx, &mut Tracer::disabled())
    }

    /// Fold engine-level counters (workspace allocations, Gram traffic,
    /// dispatch counts, thread count) into `stats` once the solve's sweep
    /// loop is done. `n` is the problem dimension.
    fn finish(&mut self, stats: &mut SolveStats, n: usize);
}

/// Modeled packed-triangle bytes touched by one sequential `O(n)` rotation:
/// `4n − 2` entries (3 reads + 3 writes on the pair's own entries, then
/// 2 reads + 2 writes for each of the `n − 2` other columns) at 8 bytes.
pub(crate) fn seq_rotation_gram_bytes(n: usize) -> u64 {
    8 * (4 * n as u64).saturating_sub(2)
}

/// The in-place pair-at-a-time engine — Algorithm 1's literal data flow.
/// Stateless and allocation-free; works with any pair ordering.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sequential;

impl SweepEngine for Sequential {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn sweep_traced(
        &mut self,
        state: &mut SweepState<'_>,
        order: &Sweep,
        idx: usize,
        tracer: &mut Tracer<'_, '_>,
    ) -> SweepRecord {
        let guard = state.guard.ready(state.gram);
        let mut applied = 0usize;
        let mut skipped = 0usize;
        for (i, j) in order.pairs() {
            let (ni, nj, cov) =
                (state.gram.norm_sq(i), state.gram.norm_sq(j), state.gram.covariance(i, j));
            if guard.skip(ni, nj, cov) {
                skipped += 1;
                if tracer.rotation_enabled() {
                    tracer.emit(TraceEvent::RotationSkipped {
                        sweep: idx,
                        i,
                        j,
                        reason: guard.reason(),
                    });
                }
                continue;
            }
            let rot = textbook_params(ni, nj, cov);
            state.gram.rotate(i, j, &rot);
            if let Some(b) = state.target.columns.as_deref_mut() {
                b.column_pair(i, j).expect("sweep pairs are valid").rotate(rot.cos, rot.sin);
            }
            if let Some(vm) = state.target.v.as_deref_mut() {
                vm.column_pair(i, j).expect("sweep pairs are valid").rotate(rot.cos, rot.sin);
            }
            applied += 1;
            if tracer.rotation_enabled() {
                tracer.emit(TraceEvent::RotationApplied { sweep: idx, i, j });
            }
        }
        finish_record(state.gram, idx, applied, skipped)
    }

    fn finish(&mut self, stats: &mut SolveStats, n: usize) {
        stats.gram_bytes = stats.rotations_applied as u64 * seq_rotation_gram_bytes(n);
        // An in-place O(n) rotation reads and rewrites the two logical
        // columns (rows/cols i and j) of the packed triangle.
        stats.gram_col_touches = 2 * stats.rotations_applied as u64;
        stats.threads = 1;
    }
}

/// The cache-tiled engine: round-robin pair groups staged in `D`-tiles.
///
/// Each round of disjoint pairs is processed in groups of `g` pairs, where
/// `g` is chosen so that the group's working set — the `2g` logical columns
/// of `D` it touches, `2g·n` doubles — fits the configured tile budget
/// (default: an L1-sized 32 KiB). One group application:
///
/// 1. **Stage** the group's columns of `D` into the tile (and capture the
///    exact O(1) diagonal updates of Algorithm 1 lines 15–17);
/// 2. apply the **column transform** `D·J` pairwise inside the tile;
/// 3. apply the **row transform** `Jᵀ·(D·J)` on the group-row entries;
/// 4. **write back** and pin the exactly-known entries (pair covariances to
///    0, diagonals to the O(1) update).
///
/// The tile is the software analogue of the paper's BRAM-resident covariance
/// storage (§V): a bounded on-chip working set per rotation group, with the
/// rest of `D` untouched. Because groups are applied one after another and
/// each group is planned from the *current* `D`, the iteration is
/// Gauss-Seidel-like (as the sequential engine is), not round-snapshot
/// (as the parallel engine is) — the engines agree on the converged spectrum
/// to roundoff, which the equivalence tests pin down.
///
/// When the **whole packed triangle fits the tile budget** — the common case
/// under [`Blocked::for_dim`], which sizes the budget from `n` — staging
/// would copy all of `D` back and forth per group for no locality gain, so
/// the engine takes a single-tile fast path instead: pairs are rotated in
/// place with the packed three-region kernel, bit-identical to the
/// [`Sequential`] engine, and `tile_refills` stays 0.
///
/// Scratch lives in the shared [`SweepWorkspace`]; steady-state sweeps
/// allocate nothing (same invariant, and same test, as the parallel engine).
pub struct Blocked<'ws> {
    ws: &'ws mut SweepWorkspace,
    tile_bytes: usize,
    allocations0: usize,
    gram_bytes0: u64,
    tile_refills: u64,
    col_touches: u64,
    /// Rotations applied through the single-tile fast path (billed at the
    /// sequential engine's per-rotation traffic model in `finish`).
    fast_applied: u64,
}

impl<'ws> Blocked<'ws> {
    /// Default tile budget: a conservative L1-data-cache size.
    pub const DEFAULT_TILE_BYTES: usize = 32 * 1024;

    /// Fallback ceiling for the dimension-derived budget of
    /// [`Blocked::for_dim`] when the host probe finds nothing: a
    /// conservative per-core L2 slice. The whole packed triangle fits under
    /// it up to `n = 362`, which covers the paper's `n ≤ 256` range — the
    /// same "keep all of `D` on chip" regime as the FPGA's BRAM (§V).
    /// [`Blocked::host_tile_budget`] may raise (or an `HJ_TILE_BYTES`
    /// override may move) this ceiling per host.
    pub const MAX_TILE_BYTES: usize = 512 * 1024;

    /// Engine over caller-owned scratch with the default (L1) tile budget.
    pub fn new(ws: &'ws mut SweepWorkspace) -> Blocked<'ws> {
        Blocked::with_tile_bytes(ws, Blocked::DEFAULT_TILE_BYTES)
    }

    /// The per-host tile-budget ceiling, probed once at first use:
    /// the `HJ_TILE_BYTES` environment override if set (plain bytes or a
    /// `512K`/`1M`-style suffix), else the L2 cache size from
    /// `/sys/devices/system/cpu/cpu0/cache/index2/size`, else the
    /// conservative [`Blocked::MAX_TILE_BYTES`] fallback.
    pub fn host_tile_budget() -> usize {
        static BUDGET: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *BUDGET.get_or_init(|| {
            let env = std::env::var("HJ_TILE_BYTES").ok();
            let sysfs =
                std::fs::read_to_string("/sys/devices/system/cpu/cpu0/cache/index2/size").ok();
            resolve_tile_budget(env.as_deref(), sysfs.as_deref())
        })
    }

    /// Engine with the tile budget derived from the problem dimension and
    /// the host: the whole packed triangle (`8·n(n+1)/2` bytes) when it fits
    /// under [`Blocked::host_tile_budget`] — enabling the single-tile fast
    /// path — and an L1-class slice of the host budget otherwise. This is
    /// what the solver front ends construct.
    pub fn for_dim(ws: &'ws mut SweepWorkspace, n: usize) -> Blocked<'ws> {
        Blocked::for_dim_with_budget(ws, n, Blocked::host_tile_budget())
    }

    /// [`Blocked::for_dim`] against an explicit host budget (testable form).
    pub fn for_dim_with_budget(
        ws: &'ws mut SweepWorkspace,
        n: usize,
        budget: usize,
    ) -> Blocked<'ws> {
        let triangle = 8 * (n * (n + 1) / 2);
        let bytes = if triangle <= budget {
            triangle.max(Blocked::DEFAULT_TILE_BYTES)
        } else {
            // Tiled regime: stage in L1-class slices of the host budget
            // (1/16 of L2 ≈ 32 KiB on the 512 KiB fallback — identical to
            // the pre-autotune constant there).
            Blocked::DEFAULT_TILE_BYTES.max(budget / 16)
        };
        Blocked::with_tile_bytes(ws, bytes)
    }

    /// Engine with an explicit tile budget in bytes (e.g. an L2 size for
    /// large `n`). Budgets below one column pair are rounded up.
    pub fn with_tile_bytes(ws: &'ws mut SweepWorkspace, tile_bytes: usize) -> Blocked<'ws> {
        let allocations0 = ws.allocations();
        let gram_bytes0 = ws.gram_bytes();
        Blocked {
            ws,
            tile_bytes,
            allocations0,
            gram_bytes0,
            tile_refills: 0,
            col_touches: 0,
            fast_applied: 0,
        }
    }

    /// Pairs per group such that the staged `2g` columns (`2g·n` doubles)
    /// fit the tile budget; at least one pair.
    fn group_pairs(&self, n: usize) -> usize {
        ((self.tile_bytes / 8) / (2 * n.max(1))).max(1)
    }

    /// True when the entire packed triangle fits the tile budget — staging
    /// would copy all of `D` per group for nothing, so the sweep runs the
    /// in-place packed kernel directly (the fast path).
    fn single_tile(&self, n: usize) -> bool {
        8 * (n * (n + 1) / 2) <= self.tile_bytes
    }

    /// The single-tile fast path: `D` already fits the cache budget, so
    /// rotate it in place pair by pair with the packed three-region kernel —
    /// bit-identical to the [`Sequential`] engine — while keeping the
    /// blocked engine's group trace events and counters. `tile_refills`
    /// stays 0: nothing is ever staged.
    fn sweep_single_tile(
        &mut self,
        state: &mut SweepState<'_>,
        order: &Sweep,
        idx: usize,
        tracer: &mut Tracer<'_, '_>,
    ) -> SweepRecord {
        let guard = state.guard.ready(state.gram);
        let mut applied = 0usize;
        let mut skipped = 0usize;
        for (group_idx, round) in order.rounds().iter().enumerate() {
            let mut a = 0usize;
            let mut s = 0usize;
            for &(i, j) in round.iter() {
                let (ni, nj, cov) =
                    (state.gram.norm_sq(i), state.gram.norm_sq(j), state.gram.covariance(i, j));
                if guard.skip(ni, nj, cov) {
                    s += 1;
                    if tracer.rotation_enabled() {
                        tracer.emit(TraceEvent::RotationSkipped {
                            sweep: idx,
                            i,
                            j,
                            reason: guard.reason(),
                        });
                    }
                    continue;
                }
                let rot = textbook_params(ni, nj, cov);
                state.gram.rotate(i, j, &rot);
                if let Some(b) = state.target.columns.as_deref_mut() {
                    b.column_pair(i, j).expect("round pairs are valid").rotate(rot.cos, rot.sin);
                }
                if let Some(vm) = state.target.v.as_deref_mut() {
                    vm.column_pair(i, j).expect("round pairs are valid").rotate(rot.cos, rot.sin);
                }
                a += 1;
                if tracer.rotation_enabled() {
                    tracer.emit(TraceEvent::RotationApplied { sweep: idx, i, j });
                }
            }
            if tracer.group_enabled() {
                tracer.emit(TraceEvent::PairGroupDispatched {
                    sweep: idx,
                    round: group_idx,
                    pairs: round.len(),
                    applied: a,
                    skipped: s,
                });
            }
            self.fast_applied += a as u64;
            self.col_touches += 2 * a as u64;
            applied += a;
            skipped += s;
        }
        finish_record(state.gram, idx, applied, skipped)
    }
}

impl SweepEngine for Blocked<'_> {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn sweep_traced(
        &mut self,
        state: &mut SweepState<'_>,
        order: &Sweep,
        idx: usize,
        tracer: &mut Tracer<'_, '_>,
    ) -> SweepRecord {
        let n = state.gram.dim();
        if self.single_tile(n) {
            return self.sweep_single_tile(state, order, idx, tracer);
        }
        let guard = state.guard.ready(state.gram);
        let g = self.group_pairs(n);
        self.ws.prepare_plan(n);
        self.ws.prepare_tile(2 * g.min(n / 2 + 1), n);
        let mut applied = 0usize;
        let mut skipped = 0usize;
        let mut group_idx = 0usize;
        for round in order.rounds() {
            for group in round.chunks(g) {
                let (a, s) = plan_round(state.gram, group, &guard, idx, tracer, self.ws);
                applied += a;
                skipped += s;
                if tracer.group_enabled() {
                    tracer.emit(TraceEvent::PairGroupDispatched {
                        sweep: idx,
                        round: group_idx,
                        pairs: group.len(),
                        applied: a,
                        skipped: s,
                    });
                }
                group_idx += 1;
                if a == 0 {
                    continue;
                }
                self.tile_refills += 1;
                self.col_touches += 2 * a as u64;
                apply_group_tiled(state.gram, self.ws);
                // Column data and V are rotated pairwise in place — the
                // columns are disjoint within a group, and the per-pair
                // kernel is the bitwise-pinned ColumnPair::rotate.
                for &(i, j, rot) in self.ws.rotations() {
                    if let Some(b) = state.target.columns.as_deref_mut() {
                        b.column_pair(i, j)
                            .expect("group pairs are valid")
                            .rotate(rot.cos, rot.sin);
                    }
                    if let Some(vm) = state.target.v.as_deref_mut() {
                        vm.column_pair(i, j)
                            .expect("group pairs are valid")
                            .rotate(rot.cos, rot.sin);
                    }
                }
            }
        }
        finish_record(state.gram, idx, applied, skipped)
    }

    fn finish(&mut self, stats: &mut SolveStats, n: usize) {
        stats.workspace_allocations = self.ws.allocations().saturating_sub(self.allocations0);
        // Staged groups are metered by the tile model in the workspace;
        // fast-path rotations are in-place O(n) updates and bill at the
        // sequential engine's per-rotation rate.
        stats.gram_bytes = self.ws.gram_bytes().saturating_sub(self.gram_bytes0)
            + self.fast_applied * seq_rotation_gram_bytes(n);
        stats.gram_col_touches = self.col_touches;
        stats.tile_refills = self.tile_refills;
        stats.tile_bytes = self.tile_bytes as u64;
        stats.threads = 1;
    }
}

/// Resolve the host tile-budget ceiling from an `HJ_TILE_BYTES` override
/// and/or a sysfs L2-size string, falling back to
/// [`Blocked::MAX_TILE_BYTES`]. Nonsense inputs fall through to the next
/// source; budgets are clamped to at least one pair column (4 KiB floor
/// keeps degenerate overrides from planning 1-pair groups forever).
pub(crate) fn resolve_tile_budget(env: Option<&str>, sysfs: Option<&str>) -> usize {
    let floor = 4 * 1024;
    if let Some(bytes) = env.and_then(parse_byte_size) {
        return bytes.max(floor);
    }
    if let Some(bytes) = sysfs.and_then(parse_byte_size) {
        return bytes.max(floor);
    }
    Blocked::MAX_TILE_BYTES
}

/// Parse `"524288"`, `"512K"`, or `"8M"` (sysfs spelling, trailing
/// whitespace tolerated) into bytes. Returns `None` for anything else.
fn parse_byte_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024usize),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    let value: usize = digits.trim().parse().ok()?;
    value.checked_mul(mult).filter(|&b| b > 0)
}

/// Apply the planned group (in `ws.rotations`) to `D` through the staged
/// tile: stage the group's columns, column-transform, row-transform, write
/// back, then pin the exactly-known entries.
fn apply_group_tiled(gram: &mut GramState, ws: &mut SweepWorkspace) {
    let n = gram.dim();
    let (rotations, tile, diag_new, gram_bytes) = ws.tile_parts();
    let cols = 2 * rotations.len();
    diag_new.clear();
    let d = gram.packed_mut();
    // Stage 0: gather the group's logical columns of D into the tile
    // (contiguous row tail + strided head per column, no per-element offset
    // math — [`crate::kernel::gather_column`]); capture the exact O(1)
    // diagonal updates (Algorithm 1 lines 15–17) before any entry changes.
    for (r, &(i, j, rot)) in rotations.iter().enumerate() {
        let cov = d.get(i, j);
        diag_new.push(d.get(i, i) - rot.t * cov);
        diag_new.push(d.get(j, j) + rot.t * cov);
        let (ti, tj) = (2 * r * n, (2 * r + 1) * n);
        crate::kernel::gather_column(d, i, &mut tile[ti..ti + n]);
        crate::kernel::gather_column(d, j, &mut tile[tj..tj + n]);
    }
    // Stage 1: column transform D·J — each staged column pair is one
    // lane-friendly paired rotate over all n rows (bit-identical to the
    // element-wise loop; see `hj_matrix::ops::rotate_pair`).
    for (r, &(_, _, rot)) in rotations.iter().enumerate() {
        let (ti, tj) = (2 * r * n, (2 * r + 1) * n);
        let (head, tail) = tile.split_at_mut(tj);
        hj_matrix::ops::rotate_pair(&mut head[ti..], &mut tail[..n], rot.cos, rot.sin);
    }
    // Stage 2: row transform Jᵀ·(D·J) — the group's own rows of every
    // staged column. Column-outer, rotations-inner: the tile streams
    // linearly and each column's row pairs are rotated in one pass.
    // Bit-identical to the rotations-outer order (the group's pairs are
    // disjoint, so every element is touched by exactly one rotation).
    for col in tile[..cols * n].chunks_exact_mut(n) {
        for &(i, j, rot) in rotations.iter() {
            let x = col[i];
            let y = col[j];
            col[i] = rot.cos * x - rot.sin * y;
            col[j] = rot.sin * x + rot.cos * y;
        }
    }
    // Write back (the mirror of stage 0's gather), then pin entries known
    // exactly: each pair's covariance is annihilated, and the diagonals
    // take the O(1) norm update (more accurate than the quadratic form).
    for (r, &(i, j, _)) in rotations.iter().enumerate() {
        let (ti, tj) = (2 * r * n, (2 * r + 1) * n);
        crate::kernel::scatter_column(d, i, &tile[ti..ti + n]);
        crate::kernel::scatter_column(d, j, &tile[tj..tj + n]);
    }
    for (r, &(i, j, _)) in rotations.iter().enumerate() {
        d.set(i, i, diag_new[2 * r]);
        d.set(j, j, diag_new[2 * r + 1]);
        d.set(i, j, 0.0);
    }
    // Tile traffic model: the staged columns are read once and written once.
    *gram_bytes += 16 * (cols * n) as u64;
}

/// The one sweep loop in the crate. Owns convergence checking, per-sweep
/// timing, history collection, and [`SolveStats`] accounting; every solver
/// API routes through [`SolveDriver::run`].
#[derive(Debug, Clone, Copy)]
pub struct SolveDriver {
    /// Stopping rule evaluated after every sweep.
    pub convergence: Convergence,
    /// Hard sweep budget (additionally capped at [`MAX_SWEEP_CAP`]).
    pub max_sweeps: usize,
}

/// Monitoring attached to one [`SolveDriver::run_monitored`] call: a latency
/// [`SolveBudget`] checked at sweep boundaries, the per-sweep
/// [`HealthCheck`], and (under the `fault-injection` feature only) an
/// optional injector hook for the robustness test harness.
pub struct SolveMonitor<'a> {
    /// Deadline/cancellation limits, checked before each sweep starts.
    pub budget: SolveBudget,
    /// Per-sweep `O(n)` scan of `D` for non-finite values, negative
    /// diagonals, and convergence stalls.
    pub health: HealthCheck,
    /// Trace sink receiving [`TraceEvent`]s from the run; `None` disables
    /// tracing entirely (the untraced pipeline, bit for bit).
    pub trace: Option<&'a mut dyn TraceSink>,
    /// Event granularity when a sink is attached (ignored otherwise).
    pub trace_level: TraceLevel,
    /// Test-only corruption hook, called around every sweep. Absent from
    /// production builds — the field itself compiles out without the
    /// `fault-injection` feature.
    #[cfg(feature = "fault-injection")]
    pub injector: Option<&'a mut dyn crate::inject::FaultInjector>,
    #[cfg(not(feature = "fault-injection"))]
    _marker: std::marker::PhantomData<&'a mut ()>,
}

impl std::fmt::Debug for SolveMonitor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveMonitor")
            .field("budget", &self.budget)
            .field("health", &self.health)
            .field("trace_level", &self.trace_level)
            .finish_non_exhaustive()
    }
}

impl<'a> SolveMonitor<'a> {
    /// Monitor with the given budget and health check, no trace sink, no
    /// injector.
    pub fn new(budget: SolveBudget, health: HealthCheck) -> SolveMonitor<'a> {
        SolveMonitor {
            budget,
            health,
            trace: None,
            trace_level: TraceLevel::Off,
            #[cfg(feature = "fault-injection")]
            injector: None,
            #[cfg(not(feature = "fault-injection"))]
            _marker: std::marker::PhantomData,
        }
    }

    /// Attach a trace sink emitting events up to `level`.
    pub fn with_trace(mut self, sink: &'a mut dyn TraceSink, level: TraceLevel) -> Self {
        self.trace = Some(sink);
        self.trace_level = level;
        self
    }

    /// The do-nothing monitor [`SolveDriver::run`] uses: unlimited budget,
    /// disabled health check — byte-for-byte the unmonitored pipeline.
    pub fn passive() -> SolveMonitor<'static> {
        SolveMonitor::new(SolveBudget::unlimited(), HealthCheck::disabled())
    }

    /// Attach a fault injector (test harness only).
    #[cfg(feature = "fault-injection")]
    pub fn with_injector(mut self, injector: &'a mut dyn crate::inject::FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }
}

/// The outcome of one [`SolveDriver::run_monitored`] attempt.
#[derive(Debug)]
pub struct MonitoredRun {
    /// Per-sweep convergence records, in execution order.
    pub history: Vec<SweepRecord>,
    /// Filled stats for the attempt (`faults` counts at most the one fault
    /// that ended it; recovery accounting belongs to the caller).
    pub stats: SolveStats,
    /// The fault that stopped the attempt, or `None` if it ran to
    /// convergence or exhausted its sweep budget cleanly.
    pub fault: Option<Fault>,
}

impl SolveDriver {
    /// Run sweeps until the stopping rule (or the budget) is hit; returns the
    /// per-sweep history and the filled stats record.
    ///
    /// This is [`SolveDriver::run_monitored`] over the given fixed plan with
    /// a passive monitor — no budget, no health check, no replanning — and
    /// is byte-for-byte the PR-2 pipeline.
    pub fn run(
        &self,
        engine: &mut dyn SweepEngine,
        state: &mut SweepState<'_>,
        order: &Sweep,
    ) -> (Vec<SweepRecord>, SolveStats) {
        let run = self.run_monitored_static(engine, state, order, &mut SolveMonitor::passive());
        (run.history, run.stats)
    }

    /// [`SolveDriver::run_monitored`] over a fixed, caller-built plan: the
    /// same `order` is executed every sweep (no replanning, no threshold
    /// ramp), as the pre-subsystem driver did.
    pub fn run_monitored_static(
        &self,
        engine: &mut dyn SweepEngine,
        state: &mut SweepState<'_>,
        order: &Sweep,
        monitor: &mut SolveMonitor<'_>,
    ) -> MonitoredRun {
        let mut strategy = Preplanned;
        let mut plan = order.clone();
        let mut schedule =
            SweepSchedule { strategy: &mut strategy, plan: &mut plan, threshold: None };
        self.run_monitored(engine, state, &mut schedule, monitor)
    }

    /// Run sweeps under a [`SolveMonitor`]: the budget is checked before
    /// each sweep starts, the schedule's strategy (re)plans the sweep's
    /// rounds from the current `D`, the health check inspects `D` after each
    /// sweep *before* convergence is evaluated (a corrupted state must never
    /// be declared converged), and the first fault ends the attempt.
    ///
    /// When the schedule carries a [`crate::ordering::ThresholdSchedule`],
    /// the driver installs a [`PairGuard::Threshold`] for every sweep whose
    /// ramp tolerance is still above [`PAIR_TOL`], restores the caller's
    /// guard once the ramp bottoms out, and suppresses the
    /// [`Convergence::NoRotations`] stopping rule while the ramp is active
    /// (a coarse guard's idle sweep is not convergence).
    pub fn run_monitored(
        &self,
        engine: &mut dyn SweepEngine,
        state: &mut SweepState<'_>,
        schedule: &mut SweepSchedule<'_>,
        monitor: &mut SolveMonitor<'_>,
    ) -> MonitoredRun {
        let n = state.gram.dim();
        let mut history = Vec::new();
        let mut stats = SolveStats::default();
        let mut health_state = HealthState::new();
        let mut fault = None;
        let cap = self.max_sweeps.min(MAX_SWEEP_CAP);
        let trace_level = monitor.trace_level;
        let mut tracer = Tracer::attach(monitor.trace.as_deref_mut(), trace_level);
        let base_guard = state.guard;
        for s in 1..=cap {
            if let Some(f) = monitor.budget.check(s) {
                fault = Some(f);
                break;
            }
            #[cfg(feature = "fault-injection")]
            if let Some(inj) = monitor.injector.as_deref_mut() {
                inj.before_sweep(s, state.gram);
            }
            let replanned = schedule.strategy.plan_sweep(state.gram, s, schedule.plan);
            if replanned {
                stats.replans += 1;
            }
            let threshold_active = schedule.threshold.is_some_and(|th| th.active(s));
            if let Some(th) = schedule.threshold {
                state.guard = if threshold_active {
                    PairGuard::Threshold { tol: th.tol(s) }
                } else {
                    base_guard
                };
            }
            if tracer.sweep_enabled() {
                tracer.emit(TraceEvent::SweepStart { sweep: s, engine: engine.name() });
            }
            if tracer.group_enabled() {
                tracer.emit(TraceEvent::SweepPlanned {
                    sweep: s,
                    ordering: schedule.strategy.name(),
                    rounds: schedule.plan.round_count(),
                    pairs: schedule.plan.pair_count(),
                    replanned,
                });
            }
            let t0 = Instant::now();
            let rec = engine.sweep_traced(state, schedule.plan, s, &mut tracer);
            #[cfg(feature = "fault-injection")]
            if let Some(inj) = monitor.injector.as_deref_mut() {
                inj.after_sweep(s, state.gram);
            }
            let seconds = t0.elapsed().as_secs_f64();
            stats.record_sweep(seconds, &rec);
            if threshold_active {
                stats.pairs_skipped_by_threshold += rec.rotations_skipped;
            }
            if tracer.sweep_enabled() {
                tracer.emit(TraceEvent::SweepEnd {
                    sweep: s,
                    rotations_applied: rec.rotations_applied,
                    rotations_skipped: rec.rotations_skipped,
                    off_frobenius: rec.off_frobenius,
                    seconds,
                });
            }
            history.push(rec);
            if let Some(f) = monitor.health.inspect(state.gram, &rec, &mut health_state) {
                fault = Some(f);
                break;
            }
            let converged =
                if threshold_active && matches!(self.convergence, Convergence::NoRotations) {
                    false
                } else {
                    is_converged(&self.convergence, &rec, state.gram.trace(), n)
                };
            if tracer.sweep_enabled() {
                tracer.emit(TraceEvent::ConvergenceCheck {
                    sweep: s,
                    max_abs_cov: rec.max_abs_cov,
                    off_frobenius: rec.off_frobenius,
                    converged,
                });
            }
            if converged {
                break;
            }
        }
        state.guard = base_guard;
        if fault.is_some() {
            stats.faults += 1;
        }
        engine.finish(&mut stats, n);
        stats.engine = engine.name();
        stats.ordering = schedule.strategy.name();
        MonitoredRun { history, stats, fault }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::round_robin;
    use crate::parallel::Parallel;
    use hj_matrix::gen;

    fn driver() -> SolveDriver {
        SolveDriver { convergence: Convergence::default(), max_sweeps: MAX_SWEEP_CAP }
    }

    fn spectrum(gram: &GramState) -> Vec<f64> {
        let mut s = gram.singular_values_unsorted();
        s.sort_by(|a, b| b.partial_cmp(a).unwrap());
        s
    }

    #[test]
    fn engine_kind_parses_cli_spellings() {
        assert_eq!(EngineKind::parse("seq"), Some(EngineKind::Sequential));
        assert_eq!(EngineKind::parse("sequential"), Some(EngineKind::Sequential));
        assert_eq!(EngineKind::parse("par"), Some(EngineKind::Parallel));
        assert_eq!(EngineKind::parse("parallel"), Some(EngineKind::Parallel));
        assert_eq!(EngineKind::parse("blocked"), Some(EngineKind::Blocked));
        assert_eq!(EngineKind::parse("simd"), None);
        assert_eq!(EngineKind::Blocked.name(), "blocked");
    }

    #[test]
    fn driver_times_and_records_every_sweep() {
        let a = gen::uniform(30, 10, 5);
        let mut gram = GramState::from_matrix(&a);
        let order = round_robin(10);
        let mut state = SweepState {
            gram: &mut gram,
            target: RotationTarget::gram_only(),
            guard: PairGuard::default(),
        };
        let (history, stats) = driver().run(&mut Sequential, &mut state, &order);
        assert!(!history.is_empty());
        assert_eq!(stats.sweeps, history.len());
        assert_eq!(stats.sweep_seconds.len(), history.len());
        assert_eq!(stats.engine, "sequential");
        assert_eq!(stats.threads, 1);
        assert!(stats.gram_bytes > 0);
    }

    #[test]
    fn driver_respects_fixed_sweep_budget() {
        let a = gen::uniform(40, 12, 9);
        let mut gram = GramState::from_matrix(&a);
        let order = round_robin(12);
        let mut state = SweepState {
            gram: &mut gram,
            target: RotationTarget::gram_only(),
            guard: PairGuard::default(),
        };
        let d = SolveDriver { convergence: Convergence::FixedSweeps(3), max_sweeps: 10 };
        let (history, stats) = d.run(&mut Sequential, &mut state, &order);
        assert_eq!(history.len(), 3);
        assert_eq!(stats.sweeps, 3);
    }

    #[test]
    fn sequential_engine_matches_dedicated_sweeps() {
        // The engine must be the same computation as the pre-unification
        // sequential sweep drivers, bit for bit.
        let a = gen::uniform(25, 8, 3);
        let order = round_robin(8);
        let mut g_engine = GramState::from_matrix(&a);
        let mut g_direct = GramState::from_matrix(&a);
        let mut state = SweepState {
            gram: &mut g_engine,
            target: RotationTarget::gram_only(),
            guard: PairGuard::default(),
        };
        (1..=6).for_each(|s| {
            Sequential.sweep(&mut state, &order, s);
            crate::sweep::sweep_gram_only(&mut g_direct, &order, s);
        });
        assert_eq!(g_engine.packed().as_slice(), g_direct.packed().as_slice());
    }

    #[test]
    fn blocked_engine_converges_to_sequential_spectrum() {
        for &(m, n, seed) in &[(40usize, 12usize, 7u64), (16, 16, 8), (9, 30, 9)] {
            let a = gen::uniform(m, n, seed);
            let order = round_robin(n);

            let mut g_seq = GramState::from_matrix(&a);
            let mut st = SweepState {
                gram: &mut g_seq,
                target: RotationTarget::gram_only(),
                guard: PairGuard::default(),
            };
            driver().run(&mut Sequential, &mut st, &order);

            let mut g_blk = GramState::from_matrix(&a);
            let mut ws = SweepWorkspace::new();
            let mut st = SweepState {
                gram: &mut g_blk,
                target: RotationTarget::gram_only(),
                guard: PairGuard::default(),
            };
            driver().run(&mut Blocked::new(&mut ws), &mut st, &order);

            let (s1, s2) = (spectrum(&g_seq), spectrum(&g_blk));
            let smax = s1[0].max(1e-300);
            for (x, y) in s1.iter().zip(&s2) {
                // Compare on the Gram spectrum (σ²): that is what both
                // engines iterate on, and it treats the √ε·σ_max dust of
                // numerically-zero values correctly. For the non-zero part
                // this is 1e-13-relative agreement of σ.
                assert!((x * x - y * y).abs() <= 1e-13 * smax * smax, "{m}x{n}: {x} vs {y}");
                if x.min(*y) > 1e-6 * smax {
                    assert!((x - y).abs() <= 1e-13 * smax, "{m}x{n}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn blocked_group_update_matches_gram_recomputation() {
        // After every tiled group application, D must equal the Gram matrix
        // recomputed from the identically-rotated columns.
        let mut a = gen::uniform(20, 8, 5);
        let mut g = GramState::from_matrix(&a);
        let order = round_robin(8);
        let mut ws = SweepWorkspace::new();
        ws.prepare_plan(8);
        ws.prepare_tile(8, 8);
        let guard = PairGuard::default().ready(&g);
        for round in order.rounds() {
            for group in round.chunks(2) {
                let (applied, _) =
                    plan_round(&g, group, &guard, 1, &mut Tracer::disabled(), &mut ws);
                if applied == 0 {
                    continue;
                }
                apply_group_tiled(&mut g, &mut ws);
                for &(i, j, rot) in ws.rotations() {
                    a.column_pair(i, j).unwrap().rotate(rot.cos, rot.sin);
                }
                let fresh = GramState::from_matrix(&a);
                for p in 0..8 {
                    for q in p..8 {
                        assert!(
                            (g.covariance(p, q) - fresh.covariance(p, q)).abs() < 1e-11,
                            "D[{p}][{q}] inconsistent after tiled group"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_tile_budget_changes_grouping_not_results_materially() {
        let a = gen::uniform(30, 10, 21);
        let order = round_robin(10);
        let mut spectra = Vec::new();
        for bytes in [1usize, 512, Blocked::DEFAULT_TILE_BYTES] {
            let mut g = GramState::from_matrix(&a);
            let mut ws = SweepWorkspace::new();
            let mut st = SweepState {
                gram: &mut g,
                target: RotationTarget::gram_only(),
                guard: PairGuard::default(),
            };
            driver().run(&mut Blocked::with_tile_bytes(&mut ws, bytes), &mut st, &order);
            spectra.push(spectrum(&g));
        }
        let smax = spectra[0][0].max(1e-300);
        for s in &spectra[1..] {
            for (x, y) in spectra[0].iter().zip(s) {
                assert!((x - y).abs() <= 1e-12 * smax, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn all_engines_fill_stats_consistently() {
        let a = gen::uniform(30, 9, 4);
        let order = round_robin(9);

        let mut g = GramState::from_matrix(&a);
        let mut st = SweepState {
            gram: &mut g,
            target: RotationTarget::gram_only(),
            guard: PairGuard::default(),
        };
        let (_, seq) = driver().run(&mut Sequential, &mut st, &order);
        assert_eq!(seq.engine, "sequential");
        assert_eq!(seq.workspace_allocations, 0);

        let mut g = GramState::from_matrix(&a);
        let mut ws = SweepWorkspace::new();
        let mut st = SweepState {
            gram: &mut g,
            target: RotationTarget::gram_only(),
            guard: PairGuard::default(),
        };
        let (_, par) = driver().run(&mut Parallel::round_synchronous(&mut ws), &mut st, &order);
        assert_eq!(par.engine, "parallel");
        assert!(par.workspace_allocations > 0, "warm-up must allocate");
        assert!(par.threads >= 1);

        // Parallel::new at one worker thread reports the sequential model
        // (the fallback), with zero workspace use and zero dispatches.
        if rayon::current_num_threads() == 1 {
            let mut g = GramState::from_matrix(&a);
            let mut ws = SweepWorkspace::new();
            let mut st = SweepState {
                gram: &mut g,
                target: RotationTarget::gram_only(),
                guard: PairGuard::default(),
            };
            let (_, fb) = driver().run(&mut Parallel::new(&mut ws), &mut st, &order);
            assert_eq!(fb.engine, "parallel");
            assert_eq!(fb.workspace_allocations, 0);
            assert_eq!(fb.parallel_dispatches, 0);
            assert_eq!(fb.threads, 1);
            assert!(fb.gram_bytes > 0);
        }

        // n = 9 fits a single default tile, so the blocked engine takes the
        // in-place fast path: no staging, no workspace growth, no refills.
        let mut g = GramState::from_matrix(&a);
        let mut ws = SweepWorkspace::new();
        let mut st = SweepState {
            gram: &mut g,
            target: RotationTarget::gram_only(),
            guard: PairGuard::default(),
        };
        let (_, blk) = driver().run(&mut Blocked::new(&mut ws), &mut st, &order);
        assert_eq!(blk.engine, "blocked");
        assert_eq!(blk.workspace_allocations, 0, "fast path must not stage");
        assert_eq!(blk.tile_refills, 0);
        assert!(blk.gram_bytes > 0);
        assert_eq!(blk.threads, 1);

        // A deliberately tiny budget forces the tiled path and its staging
        // allocations.
        let mut g = GramState::from_matrix(&a);
        let mut ws = SweepWorkspace::new();
        let mut st = SweepState {
            gram: &mut g,
            target: RotationTarget::gram_only(),
            guard: PairGuard::default(),
        };
        let (_, tiled) = driver().run(&mut Blocked::with_tile_bytes(&mut ws, 256), &mut st, &order);
        assert_eq!(tiled.engine, "blocked");
        assert!(tiled.workspace_allocations > 0, "tile warm-up must allocate");
        assert!(tiled.tile_refills > 0);
        assert!(tiled.gram_bytes > 0);
    }

    #[test]
    fn blocked_fast_path_is_bit_identical_to_sequential() {
        // Under `for_dim` every n ≤ 362 fits one tile; the fast path must
        // reproduce the sequential engine bit for bit and never refill.
        for &(m, n, seed) in &[(30usize, 8usize, 6u64), (50, 24, 7), (20, 33, 8)] {
            let a = gen::uniform(m, n, seed);
            let order = round_robin(n);

            let mut g_seq = GramState::from_matrix(&a);
            let mut st = SweepState {
                gram: &mut g_seq,
                target: RotationTarget::gram_only(),
                guard: PairGuard::default(),
            };
            driver().run(&mut Sequential, &mut st, &order);

            let mut g_blk = GramState::from_matrix(&a);
            let mut ws = SweepWorkspace::new();
            let mut st = SweepState {
                gram: &mut g_blk,
                target: RotationTarget::gram_only(),
                guard: PairGuard::default(),
            };
            let (_, stats) = driver().run(&mut Blocked::for_dim(&mut ws, n), &mut st, &order);

            assert_eq!(g_seq.packed().as_slice(), g_blk.packed().as_slice(), "{m}x{n}");
            assert_eq!(stats.tile_refills, 0, "{m}x{n}: single tile must never refill");
            assert_eq!(stats.workspace_allocations, 0, "{m}x{n}");
        }
    }

    #[test]
    fn monitored_run_with_health_on_matches_plain_run_bitwise() {
        let a = gen::uniform(35, 11, 13);
        let order = round_robin(11);

        let mut g1 = GramState::from_matrix(&a);
        let mut st = SweepState {
            gram: &mut g1,
            target: RotationTarget::gram_only(),
            guard: PairGuard::default(),
        };
        let (history, stats) = driver().run(&mut Sequential, &mut st, &order);

        let mut g2 = GramState::from_matrix(&a);
        let mut st = SweepState {
            gram: &mut g2,
            target: RotationTarget::gram_only(),
            guard: PairGuard::default(),
        };
        let mut mon = SolveMonitor::new(SolveBudget::unlimited(), HealthCheck::default());
        let run = driver().run_monitored_static(&mut Sequential, &mut st, &order, &mut mon);

        assert_eq!(run.fault, None);
        assert_eq!(run.history, history);
        assert_eq!(run.stats.sweeps, stats.sweeps);
        assert_eq!(run.stats.faults, 0);
        assert_eq!(g1.packed().as_slice(), g2.packed().as_slice());
    }

    #[test]
    fn expired_deadline_stops_before_the_first_sweep() {
        let a = gen::uniform(30, 10, 2);
        let order = round_robin(10);
        let mut g = GramState::from_matrix(&a);
        let mut st = SweepState {
            gram: &mut g,
            target: RotationTarget::gram_only(),
            guard: PairGuard::default(),
        };
        let budget = SolveBudget::with_deadline(Instant::now() - std::time::Duration::from_secs(1));
        let mut mon = SolveMonitor::new(budget, HealthCheck::default());
        let run = driver().run_monitored_static(&mut Sequential, &mut st, &order, &mut mon);
        assert_eq!(run.fault, Some(Fault::DeadlineExceeded { sweep: 1 }));
        assert!(run.history.is_empty());
        assert_eq!(run.stats.sweeps, 0);
        assert_eq!(run.stats.faults, 1);
    }

    #[test]
    fn scheduled_cyclic_run_is_bit_identical_to_static_run() {
        // The schedule-driven driver with the Cyclic strategy must be the
        // pre-subsystem static round-robin loop, bit for bit — on all three
        // engines.
        use crate::ordering::{Cyclic, PlanBuffers, SweepSchedule};
        let a = gen::uniform(40, 12, 31);
        let order = round_robin(12);
        let run_static = |engine: &mut dyn SweepEngine| {
            let mut g = GramState::from_matrix(&a);
            let mut st = SweepState {
                gram: &mut g,
                target: RotationTarget::gram_only(),
                guard: PairGuard::default(),
            };
            let (h, stats) = driver().run(engine, &mut st, &order);
            (g.packed().as_slice().to_vec(), h, stats)
        };
        let run_scheduled = |engine: &mut dyn SweepEngine| {
            let mut g = GramState::from_matrix(&a);
            let mut st = SweepState {
                gram: &mut g,
                target: RotationTarget::gram_only(),
                guard: PairGuard::default(),
            };
            let mut strat = Cyclic::new();
            let mut plan = crate::ordering::Sweep::new();
            let mut schedule =
                SweepSchedule { strategy: &mut strat, plan: &mut plan, threshold: None };
            let run = driver().run_monitored(
                engine,
                &mut st,
                &mut schedule,
                &mut SolveMonitor::passive(),
            );
            (g.packed().as_slice().to_vec(), run.history, run.stats)
        };

        let (d1, h1, s1) = run_static(&mut Sequential);
        let (d2, h2, s2) = run_scheduled(&mut Sequential);
        assert_eq!(d1, d2);
        assert_eq!(h1, h2);
        assert_eq!(s2.ordering, "cyclic");
        assert_eq!(s1.ordering, "", "preplanned runs report no ordering");
        assert_eq!(s2.replans, 1, "cyclic plans once");

        let mut ws1 = SweepWorkspace::new();
        let mut ws2 = SweepWorkspace::new();
        let (d1, h1, _) = run_static(&mut Parallel::round_synchronous(&mut ws1));
        let (d2, h2, _) = run_scheduled(&mut Parallel::round_synchronous(&mut ws2));
        assert_eq!(d1, d2);
        assert_eq!(h1, h2);

        let mut ws1 = SweepWorkspace::new();
        let mut ws2 = SweepWorkspace::new();
        let (d1, h1, _) = run_static(&mut Blocked::for_dim(&mut ws1, 12));
        let (d2, h2, _) = run_scheduled(&mut Blocked::for_dim(&mut ws2, 12));
        assert_eq!(d1, d2);
        assert_eq!(h1, h2);

        // PlanBuffers parts drive the same loop identically.
        let mut g = GramState::from_matrix(&a);
        let mut st = SweepState {
            gram: &mut g,
            target: RotationTarget::gram_only(),
            guard: PairGuard::default(),
        };
        let mut bufs = PlanBuffers::new();
        let (strategy, plan) = bufs.schedule_parts(crate::ordering::Ordering::RoundRobin);
        let mut schedule = SweepSchedule { strategy, plan, threshold: None };
        driver().run_monitored(
            &mut Sequential,
            &mut st,
            &mut schedule,
            &mut SolveMonitor::passive(),
        );
        assert_eq!(g.packed().as_slice(), d1.as_slice());
    }

    #[test]
    fn greedy_schedule_converges_and_counts_replans() {
        use crate::ordering::{SortedGreedy, SweepSchedule};
        let a = gen::uniform(40, 14, 17);
        let mut g = GramState::from_matrix(&a);
        let mut st = SweepState {
            gram: &mut g,
            target: RotationTarget::gram_only(),
            guard: PairGuard::default(),
        };
        let mut strat = SortedGreedy::new();
        let mut plan = crate::ordering::Sweep::new();
        let mut schedule = SweepSchedule { strategy: &mut strat, plan: &mut plan, threshold: None };
        let run = driver().run_monitored(
            &mut Sequential,
            &mut st,
            &mut schedule,
            &mut SolveMonitor::passive(),
        );
        assert_eq!(run.fault, None);
        assert_eq!(run.stats.ordering, "greedy");
        assert_eq!(run.stats.replans, run.stats.sweeps, "greedy replans every sweep");
        assert!(g.max_abs_covariance() <= 1e-14 * (g.trace() / 14.0).max(f64::MIN_POSITIVE));
    }

    #[test]
    fn threshold_schedule_defers_pairs_then_restores_the_guard() {
        use crate::ordering::{Cyclic, SweepSchedule, ThresholdSchedule};
        let a = gen::uniform(40, 10, 23);
        let mut g = GramState::from_matrix(&a);
        let mut st = SweepState {
            gram: &mut g,
            target: RotationTarget::gram_only(),
            guard: PairGuard::default(),
        };
        let mut strat = Cyclic::new();
        let mut plan = crate::ordering::Sweep::new();
        // A deliberately coarse ramp: sweep 1 skips almost everything.
        let th = ThresholdSchedule::new(0.5, 1e-3);
        let mut schedule =
            SweepSchedule { strategy: &mut strat, plan: &mut plan, threshold: Some(th) };
        let run = driver().run_monitored(
            &mut Sequential,
            &mut st,
            &mut schedule,
            &mut SolveMonitor::passive(),
        );
        assert_eq!(run.fault, None);
        assert!(
            run.stats.pairs_skipped_by_threshold > 0,
            "the coarse early ramp must defer some pairs"
        );
        // The caller's guard is restored after the run.
        assert_eq!(st.guard, PairGuard::default());
        // And the solve still reaches the default convergence target.
        assert!(g.max_abs_covariance() <= 1e-14 * (g.trace() / 10.0).max(f64::MIN_POSITIVE));
    }

    #[test]
    fn no_rotations_rule_is_suppressed_while_the_ramp_is_active() {
        use crate::ordering::{Cyclic, SweepSchedule, ThresholdSchedule};
        // With a guard so coarse that sweep 1 rotates nothing, NoRotations
        // must NOT stop the solve while the ramp is above the floor.
        let a = gen::uniform(30, 8, 41);
        let mut g = GramState::from_matrix(&a);
        let mut st = SweepState {
            gram: &mut g,
            target: RotationTarget::gram_only(),
            guard: PairGuard::default(),
        };
        let mut strat = Cyclic::new();
        let mut plan = crate::ordering::Sweep::new();
        let th = ThresholdSchedule::new(10.0, 1e-2); // sweep 1 skips all pairs
        let mut schedule =
            SweepSchedule { strategy: &mut strat, plan: &mut plan, threshold: Some(th) };
        let d = SolveDriver { convergence: Convergence::NoRotations, max_sweeps: MAX_SWEEP_CAP };
        let run =
            d.run_monitored(&mut Sequential, &mut st, &mut schedule, &mut SolveMonitor::passive());
        assert!(run.history[0].rotations_applied == 0, "sweep 1 must be fully deferred");
        assert!(run.history.len() > 1, "NoRotations must not fire on a deferred sweep");
        assert_eq!(run.history.last().unwrap().rotations_applied, 0, "real convergence at the end");
    }

    #[test]
    fn tile_budget_resolution_prefers_env_then_sysfs_then_fallback() {
        assert_eq!(resolve_tile_budget(Some("65536"), Some("512K")), 65536);
        assert_eq!(resolve_tile_budget(Some("256K"), None), 256 * 1024);
        assert_eq!(resolve_tile_budget(Some("1M"), None), 1024 * 1024);
        assert_eq!(resolve_tile_budget(None, Some("512K\n")), 512 * 1024);
        assert_eq!(resolve_tile_budget(None, Some("8M\n")), 8 * 1024 * 1024);
        assert_eq!(resolve_tile_budget(None, None), Blocked::MAX_TILE_BYTES);
        // Garbage falls through; tiny overrides are floored.
        assert_eq!(resolve_tile_budget(Some("zap"), Some("oops")), Blocked::MAX_TILE_BYTES);
        assert_eq!(resolve_tile_budget(Some("1"), None), 4 * 1024);
    }

    #[test]
    fn for_dim_budget_keeps_fast_path_and_reports_tile_bytes() {
        // Any n whose triangle fits the host budget takes the single-tile
        // fast path regardless of what the probe found, so for_dim results
        // stay bit-identical across hosts in the paper's n ≤ 256 range.
        let a = gen::uniform(30, 9, 4);
        let order = round_robin(9);
        let mut baseline = None;
        for budget in [Blocked::MAX_TILE_BYTES, 4 * 1024 * 1024] {
            let mut g = GramState::from_matrix(&a);
            let mut ws = SweepWorkspace::new();
            let mut st = SweepState {
                gram: &mut g,
                target: RotationTarget::gram_only(),
                guard: PairGuard::default(),
            };
            let (_, stats) = driver().run(
                &mut Blocked::for_dim_with_budget(&mut ws, 9, budget),
                &mut st,
                &order,
            );
            assert_eq!(stats.tile_refills, 0);
            assert_eq!(stats.tile_bytes, Blocked::DEFAULT_TILE_BYTES as u64);
            let d = g.packed().as_slice().to_vec();
            match &baseline {
                None => baseline = Some(d),
                Some(b) => assert_eq!(b, &d),
            }
        }
        // Above the fast-path range the tiled slice scales with the budget
        // (n = 1100: the packed triangle is ~4.6 MiB, over both budgets).
        let mut ws = SweepWorkspace::new();
        let big = Blocked::for_dim_with_budget(&mut ws, 1100, 4 * 1024 * 1024);
        assert_eq!(big.tile_bytes, 256 * 1024);
        let mut ws = SweepWorkspace::new();
        let small = Blocked::for_dim_with_budget(&mut ws, 1100, Blocked::MAX_TILE_BYTES);
        assert_eq!(small.tile_bytes, Blocked::DEFAULT_TILE_BYTES);
    }

    #[test]
    fn diagonal_scale_guard_skips_relative_to_largest_diagonal() {
        // D = diag(4, 1) with off-diagonal 1e-10: the diagonal-scaled guard
        // at 1e-9 skips it (1e-10 ≤ 1e-9·4); at 1e-12 it rotates.
        let mut p = hj_matrix::PackedSymmetric::zeros(2);
        p.set(0, 0, 4.0);
        p.set(1, 1, 1.0);
        p.set(0, 1, 1e-10);
        let order = round_robin(2);
        for (tol, expect_applied) in [(1e-9, 0usize), (1e-12, 1usize)] {
            let mut g = GramState::from_packed(p.clone());
            let mut st = SweepState {
                gram: &mut g,
                target: RotationTarget::gram_only(),
                guard: PairGuard::DiagonalScale { tol },
            };
            let rec = Sequential.sweep(&mut st, &order, 1);
            assert_eq!(rec.rotations_applied, expect_applied, "tol {tol}");
        }
    }
}
