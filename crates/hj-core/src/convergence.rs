//! Convergence criteria and per-sweep instrumentation.
//!
//! The paper runs a fixed 6 sweeps ("believed sufficient for achieving
//! convergence with certain thresholds", §VI-A) and separately *measures*
//! convergence as the mean absolute deviation of the covariances from zero
//! (Figs. 10–11). We expose both: fixed-sweep operation for
//! architecture-faithful timing, and threshold-based stopping for library
//! use, with the full per-sweep history available either way.

/// When to stop sweeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Convergence {
    /// Run exactly this many sweeps — the paper's mode (it uses 6).
    FixedSweeps(usize),
    /// Stop when the largest |covariance| drops below
    /// `tol · (trace(D)/n)`, i.e. relative to the average squared column
    /// norm. Scale-invariant: multiplying `A` by a constant does not change
    /// the sweep count.
    MaxCovariance {
        /// Relative tolerance (e.g. `1e-14` for near-machine precision).
        tol: f64,
    },
    /// Stop when a full sweep applied no rotations (every pair already
    /// satisfied the per-pair orthogonality guard). The classical Jacobi
    /// termination rule; strongest guarantee, potentially more sweeps.
    NoRotations,
    /// Stop when `off(D) ≤ tol · trace(D)` — the classical global
    /// off-diagonal Frobenius criterion (`off(D)² = 2·Σ_{i<j} D_ij²`).
    /// Trace-relative, hence scale-invariant like
    /// [`Convergence::MaxCovariance`], but integrates all covariances
    /// instead of tracking the worst one.
    OffFrobenius {
        /// Relative tolerance against `trace(D) = ‖A‖_F²`.
        tol: f64,
    },
}

impl Default for Convergence {
    /// Library default: scale-invariant threshold at near machine precision.
    fn default() -> Self {
        Convergence::MaxCovariance { tol: 1e-14 }
    }
}

/// Measurements recorded after each sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRecord {
    /// 1-based sweep number.
    pub sweep: usize,
    /// Mean absolute off-diagonal covariance (the paper's Fig. 10/11 metric).
    pub mean_abs_cov: f64,
    /// Frobenius norm of the off-diagonal part of `D`.
    pub off_frobenius: f64,
    /// Largest absolute off-diagonal covariance.
    pub max_abs_cov: f64,
    /// Rotations actually applied during the sweep.
    pub rotations_applied: usize,
    /// Pairs skipped by the per-pair orthogonality guard.
    pub rotations_skipped: usize,
}

/// Decide whether the iteration should stop after the given record.
///
/// `trace` and `n` supply the scale reference for [`Convergence::MaxCovariance`].
pub fn is_converged(criterion: &Convergence, record: &SweepRecord, trace: f64, n: usize) -> bool {
    match *criterion {
        Convergence::FixedSweeps(k) => record.sweep >= k,
        Convergence::MaxCovariance { tol } => {
            let scale = if n == 0 { 1.0 } else { trace / n as f64 };
            record.max_abs_cov <= tol * scale.max(f64::MIN_POSITIVE)
        }
        Convergence::NoRotations => record.rotations_applied == 0,
        Convergence::OffFrobenius { tol } => {
            record.off_frobenius <= tol * trace.max(f64::MIN_POSITIVE)
        }
    }
}

/// Hard cap applied on top of any criterion, preventing unbounded iteration
/// on pathological inputs. One-sided Jacobi on well-posed data converges in
/// `O(log n)` sweeps; 60 is far beyond anything a finite-precision run needs.
pub const MAX_SWEEP_CAP: usize = 60;

#[cfg(test)]
mod tests {
    use super::*;

    fn record(sweep: usize, max_abs: f64, applied: usize) -> SweepRecord {
        SweepRecord {
            sweep,
            mean_abs_cov: max_abs / 2.0,
            off_frobenius: max_abs * 2.0,
            max_abs_cov: max_abs,
            rotations_applied: applied,
            rotations_skipped: 0,
        }
    }

    #[test]
    fn fixed_sweeps_counts() {
        let c = Convergence::FixedSweeps(6);
        assert!(!is_converged(&c, &record(5, 1.0, 10), 100.0, 4));
        assert!(is_converged(&c, &record(6, 1.0, 10), 100.0, 4));
        assert!(is_converged(&c, &record(7, 1.0, 10), 100.0, 4));
    }

    #[test]
    fn max_covariance_is_scale_relative() {
        let c = Convergence::MaxCovariance { tol: 1e-10 };
        // trace/n = 25 → threshold 2.5e-9
        assert!(is_converged(&c, &record(1, 1e-9, 5), 100.0, 4));
        assert!(!is_converged(&c, &record(1, 1e-8, 5), 100.0, 4));
        // Same matrix scaled by 1e6 in norm → thresholds scale too.
        assert!(is_converged(&c, &record(1, 1e-9 * 1e6, 5), 100.0 * 1e6, 4));
    }

    #[test]
    fn no_rotations_rule() {
        let c = Convergence::NoRotations;
        assert!(!is_converged(&c, &record(1, 0.0, 1), 1.0, 2));
        assert!(is_converged(&c, &record(1, 5.0, 0), 1.0, 2));
    }

    #[test]
    fn off_frobenius_rule() {
        let c = Convergence::OffFrobenius { tol: 1e-6 };
        // off_frobenius = max_abs * 2 in the fixture.
        assert!(is_converged(&c, &record(1, 4e-7, 3), 1.0, 4));
        assert!(!is_converged(&c, &record(1, 1e-6, 3), 1.0, 4));
        // Scale invariance: both off and trace scale together.
        assert!(is_converged(&c, &record(1, 4e-7 * 1e9, 3), 1e9, 4));
    }

    #[test]
    fn zero_dim_does_not_divide_by_zero() {
        let c = Convergence::MaxCovariance { tol: 1e-10 };
        assert!(is_converged(&c, &record(1, 0.0, 0), 0.0, 0));
    }

    #[test]
    fn default_is_relative_threshold() {
        assert!(matches!(Convergence::default(), Convergence::MaxCovariance { .. }));
    }
}
