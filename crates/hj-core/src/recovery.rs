//! Fault taxonomy, health checking, recovery policy, and solve budgets.
//!
//! The paper's Algorithm 1 reads the matrix columns exactly once — every
//! sweep after the first trusts the in-place-updated covariance matrix
//! `D = AᵀA`. That single-pass discipline is the source of its efficiency
//! *and* its fragility: one overflowed squared norm, one NaN escaping an
//! ill-conditioned rotation, or one stalled off-diagonal silently corrupts
//! every remaining sweep, because nothing downstream ever looks at the
//! ground-truth columns again.
//!
//! This module is the detection/response half of the crate's fault-tolerance
//! layer (the prevention half — power-of-two pre-scaling — lives in
//! [`crate::svd`]):
//!
//! * [`Fault`] — the closed set of mid-solve failure classes.
//! * [`HealthCheck`] — a cheap `O(n)` per-sweep scan of `D` run by
//!   [`crate::SolveDriver::run_monitored`]: non-finite metrics, negative
//!   diagonals (impossible for a true Gram matrix), and convergence stalls.
//! * [`RecoveryPolicy`] — maps a detected fault to a [`RecoveryAction`]:
//!   rescale-and-restart, fall back to the [`crate::engine::Sequential`]
//!   engine, escalate the sweep budget, or abort with
//!   [`crate::SvdError::SolveFault`].
//! * [`SolveBudget`] — deadline/cancellation checked at sweep boundaries, so
//!   batch and CLI callers can bound worst-case latency.

use crate::convergence::SweepRecord;
use crate::engine::EngineKind;
use crate::gram::GramState;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A mid-solve failure detected by the [`HealthCheck`] or [`SolveBudget`].
///
/// Every variant carries the 1-based sweep index at which it was detected;
/// the health check runs after each sweep, so detection lags the underlying
/// corruption by at most one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A NaN or ±∞ reached the maintained covariance matrix — an overflowed
    /// squared norm, a poisoned rotation, or injected corruption.
    NonFiniteGram {
        /// Sweep at which the non-finite value was detected.
        sweep: usize,
    },
    /// A diagonal entry of `D` went materially negative. `D = AᵀA` is
    /// positive semidefinite, so beyond roundoff dust this is impossible for
    /// an uncorrupted solve (a non-orthonormal "rotation" is the classic
    /// cause).
    NegativeDiagonal {
        /// Sweep at which the negative diagonal was detected.
        sweep: usize,
        /// Column index of the offending diagonal entry.
        index: usize,
    },
    /// The off-diagonal norm stopped decreasing while still far from
    /// convergence — the iteration is wedged (cyclically re-corrupted state,
    /// or pathological input below the guard's resolution).
    ConvergenceStall {
        /// Sweep at which the stall was declared.
        sweep: usize,
        /// Consecutive sweeps without meaningful progress.
        stalled_sweeps: usize,
    },
    /// The [`SolveBudget`] deadline passed before the solve converged.
    DeadlineExceeded {
        /// Sweep boundary at which the deadline was observed.
        sweep: usize,
    },
    /// The [`SolveBudget`] cancellation flag was raised by the caller.
    Cancelled {
        /// Sweep boundary at which the cancellation was observed.
        sweep: usize,
    },
}

impl Fault {
    /// Short machine-readable class name (stable; used by the CLI's
    /// structured error lines).
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::NonFiniteGram { .. } => "non-finite-gram",
            Fault::NegativeDiagonal { .. } => "negative-diagonal",
            Fault::ConvergenceStall { .. } => "stall",
            Fault::DeadlineExceeded { .. } => "deadline",
            Fault::Cancelled { .. } => "cancelled",
        }
    }

    /// The 1-based sweep index at which the fault was detected.
    pub fn sweep(&self) -> usize {
        match *self {
            Fault::NonFiniteGram { sweep }
            | Fault::NegativeDiagonal { sweep, .. }
            | Fault::ConvergenceStall { sweep, .. }
            | Fault::DeadlineExceeded { sweep }
            | Fault::Cancelled { sweep } => sweep,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::NonFiniteGram { sweep } => {
                write!(f, "non-finite value in the covariance matrix at sweep {sweep}")
            }
            Fault::NegativeDiagonal { sweep, index } => {
                write!(f, "negative diagonal D[{index}][{index}] at sweep {sweep}")
            }
            Fault::ConvergenceStall { sweep, stalled_sweeps } => {
                write!(f, "convergence stalled for {stalled_sweeps} sweeps (at sweep {sweep})")
            }
            Fault::DeadlineExceeded { sweep } => {
                write!(f, "deadline exceeded at sweep boundary {sweep}")
            }
            Fault::Cancelled { sweep } => write!(f, "cancelled at sweep boundary {sweep}"),
        }
    }
}

/// Relative tolerance below which a negative diagonal entry counts as
/// roundoff dust, not a fault. Legitimate dust sits many orders below this
/// (|D_ii| ≲ n·ε·max|D_kk| ≈ 1e-14·max), while corruption-induced negatives
/// are O(max) — the gap is wide on both sides.
pub(crate) const NEGATIVE_DIAG_TOL: f64 = 1e-10;

/// Relative floor below which the off-diagonal norm counts as converged dust
/// for stall purposes: no stall is ever declared once
/// `off(D) ≤ floor ≈ 1e-13·n·max|D_kk|`.
pub(crate) const STALL_OFF_FLOOR: f64 = 1e-13;

/// Minimum relative improvement per sweep that counts as progress for the
/// stall detector. Healthy Jacobi sweeps reduce `off(D)` by large factors
/// (quadratically near convergence); anything under 0.1% for several
/// consecutive sweeps means the iteration is wedged.
pub(crate) const STALL_MIN_PROGRESS: f64 = 1e-3;

/// The per-sweep `O(n)` health scan run by
/// [`crate::SolveDriver::run_monitored`].
///
/// Checks, in order: non-finite sweep metrics (one NaN/∞ anywhere in `D`
/// poisons the off-diagonal sums), non-finite or materially negative
/// diagonal entries, and convergence stalls (`off(D)` not decreasing across
/// [`HealthCheck::stall_sweeps`] sweeps while still above the dust floor).
/// The scan iterates the diagonal in place and allocates nothing, preserving
/// the engines' steady-state zero-allocation invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthCheck {
    /// Master switch; `false` disables the per-sweep inspection entirely.
    pub enabled: bool,
    /// Flag materially negative diagonals. Valid for Gram matrices (PSD by
    /// construction); must be `false` for the indefinite eigensolver, where
    /// negative diagonals are legitimate.
    pub negative_diagonal: bool,
    /// Consecutive no-progress sweeps before a stall is declared; `0`
    /// disables stall detection.
    pub stall_sweeps: usize,
}

impl Default for HealthCheck {
    /// Enabled, with negative-diagonal checking and a 6-sweep stall window
    /// (Jacobi converges quadratically — six flat sweeps is decisively
    /// wedged, while legitimate solves never produce even two).
    fn default() -> Self {
        HealthCheck { enabled: true, negative_diagonal: true, stall_sweeps: 6 }
    }
}

impl HealthCheck {
    /// A disabled check (the per-sweep inspection always returns `None`) —
    /// what [`crate::SolveDriver::run`] uses to stay byte-for-byte faithful
    /// to the unmonitored pipeline.
    pub fn disabled() -> Self {
        HealthCheck { enabled: false, negative_diagonal: false, stall_sweeps: 0 }
    }

    /// The indefinite-safe variant used by [`crate::eigh`]: negative
    /// diagonals are expected there, everything else still applies.
    pub fn indefinite() -> Self {
        HealthCheck { negative_diagonal: false, ..HealthCheck::default() }
    }

    /// Inspect the post-sweep state; returns the first fault found.
    /// `state` carries the stall detector's memory across sweeps of one
    /// attempt (reset it between attempts).
    pub(crate) fn inspect(
        &self,
        gram: &GramState,
        rec: &SweepRecord,
        state: &mut HealthState,
    ) -> Option<Fault> {
        if !self.enabled {
            return None;
        }
        // The sweep metrics are sums over every off-diagonal entry: a single
        // NaN/∞ anywhere poisons them, making this a full-matrix finiteness
        // probe at zero extra cost.
        if !rec.off_frobenius.is_finite() || !rec.mean_abs_cov.is_finite() {
            return Some(Fault::NonFiniteGram { sweep: rec.sweep });
        }
        // O(n) diagonal scan, allocation-free.
        let n = gram.dim();
        let scan = gram.diagonal_scan();
        if !scan.finite {
            return Some(Fault::NonFiniteGram { sweep: rec.sweep });
        }
        if self.negative_diagonal && scan.min < -NEGATIVE_DIAG_TOL * scan.max_abs {
            return Some(Fault::NegativeDiagonal { sweep: rec.sweep, index: scan.argmin });
        }
        if self.stall_sweeps > 0 {
            let floor = STALL_OFF_FLOOR * scan.max_abs * n as f64;
            if rec.off_frobenius <= floor {
                // Converged dust region — by definition not a stall.
                state.stalled = 0;
            } else if rec.off_frobenius < state.best_off * (1.0 - STALL_MIN_PROGRESS) {
                state.stalled = 0;
            } else {
                state.stalled += 1;
                if state.stalled >= self.stall_sweeps {
                    return Some(Fault::ConvergenceStall {
                        sweep: rec.sweep,
                        stalled_sweeps: state.stalled,
                    });
                }
            }
            state.best_off = state.best_off.min(rec.off_frobenius);
        }
        None
    }
}

/// The stall detector's cross-sweep memory (one per solve attempt).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HealthState {
    best_off: f64,
    stalled: usize,
}

impl HealthState {
    pub(crate) fn new() -> Self {
        HealthState { best_off: f64::INFINITY, stalled: 0 }
    }
}

/// What the solver does about a detected [`Fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Rebuild the solve from the original input, normalized to a
    /// power-of-two scale with max-entry exponent 0 — clears any corrupted
    /// intermediate state and maximizes headroom against over/underflow.
    RescaleRestart,
    /// Restart on the [`crate::engine::Sequential`] engine — Algorithm 1's
    /// literal data flow, the simplest and most conservative execution path.
    FallBackToSequential,
    /// Restart with a doubled sweep budget (capped at
    /// [`crate::convergence::MAX_SWEEP_CAP`]) — for stalls caused by a
    /// too-tight budget rather than corruption.
    EscalateBudget,
    /// Restart with the default cyclic ordering — for stalls under an
    /// adaptive ordering ([`crate::ordering::Ordering::SortedGreedy`]),
    /// which lacks the cyclic family's classical convergence proof. Tried
    /// before budget escalation, since a wedged adaptive schedule rarely
    /// unwedges with more of the same sweeps.
    FallBackToCyclic,
    /// Give up: surface [`crate::SvdError::SolveFault`] to the caller.
    Abort,
}

impl RecoveryAction {
    /// Stable machine-readable name (used by the trace stream's
    /// `recovery_triggered` events).
    pub fn name(self) -> &'static str {
        match self {
            RecoveryAction::RescaleRestart => "rescale-restart",
            RecoveryAction::FallBackToSequential => "fallback-sequential",
            RecoveryAction::EscalateBudget => "escalate-budget",
            RecoveryAction::FallBackToCyclic => "fallback-cyclic",
            RecoveryAction::Abort => "abort",
        }
    }
}

/// Everything [`RecoveryPolicy::action_for`] needs to know about the solve's
/// current attempt when choosing a response.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryContext {
    /// Engine the faulting attempt ran on.
    pub engine: EngineKind,
    /// A rescale-restart has already been tried.
    pub rescaled: bool,
    /// A budget escalation has already been tried.
    pub escalated: bool,
    /// The sweep budget still has room below the hard cap.
    pub can_escalate: bool,
    /// The faulting attempt ran an adaptive ordering (no classical
    /// convergence proof).
    pub adaptive_ordering: bool,
    /// A fallback to the cyclic ordering has already been tried.
    pub ordering_fell_back: bool,
    /// Recovery actions taken so far in this solve.
    pub recoveries: usize,
}

/// Maps each detected [`Fault`] to a [`RecoveryAction`] — the recovery
/// lattice (numeric faults → rescale → sequential fallback → abort; stalls →
/// cyclic-ordering fallback → budget escalation → sequential fallback →
/// abort; deadline/cancellation → always abort).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Allow one rescale-and-restart for numeric faults.
    pub rescale_restart: bool,
    /// Allow falling back from the parallel/blocked engines to sequential.
    pub engine_fallback: bool,
    /// Allow doubling the sweep budget (once) for stalls.
    pub escalate_budget: bool,
    /// Allow falling back from an adaptive ordering to cyclic on a stall.
    pub ordering_fallback: bool,
    /// Hard cap on total recovery actions per solve; once reached, every
    /// further fault aborts.
    pub max_recoveries: usize,
}

impl Default for RecoveryPolicy {
    /// Everything enabled, at most 3 recoveries per solve.
    fn default() -> Self {
        RecoveryPolicy {
            rescale_restart: true,
            engine_fallback: true,
            escalate_budget: true,
            ordering_fallback: true,
            max_recoveries: 3,
        }
    }
}

impl RecoveryPolicy {
    /// Fail-fast policy: every fault aborts immediately.
    pub fn abort_only() -> Self {
        RecoveryPolicy {
            rescale_restart: false,
            engine_fallback: false,
            escalate_budget: false,
            ordering_fallback: false,
            max_recoveries: 0,
        }
    }

    /// Choose the response to `fault` given the attempt context.
    pub fn action_for(&self, fault: &Fault, ctx: &RecoveryContext) -> RecoveryAction {
        if ctx.recoveries >= self.max_recoveries {
            return RecoveryAction::Abort;
        }
        let can_fall_back = self.engine_fallback && ctx.engine != EngineKind::Sequential;
        match fault {
            Fault::NonFiniteGram { .. } | Fault::NegativeDiagonal { .. } => {
                if self.rescale_restart && !ctx.rescaled {
                    RecoveryAction::RescaleRestart
                } else if can_fall_back {
                    RecoveryAction::FallBackToSequential
                } else {
                    RecoveryAction::Abort
                }
            }
            Fault::ConvergenceStall { .. } => {
                if self.ordering_fallback && ctx.adaptive_ordering && !ctx.ordering_fell_back {
                    RecoveryAction::FallBackToCyclic
                } else if self.escalate_budget && ctx.can_escalate && !ctx.escalated {
                    RecoveryAction::EscalateBudget
                } else if can_fall_back {
                    RecoveryAction::FallBackToSequential
                } else {
                    RecoveryAction::Abort
                }
            }
            // Latency faults are contractual: retrying would only blow the
            // budget further.
            Fault::DeadlineExceeded { .. } | Fault::Cancelled { .. } => RecoveryAction::Abort,
        }
    }
}

/// Latency bounds for one solve, checked at every sweep boundary by
/// [`crate::SolveDriver::run_monitored`].
///
/// Both limits are optional; the default has neither and never fires. The
/// cancellation flag is shared (`Arc`), so a batch caller can cancel many
/// in-flight solves with one store.
///
/// # Granularity
///
/// The budget is observed **only at sweep boundaries**: the check runs
/// immediately before each sweep starts, and a sweep in flight is never
/// interrupted. A solve can therefore overrun its deadline by up to one full
/// sweep (`O(n²)` rotations) before the fault surfaces — callers that need a
/// hard wall-clock bound should budget one sweep of slack. The flip side is
/// that an *already-expired* deadline is caught before any work happens: the
/// boundary check for sweep 1 fires first, so zero sweeps run and the solve
/// returns [`Fault::DeadlineExceeded`] without touching the input. All
/// deadline arithmetic saturates ([`SolveBudget::remaining`] reports
/// `Duration::ZERO` for a passed deadline; it never panics on underflow).
///
/// ```
/// use hj_core::SolveBudget;
/// use std::time::{Duration, Instant};
///
/// // Construct a budget from a wall-clock deadline (e.g. an RPC's
/// // "respond by" timestamp translated into the solver's terms).
/// let respond_by = Instant::now() + Duration::from_millis(250);
/// let budget = SolveBudget::with_deadline(respond_by);
/// assert!(budget.remaining().unwrap() <= Duration::from_millis(250));
/// assert_eq!(budget.check(1), None, "deadline still ahead");
///
/// // A deadline already in the past saturates instead of underflowing:
/// // remaining() is exactly zero and the very first boundary check —
/// // before sweep 1 runs — reports the fault, so no sweep executes.
/// let expired = SolveBudget::with_deadline(Instant::now() - Duration::from_millis(5));
/// assert_eq!(expired.remaining(), Some(Duration::ZERO));
/// assert!(expired.check(1).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SolveBudget {
    /// Absolute wall-clock deadline; sweeps do not start past it.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag; raised by the caller, observed at
    /// sweep boundaries.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl SolveBudget {
    /// No deadline, no cancellation — never fires.
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// Budget that expires `timeout` from now. Saturating: a `timeout` too
    /// large for the platform's `Instant` range clamps to the farthest
    /// representable deadline instead of panicking on overflow.
    pub fn with_timeout(timeout: Duration) -> Self {
        let now = Instant::now();
        let deadline = now
            .checked_add(timeout)
            // ~30 years: beyond any real solve, within Instant's range.
            .or_else(|| now.checked_add(Duration::from_secs(30 * 365 * 24 * 3600)))
            .unwrap_or(now);
        SolveBudget { deadline: Some(deadline), cancel: None }
    }

    /// Budget with an absolute deadline.
    pub fn with_deadline(deadline: Instant) -> Self {
        SolveBudget { deadline: Some(deadline), cancel: None }
    }

    /// Attach a shared cancellation flag (builder-style).
    pub fn cancelled_by(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// True when neither limit is set (the check can be skipped wholesale).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// Wall-clock time left before the deadline (`None` when no deadline is
    /// set). Saturates at [`Duration::ZERO`] once the deadline has passed —
    /// never an underflow panic — which is what guarantees an expired budget
    /// yields a clean [`Fault::DeadlineExceeded`] at the first sweep
    /// boundary rather than poisoning the solve.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Check both limits at the boundary before sweep `sweep` (1-based).
    /// Cancellation is reported ahead of the deadline when both hold.
    pub fn check(&self, sweep: usize) -> Option<Fault> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Some(Fault::Cancelled { sweep });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(Fault::DeadlineExceeded { sweep });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::MAX_SWEEP_CAP;
    use crate::ordering::round_robin;
    use crate::sweep::sweep_gram_only;
    use hj_matrix::{gen, PackedSymmetric};

    fn rec(sweep: usize, off: f64) -> SweepRecord {
        SweepRecord {
            sweep,
            mean_abs_cov: off,
            off_frobenius: off,
            max_abs_cov: off,
            rotations_applied: 1,
            rotations_skipped: 0,
        }
    }

    #[test]
    fn fault_kind_and_display_are_stable() {
        let faults = [
            Fault::NonFiniteGram { sweep: 2 },
            Fault::NegativeDiagonal { sweep: 3, index: 1 },
            Fault::ConvergenceStall { sweep: 9, stalled_sweeps: 6 },
            Fault::DeadlineExceeded { sweep: 4 },
            Fault::Cancelled { sweep: 5 },
        ];
        let kinds = ["non-finite-gram", "negative-diagonal", "stall", "deadline", "cancelled"];
        for (f, k) in faults.iter().zip(kinds) {
            assert_eq!(f.kind(), k);
            assert!(!f.to_string().is_empty());
        }
        assert_eq!(faults[0].sweep(), 2);
        assert_eq!(faults[2].sweep(), 9);
    }

    #[test]
    fn healthy_solve_raises_no_fault() {
        let a = gen::uniform(30, 8, 11);
        let mut g = GramState::from_matrix(&a);
        let order = round_robin(8);
        let hc = HealthCheck::default();
        let mut st = HealthState::new();
        for s in 1..=10 {
            let r = sweep_gram_only(&mut g, &order, s);
            assert_eq!(hc.inspect(&g, &r, &mut st), None, "false positive at sweep {s}");
        }
    }

    #[test]
    fn nan_in_gram_is_detected_via_sweep_metrics() {
        let a = gen::uniform(10, 4, 3);
        let g = GramState::from_matrix(&a);
        let hc = HealthCheck::default();
        let mut st = HealthState::new();
        let bad = rec(1, f64::NAN);
        assert_eq!(hc.inspect(&g, &bad, &mut st), Some(Fault::NonFiniteGram { sweep: 1 }));
    }

    #[test]
    fn nan_diagonal_is_detected_even_with_finite_metrics() {
        let mut p = PackedSymmetric::zeros(3);
        p.set(0, 0, 1.0);
        p.set(1, 1, f64::INFINITY);
        p.set(2, 2, 1.0);
        let g = GramState::from_packed(p);
        let hc = HealthCheck::default();
        let mut st = HealthState::new();
        assert_eq!(hc.inspect(&g, &rec(2, 0.5), &mut st), Some(Fault::NonFiniteGram { sweep: 2 }));
    }

    #[test]
    fn negative_diagonal_detected_and_dust_tolerated() {
        let mut p = PackedSymmetric::zeros(3);
        p.set(0, 0, 4.0);
        p.set(1, 1, -1e-14); // roundoff dust: fine
        p.set(2, 2, 1.0);
        let g = GramState::from_packed(p.clone());
        let hc = HealthCheck::default();
        let mut st = HealthState::new();
        assert_eq!(hc.inspect(&g, &rec(1, 0.1), &mut st), None);

        p.set(1, 1, -1.0); // material negative: fault, with the right index
        let g = GramState::from_packed(p.clone());
        assert_eq!(
            hc.inspect(&g, &rec(1, 0.1), &mut st),
            Some(Fault::NegativeDiagonal { sweep: 1, index: 1 })
        );

        // ... but the indefinite profile (eigh) accepts it.
        let mut st2 = HealthState::new();
        assert_eq!(HealthCheck::indefinite().inspect(&g, &rec(1, 0.1), &mut st2), None);
    }

    #[test]
    fn stall_fires_after_window_and_resets_on_progress() {
        let a = gen::uniform(10, 4, 5);
        let g = GramState::from_matrix(&a);
        let hc = HealthCheck { stall_sweeps: 3, ..HealthCheck::default() };
        let mut st = HealthState::new();
        let off = g.trace(); // far above the dust floor
        assert_eq!(hc.inspect(&g, &rec(1, off), &mut st), None);
        assert_eq!(hc.inspect(&g, &rec(2, off), &mut st), None); // stalled=1
        assert_eq!(hc.inspect(&g, &rec(3, off * 0.5), &mut st), None); // progress resets
        assert_eq!(hc.inspect(&g, &rec(4, off * 0.5), &mut st), None); // stalled=1
        assert_eq!(hc.inspect(&g, &rec(5, off * 0.5), &mut st), None); // stalled=2
        assert_eq!(
            hc.inspect(&g, &rec(6, off * 0.5), &mut st),
            Some(Fault::ConvergenceStall { sweep: 6, stalled_sweeps: 3 })
        );
    }

    #[test]
    fn stall_never_fires_in_the_dust_region() {
        let a = gen::uniform(10, 4, 5);
        let g = GramState::from_matrix(&a);
        let hc = HealthCheck { stall_sweeps: 2, ..HealthCheck::default() };
        let mut st = HealthState::new();
        let dust = 1e-16 * g.trace();
        for s in 1..=10 {
            assert_eq!(hc.inspect(&g, &rec(s, dust), &mut st), None);
        }
    }

    #[test]
    fn disabled_check_sees_nothing() {
        let mut p = PackedSymmetric::zeros(2);
        p.set(0, 0, f64::NAN);
        let g = GramState::from_packed(p);
        let mut st = HealthState::new();
        assert_eq!(HealthCheck::disabled().inspect(&g, &rec(1, f64::NAN), &mut st), None);
    }

    #[test]
    fn policy_lattice_numeric_faults() {
        let policy = RecoveryPolicy::default();
        let fault = Fault::NonFiniteGram { sweep: 1 };
        let mut ctx = RecoveryContext {
            engine: EngineKind::Parallel,
            rescaled: false,
            escalated: false,
            can_escalate: true,
            adaptive_ordering: false,
            ordering_fell_back: false,
            recoveries: 0,
        };
        assert_eq!(policy.action_for(&fault, &ctx), RecoveryAction::RescaleRestart);
        ctx.rescaled = true;
        ctx.recoveries = 1;
        assert_eq!(policy.action_for(&fault, &ctx), RecoveryAction::FallBackToSequential);
        ctx.engine = EngineKind::Sequential;
        assert_eq!(policy.action_for(&fault, &ctx), RecoveryAction::Abort);
    }

    #[test]
    fn policy_lattice_stall() {
        let policy = RecoveryPolicy::default();
        let fault = Fault::ConvergenceStall { sweep: 9, stalled_sweeps: 6 };
        let mut ctx = RecoveryContext {
            engine: EngineKind::Blocked,
            rescaled: false,
            escalated: false,
            can_escalate: true,
            adaptive_ordering: false,
            ordering_fell_back: false,
            recoveries: 0,
        };
        assert_eq!(policy.action_for(&fault, &ctx), RecoveryAction::EscalateBudget);
        ctx.escalated = true;
        assert_eq!(policy.action_for(&fault, &ctx), RecoveryAction::FallBackToSequential);
        ctx.engine = EngineKind::Sequential;
        assert_eq!(policy.action_for(&fault, &ctx), RecoveryAction::Abort);
        // A budget already at the cap cannot escalate.
        ctx.engine = EngineKind::Blocked;
        ctx.escalated = false;
        ctx.can_escalate = false;
        assert_eq!(policy.action_for(&fault, &ctx), RecoveryAction::FallBackToSequential);
    }

    #[test]
    fn policy_lattice_adaptive_ordering_falls_back_first() {
        let policy = RecoveryPolicy::default();
        let fault = Fault::ConvergenceStall { sweep: 9, stalled_sweeps: 6 };
        let mut ctx = RecoveryContext {
            engine: EngineKind::Parallel,
            rescaled: false,
            escalated: false,
            can_escalate: true,
            adaptive_ordering: true,
            ordering_fell_back: false,
            recoveries: 0,
        };
        // The adaptive-ordering rung precedes budget escalation.
        assert_eq!(policy.action_for(&fault, &ctx), RecoveryAction::FallBackToCyclic);
        ctx.ordering_fell_back = true;
        ctx.recoveries = 1;
        assert_eq!(policy.action_for(&fault, &ctx), RecoveryAction::EscalateBudget);
        // Disabled by policy → skips straight to the budget rung.
        let no_fallback = RecoveryPolicy { ordering_fallback: false, ..policy };
        ctx.ordering_fell_back = false;
        assert_eq!(no_fallback.action_for(&fault, &ctx), RecoveryAction::EscalateBudget);
        // Numeric faults never consult the ordering rung.
        assert_eq!(
            policy.action_for(&Fault::NonFiniteGram { sweep: 1 }, &ctx),
            RecoveryAction::RescaleRestart
        );
        assert_eq!(RecoveryAction::FallBackToCyclic.name(), "fallback-cyclic");
    }

    #[test]
    fn policy_latency_faults_always_abort_and_cap_binds() {
        let policy = RecoveryPolicy::default();
        let ctx = RecoveryContext {
            engine: EngineKind::Parallel,
            rescaled: false,
            escalated: false,
            can_escalate: true,
            adaptive_ordering: false,
            ordering_fell_back: false,
            recoveries: 0,
        };
        assert_eq!(
            policy.action_for(&Fault::DeadlineExceeded { sweep: 1 }, &ctx),
            RecoveryAction::Abort
        );
        assert_eq!(policy.action_for(&Fault::Cancelled { sweep: 1 }, &ctx), RecoveryAction::Abort);
        // max_recoveries exhausted → abort even for recoverable faults.
        let spent = RecoveryContext { recoveries: policy.max_recoveries, ..ctx };
        assert_eq!(
            policy.action_for(&Fault::NonFiniteGram { sweep: 1 }, &spent),
            RecoveryAction::Abort
        );
        assert_eq!(
            RecoveryPolicy::abort_only().action_for(&Fault::NonFiniteGram { sweep: 1 }, &ctx),
            RecoveryAction::Abort
        );
    }

    #[test]
    fn budget_unlimited_never_fires() {
        let b = SolveBudget::unlimited();
        assert!(b.is_unlimited());
        for s in 1..=MAX_SWEEP_CAP {
            assert_eq!(b.check(s), None);
        }
    }

    #[test]
    fn budget_remaining_saturates_and_huge_timeouts_clamp() {
        assert_eq!(SolveBudget::unlimited().remaining(), None);
        let expired = SolveBudget::with_deadline(Instant::now() - Duration::from_millis(10));
        assert_eq!(expired.remaining(), Some(Duration::ZERO));
        let ahead = SolveBudget::with_timeout(Duration::from_secs(60));
        let left = ahead.remaining().unwrap();
        assert!(left > Duration::from_secs(59) && left <= Duration::from_secs(60));
        // Duration::MAX overflows Instant arithmetic on every platform;
        // the saturating constructor must neither panic nor fire early.
        let huge = SolveBudget::with_timeout(Duration::MAX);
        assert_eq!(huge.check(1), None);
        assert!(huge.remaining().unwrap() > Duration::from_secs(3600));
    }

    #[test]
    fn budget_deadline_and_cancel_fire() {
        let expired = SolveBudget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(expired.check(3), Some(Fault::DeadlineExceeded { sweep: 3 }));
        let future = SolveBudget::with_timeout(Duration::from_secs(3600));
        assert!(!future.is_unlimited());
        assert_eq!(future.check(1), None);

        let flag = Arc::new(AtomicBool::new(false));
        let b = SolveBudget::unlimited().cancelled_by(Arc::clone(&flag));
        assert_eq!(b.check(1), None);
        flag.store(true, Ordering::Relaxed);
        assert_eq!(b.check(2), Some(Fault::Cancelled { sweep: 2 }));
        // Cancellation wins over an expired deadline.
        let both = SolveBudget::with_deadline(Instant::now() - Duration::from_millis(1))
            .cancelled_by(flag);
        assert_eq!(both.check(1), Some(Fault::Cancelled { sweep: 1 }));
    }
}
