//! Structured solve tracing — typed events, pluggable sinks, zero cost off.
//!
//! [`crate::SolveStats`] answers *how much* a solve did (rotations, seconds,
//! Gram traffic); this module answers *what happened, in order*: every sweep
//! boundary, pair-group dispatch, individual rotation decision, convergence
//! check, and recovery action is a typed [`TraceEvent`] that the solver
//! pushes into a caller-supplied [`TraceSink`]. The event vocabulary mirrors
//! the stages of the paper's pipeline (Figs. 2, 4, 5): a `SweepStart` is the
//! preprocessor handing control to the rotation/update loop, a
//! `PairGroupDispatched` is one Fig. 6 group issued to the rotation unit,
//! and `RotationApplied`/`RotationSkipped` are the per-pair decisions the
//! hardware's orthogonality guard makes. The cycle-accurate simulator emits
//! the same stream shape through [`TraceEvent::PipelineStage`], so software
//! and hardware traces can be lined up event for event.
//!
//! # Cost model
//!
//! Tracing is opt-in per call ([`crate::HestenesSvd::decompose_traced`]) and
//! per level ([`TraceLevel`] in [`crate::SvdOptions`]). With no sink
//! attached — or with [`NoopSink`] / [`TraceLevel::Off`] — the emission
//! sites reduce to one branch on a cached level; no event is constructed,
//! nothing allocates, and the solve is bit-identical to an untraced run
//! (pinned by `tests/trace.rs` in the workspace root).
//!
//! # Sinks
//!
//! | sink | destination | use |
//! |---|---|---|
//! | [`NoopSink`] | nowhere | overhead baseline, tests |
//! | [`RingBufferSink`] | bounded in-memory ring | programmatic inspection |
//! | [`JsonlSink`] | any [`std::io::Write`], one JSON object per line | `hjsvd svd --trace`, offline analysis |

use std::fmt::Write as _;
use std::io::Write;

/// Event granularity of a traced solve, ordered from silent to per-pair.
///
/// Each [`TraceEvent`] carries a minimum level ([`TraceEvent::level`]); an
/// event is emitted only when the solve's configured level is at least that
/// minimum. The CLI spellings accepted by [`TraceLevel::parse`]
/// (`off`/`sweep`/`group`/`rotation`) are what `hjsvd svd --trace-level`
/// takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// No events (the default — tracing fully disabled).
    #[default]
    Off,
    /// Sweep boundaries, convergence checks, and recovery actions.
    Sweep,
    /// Additionally one event per dispatched pair group (round or tile
    /// group).
    Group,
    /// Additionally one event per visited pair — every applied and skipped
    /// rotation.
    Rotation,
}

impl TraceLevel {
    /// Parse a CLI spelling: `off`, `sweep`, `group`, `rotation`.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "sweep" => Some(TraceLevel::Sweep),
            "group" => Some(TraceLevel::Group),
            "rotation" => Some(TraceLevel::Rotation),
            _ => None,
        }
    }

    /// Canonical lowercase name (round-trips through [`TraceLevel::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Sweep => "sweep",
            TraceLevel::Group => "group",
            TraceLevel::Rotation => "rotation",
        }
    }
}

/// Why a visited pair was skipped instead of rotated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The SVD drivers' Drmač guard held: `|D_ij| ≤ tol·√(D_ii·D_jj)`.
    RelativeGuard,
    /// The eigensolver's diagonal-scaled guard held:
    /// `|D_ij| ≤ tol·max_k|D_kk|`.
    DiagonalScaleGuard,
    /// An active [`crate::ordering::ThresholdSchedule`] ramp deferred the
    /// pair: `|D_ij| ≤ tol_sweep·√(D_ii·D_jj)` with `tol_sweep` still above
    /// the [`crate::sweep::PAIR_TOL`] floor.
    ThresholdGuard,
}

impl SkipReason {
    /// Stable machine-readable name used in the JSONL stream.
    pub fn name(self) -> &'static str {
        match self {
            SkipReason::RelativeGuard => "relative-guard",
            SkipReason::DiagonalScaleGuard => "diagonal-scale-guard",
            SkipReason::ThresholdGuard => "threshold-guard",
        }
    }
}

/// One typed observation from a solve (or from the hardware simulator).
///
/// Numeric payloads only (plus `&'static str` labels) for the software
/// events, so constructing one never allocates; the simulator's
/// [`TraceEvent::PipelineStage`] carries an owned description and is only
/// built when a trace is explicitly requested.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A sweep is about to run (emitted by the [`crate::SolveDriver`] loop).
    SweepStart {
        /// 1-based sweep index.
        sweep: usize,
        /// Canonical engine name (`"sequential"`, `"parallel"`, `"blocked"`).
        engine: &'static str,
    },
    /// The ordering strategy produced (or reused) this sweep's plan of
    /// disjoint rounds (emitted by the [`crate::SolveDriver`] loop when a
    /// [`crate::ordering::SweepSchedule`] drives the solve).
    SweepPlanned {
        /// 1-based sweep index.
        sweep: usize,
        /// Canonical ordering name (`"cyclic"`, `"row-cyclic"`, `"greedy"`,
        /// `"presort"`).
        ordering: &'static str,
        /// Rounds in the plan.
        rounds: usize,
        /// Total pairs across all rounds.
        pairs: usize,
        /// Whether the strategy rebuilt the plan for this sweep (false when
        /// a static ordering reused the cached plan).
        replanned: bool,
    },
    /// A sweep finished; carries its rotation counts and timing.
    SweepEnd {
        /// 1-based sweep index.
        sweep: usize,
        /// Rotations applied in this sweep.
        rotations_applied: usize,
        /// Pairs skipped by the orthogonality guard in this sweep.
        rotations_skipped: usize,
        /// Off-diagonal Frobenius mass of `D` after the sweep.
        off_frobenius: f64,
        /// Wall-clock seconds of the sweep.
        seconds: f64,
    },
    /// One group of pairwise-disjoint pairs was issued to an engine — a
    /// round (parallel engine) or a tile group (blocked engine). The
    /// sequential engine visits pairs singly and emits no group events.
    PairGroupDispatched {
        /// 1-based sweep index.
        sweep: usize,
        /// 0-based round index within the sweep.
        round: usize,
        /// Pairs in the group.
        pairs: usize,
        /// Pairs that produced a rotation.
        applied: usize,
        /// Pairs skipped by the guard.
        skipped: usize,
    },
    /// A plane rotation was applied to columns `(i, j)`.
    RotationApplied {
        /// 1-based sweep index.
        sweep: usize,
        /// Lower column index of the pair.
        i: usize,
        /// Upper column index of the pair.
        j: usize,
    },
    /// A visited pair was already orthogonal enough and was skipped.
    RotationSkipped {
        /// 1-based sweep index.
        sweep: usize,
        /// Lower column index of the pair.
        i: usize,
        /// Upper column index of the pair.
        j: usize,
        /// Which guard rule skipped it.
        reason: SkipReason,
    },
    /// The stopping rule was evaluated at the end of a sweep.
    ConvergenceCheck {
        /// 1-based sweep index.
        sweep: usize,
        /// Largest `|D_ij|` after the sweep.
        max_abs_cov: f64,
        /// Off-diagonal Frobenius mass after the sweep.
        off_frobenius: f64,
        /// Whether the rule declared convergence (ends the solve).
        converged: bool,
    },
    /// The recovery policy responded to a detected fault (emitted by the
    /// guarded solve loop; `action` may be `"abort"`).
    RecoveryTriggered {
        /// Sweep at which the fault was detected.
        sweep: usize,
        /// Stable fault class name ([`crate::recovery::Fault::kind`]).
        fault: &'static str,
        /// Stable action name ([`crate::recovery::RecoveryAction::name`]).
        action: &'static str,
        /// Recovery actions taken before this one in the same solve.
        recoveries: usize,
    },
    /// A job passed admission control and was enqueued (emitted by the
    /// `hj-serve` service layer).
    JobAdmitted {
        /// Service-assigned job id (monotone per service instance).
        job: u64,
        /// Stable priority-class name (`"interactive"`, `"batch"`, …).
        class: &'static str,
        /// Queue depth immediately after the enqueue.
        queue_depth: usize,
    },
    /// A submission was rejected by admission control.
    JobRejected {
        /// Stable rejection reason (`"queue-full"`, `"tenant-cap"`,
        /// `"draining"`, …).
        reason: &'static str,
        /// Queue depth at the time of the rejection.
        queue_depth: usize,
    },
    /// A queued job was handed to a worker.
    JobDispatched {
        /// Service-assigned job id.
        job: u64,
        /// 0-based worker index.
        worker: usize,
        /// 1-based attempt number (> 1 after a retry).
        attempt: usize,
    },
    /// A job finished successfully on a worker.
    JobCompleted {
        /// Service-assigned job id.
        job: u64,
        /// 0-based worker index.
        worker: usize,
        /// Wall-clock seconds from dispatch to completion.
        seconds: f64,
        /// Sweeps the solve ran.
        sweeps: usize,
    },
    /// A job exhausted its attempts and failed with a solve fault.
    JobFaulted {
        /// Service-assigned job id.
        job: u64,
        /// 0-based worker index.
        worker: usize,
        /// Stable fault class name ([`crate::recovery::Fault::kind`]).
        fault: &'static str,
        /// Attempts consumed, including the failing one.
        attempts: usize,
    },
    /// A cycle-stamped hardware-pipeline event from the `hj-arch`
    /// simulator's component timeline, mapped into the same stream shape as
    /// the software events.
    PipelineStage {
        /// Simulated cycle at which the event occurs.
        cycle: u64,
        /// Stable component name (`"gram-store"`, `"rotation"`, …).
        component: &'static str,
        /// Human-readable description of the stage.
        what: String,
    },
}

impl TraceEvent {
    /// Stable machine-readable event name (the `"event"` key in the JSONL
    /// form).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::SweepStart { .. } => "sweep_start",
            TraceEvent::SweepPlanned { .. } => "sweep_planned",
            TraceEvent::SweepEnd { .. } => "sweep_end",
            TraceEvent::PairGroupDispatched { .. } => "pair_group_dispatched",
            TraceEvent::RotationApplied { .. } => "rotation_applied",
            TraceEvent::RotationSkipped { .. } => "rotation_skipped",
            TraceEvent::ConvergenceCheck { .. } => "convergence_check",
            TraceEvent::RecoveryTriggered { .. } => "recovery_triggered",
            TraceEvent::JobAdmitted { .. } => "job_admitted",
            TraceEvent::JobRejected { .. } => "job_rejected",
            TraceEvent::JobDispatched { .. } => "job_dispatched",
            TraceEvent::JobCompleted { .. } => "job_completed",
            TraceEvent::JobFaulted { .. } => "job_faulted",
            TraceEvent::PipelineStage { .. } => "pipeline_stage",
        }
    }

    /// Minimum [`TraceLevel`] at which this event is emitted.
    pub fn level(&self) -> TraceLevel {
        match self {
            TraceEvent::SweepStart { .. }
            | TraceEvent::SweepEnd { .. }
            | TraceEvent::ConvergenceCheck { .. }
            | TraceEvent::RecoveryTriggered { .. }
            | TraceEvent::JobAdmitted { .. }
            | TraceEvent::JobRejected { .. }
            | TraceEvent::JobDispatched { .. }
            | TraceEvent::JobCompleted { .. }
            | TraceEvent::JobFaulted { .. }
            | TraceEvent::PipelineStage { .. } => TraceLevel::Sweep,
            TraceEvent::SweepPlanned { .. } | TraceEvent::PairGroupDispatched { .. } => {
                TraceLevel::Group
            }
            TraceEvent::RotationApplied { .. } | TraceEvent::RotationSkipped { .. } => {
                TraceLevel::Rotation
            }
        }
    }

    /// The 1-based sweep index the event belongs to, if it has one. The
    /// service-lifecycle (`Job*`) events and [`TraceEvent::PipelineStage`]
    /// are not tied to a sweep and return `None`.
    pub fn sweep(&self) -> Option<usize> {
        match *self {
            TraceEvent::SweepStart { sweep, .. }
            | TraceEvent::SweepPlanned { sweep, .. }
            | TraceEvent::SweepEnd { sweep, .. }
            | TraceEvent::PairGroupDispatched { sweep, .. }
            | TraceEvent::RotationApplied { sweep, .. }
            | TraceEvent::RotationSkipped { sweep, .. }
            | TraceEvent::ConvergenceCheck { sweep, .. }
            | TraceEvent::RecoveryTriggered { sweep, .. } => Some(sweep),
            TraceEvent::JobAdmitted { .. }
            | TraceEvent::JobRejected { .. }
            | TraceEvent::JobDispatched { .. }
            | TraceEvent::JobCompleted { .. }
            | TraceEvent::JobFaulted { .. }
            | TraceEvent::PipelineStage { .. } => None,
        }
    }

    /// Serialize as one flat JSON object (the JSONL line format).
    ///
    /// Hand-rolled like [`crate::SolveStats::to_json`] — the workspace takes
    /// no serde dependency. Non-finite floats (possible mid-fault) serialize
    /// as `null` so every emitted line stays valid JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"event\":\"");
        s.push_str(self.name());
        s.push('"');
        match self {
            TraceEvent::SweepStart { sweep, engine } => {
                write_num(&mut s, "sweep", *sweep as f64);
                write_str(&mut s, "engine", engine);
            }
            TraceEvent::SweepPlanned { sweep, ordering, rounds, pairs, replanned } => {
                write_num(&mut s, "sweep", *sweep as f64);
                write_str(&mut s, "ordering", ordering);
                write_num(&mut s, "rounds", *rounds as f64);
                write_num(&mut s, "pairs", *pairs as f64);
                s.push_str(",\"replanned\":");
                s.push_str(if *replanned { "true" } else { "false" });
            }
            TraceEvent::SweepEnd {
                sweep,
                rotations_applied,
                rotations_skipped,
                off_frobenius,
                seconds,
            } => {
                write_num(&mut s, "sweep", *sweep as f64);
                write_num(&mut s, "rotations_applied", *rotations_applied as f64);
                write_num(&mut s, "rotations_skipped", *rotations_skipped as f64);
                write_f64(&mut s, "off_frobenius", *off_frobenius);
                write_f64(&mut s, "seconds", *seconds);
            }
            TraceEvent::PairGroupDispatched { sweep, round, pairs, applied, skipped } => {
                write_num(&mut s, "sweep", *sweep as f64);
                write_num(&mut s, "round", *round as f64);
                write_num(&mut s, "pairs", *pairs as f64);
                write_num(&mut s, "applied", *applied as f64);
                write_num(&mut s, "skipped", *skipped as f64);
            }
            TraceEvent::RotationApplied { sweep, i, j } => {
                write_num(&mut s, "sweep", *sweep as f64);
                write_num(&mut s, "i", *i as f64);
                write_num(&mut s, "j", *j as f64);
            }
            TraceEvent::RotationSkipped { sweep, i, j, reason } => {
                write_num(&mut s, "sweep", *sweep as f64);
                write_num(&mut s, "i", *i as f64);
                write_num(&mut s, "j", *j as f64);
                write_str(&mut s, "reason", reason.name());
            }
            TraceEvent::ConvergenceCheck { sweep, max_abs_cov, off_frobenius, converged } => {
                write_num(&mut s, "sweep", *sweep as f64);
                write_f64(&mut s, "max_abs_cov", *max_abs_cov);
                write_f64(&mut s, "off_frobenius", *off_frobenius);
                s.push_str(",\"converged\":");
                s.push_str(if *converged { "true" } else { "false" });
            }
            TraceEvent::RecoveryTriggered { sweep, fault, action, recoveries } => {
                write_num(&mut s, "sweep", *sweep as f64);
                write_str(&mut s, "fault", fault);
                write_str(&mut s, "action", action);
                write_num(&mut s, "recoveries", *recoveries as f64);
            }
            TraceEvent::JobAdmitted { job, class, queue_depth } => {
                write_num(&mut s, "job", *job as f64);
                write_str(&mut s, "class", class);
                write_num(&mut s, "queue_depth", *queue_depth as f64);
            }
            TraceEvent::JobRejected { reason, queue_depth } => {
                write_str(&mut s, "reason", reason);
                write_num(&mut s, "queue_depth", *queue_depth as f64);
            }
            TraceEvent::JobDispatched { job, worker, attempt } => {
                write_num(&mut s, "job", *job as f64);
                write_num(&mut s, "worker", *worker as f64);
                write_num(&mut s, "attempt", *attempt as f64);
            }
            TraceEvent::JobCompleted { job, worker, seconds, sweeps } => {
                write_num(&mut s, "job", *job as f64);
                write_num(&mut s, "worker", *worker as f64);
                write_f64(&mut s, "seconds", *seconds);
                write_num(&mut s, "sweeps", *sweeps as f64);
            }
            TraceEvent::JobFaulted { job, worker, fault, attempts } => {
                write_num(&mut s, "job", *job as f64);
                write_num(&mut s, "worker", *worker as f64);
                write_str(&mut s, "fault", fault);
                write_num(&mut s, "attempts", *attempts as f64);
            }
            TraceEvent::PipelineStage { cycle, component, what } => {
                write_num(&mut s, "cycle", *cycle as f64);
                write_str(&mut s, "component", component);
                write_str(&mut s, "what", what);
            }
        }
        s.push('}');
        s
    }
}

/// Append `,"key":<integer>` (the value is a non-negative integer stored as
/// f64 — exact for every count this crate produces).
fn write_num(s: &mut String, key: &str, v: f64) {
    write!(s, ",\"{key}\":{}", v as u64).expect("write to String");
}

/// Append `,"key":<float>`, with non-finite values as `null`.
fn write_f64(s: &mut String, key: &str, v: f64) {
    if v.is_finite() {
        write!(s, ",\"{key}\":{v:?}").expect("write to String");
    } else {
        write!(s, ",\"{key}\":null").expect("write to String");
    }
}

/// Append `,"key":"escaped value"`.
fn write_str(s: &mut String, key: &str, v: &str) {
    write!(s, ",\"{key}\":\"").expect("write to String");
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(s, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Destination for trace events.
///
/// A sink only receives events the solve's [`TraceLevel`] admits; it never
/// filters, blocks, or influences the computation. Implementations must not
/// panic on any event — a trace must never take down the solve it observes.
///
/// ```
/// use hj_core::trace::{RingBufferSink, TraceLevel};
/// use hj_core::{HestenesSvd, SvdOptions};
/// use hj_matrix::gen;
///
/// let a = gen::uniform(30, 8, 7);
/// let options = SvdOptions { trace: TraceLevel::Sweep, ..Default::default() };
/// let mut sink = RingBufferSink::new(256);
/// let svd = HestenesSvd::new(options).decompose_traced(&a, &mut sink).unwrap();
/// // One sweep_start + sweep_end + convergence_check triple per sweep.
/// assert_eq!(sink.events().len(), 3 * svd.sweeps);
/// ```
pub trait TraceSink {
    /// Record one event. Called serially, in execution order.
    fn record(&mut self, event: &TraceEvent);
}

/// A sink that discards everything — the overhead baseline.
///
/// A solve traced into a `NoopSink` is bit-identical to an untraced solve
/// and performs zero extra heap allocations (both pinned by tests); use it
/// to keep a single traced code path whose cost can be turned off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _event: &TraceEvent) {}
}

/// A bounded in-memory sink: keeps the most recent `capacity` events,
/// overwriting the oldest once full (flight-recorder style).
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next write position once the ring has wrapped.
    head: usize,
    /// Total events ever recorded (≥ `buf.len()`).
    recorded: usize,
}

impl RingBufferSink {
    /// Ring over the most recent `capacity` events (at least 1).
    pub fn new(capacity: usize) -> RingBufferSink {
        let capacity = capacity.max(1);
        RingBufferSink { buf: Vec::with_capacity(capacity), capacity, head: 0, recorded: 0 }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() == self.capacity {
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        out
    }

    /// Total events recorded over the sink's lifetime, including any that
    /// have been overwritten.
    pub fn recorded(&self) -> usize {
        self.recorded
    }

    /// Drop all retained events (the lifetime count is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event.clone());
        } else {
            self.buf[self.head] = event.clone();
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
    }
}

/// A sink that writes one JSON object per line to any [`std::io::Write`].
///
/// I/O errors cannot surface through [`TraceSink::record`] (a trace must
/// never interrupt the solve), so the first error is stored and all further
/// writes are skipped; [`JsonlSink::finish`] flushes and surfaces it.
pub struct JsonlSink<W: Write> {
    writer: W,
    lines: usize,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Sink over `writer` (wrap files in a [`std::io::BufWriter`]).
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink { writer, lines: 0, error: None }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Flush and return the writer, surfacing the first deferred I/O error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        match writeln!(self.writer, "{}", event.to_json()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// The emission handle threaded through the sweep pipeline: an optional sink
/// plus the solve's configured level, with inline early-return checks so a
/// disabled tracer costs one branch per site.
///
/// Hot paths guard event *construction* on [`Tracer::enabled`] (or the
/// [`Tracer::rotation_enabled`] / [`Tracer::group_enabled`] shorthands), so
/// with tracing off no event is ever built.
pub struct Tracer<'a, 'k> {
    sink: Option<&'a mut (dyn TraceSink + 'k)>,
    level: TraceLevel,
}

impl<'a, 'k> Tracer<'a, 'k> {
    /// A tracer that emits nothing (the untraced pipeline).
    pub fn disabled() -> Tracer<'static, 'static> {
        Tracer { sink: None, level: TraceLevel::Off }
    }

    /// Tracer over `sink`, emitting events up to `level`.
    pub fn new(sink: &'a mut (dyn TraceSink + 'k), level: TraceLevel) -> Tracer<'a, 'k> {
        Tracer { sink: Some(sink), level }
    }

    /// Tracer over an optional sink — disabled when `sink` is `None`.
    pub fn attach(sink: Option<&'a mut (dyn TraceSink + 'k)>, level: TraceLevel) -> Tracer<'a, 'k> {
        Tracer { sink, level }
    }

    /// The active level ([`TraceLevel::Off`] when no sink is attached).
    pub fn level(&self) -> TraceLevel {
        if self.sink.is_some() {
            self.level
        } else {
            TraceLevel::Off
        }
    }

    /// True when events of `level` would be emitted.
    #[inline]
    pub fn enabled(&self, level: TraceLevel) -> bool {
        self.sink.is_some() && self.level >= level
    }

    /// Shorthand for `enabled(TraceLevel::Sweep)`.
    #[inline]
    pub fn sweep_enabled(&self) -> bool {
        self.enabled(TraceLevel::Sweep)
    }

    /// Shorthand for `enabled(TraceLevel::Group)`.
    #[inline]
    pub fn group_enabled(&self) -> bool {
        self.enabled(TraceLevel::Group)
    }

    /// Shorthand for `enabled(TraceLevel::Rotation)`.
    #[inline]
    pub fn rotation_enabled(&self) -> bool {
        self.enabled(TraceLevel::Rotation)
    }

    /// Emit `event` if the level admits it.
    #[inline]
    pub fn emit(&mut self, event: TraceEvent) {
        if let Some(sink) = self.sink.as_deref_mut() {
            if self.level >= event.level() {
                sink.record(&event);
            }
        }
    }
}

impl std::fmt::Debug for Tracer<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("attached", &self.sink.is_some())
            .field("level", &self.level)
            .finish()
    }
}

/// Emit `event` into an optional sink when `level` admits it — the helper
/// for sites that hold an `Option<&mut dyn TraceSink>` rather than a
/// [`Tracer`] (the guarded recovery loop).
pub(crate) fn emit_to(sink: &mut Option<&mut dyn TraceSink>, level: TraceLevel, event: TraceEvent) {
    if let Some(sink) = sink.as_deref_mut() {
        if level >= event.level() {
            sink.record(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(TraceLevel::Off < TraceLevel::Sweep);
        assert!(TraceLevel::Sweep < TraceLevel::Group);
        assert!(TraceLevel::Group < TraceLevel::Rotation);
        for l in [TraceLevel::Off, TraceLevel::Sweep, TraceLevel::Group, TraceLevel::Rotation] {
            assert_eq!(TraceLevel::parse(l.name()), Some(l));
        }
        assert_eq!(TraceLevel::parse("verbose"), None);
    }

    #[test]
    fn tracer_filters_by_level() {
        let mut sink = RingBufferSink::new(16);
        let mut t = Tracer::new(&mut sink, TraceLevel::Sweep);
        t.emit(TraceEvent::SweepStart { sweep: 1, engine: "sequential" });
        t.emit(TraceEvent::RotationApplied { sweep: 1, i: 0, j: 1 });
        t.emit(TraceEvent::PairGroupDispatched {
            sweep: 1,
            round: 0,
            pairs: 4,
            applied: 4,
            skipped: 0,
        });
        assert_eq!(sink.events().len(), 1, "only the sweep-level event passes");
        assert!(!Tracer::disabled().rotation_enabled());
        assert_eq!(Tracer::disabled().level(), TraceLevel::Off);
    }

    #[test]
    fn ring_buffer_keeps_most_recent_events() {
        let mut sink = RingBufferSink::new(3);
        for s in 1..=5 {
            sink.record(&TraceEvent::SweepStart { sweep: s, engine: "sequential" });
        }
        assert_eq!(sink.recorded(), 5);
        let sweeps: Vec<usize> = sink.events().iter().filter_map(|e| e.sweep()).collect();
        assert_eq!(sweeps, vec![3, 4, 5], "oldest events are overwritten in order");
        assert_eq!(
            TraceEvent::JobAdmitted { job: 1, class: "batch", queue_depth: 0 }.sweep(),
            None,
            "service events carry no sweep index"
        );
        sink.clear();
        assert!(sink.events().is_empty());
        assert_eq!(sink.recorded(), 5, "lifetime count survives clear");
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&TraceEvent::SweepStart { sweep: 1, engine: "blocked" });
        sink.record(&TraceEvent::ConvergenceCheck {
            sweep: 1,
            max_abs_cov: 0.25,
            off_frobenius: 1.5,
            converged: false,
        });
        assert_eq!(sink.lines(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"event\":\"sweep_start\",\"sweep\":1,\"engine\":\"blocked\"}");
        assert!(lines[1].contains("\"converged\":false"));
    }

    #[test]
    fn json_escapes_strings_and_nulls_non_finite() {
        let e = TraceEvent::PipelineStage {
            cycle: 7,
            component: "rotation",
            what: "say \"hi\"\n\tpath\\x".to_string(),
        };
        let j = e.to_json();
        assert!(j.contains("\\\"hi\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\\t"));
        assert!(j.contains("\\\\x"));
        let e = TraceEvent::SweepEnd {
            sweep: 2,
            rotations_applied: 3,
            rotations_skipped: 0,
            off_frobenius: f64::NAN,
            seconds: 0.5,
        };
        assert!(e.to_json().contains("\"off_frobenius\":null"));
    }

    #[test]
    fn every_event_names_its_level() {
        let events = [
            TraceEvent::SweepStart { sweep: 1, engine: "sequential" },
            TraceEvent::SweepPlanned {
                sweep: 1,
                ordering: "greedy",
                rounds: 7,
                pairs: 28,
                replanned: true,
            },
            TraceEvent::SweepEnd {
                sweep: 1,
                rotations_applied: 1,
                rotations_skipped: 0,
                off_frobenius: 0.0,
                seconds: 0.0,
            },
            TraceEvent::PairGroupDispatched {
                sweep: 1,
                round: 0,
                pairs: 1,
                applied: 1,
                skipped: 0,
            },
            TraceEvent::RotationApplied { sweep: 1, i: 0, j: 1 },
            TraceEvent::RotationSkipped { sweep: 1, i: 0, j: 1, reason: SkipReason::RelativeGuard },
            TraceEvent::ConvergenceCheck {
                sweep: 1,
                max_abs_cov: 0.0,
                off_frobenius: 0.0,
                converged: true,
            },
            TraceEvent::RecoveryTriggered {
                sweep: 1,
                fault: "stall",
                action: "escalate-budget",
                recoveries: 0,
            },
            TraceEvent::JobAdmitted { job: 1, class: "interactive", queue_depth: 1 },
            TraceEvent::JobRejected { reason: "queue-full", queue_depth: 8 },
            TraceEvent::JobDispatched { job: 1, worker: 0, attempt: 1 },
            TraceEvent::JobCompleted { job: 1, worker: 0, seconds: 0.01, sweeps: 6 },
            TraceEvent::JobFaulted { job: 2, worker: 1, fault: "deadline", attempts: 3 },
            TraceEvent::PipelineStage { cycle: 0, component: "fifo", what: "drain".into() },
        ];
        for e in &events {
            let j = e.to_json();
            assert!(j.starts_with("{\"event\":\"") && j.ends_with('}'), "{j}");
            assert!(j.contains(e.name()), "{j}");
            assert!(e.level() >= TraceLevel::Sweep);
            assert!(!j.contains(",}") && !j.contains(",]"), "{j}");
        }
    }
}
