//! Sequential single-sweep entry points.
//!
//! A *sweep* visits every column pair once in the chosen ordering. Two modes
//! mirror the two phases of the paper's architecture:
//!
//! * [`sweep_gram_only`] — rotates only the maintained covariance matrix `D`
//!   (`O(n)` per pair). This is what the hardware does from the second sweep
//!   onward, and all that is needed to obtain singular *values*.
//! * [`sweep_full`] — additionally rotates the actual matrix columns
//!   (`O(m)` per pair) and, optionally, accumulates the right singular
//!   vectors `V`. Required for a full `A = UΣVᵀ` factorization.
//!
//! Both are thin wrappers over the [`crate::engine::Sequential`] engine —
//! the actual pair loop lives there, shared with every other solver.

use crate::convergence::SweepRecord;
use crate::engine::{PairGuard, RotationTarget, Sequential, SweepEngine, SweepState};
use crate::gram::GramState;
use crate::ordering::Sweep;
use hj_matrix::Matrix;

/// Per-pair orthogonality guard used by the sweep drivers; pairs with
/// `|cov| ≤ PAIR_TOL·√(D_ii·D_jj)` are skipped. A few ulps above machine
/// epsilon: tight enough for 1e-14-level final accuracy, loose enough not to
/// churn on roundoff noise.
pub const PAIR_TOL: f64 = 1e-15;

/// Run one sweep over `D` only (no column data touched).
///
/// Returns the sweep's instrumentation record; `sweep_index` is 1-based and
/// only used to label the record.
pub fn sweep_gram_only(gram: &mut GramState, order: &Sweep, sweep_index: usize) -> SweepRecord {
    let mut state =
        SweepState { gram, target: RotationTarget::gram_only(), guard: PairGuard::default() };
    Sequential.sweep(&mut state, order, sweep_index)
}

/// Run one full sweep: rotate `D`, the matrix columns, and (if provided) the
/// accumulated right-singular-vector matrix `V`.
///
/// `v`, when present, must be `n × n` and is post-multiplied by the same
/// plane rotations, so that after convergence `A·V = B` with orthogonal
/// columns (paper's eq. (6)).
pub fn sweep_full(
    a: &mut Matrix,
    gram: &mut GramState,
    v: Option<&mut Matrix>,
    order: &Sweep,
    sweep_index: usize,
) -> SweepRecord {
    debug_assert_eq!(a.cols(), gram.dim());
    if let Some(vm) = v.as_deref() {
        debug_assert_eq!(vm.shape(), (a.cols(), a.cols()));
    }
    let target = match v {
        Some(vm) => RotationTarget::full(a, vm),
        None => RotationTarget::with_columns(a),
    };
    let mut state = SweepState { gram, target, guard: PairGuard::default() };
    Sequential.sweep(&mut state, order, sweep_index)
}

pub(crate) fn finish_record(
    gram: &GramState,
    sweep_index: usize,
    applied: usize,
    skipped: usize,
) -> SweepRecord {
    // One fused triangle pass for all three metrics (bit-identical to the
    // three standalone passes this used to make).
    let sum = gram.off_summary();
    let n = gram.dim();
    let mean_abs_cov = if n < 2 { 0.0 } else { sum.abs_sum / ((n * (n - 1) / 2) as f64) };
    SweepRecord {
        sweep: sweep_index,
        mean_abs_cov,
        off_frobenius: (2.0 * sum.sum_sq).sqrt(),
        max_abs_cov: sum.max_abs,
        rotations_applied: applied,
        rotations_skipped: skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::{build_sweep, Ordering};
    use hj_matrix::{gen, norms};

    #[test]
    fn gram_only_sweep_reduces_off_mass() {
        let a = gen::uniform(30, 8, 11);
        let mut g = GramState::from_matrix(&a);
        let order = build_sweep(Ordering::RoundRobin, 8);
        let before = g.off_frobenius();
        let rec = sweep_gram_only(&mut g, &order, 1);
        assert!(rec.off_frobenius < before);
        assert_eq!(rec.rotations_applied + rec.rotations_skipped, 8 * 7 / 2);
        assert_eq!(rec.sweep, 1);
    }

    #[test]
    fn repeated_sweeps_converge_to_diagonal() {
        let a = gen::uniform(20, 6, 3);
        let mut g = GramState::from_matrix(&a);
        let order = build_sweep(Ordering::RoundRobin, 6);
        (1..=10).for_each(|s| {
            sweep_gram_only(&mut g, &order, s);
        });
        let scale = g.trace() / 6.0;
        assert!(
            g.max_abs_covariance() <= 1e-13 * scale,
            "off-diagonal mass {} did not converge (scale {scale})",
            g.max_abs_covariance()
        );
    }

    #[test]
    fn row_cyclic_also_converges() {
        let a = gen::uniform(15, 5, 9);
        let mut g = GramState::from_matrix(&a);
        let order = build_sweep(Ordering::RowCyclic, 5);
        (1..=10).for_each(|s| {
            sweep_gram_only(&mut g, &order, s);
        });
        assert!(g.max_abs_covariance() <= 1e-13 * g.trace() / 5.0);
    }

    #[test]
    fn full_sweep_keeps_gram_consistent_with_columns() {
        let mut a = gen::uniform(25, 7, 4);
        let mut g = GramState::from_matrix(&a);
        let order = build_sweep(Ordering::RoundRobin, 7);
        sweep_full(&mut a, &mut g, None, &order, 1);
        let fresh = GramState::from_matrix(&a);
        for p in 0..7 {
            for q in p..7 {
                assert!(
                    (g.covariance(p, q) - fresh.covariance(p, q)).abs() < 1e-10,
                    "D[{p}][{q}] inconsistent with rotated columns"
                );
            }
        }
    }

    #[test]
    fn full_sweep_accumulates_v_such_that_av_equals_b() {
        let a0 = gen::uniform(12, 5, 21);
        let mut b = a0.clone();
        let mut g = GramState::from_matrix(&b);
        let mut v = Matrix::identity(5);
        let order = build_sweep(Ordering::RoundRobin, 5);
        (1..=8).for_each(|s| {
            sweep_full(&mut b, &mut g, Some(&mut v), &order, s);
        });
        // V must stay orthogonal and satisfy A·V = B.
        assert!(norms::orthonormality_error(&v) < 1e-12);
        let av = a0.matmul(&v).unwrap();
        let diff = av.sub(&b).unwrap();
        assert!(norms::frobenius(&diff) < 1e-10 * norms::frobenius(&a0).max(1.0));
        // And B's columns are mutually orthogonal after convergence.
        let bg = GramState::from_matrix(&b);
        assert!(bg.max_abs_covariance() < 1e-12 * bg.trace() / 5.0);
    }

    #[test]
    fn sweep_on_orthogonal_input_applies_nothing() {
        let q = gen::random_orthonormal(16, 6, 2);
        let mut g = GramState::from_matrix(&q);
        let order = build_sweep(Ordering::RoundRobin, 6);
        let rec = sweep_gram_only(&mut g, &order, 1);
        assert_eq!(rec.rotations_applied, 0);
        assert_eq!(rec.rotations_skipped, 15);
    }
}
