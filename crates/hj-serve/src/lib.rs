//! # hj-serve — the multi-tenant solve service
//!
//! The paper's architecture is a *throughput machine*: 8 independent
//! rotations issue every 64 cycles, and the covariance memory system is
//! sized so many problems stream through one datapath. This crate is the
//! software analogue of that layer — the subsystem that admits,
//! prioritizes, executes, and drains many independent SVD solves over the
//! `hj-core` kernel, instead of exposing one library call at a time.
//!
//! Components (std-only, no external dependencies):
//!
//! * **Jobs** ([`JobSpec`], [`Priority`], [`JobTicket`]) — a solve request
//!   with an engine, a priority class, an optional wall-clock deadline, and
//!   a tenant identity. A job's [`JobPayload`] is either one matrix or a
//!   **bulk** batch of many ([`JobSpec::bulk`]): one queue entry, one
//!   ticket, per-problem results ([`JobResult`]). Uniform small-`n` bulk
//!   jobs ride `hj-core`'s SoA batch engine on the worker.
//! * **Queue + scheduler** (internal) — a bounded queue with
//!   reject-with-reason admission control ([`RejectReason`]) and per-tenant
//!   in-flight caps; dispatch is strict priority between classes and
//!   earliest-deadline-first within one.
//! * **Worker pool** ([`SolveService`]) — fixed worker threads, each owning
//!   a warm [`hj_core::SweepWorkspace`] from a shared
//!   [`hj_core::WorkspacePool`], so steady-state serving performs no
//!   workspace allocations. Deadlines and ticket cancellation become the
//!   solve's [`hj_core::SolveBudget`]; jobs that abort through the recovery
//!   chain retry with bounded exponential backoff ([`backoff_delay`],
//!   [`should_retry`]).
//! * **Lifecycle** — [`SolveService::shutdown`] stops admission, drains
//!   in-flight work within a bounded deadline, cancels stragglers, and
//!   joins the pool; [`ServiceStats`] snapshots counters and per-class
//!   latency histograms; admissions/dispatches/completions stream as
//!   `job_*` [`hj_core::TraceEvent`]s into any [`hj_core::TraceSink`].
//! * **Wire front-end** ([`Server`], [`Client`], [`protocol`]) — a
//!   framework-free length-prefixed TCP protocol whose matrix and spectrum
//!   payloads are raw `f64::to_bits`, so results over the wire are
//!   **bit-identical** to direct [`hj_core::HestenesSvd`] calls. Protocol
//!   v3 adds the bulk frames: one `SubmitBatch` carries many matrices, one
//!   `BatchResult` brings back every slot's spectrum or structured error
//!   ([`Client::submit_batch`], [`RemoteBatchOutcome`]).
//!
//! ## Quickstart
//!
//! ```
//! use hj_serve::{JobSpec, ServiceConfig, SolveService};
//! use hj_matrix::gen;
//! use std::time::Duration;
//!
//! let service = SolveService::start(ServiceConfig::default());
//! let outcome = service.solve(JobSpec::new(gen::uniform(32, 8, 9))).unwrap();
//! assert_eq!(outcome.result.into_single().unwrap().values.len(), 8);
//! assert!(service.shutdown(Duration::from_secs(5)).drained_cleanly);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod client;
mod job;
pub mod protocol;
mod queue;
mod server;
mod service;
mod stats;

pub use client::{
    Client, ClientError, RemoteBatchOutcome, RemoteFailure, RemoteOutcome, RemoteSpectrum,
    SubmitOptions,
};
pub use job::{
    JobOutcome, JobPayload, JobResult, JobSpec, JobTicket, Priority, RejectReason, PRIORITY_CLASSES,
};
pub use server::{
    error_code, error_kind, Server, CODE_BAD_REQUEST, CODE_CANCELLED, CODE_DEADLINE, CODE_REJECTED,
    CODE_SOLVE_FAULT,
};
pub use service::{backoff_delay, should_retry, DrainReport, ServiceConfig, SolveService};
pub use stats::{LatencyHistogram, ServiceStats, HISTOGRAM_BUCKETS};
