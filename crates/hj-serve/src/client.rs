//! A blocking client for the serve protocol — what `hjsvd submit` and the
//! saturation benchmark are built on.

use crate::job::Priority;
use crate::protocol::{BatchItem, Frame, ProtoError, NO_DEADLINE};
use hj_core::{EngineKind, OrderingKind};
use hj_matrix::Matrix;
use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Per-submission options (engine, class, deadline, tenant).
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// Sweep engine to run the solve on.
    pub engine: EngineKind,
    /// Pair-ordering strategy for the sweeps.
    pub ordering: OrderingKind,
    /// Priority class.
    pub priority: Priority,
    /// Relative deadline in milliseconds (None = no deadline).
    pub deadline_ms: Option<u64>,
    /// Tenant identity.
    pub tenant: String,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            engine: EngineKind::Sequential,
            ordering: OrderingKind::default(),
            priority: Priority::Interactive,
            deadline_ms: None,
            tenant: String::new(),
        }
    }
}

/// A successful remote solve.
#[derive(Debug, Clone)]
pub struct RemoteOutcome {
    /// Service-assigned job id.
    pub job: u64,
    /// Sweeps the solve ran.
    pub sweeps: usize,
    /// Singular values, descending — bit-identical to a direct local solve.
    pub values: Vec<f64>,
}

/// One solved slot of a remote batch.
#[derive(Debug, Clone)]
pub struct RemoteSpectrum {
    /// Sweeps the slot's solve ran.
    pub sweeps: usize,
    /// Singular values, descending — bit-identical to a local batch solve.
    pub values: Vec<f64>,
}

/// One failed slot of a remote batch (same code/kind vocabulary as
/// [`ClientError::Remote`]).
#[derive(Debug, Clone)]
pub struct RemoteFailure {
    /// Wire error code.
    pub code: u8,
    /// Stable error kind (`"non-finite-input"`, `"deadline"`, …).
    pub kind: String,
    /// Human-readable message.
    pub message: String,
}

/// A completed remote batch: one slot per submitted matrix, in submission
/// order, each independently solved or failed.
#[derive(Debug, Clone)]
pub struct RemoteBatchOutcome {
    /// Service-assigned job id (the whole batch is one job).
    pub job: u64,
    /// Per-problem outcomes, aligned with the submitted matrices.
    pub items: Vec<Result<RemoteSpectrum, RemoteFailure>>,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// A transport-level failure.
    Io(std::io::Error),
    /// The server's reply violated the protocol.
    Protocol(ProtoError),
    /// The server answered with a structured error frame.
    Remote {
        /// Wire error code (doubles as the CLI exit code).
        code: u8,
        /// Stable error kind (`"queue-full"`, `"deadline"`, …).
        kind: String,
        /// Human-readable message.
        message: String,
    },
    /// The server sent a well-formed frame of the wrong type.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Remote { code, kind, message } => {
                write!(f, "server error [{kind}] (code {code}): {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected reply frame: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        match e {
            ProtoError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other),
        }
    }
}

/// One connection to a serve front-end. Requests are strictly sequential
/// per connection (submit = one request frame, one reply frame); open more
/// connections for client-side concurrency.
#[derive(Debug)]
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        Ok(Client { reader, writer: BufWriter::new(stream) })
    }

    fn request(&mut self, frame: &Frame) -> Result<Frame, ClientError> {
        frame.write_to(&mut self.writer)?;
        Ok(Frame::read_from(&mut self.reader)?)
    }

    /// Submit `matrix` and block until the spectrum (or a structured
    /// error) comes back.
    pub fn submit(
        &mut self,
        matrix: &Matrix,
        options: SubmitOptions,
    ) -> Result<RemoteOutcome, ClientError> {
        let engine_byte = match options.engine {
            EngineKind::Sequential => 0u8,
            EngineKind::Parallel => 1,
            EngineKind::Blocked => 2,
        };
        let frame = Frame::Submit {
            priority: options.priority.index() as u8,
            engine: engine_byte,
            ordering: options.ordering.index() as u8,
            deadline_ms: options.deadline_ms.unwrap_or(NO_DEADLINE),
            tenant: options.tenant,
            matrix: matrix.clone(),
        };
        match self.request(&frame)? {
            Frame::Result { job, sweeps, values } => {
                Ok(RemoteOutcome { job, sweeps: sweeps as usize, values })
            }
            Frame::Error { code, kind, message } => {
                Err(ClientError::Remote { code, kind, message })
            }
            _ => Err(ClientError::Unexpected("submit wants result or error")),
        }
    }

    /// Submit `matrices` as one bulk job and block until every slot's
    /// spectrum (or per-slot error) comes back in a single reply frame.
    /// Whole-batch failures (queue rejection, bad options) surface as
    /// [`ClientError::Remote`].
    pub fn submit_batch(
        &mut self,
        matrices: &[Matrix],
        options: SubmitOptions,
    ) -> Result<RemoteBatchOutcome, ClientError> {
        let engine_byte = match options.engine {
            EngineKind::Sequential => 0u8,
            EngineKind::Parallel => 1,
            EngineKind::Blocked => 2,
        };
        let frame = Frame::SubmitBatch {
            priority: options.priority.index() as u8,
            engine: engine_byte,
            ordering: options.ordering.index() as u8,
            deadline_ms: options.deadline_ms.unwrap_or(NO_DEADLINE),
            tenant: options.tenant,
            matrices: matrices.to_vec(),
        };
        match self.request(&frame)? {
            Frame::BatchResult { job, items } => {
                let items = items
                    .into_iter()
                    .map(|item| match item {
                        BatchItem::Ok { sweeps, values } => {
                            Ok(RemoteSpectrum { sweeps: sweeps as usize, values })
                        }
                        BatchItem::Err { code, kind, message } => {
                            Err(RemoteFailure { code, kind, message })
                        }
                    })
                    .collect();
                Ok(RemoteBatchOutcome { job, items })
            }
            Frame::Error { code, kind, message } => {
                Err(ClientError::Remote { code, kind, message })
            }
            _ => Err(ClientError::Unexpected("submit-batch wants a batch result or error")),
        }
    }

    /// Fetch a [`crate::ServiceStats`] snapshot as JSON.
    pub fn stats_json(&mut self) -> Result<String, ClientError> {
        match self.request(&Frame::StatsRequest)? {
            Frame::Stats { json } => Ok(json),
            Frame::Error { code, kind, message } => {
                Err(ClientError::Remote { code, kind, message })
            }
            _ => Err(ClientError::Unexpected("stats wants a stats frame")),
        }
    }

    /// Ask the server to drain (up to `drain`) and stop; returns the final
    /// stats JSON.
    pub fn shutdown(&mut self, drain: Duration) -> Result<String, ClientError> {
        let drain_ms = u64::try_from(drain.as_millis()).unwrap_or(u64::MAX);
        match self.request(&Frame::Shutdown { drain_ms })? {
            Frame::Stats { json } => Ok(json),
            Frame::Error { code, kind, message } => {
                Err(ClientError::Remote { code, kind, message })
            }
            _ => Err(ClientError::Unexpected("shutdown wants a stats frame")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_shape() {
        let e = ClientError::Remote { code: 10, kind: "queue-full".into(), message: "full".into() };
        let msg = e.to_string();
        assert!(msg.contains("[queue-full]") && msg.contains("code 10"), "{msg}");
        assert!(ClientError::Unexpected("x").to_string().contains("unexpected"));
    }
}
