//! Service-level observability: allocation-free latency histograms and the
//! [`ServiceStats`] snapshot in the workspace's hand-rolled JSON
//! conventions (schema `hjsvd-serve-stats/v1`).

use crate::job::{Priority, PRIORITY_CLASSES};
use std::fmt::Write as _;

/// Number of power-of-two microsecond buckets in a [`LatencyHistogram`].
/// Bucket `k` covers latencies up to `2^k` µs; the last bucket
/// (`2^39` µs ≈ 6.4 days) is a catch-all, so recording can never index out
/// of range.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Fixed-size log₂-bucketed latency histogram.
///
/// Recording touches one array slot and three scalars — no allocation — so
/// the serving loop's steady state stays allocation-free while still
/// answering percentile queries. Buckets are powers of two microseconds;
/// percentiles are therefore upper bounds with ≤ 2× resolution, which is
/// plenty for saturation curves.
#[derive(Debug, Clone, Copy)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum_seconds: f64,
    max_seconds: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_seconds: 0.0,
            max_seconds: 0.0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one latency observation.
    pub fn record(&mut self, seconds: f64) {
        let seconds = if seconds.is_finite() && seconds > 0.0 { seconds } else { 0.0 };
        let micros = seconds * 1e6;
        let bucket = if micros <= 1.0 {
            0
        } else {
            (micros.log2().ceil() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_seconds += seconds;
        if seconds > self.max_seconds {
            self.max_seconds = seconds;
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in seconds (0 when empty).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_seconds / self.count as f64
        }
    }

    /// Largest latency recorded, in seconds.
    pub fn max_seconds(&self) -> f64 {
        self.max_seconds
    }

    /// Upper-bound latency (seconds) of the `q`-quantile (`0.0 ≤ q ≤ 1.0`),
    /// with ≤ 2× bucket resolution. Returns 0 when empty.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper edge of bucket k is 2^k µs.
                return (1u64 << k.min(62)) as f64 * 1e-6;
            }
        }
        self.max_seconds
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_seconds += other.sum_seconds;
        if other.max_seconds > self.max_seconds {
            self.max_seconds = other.max_seconds;
        }
    }

    fn write_json(&self, out: &mut String) {
        write!(
            out,
            concat!(
                "{{\"count\":{},\"mean_s\":{:?},\"p50_s\":{:?},",
                "\"p90_s\":{:?},\"p99_s\":{:?},\"max_s\":{:?}}}"
            ),
            self.count,
            finite(self.mean_seconds()),
            finite(self.quantile_seconds(0.50)),
            finite(self.quantile_seconds(0.90)),
            finite(self.quantile_seconds(0.99)),
            finite(self.max_seconds),
        )
        .expect("write to String");
    }
}

/// Clamp non-finite values to 0 so every emitted number is valid JSON.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Point-in-time snapshot of a running service, in the same hand-rolled
/// JSON conventions as [`hj_core::SolveStats`].
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Configured queue capacity.
    pub queue_capacity: usize,
    /// Jobs queued (admitted, not yet dispatched) at snapshot time.
    pub queue_depth: usize,
    /// Jobs currently executing on workers at snapshot time.
    pub running: usize,
    /// Jobs that passed admission control.
    pub admitted: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Submissions rejected by a per-tenant in-flight cap.
    pub rejected_tenant_cap: u64,
    /// Submissions rejected because the service was draining.
    pub rejected_draining: u64,
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Jobs that ended with a solve fault or input error.
    pub faulted: u64,
    /// Retry re-enqueues performed (a job retried twice counts twice).
    pub retries: u64,
    /// Jobs terminated by drain-time cancellation without ever running.
    pub cancelled_at_drain: u64,
    /// Admission-to-completion latency per priority class, indexed by
    /// [`Priority::index`].
    pub latency: [LatencyHistogram; PRIORITY_CLASSES],
}

impl ServiceStats {
    /// Total submissions rejected, across all reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full + self.rejected_tenant_cap + self.rejected_draining
    }

    /// Serialize as one JSON object, schema `hjsvd-serve-stats/v1`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        write!(
            s,
            concat!(
                "{{\"schema\":\"hjsvd-serve-stats/v1\",",
                "\"workers\":{},\"queue_capacity\":{},\"queue_depth\":{},",
                "\"running\":{},\"admitted\":{},\"rejected_queue_full\":{},",
                "\"rejected_tenant_cap\":{},\"rejected_draining\":{},",
                "\"completed\":{},\"faulted\":{},\"retries\":{},",
                "\"cancelled_at_drain\":{},\"latency\":{{"
            ),
            self.workers,
            self.queue_capacity,
            self.queue_depth,
            self.running,
            self.admitted,
            self.rejected_queue_full,
            self.rejected_tenant_cap,
            self.rejected_draining,
            self.completed,
            self.faulted,
            self.retries,
            self.cancelled_at_drain,
        )
        .expect("write to String");
        for i in 0..PRIORITY_CLASSES {
            if i > 0 {
                s.push(',');
            }
            let class = Priority::from_index(i).expect("class index in range");
            write!(s, "\"{}\":", class.name()).expect("write to String");
            self.latency[i].write_json(&mut s);
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bound_observations() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(0.001); // 1 ms
        }
        for _ in 0..10 {
            h.record(0.1); // 100 ms
        }
        assert_eq!(h.count(), 100);
        // p50 upper bound is within 2× of 1 ms; p99 covers the 100 ms tail.
        assert!(h.quantile_seconds(0.5) >= 0.001 && h.quantile_seconds(0.5) <= 0.002049);
        assert!(h.quantile_seconds(0.99) >= 0.1);
        assert!((h.max_seconds() - 0.1).abs() < 1e-12);
        assert!(h.mean_seconds() > 0.001 && h.mean_seconds() < 0.1);
    }

    #[test]
    fn histogram_handles_edge_inputs() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_seconds(0.5), 0.0);
        h.record(0.0);
        h.record(-1.0); // clamped
        h.record(f64::NAN); // clamped
        h.record(1e9); // far future; lands in the catch-all bucket
        assert_eq!(h.count(), 4);
        assert!(h.quantile_seconds(1.0) > 0.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(0.001);
        b.record(0.010);
        b.record(0.010);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.max_seconds() - 0.010).abs() < 1e-12);
    }

    #[test]
    fn stats_json_is_flat_and_complete() {
        let mut stats = ServiceStats {
            workers: 4,
            queue_capacity: 64,
            queue_depth: 3,
            running: 2,
            admitted: 100,
            rejected_queue_full: 5,
            rejected_tenant_cap: 2,
            rejected_draining: 1,
            completed: 90,
            faulted: 4,
            retries: 7,
            cancelled_at_drain: 1,
            latency: [LatencyHistogram::new(); PRIORITY_CLASSES],
        };
        stats.latency[0].record(0.002);
        assert_eq!(stats.rejected(), 8);
        let j = stats.to_json();
        assert!(j.starts_with("{\"schema\":\"hjsvd-serve-stats/v1\","), "{j}");
        for key in [
            "\"workers\":4",
            "\"queue_capacity\":64",
            "\"queue_depth\":3",
            "\"running\":2",
            "\"admitted\":100",
            "\"rejected_queue_full\":5",
            "\"rejected_tenant_cap\":2",
            "\"rejected_draining\":1",
            "\"completed\":90",
            "\"faulted\":4",
            "\"retries\":7",
            "\"cancelled_at_drain\":1",
            "\"interactive\":{\"count\":1",
            "\"batch\":{\"count\":0",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(!j.contains(",}") && !j.contains(",]"), "{j}");
    }
}
