//! The versioned, length-prefixed wire protocol.
//!
//! Every frame on the wire is:
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | payload length `L` (u32 LE, not counting these 4 bytes) |
//! | 4      | 1    | protocol version ([`PROTOCOL_VERSION`]) |
//! | 5      | 1    | frame type |
//! | 6      | L−2  | type-specific body |
//!
//! Frame types and bodies (all integers little-endian):
//!
//! | type | name | body |
//! |------|------|------|
//! | 1 | submit | `u8` priority, `u8` engine, `u8` ordering ([`hj_core::OrderingKind::index`]), `u64` deadline_ms ([`NO_DEADLINE`] = none), `u16` tenant length + tenant bytes (UTF-8), then an [`hj_matrix::wire`] matrix frame |
//! | 2 | result | `u64` job id, `u32` sweeps, `u32` n, then n × `f64::to_bits` LE values |
//! | 3 | error | `u8` code, `u16` kind length + kind bytes, `u16` message length + message bytes |
//! | 4 | stats request | empty |
//! | 5 | stats | UTF-8 JSON object (the [`crate::ServiceStats`] schema) |
//! | 6 | shutdown | `u64` drain_ms |
//! | 7 | submit-batch | `u8` priority, `u8` engine, `u8` ordering, `u64` deadline_ms, `u16` tenant length + tenant bytes, `u32` matrix count, then per matrix a `u32` byte length + an [`hj_matrix::wire`] matrix frame |
//! | 8 | batch-result | `u64` job id, `u32` item count, then per item a `u8` status: `0` (ok) followed by `u32` sweeps, `u32` n, n × `f64::to_bits` LE values; `1` (error) followed by `u8` code, `u16` kind length + kind bytes, `u16` message length + message bytes |
//!
//! Singular values travel as raw `f64::to_bits` exactly like the matrix
//! payload, so a spectrum crosses the wire bit-identically — the round trip
//! adds *zero* rounding. A batch submission is **one** frame carrying many
//! matrices and its reply is **one** frame carrying a per-problem status for
//! every slot, so a million tiny solves need not pay a frame round trip
//! each.

use hj_matrix::wire::{self, WireError};
use hj_matrix::Matrix;
use std::io::{Read, Write};

/// Current protocol version; frames with any other version are rejected
/// (the server answers version mismatches with a structured
/// `unsupported-version` error frame before closing).
/// Version 2 added the submit frame's ordering byte; version 3 added the
/// bulk submit-batch / batch-result frames.
pub const PROTOCOL_VERSION: u8 = 3;

/// Sentinel `deadline_ms` meaning "no deadline".
pub const NO_DEADLINE: u64 = u64::MAX;

/// Hard ceiling on a frame's payload length (256 MiB): a corrupt length
/// prefix cannot make a peer attempt an unbounded allocation.
pub const MAX_FRAME_BYTES: u32 = 1 << 28;

/// One protocol frame, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: solve this matrix.
    Submit {
        /// Priority class byte ([`crate::Priority::index`]).
        priority: u8,
        /// Engine byte (0 sequential, 1 parallel, 2 blocked).
        engine: u8,
        /// Ordering byte ([`hj_core::OrderingKind::index`]: 0 cyclic,
        /// 1 row-cyclic, 2 greedy, 3 presort).
        ordering: u8,
        /// Relative deadline in milliseconds from receipt, or
        /// [`NO_DEADLINE`].
        deadline_ms: u64,
        /// Tenant identity (may be empty).
        tenant: String,
        /// The matrix to decompose.
        matrix: Matrix,
    },
    /// Server → client: the solve succeeded.
    Result {
        /// Service-assigned job id.
        job: u64,
        /// Sweeps the solve ran.
        sweeps: u32,
        /// Singular values, descending, bit-exact.
        values: Vec<f64>,
    },
    /// Server → client: the submission was rejected or the solve failed.
    Error {
        /// Machine-readable error code (mirrors the CLI exit codes).
        code: u8,
        /// Stable error kind (e.g. `"queue-full"`, `"deadline"`).
        kind: String,
        /// Human-readable message.
        message: String,
    },
    /// Client → server: send a stats snapshot.
    StatsRequest,
    /// Server → client: a [`crate::ServiceStats`] JSON object.
    Stats {
        /// The JSON text (schema `hjsvd-serve-stats/v1`).
        json: String,
    },
    /// Client → server: drain and stop, waiting up to `drain_ms` for
    /// in-flight jobs.
    Shutdown {
        /// Drain deadline in milliseconds.
        drain_ms: u64,
    },
    /// Client → server: solve this whole batch as one job (one queue slot,
    /// one ticket, one reply frame).
    SubmitBatch {
        /// Priority class byte ([`crate::Priority::index`]).
        priority: u8,
        /// Engine byte (0 sequential, 1 parallel, 2 blocked).
        engine: u8,
        /// Ordering byte ([`hj_core::OrderingKind::index`]).
        ordering: u8,
        /// Relative deadline in milliseconds from receipt, or
        /// [`NO_DEADLINE`]. The deadline covers the whole batch.
        deadline_ms: u64,
        /// Tenant identity (may be empty).
        tenant: String,
        /// The matrices to decompose, in slot order.
        matrices: Vec<Matrix>,
    },
    /// Server → client: per-problem outcomes of a batch job, in slot order.
    BatchResult {
        /// Service-assigned job id (one id covers the whole batch).
        job: u64,
        /// One status per submitted matrix.
        items: Vec<BatchItem>,
    },
}

/// Per-problem status inside a [`Frame::BatchResult`].
#[derive(Debug, Clone, PartialEq)]
pub enum BatchItem {
    /// The slot solved; its spectrum crossed the wire bit-exactly.
    Ok {
        /// Sweeps this problem ran.
        sweeps: u32,
        /// Singular values, descending, bit-exact.
        values: Vec<f64>,
    },
    /// The slot failed; its neighbors are unaffected.
    Err {
        /// Machine-readable error code (same space as [`Frame::Error`]).
        code: u8,
        /// Stable error kind (e.g. `"non-finite-input"`, `"stall"`).
        kind: String,
        /// Human-readable message.
        message: String,
    },
}

/// Wire-protocol failures.
#[derive(Debug)]
pub enum ProtoError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// An I/O error (includes mid-frame disconnects).
    Io(std::io::Error),
    /// The frame declared an unsupported protocol version.
    BadVersion(u8),
    /// The frame declared an unknown type byte.
    BadType(u8),
    /// The declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversized(u32),
    /// The body ended before (or after) its declared fields.
    Malformed(&'static str),
    /// The embedded matrix frame failed to decode.
    Wire(WireError),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (expected {PROTOCOL_VERSION})")
            }
            ProtoError::BadType(t) => write!(f, "unknown frame type {t}"),
            ProtoError::Oversized(n) => {
                write!(f, "frame payload of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
            }
            ProtoError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtoError::Wire(e) => write!(f, "bad matrix payload: {e}"),
            ProtoError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

impl From<WireError> for ProtoError {
    fn from(e: WireError) -> ProtoError {
        ProtoError::Wire(e)
    }
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Submit { .. } => 1,
            Frame::Result { .. } => 2,
            Frame::Error { .. } => 3,
            Frame::StatsRequest => 4,
            Frame::Stats { .. } => 5,
            Frame::Shutdown { .. } => 6,
            Frame::SubmitBatch { .. } => 7,
            Frame::BatchResult { .. } => 8,
        }
    }

    /// Encode as a complete frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64);
        payload.push(PROTOCOL_VERSION);
        payload.push(self.type_byte());
        match self {
            Frame::Submit { priority, engine, ordering, deadline_ms, tenant, matrix } => {
                payload.push(*priority);
                payload.push(*engine);
                payload.push(*ordering);
                payload.extend_from_slice(&deadline_ms.to_le_bytes());
                put_str16(&mut payload, tenant);
                wire::encode_matrix_into(matrix, &mut payload);
            }
            Frame::Result { job, sweeps, values } => {
                payload.extend_from_slice(&job.to_le_bytes());
                payload.extend_from_slice(&sweeps.to_le_bytes());
                payload.extend_from_slice(&(values.len() as u32).to_le_bytes());
                for v in values {
                    payload.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Frame::Error { code, kind, message } => {
                payload.push(*code);
                put_str16(&mut payload, kind);
                put_str16(&mut payload, message);
            }
            Frame::StatsRequest => {}
            Frame::Stats { json } => payload.extend_from_slice(json.as_bytes()),
            Frame::Shutdown { drain_ms } => {
                payload.extend_from_slice(&drain_ms.to_le_bytes());
            }
            Frame::SubmitBatch { priority, engine, ordering, deadline_ms, tenant, matrices } => {
                payload.push(*priority);
                payload.push(*engine);
                payload.push(*ordering);
                payload.extend_from_slice(&deadline_ms.to_le_bytes());
                put_str16(&mut payload, tenant);
                payload.extend_from_slice(&(matrices.len() as u32).to_le_bytes());
                for m in matrices {
                    // Length-prefix each embedded matrix frame so the
                    // decoder can walk the batch without trusting the wire
                    // format's internal length arithmetic.
                    let len_at = payload.len();
                    payload.extend_from_slice(&0u32.to_le_bytes());
                    let start = payload.len();
                    wire::encode_matrix_into(m, &mut payload);
                    let len = (payload.len() - start) as u32;
                    payload[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
                }
            }
            Frame::BatchResult { job, items } => {
                payload.extend_from_slice(&job.to_le_bytes());
                payload.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for item in items {
                    match item {
                        BatchItem::Ok { sweeps, values } => {
                            payload.push(0);
                            payload.extend_from_slice(&sweeps.to_le_bytes());
                            payload.extend_from_slice(&(values.len() as u32).to_le_bytes());
                            for v in values {
                                payload.extend_from_slice(&v.to_bits().to_le_bytes());
                            }
                        }
                        BatchItem::Err { code, kind, message } => {
                            payload.push(1);
                            payload.push(*code);
                            put_str16(&mut payload, kind);
                            put_str16(&mut payload, message);
                        }
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(4 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Write one frame to `w` (flushes).
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(&self.encode())?;
        w.flush()
    }

    /// Read one frame from `r`. A clean close at a frame boundary is
    /// [`ProtoError::Closed`]; a close mid-frame is [`ProtoError::Io`].
    pub fn read_from(r: &mut impl Read) -> Result<Frame, ProtoError> {
        let mut len_bytes = [0u8; 4];
        if let Err(e) = r.read_exact(&mut len_bytes) {
            return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ProtoError::Closed
            } else {
                ProtoError::Io(e)
            });
        }
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME_BYTES {
            return Err(ProtoError::Oversized(len));
        }
        if len < 2 {
            return Err(ProtoError::Malformed("payload shorter than its header"));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Frame::decode_payload(&payload)
    }

    /// Decode a payload (everything after the length prefix).
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, ProtoError> {
        let mut c = Cursor { buf: payload, pos: 0 };
        let version = c.u8()?;
        if version != PROTOCOL_VERSION {
            return Err(ProtoError::BadVersion(version));
        }
        let frame = match c.u8()? {
            1 => {
                let priority = c.u8()?;
                let engine = c.u8()?;
                let ordering = c.u8()?;
                let deadline_ms = c.u64()?;
                let tenant = c.str16()?;
                let matrix = wire::decode_matrix(c.rest())?;
                Frame::Submit { priority, engine, ordering, deadline_ms, tenant, matrix }
            }
            2 => {
                let job = c.u64()?;
                let sweeps = c.u32()?;
                let n = c.u32()? as usize;
                let bytes = c.take(8 * n)?;
                let mut values = Vec::with_capacity(n);
                for chunk in bytes.chunks_exact(8) {
                    values.push(f64::from_bits(u64::from_le_bytes(
                        chunk.try_into().expect("8 bytes"),
                    )));
                }
                c.done()?;
                Frame::Result { job, sweeps, values }
            }
            3 => {
                let code = c.u8()?;
                let kind = c.str16()?;
                let message = c.str16()?;
                c.done()?;
                Frame::Error { code, kind, message }
            }
            4 => {
                c.done()?;
                Frame::StatsRequest
            }
            5 => {
                let json = String::from_utf8(c.rest().to_vec()).map_err(|_| ProtoError::BadUtf8)?;
                Frame::Stats { json }
            }
            6 => {
                let drain_ms = c.u64()?;
                c.done()?;
                Frame::Shutdown { drain_ms }
            }
            7 => {
                let priority = c.u8()?;
                let engine = c.u8()?;
                let ordering = c.u8()?;
                let deadline_ms = c.u64()?;
                let tenant = c.str16()?;
                let count = c.u32()? as usize;
                let mut matrices = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let len = c.u32()? as usize;
                    matrices.push(wire::decode_matrix(c.take(len)?)?);
                }
                c.done()?;
                Frame::SubmitBatch { priority, engine, ordering, deadline_ms, tenant, matrices }
            }
            8 => {
                let job = c.u64()?;
                let count = c.u32()? as usize;
                let mut items = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    items.push(match c.u8()? {
                        0 => {
                            let sweeps = c.u32()?;
                            let n = c.u32()? as usize;
                            let bytes = c.take(8 * n)?;
                            let mut values = Vec::with_capacity(n);
                            for chunk in bytes.chunks_exact(8) {
                                values.push(f64::from_bits(u64::from_le_bytes(
                                    chunk.try_into().expect("8 bytes"),
                                )));
                            }
                            BatchItem::Ok { sweeps, values }
                        }
                        1 => {
                            let code = c.u8()?;
                            let kind = c.str16()?;
                            let message = c.str16()?;
                            BatchItem::Err { code, kind, message }
                        }
                        _ => return Err(ProtoError::Malformed("unknown batch item status")),
                    });
                }
                c.done()?;
                Frame::BatchResult { job, items }
            }
            t => return Err(ProtoError::BadType(t)),
        };
        Ok(frame)
    }
}

fn put_str16(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

/// Bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Malformed("body ends before a declared field"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str16(&mut self) -> Result<String, ProtoError> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes after the body"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hj_matrix::gen;

    fn roundtrip(frame: Frame) -> Frame {
        let bytes = frame.encode();
        // Through the streaming reader, not just the payload decoder.
        let mut r = std::io::Cursor::new(bytes);
        Frame::read_from(&mut r).unwrap()
    }

    #[test]
    fn every_frame_type_round_trips() {
        let a = gen::uniform(5, 3, 77);
        let frames = vec![
            Frame::Submit {
                priority: 1,
                engine: 2,
                ordering: 3,
                deadline_ms: 1500,
                tenant: "acme".into(),
                matrix: a,
            },
            Frame::Result {
                job: 42,
                sweeps: 6,
                values: vec![3.5, 1.0, f64::MIN_POSITIVE, 0.0, -0.0],
            },
            Frame::Error { code: 7, kind: "deadline".into(), message: "too slow".into() },
            Frame::StatsRequest,
            Frame::Stats { json: "{\"schema\":\"hjsvd-serve-stats/v1\"}".into() },
            Frame::Shutdown { drain_ms: 2000 },
            Frame::SubmitBatch {
                priority: 1,
                engine: 0,
                ordering: 0,
                deadline_ms: NO_DEADLINE,
                tenant: "bulk".into(),
                matrices: (0..5).map(|k| gen::uniform(8, 4, k)).collect(),
            },
            Frame::BatchResult {
                job: 9,
                items: vec![
                    BatchItem::Ok { sweeps: 7, values: vec![2.0, 1.0, 0.5] },
                    BatchItem::Err {
                        code: 4,
                        kind: "non-finite-input".into(),
                        message: "slot 1".into(),
                    },
                    BatchItem::Ok { sweeps: 3, values: vec![] },
                ],
            },
        ];
        for frame in frames {
            let back = roundtrip(frame.clone());
            assert_eq!(back, frame);
            // Encoding is deterministic — byte-identical re-encode.
            assert_eq!(back.encode(), frame.encode());
        }
    }

    #[test]
    fn submit_matrix_survives_bit_exactly() {
        let a = gen::uniform(16, 8, 3);
        let frame = Frame::Submit {
            priority: 0,
            engine: 0,
            ordering: 0,
            deadline_ms: NO_DEADLINE,
            tenant: String::new(),
            matrix: a.clone(),
        };
        match roundtrip(frame) {
            Frame::Submit { matrix, deadline_ms, .. } => {
                assert_eq!(deadline_ms, NO_DEADLINE);
                for (x, y) in a.as_slice().iter().zip(matrix.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn result_values_survive_bit_exactly() {
        let values = vec![1.0 / 3.0, 2.0_f64.sqrt(), 1e-300, f64::MAX];
        let frame = Frame::Result { job: 1, sweeps: 5, values: values.clone() };
        match roundtrip(frame) {
            Frame::Result { values: back, .. } => {
                for (x, y) in values.iter().zip(back.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn bad_version_type_length_are_rejected() {
        assert!(matches!(Frame::decode_payload(&[9, 4]), Err(ProtoError::BadVersion(9))));
        // Version 1 predates the submit ordering byte and version 2 the
        // bulk frames; both are rejected, not misparsed.
        assert!(matches!(Frame::decode_payload(&[1, 4]), Err(ProtoError::BadVersion(1))));
        assert!(matches!(Frame::decode_payload(&[2, 4]), Err(ProtoError::BadVersion(2))));
        assert!(matches!(
            Frame::decode_payload(&[PROTOCOL_VERSION, 99]),
            Err(ProtoError::BadType(99))
        ));
        // Truncated body: a shutdown frame missing its drain_ms.
        assert!(matches!(
            Frame::decode_payload(&[PROTOCOL_VERSION, 6, 1, 2]),
            Err(ProtoError::Malformed(_))
        ));
        // Trailing garbage after a complete body.
        assert!(matches!(
            Frame::decode_payload(&[PROTOCOL_VERSION, 4, 0]),
            Err(ProtoError::Malformed(_))
        ));
        // Oversized length prefix rejected before allocation.
        let huge = (MAX_FRAME_BYTES + 1).to_le_bytes();
        let mut r = std::io::Cursor::new(huge.to_vec());
        assert!(matches!(Frame::read_from(&mut r), Err(ProtoError::Oversized(_))));
    }

    #[test]
    fn clean_close_is_distinguished_from_mid_frame_close() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(Frame::read_from(&mut empty), Err(ProtoError::Closed)));
        // Length prefix present but payload missing.
        let mut partial = std::io::Cursor::new(8u32.to_le_bytes().to_vec());
        assert!(matches!(Frame::read_from(&mut partial), Err(ProtoError::Io(_))));
    }

    #[test]
    fn batch_frames_survive_bit_exactly_and_reject_bad_statuses() {
        let mats: Vec<Matrix> = (0..3).map(|k| gen::uniform(6, 3, 40 + k)).collect();
        let frame = Frame::SubmitBatch {
            priority: 0,
            engine: 0,
            ordering: 0,
            deadline_ms: 250,
            tenant: String::new(),
            matrices: mats.clone(),
        };
        match roundtrip(frame) {
            Frame::SubmitBatch { matrices, deadline_ms, .. } => {
                assert_eq!(deadline_ms, 250);
                assert_eq!(matrices.len(), mats.len());
                for (a, b) in mats.iter().zip(&matrices) {
                    assert_eq!(a.shape(), b.shape());
                    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
            }
            other => panic!("wrong frame: {other:?}"),
        }
        let values = vec![1.0 / 3.0, 1e-300, -0.0];
        let reply = Frame::BatchResult {
            job: 3,
            items: vec![BatchItem::Ok { sweeps: 2, values: values.clone() }],
        };
        match roundtrip(reply) {
            Frame::BatchResult { items, .. } => match &items[0] {
                BatchItem::Ok { values: back, .. } => {
                    for (x, y) in values.iter().zip(back) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                other => panic!("wrong item: {other:?}"),
            },
            other => panic!("wrong frame: {other:?}"),
        }
        // An unknown per-item status byte is malformed, not misparsed:
        // job id, count 1, status 7.
        let mut bad = vec![PROTOCOL_VERSION, 8];
        bad.extend_from_slice(&1u64.to_le_bytes());
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.push(7);
        assert!(matches!(Frame::decode_payload(&bad), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn errors_display_their_cause() {
        assert!(ProtoError::BadVersion(3).to_string().contains("version 3"));
        assert!(ProtoError::Oversized(u32::MAX).to_string().contains("exceeds"));
        assert!(ProtoError::Closed.to_string().contains("closed"));
    }
}
