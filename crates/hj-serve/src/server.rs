//! The TCP front-end: one accept loop, one handler thread per connection,
//! all feeding the shared [`SolveService`].
//!
//! The server is deliberately framework-free (`std::net` only). Each
//! connection speaks the [`crate::protocol`] frame format; a `Shutdown`
//! frame drains the service, answers with the final stats snapshot, and
//! stops the accept loop. Submissions block their own connection thread
//! while waiting for the solve — concurrency across clients comes from the
//! per-connection threads, and solve throughput from the worker pool behind
//! the queue, exactly like the paper's datapath streaming many independent
//! problems.

use crate::job::{JobSpec, Priority, RejectReason};
use crate::protocol::{BatchItem, Frame, ProtoError, NO_DEADLINE};
use crate::service::{ServiceConfig, SolveService};
use crate::stats::ServiceStats;
use hj_core::{EngineKind, OrderingKind, SvdError};
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wire error code for a rejected submission (the CLI exits with it).
pub const CODE_REJECTED: u8 = 10;
/// Wire error code for malformed requests.
pub const CODE_BAD_REQUEST: u8 = 4;
/// Wire error code for a solve fault other than deadline/cancellation.
pub const CODE_SOLVE_FAULT: u8 = 7;
/// Wire error code for a deadline-exceeded fault.
pub const CODE_DEADLINE: u8 = 8;
/// Wire error code for a cancelled job.
pub const CODE_CANCELLED: u8 = 9;

/// A bound server, ready to [`Server::run`].
pub struct Server {
    listener: TcpListener,
    service: Arc<SolveService>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the worker
    /// pool.
    pub fn bind(addr: impl ToSocketAddrs, config: ServiceConfig) -> std::io::Result<Server> {
        Server::with_service(addr, SolveService::start(config))
    }

    /// Bind `addr` over an already-started service (lets callers attach a
    /// trace sink via [`SolveService::start_traced`] first).
    pub fn with_service(
        addr: impl ToSocketAddrs,
        service: SolveService,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { listener, service: Arc::new(service), stop: Arc::new(AtomicBool::new(false)) })
    }

    /// The actually-bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The service behind the front-end (stats, direct submissions).
    pub fn service(&self) -> &SolveService {
        &self.service
    }

    /// Accept and serve connections until a `Shutdown` frame arrives, then
    /// return the final post-drain stats snapshot.
    pub fn run(&self) -> std::io::Result<ServiceStats> {
        let addr = self.local_addr()?;
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let service = Arc::clone(&self.service);
                    let stop = Arc::clone(&self.stop);
                    std::thread::Builder::new()
                        .name("hj-serve-conn".to_string())
                        .spawn(move || handle_connection(stream, &service, &stop, addr))
                        .expect("spawn connection handler");
                }
                Err(e) => {
                    if self.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    return Err(e);
                }
            }
        }
        Ok(self.service.stats())
    }
}

/// Serve one connection until it closes or requests shutdown.
fn handle_connection(
    stream: TcpStream,
    service: &SolveService,
    stop: &AtomicBool,
    server_addr: SocketAddr,
) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    loop {
        let frame = match Frame::read_from(&mut reader) {
            Ok(f) => f,
            Err(ProtoError::Closed) => return,
            Err(ProtoError::Io(_)) => return,
            Err(e) => {
                // Protocol violation: answer with a structured error, then
                // close (framing can no longer be trusted). Version skew
                // gets its own kind so older clients (v2 and earlier) see a
                // clean "upgrade" signal instead of a generic parse error.
                let kind = match e {
                    ProtoError::BadVersion(_) => "unsupported-version",
                    _ => "bad-frame",
                };
                let _ = Frame::Error {
                    code: CODE_BAD_REQUEST,
                    kind: kind.to_string(),
                    message: e.to_string(),
                }
                .write_to(&mut writer);
                return;
            }
        };
        let reply = match frame {
            Frame::Submit { priority, engine, ordering, deadline_ms, tenant, matrix } => {
                handle_submit(service, priority, engine, ordering, deadline_ms, tenant, matrix)
            }
            Frame::SubmitBatch { priority, engine, ordering, deadline_ms, tenant, matrices } => {
                handle_submit_batch(
                    service,
                    priority,
                    engine,
                    ordering,
                    deadline_ms,
                    tenant,
                    matrices,
                )
            }
            Frame::StatsRequest => Frame::Stats { json: service.stats().to_json() },
            Frame::Shutdown { drain_ms } => {
                service.shutdown(Duration::from_millis(drain_ms));
                let reply = Frame::Stats { json: service.stats().to_json() };
                let _ = reply.write_to(&mut writer);
                stop.store(true, Ordering::Relaxed);
                // Unblock the accept loop so `run` can observe the flag.
                let _ = TcpStream::connect(server_addr);
                return;
            }
            // Server-to-client frames arriving at the server are protocol
            // violations.
            Frame::Result { .. }
            | Frame::BatchResult { .. }
            | Frame::Error { .. }
            | Frame::Stats { .. } => Frame::Error {
                code: CODE_BAD_REQUEST,
                kind: "bad-frame".to_string(),
                message: "client sent a server-only frame".to_string(),
            },
        };
        if reply.write_to(&mut writer).is_err() {
            return;
        }
    }
}

/// Decode the shared submit option bytes into a configured spec, or an
/// error frame when a byte is out of range.
fn decode_spec(
    spec: JobSpec,
    priority: u8,
    engine: u8,
    ordering: u8,
    deadline_ms: u64,
    tenant: String,
) -> Result<JobSpec, Frame> {
    let Some(priority) = Priority::from_index(priority as usize) else {
        return Err(Frame::Error {
            code: CODE_BAD_REQUEST,
            kind: "bad-priority".to_string(),
            message: format!("unknown priority byte {priority}"),
        });
    };
    let engine = match engine {
        0 => EngineKind::Sequential,
        1 => EngineKind::Parallel,
        2 => EngineKind::Blocked,
        b => {
            return Err(Frame::Error {
                code: CODE_BAD_REQUEST,
                kind: "bad-engine".to_string(),
                message: format!("unknown engine byte {b}"),
            })
        }
    };
    let Some(ordering) = OrderingKind::from_index(ordering as usize) else {
        return Err(Frame::Error {
            code: CODE_BAD_REQUEST,
            kind: "bad-ordering".to_string(),
            message: format!("unknown ordering byte {ordering}"),
        });
    };
    let mut spec = spec.engine(engine).ordering(ordering).priority(priority).tenant(tenant);
    if deadline_ms != NO_DEADLINE {
        let now = Instant::now();
        spec.deadline = Some(now.checked_add(Duration::from_millis(deadline_ms)).unwrap_or(now));
    }
    Ok(spec)
}

/// Admit, wait, and shape the outcome into a reply frame.
fn handle_submit(
    service: &SolveService,
    priority: u8,
    engine: u8,
    ordering: u8,
    deadline_ms: u64,
    tenant: String,
    matrix: hj_matrix::Matrix,
) -> Frame {
    let spec =
        match decode_spec(JobSpec::new(matrix), priority, engine, ordering, deadline_ms, tenant) {
            Ok(spec) => spec,
            Err(frame) => return frame,
        };
    match service.submit(spec) {
        Err(reason) => reject_frame(reason),
        Ok(ticket) => {
            let outcome = ticket.wait();
            match outcome.result.into_single() {
                Ok(sv) => {
                    Frame::Result { job: outcome.job, sweeps: sv.sweeps as u32, values: sv.values }
                }
                Err(err) => Frame::Error {
                    code: error_code(&err),
                    kind: error_kind(&err).to_string(),
                    message: err.to_string(),
                },
            }
        }
    }
}

/// Admit one bulk job, wait, and shape every slot's outcome into a single
/// [`Frame::BatchResult`]. Whole-batch failures (rejection, bad option
/// bytes, an empty matrix list) come back as one error frame instead.
fn handle_submit_batch(
    service: &SolveService,
    priority: u8,
    engine: u8,
    ordering: u8,
    deadline_ms: u64,
    tenant: String,
    matrices: Vec<hj_matrix::Matrix>,
) -> Frame {
    if matrices.is_empty() {
        return Frame::Error {
            code: CODE_BAD_REQUEST,
            kind: "empty-batch".to_string(),
            message: "a batch submit needs at least one matrix".to_string(),
        };
    }
    let spec =
        match decode_spec(JobSpec::bulk(matrices), priority, engine, ordering, deadline_ms, tenant)
        {
            Ok(spec) => spec,
            Err(frame) => return frame,
        };
    match service.submit(spec) {
        Err(reason) => reject_frame(reason),
        Ok(ticket) => {
            let outcome = ticket.wait();
            let items = outcome
                .result
                .into_bulk()
                .into_iter()
                .map(|slot| match slot {
                    Ok(sv) => BatchItem::Ok { sweeps: sv.sweeps as u32, values: sv.values },
                    Err(err) => BatchItem::Err {
                        code: error_code(&err),
                        kind: error_kind(&err).to_string(),
                        message: err.to_string(),
                    },
                })
                .collect();
            Frame::BatchResult { job: outcome.job, items }
        }
    }
}

fn reject_frame(reason: RejectReason) -> Frame {
    Frame::Error {
        code: CODE_REJECTED,
        kind: reason.name().to_string(),
        message: reason.to_string(),
    }
}

/// Wire error code for a terminal solve error.
pub fn error_code(err: &SvdError) -> u8 {
    match err {
        SvdError::SolveFault { fault, .. } => match fault.kind() {
            "deadline" => CODE_DEADLINE,
            "cancelled" => CODE_CANCELLED,
            _ => CODE_SOLVE_FAULT,
        },
        _ => CODE_BAD_REQUEST,
    }
}

/// Stable error kind string for a terminal solve error.
pub fn error_kind(err: &SvdError) -> &'static str {
    match err {
        SvdError::SolveFault { fault, .. } => fault.kind(),
        SvdError::EmptyInput => "empty-input",
        SvdError::NonFiniteInput => "non-finite-input",
        SvdError::EngineNeedsRoundRobin => "engine-needs-round-robin",
        SvdError::OrderingUnsupported { .. } => "ordering-unsupported",
        SvdError::ZeroSweepBudget => "zero-sweep-budget",
        SvdError::TruncatedTailNotNegligible => "truncated-tail",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, ClientError, SubmitOptions};
    use hj_core::recovery::Fault;
    use hj_matrix::gen;

    fn spawn_server(config: ServiceConfig) -> (std::thread::JoinHandle<ServiceStats>, SocketAddr) {
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (handle, addr)
    }

    #[test]
    fn submit_stats_shutdown_over_localhost() {
        let (handle, addr) = spawn_server(ServiceConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let a = gen::uniform(24, 6, 5);
        let direct =
            hj_core::HestenesSvd::new(hj_core::SvdOptions::default()).singular_values(&a).unwrap();
        let outcome = client.submit(&a, SubmitOptions::default()).unwrap();
        assert_eq!(outcome.values.len(), 6);
        for (x, y) in outcome.values.iter().zip(direct.values.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "wire spectrum must be bit-identical");
        }
        let json = client.stats_json().unwrap();
        assert!(json.contains("\"completed\":1"), "{json}");
        let final_json = client.shutdown(Duration::from_secs(5)).unwrap();
        assert!(final_json.contains("hjsvd-serve-stats/v1"));
        let stats = handle.join().unwrap();
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn ordering_travels_the_wire_and_bad_bytes_are_rejected() {
        let (handle, addr) = spawn_server(ServiceConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let a = gen::uniform(24, 8, 17);
        // A greedy-ordered remote solve is bit-identical to the local one.
        let direct = hj_core::HestenesSvd::new(hj_core::SvdOptions {
            ordering: OrderingKind::SortedGreedy,
            ..Default::default()
        })
        .singular_values(&a)
        .unwrap();
        let outcome = client
            .submit(
                &a,
                SubmitOptions { ordering: OrderingKind::SortedGreedy, ..Default::default() },
            )
            .unwrap();
        assert_eq!(outcome.sweeps, direct.sweeps);
        for (x, y) in outcome.values.iter().zip(direct.values.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "greedy wire spectrum must be bit-identical");
        }
        // Row-cyclic on a grouped engine surfaces the structured config error.
        let err = client
            .submit(
                &a,
                SubmitOptions {
                    ordering: OrderingKind::RowCyclic,
                    engine: EngineKind::Blocked,
                    ..Default::default()
                },
            )
            .unwrap_err();
        match err {
            ClientError::Remote { code, kind, .. } => {
                assert_eq!(code, CODE_BAD_REQUEST);
                assert_eq!(kind, "engine-needs-round-robin");
            }
            other => panic!("expected remote error, got {other:?}"),
        }
        // An out-of-range ordering byte is rejected before admission.
        let raw = Frame::Submit {
            priority: 0,
            engine: 0,
            ordering: 9,
            deadline_ms: crate::protocol::NO_DEADLINE,
            tenant: String::new(),
            matrix: a.clone(),
        };
        let reply = handle_submit_frame(addr, raw);
        match reply {
            Frame::Error { code, kind, .. } => {
                assert_eq!(code, CODE_BAD_REQUEST);
                assert_eq!(kind, "bad-ordering");
            }
            other => panic!("expected error frame, got {other:?}"),
        }
        client.shutdown(Duration::from_secs(5)).unwrap();
        handle.join().unwrap();
    }

    /// Send one raw frame and read the single reply (bypasses the typed
    /// client, which cannot produce invalid bytes).
    fn handle_submit_frame(addr: SocketAddr, frame: Frame) -> Frame {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut reader = stream.try_clone().unwrap();
        let mut writer = BufWriter::new(stream);
        frame.write_to(&mut writer).unwrap();
        Frame::read_from(&mut reader).unwrap()
    }

    #[test]
    fn bulk_submissions_round_trip_bit_exactly() {
        let (handle, addr) = spawn_server(ServiceConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let mut mats: Vec<_> = (0..6).map(|k| gen::uniform(16, 8, 90 + k)).collect();
        mats[2] = hj_matrix::Matrix::zeros(0, 8); // one invalid slot
        let direct =
            hj_core::HestenesSvd::new(hj_core::SvdOptions::default()).singular_values_batch(&mats);
        let outcome = client.submit_batch(&mats, SubmitOptions::default()).unwrap();
        assert_eq!(outcome.items.len(), mats.len());
        for (k, (remote, local)) in outcome.items.iter().zip(&direct).enumerate() {
            match (remote, local) {
                (Ok(spectrum), Ok(sv)) => {
                    assert_eq!(spectrum.sweeps, sv.sweeps, "slot {k}");
                    assert_eq!(spectrum.values.len(), sv.values.len(), "slot {k}");
                    for (x, y) in spectrum.values.iter().zip(&sv.values) {
                        assert_eq!(x.to_bits(), y.to_bits(), "slot {k} spectrum over the wire");
                    }
                }
                (Err(failure), Err(err)) => {
                    assert_eq!(failure.code, error_code(err), "slot {k}");
                    assert_eq!(failure.kind, error_kind(err), "slot {k}");
                }
                other => panic!("slot {k} shape mismatch: {other:?}"),
            }
        }
        client.shutdown(Duration::from_secs(5)).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn old_protocol_versions_get_a_structured_rejection() {
        use std::io::{Read, Write};
        let (handle, addr) = spawn_server(ServiceConfig::default());
        // Hand-roll a v2 Submit header: length prefix, then [version=2,
        // type=1]. The server must answer with a structured error naming
        // the version skew, not a generic bad-frame.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let payload = [2u8, 1u8];
        stream.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
        stream.write_all(&payload).unwrap();
        stream.flush().unwrap();
        let mut reader = stream.try_clone().unwrap();
        let reply = Frame::read_from(&mut reader).unwrap();
        match reply {
            Frame::Error { code, kind, message } => {
                assert_eq!(code, CODE_BAD_REQUEST);
                assert_eq!(kind, "unsupported-version");
                assert!(message.contains('2'), "{message}");
            }
            other => panic!("expected error frame, got {other:?}"),
        }
        // The connection is closed after a protocol violation.
        let mut rest = Vec::new();
        assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0);
        let mut client = Client::connect(addr).unwrap();
        client.shutdown(Duration::from_secs(5)).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn deadline_and_rejection_surface_as_error_frames() {
        let (handle, addr) = spawn_server(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        let mut client = Client::connect(addr).unwrap();
        // An already-expired deadline: structured deadline error.
        let err = client
            .submit(
                &gen::uniform(30, 10, 1),
                SubmitOptions { deadline_ms: Some(0), ..Default::default() },
            )
            .unwrap_err();
        match err {
            ClientError::Remote { code, kind, .. } => {
                assert_eq!(code, CODE_DEADLINE);
                assert_eq!(kind, "deadline");
            }
            other => panic!("expected remote error, got {other:?}"),
        }
        client.shutdown(Duration::from_secs(5)).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn error_codes_map_fault_kinds() {
        let deadline = SvdError::SolveFault {
            fault: Fault::DeadlineExceeded { sweep: 1 },
            sweeps_completed: 0,
            recoveries: 0,
        };
        assert_eq!(error_code(&deadline), CODE_DEADLINE);
        let cancelled = SvdError::SolveFault {
            fault: Fault::Cancelled { sweep: 1 },
            sweeps_completed: 0,
            recoveries: 0,
        };
        assert_eq!(error_code(&cancelled), CODE_CANCELLED);
        let stall = SvdError::SolveFault {
            fault: Fault::ConvergenceStall { sweep: 2, stalled_sweeps: 2 },
            sweeps_completed: 2,
            recoveries: 3,
        };
        assert_eq!(error_code(&stall), CODE_SOLVE_FAULT);
        assert_eq!(error_kind(&stall), "stall");
        assert_eq!(error_code(&SvdError::EmptyInput), CODE_BAD_REQUEST);
        assert_eq!(error_kind(&SvdError::EmptyInput), "empty-input");
    }
}
