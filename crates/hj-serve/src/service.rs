//! The solve service: a fixed worker pool over the scheduler, with pooled
//! workspaces, per-job solve budgets, bounded retries, and a graceful
//! drain-on-shutdown lifecycle.

use crate::job::{JobOutcome, JobPayload, JobResult, JobSpec, JobTicket, RejectReason};
use crate::queue::{QueuedJob, Scheduler};
use crate::stats::ServiceStats;
use hj_core::{
    HestenesSvd, SolveBudget, SvdError, SvdOptions, TraceEvent, TraceLevel, TraceSink,
    WorkspacePool,
};
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service configuration. [`ServiceConfig::default`] is a small two-worker
/// pool suitable for tests; size `workers` to the machine for production
/// traffic.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (each owns one warm workspace). At least 1.
    pub workers: usize,
    /// Bounded queue capacity — submissions beyond it are rejected, never
    /// blocked. At least 1.
    pub queue_capacity: usize,
    /// Per-tenant in-flight cap (queued + running); 0 disables the cap.
    pub tenant_cap: usize,
    /// Maximum attempts per job (first try + retries). At least 1.
    pub max_attempts: usize,
    /// Base retry backoff; attempt `k` waits `base · 2^(k-1)`.
    pub retry_backoff: Duration,
    /// Base solver options. The engine field is overridden per job by
    /// [`JobSpec::engine`].
    pub options: SvdOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            tenant_cap: 0,
            max_attempts: 3,
            retry_backoff: Duration::from_millis(10),
            options: SvdOptions::default(),
        }
    }
}

/// Exponential backoff before attempt `next_attempt` (2-based: the first
/// retry). Saturates instead of overflowing on absurd attempt counts.
pub fn backoff_delay(base: Duration, next_attempt: usize) -> Duration {
    let exp = next_attempt.saturating_sub(2).min(16) as u32;
    base.saturating_mul(1u32 << exp)
}

/// Retry classification: a fault already attributed to the caller's own
/// budget (deadline passed, cancellation raised) will only repeat —
/// retrying it burns a worker for nothing — while numerical faults
/// (non-finite Gram, negative diagonal, stall) are worth another attempt
/// after the recovery chain gave up. Input errors are deterministic and
/// never retried.
pub fn should_retry(error: &SvdError) -> bool {
    match error {
        SvdError::SolveFault { fault, .. } => !matches!(fault.kind(), "deadline" | "cancelled"),
        _ => false,
    }
}

/// What [`SolveService::shutdown`] observed while draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// True when every admitted job reached a terminal state within the
    /// drain deadline (no cancellation was needed).
    pub drained_cleanly: bool,
    /// Queued jobs force-completed with a `cancelled` fault after the
    /// drain deadline passed.
    pub cancelled: usize,
}

/// Shared trace fan-in: worker threads and the submit path all emit
/// service-lifecycle events through one mutexed sink.
struct SharedSink {
    sink: Mutex<Box<dyn TraceSink + Send>>,
    level: TraceLevel,
}

struct Shared {
    scheduler: Scheduler,
    pool: WorkspacePool,
    config: ServiceConfig,
    trace: Option<SharedSink>,
}

impl Shared {
    fn emit(&self, event: TraceEvent) {
        if let Some(t) = &self.trace {
            if t.level >= event.level() {
                t.sink.lock().expect("trace sink lock").record(&event);
            }
        }
    }
}

/// A running multi-tenant solve service.
///
/// ```
/// use hj_serve::{JobSpec, ServiceConfig, SolveService};
/// use hj_matrix::gen;
/// use std::time::Duration;
///
/// let service = SolveService::start(ServiceConfig::default());
/// let ticket = service.submit(JobSpec::new(gen::uniform(20, 5, 1))).unwrap();
/// let outcome = ticket.wait();
/// assert_eq!(outcome.result.into_single().unwrap().values.len(), 5);
/// let report = service.shutdown(Duration::from_secs(5));
/// assert!(report.drained_cleanly);
/// ```
pub struct SolveService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl SolveService {
    /// Start the worker pool with no trace sink attached.
    pub fn start(config: ServiceConfig) -> SolveService {
        SolveService::start_inner(config, None)
    }

    /// Start with service-lifecycle events streamed into `sink` (admission,
    /// rejection, dispatch, completion, fault — the `job_*` event family).
    pub fn start_traced(config: ServiceConfig, sink: Box<dyn TraceSink + Send>) -> SolveService {
        SolveService::start_inner(
            config,
            Some(SharedSink { sink: Mutex::new(sink), level: TraceLevel::Sweep }),
        )
    }

    fn start_inner(mut config: ServiceConfig, trace: Option<SharedSink>) -> SolveService {
        config.workers = config.workers.max(1);
        config.max_attempts = config.max_attempts.max(1);
        let shared = Arc::new(Shared {
            scheduler: Scheduler::new(config.queue_capacity, config.tenant_cap),
            pool: WorkspacePool::new(),
            config: config.clone(),
            trace,
        });
        let workers = (0..config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hj-serve-worker-{index}"))
                    .spawn(move || worker_loop(index, &shared))
                    .expect("spawn worker thread")
            })
            .collect();
        SolveService { shared, workers: Mutex::new(workers) }
    }

    /// Submit a job through admission control. `Ok` hands back a
    /// [`JobTicket`] to wait on; `Err` is an immediate structured
    /// rejection.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, RejectReason> {
        let (result, event) = self.shared.scheduler.submit(spec);
        self.shared.emit(event);
        result
    }

    /// Submit and block until the outcome arrives.
    pub fn solve(&self, spec: JobSpec) -> Result<JobOutcome, RejectReason> {
        self.submit(spec).map(JobTicket::wait)
    }

    /// Jobs queued (admitted, not yet dispatched) right now.
    pub fn queue_depth(&self) -> usize {
        self.shared.scheduler.depth()
    }

    /// Point-in-time counters and latency histograms.
    pub fn stats(&self) -> ServiceStats {
        self.shared.scheduler.stats(self.shared.config.workers)
    }

    /// Warm workspaces created by the pool so far (one per worker once the
    /// pool is warm — observability for the allocation-free guarantee).
    pub fn workspaces_created(&self) -> usize {
        self.shared.pool.created()
    }

    /// Graceful shutdown: stop admitting, let the workers finish every
    /// admitted job, and join the pool.
    ///
    /// If the queue has not fully drained within `drain`, every still-queued
    /// job is force-completed with a `cancelled` fault, running jobs get
    /// their cancellation flags raised (they abort at the next sweep
    /// boundary), and the workers are then joined — so shutdown is bounded
    /// even with wedged traffic. Idempotent: a second call returns
    /// immediately.
    pub fn shutdown(&self, drain: Duration) -> DrainReport {
        self.shared.scheduler.close();
        let drained_cleanly = self.shared.scheduler.wait_idle(drain);
        let mut cancelled = 0;
        if !drained_cleanly {
            cancelled = self.shared.scheduler.cancel_pending();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("worker handles lock"));
        for h in handles {
            let _ = h.join();
        }
        DrainReport { drained_cleanly, cancelled }
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        // Last-resort cleanup for services dropped without an explicit
        // shutdown; gives in-flight work a short bounded drain.
        self.shutdown(Duration::from_secs(1));
    }
}

/// One worker: checkout a workspace once (plus a lazy batch workspace for
/// bulk jobs), then pull-solve-report until the scheduler signals shutdown.
/// The scalar workspace goes back to the pool warm, so a later restart (or
/// test harness reuse) skips the warm-up allocations; the batch workspace
/// stays worker-local and warm for the worker's lifetime, so steady bulk
/// traffic of one shape allocates nothing after the first job.
fn worker_loop(index: usize, shared: &Shared) {
    let mut ws = shared.pool.checkout();
    let mut batch_ws = hj_core::BatchWorkspace::new();
    while let Some(job) = shared.scheduler.next_job() {
        shared.emit(TraceEvent::JobDispatched { job: job.id, worker: index, attempt: job.attempt });
        let started = Instant::now();
        match &job.spec.payload {
            JobPayload::Single(_) => {
                let result = run_job(shared, &job, &mut ws);
                let seconds = started.elapsed().as_secs_f64();
                match result {
                    Ok(values) => {
                        shared.emit(TraceEvent::JobCompleted {
                            job: job.id,
                            worker: index,
                            seconds,
                            sweeps: values.sweeps,
                        });
                        shared.scheduler.complete(job, JobResult::Single(Ok(values)));
                    }
                    Err(err) => {
                        let retryable = should_retry(&err);
                        if retryable && job.attempt < shared.config.max_attempts {
                            let next = job.attempt + 1;
                            shared
                                .scheduler
                                .requeue(job, backoff_delay(shared.config.retry_backoff, next));
                        } else {
                            shared.emit(TraceEvent::JobFaulted {
                                job: job.id,
                                worker: index,
                                fault: fault_kind(&err),
                                attempts: job.attempt,
                            });
                            shared.scheduler.complete(job, JobResult::Single(Err(err)));
                        }
                    }
                }
            }
            JobPayload::Bulk(_) => {
                // Bulk jobs are abort-only per slot (no whole-batch retry:
                // re-running every solved neighbor to retry one flaky slot
                // would multiply the batch's latency), so the first outcome
                // is terminal.
                let results = run_bulk(shared, &job, &mut batch_ws);
                let seconds = started.elapsed().as_secs_f64();
                let sweeps = results.iter().filter_map(|r| r.as_ref().ok().map(|v| v.sweeps)).max();
                match sweeps {
                    Some(sweeps) => shared.emit(TraceEvent::JobCompleted {
                        job: job.id,
                        worker: index,
                        seconds,
                        sweeps,
                    }),
                    None => {
                        if let Some(err) = results.iter().find_map(|r| r.as_ref().err()) {
                            shared.emit(TraceEvent::JobFaulted {
                                job: job.id,
                                worker: index,
                                fault: fault_kind(err),
                                attempts: job.attempt,
                            });
                        }
                    }
                }
                shared.scheduler.complete(job, JobResult::Bulk(results));
            }
        }
    }
    shared.pool.checkin(ws);
}

/// Solve one dispatched job on the worker's workspace. The job's deadline
/// and cancellation flag become the solve's [`SolveBudget`], checked at
/// every sweep boundary — an already-expired deadline faults before any
/// sweep runs and the workspace comes back clean.
fn run_job(
    shared: &Shared,
    job: &QueuedJob,
    ws: &mut hj_core::SweepWorkspace,
) -> Result<hj_core::SingularValues, SvdError> {
    let JobPayload::Single(matrix) = &job.spec.payload else {
        unreachable!("run_job only dispatches single payloads");
    };
    solver_for(shared, job).singular_values_with_workspace(matrix, ws)
}

/// Solve one dispatched bulk job on the worker's batch workspace. Uniform
/// small batches ride the SoA batch engine; anything else takes the looped
/// path. The job-level deadline/cancellation budget covers the whole batch:
/// on expiry every still-unsolved slot faults, already-converged slots keep
/// their results.
fn run_bulk(
    shared: &Shared,
    job: &QueuedJob,
    ws: &mut hj_core::BatchWorkspace,
) -> Vec<Result<hj_core::SingularValues, SvdError>> {
    let JobPayload::Bulk(matrices) = &job.spec.payload else {
        unreachable!("run_bulk only dispatches bulk payloads");
    };
    solver_for(shared, job).singular_values_batch_with_workspace(matrices, ws)
}

/// The configured solver for a dispatched job: base options with the job's
/// engine/ordering override and its deadline + cancellation flag as the
/// solve budget.
fn solver_for(shared: &Shared, job: &QueuedJob) -> HestenesSvd {
    let mut options = shared.config.options;
    options.engine = job.spec.engine;
    options.ordering = job.spec.ordering;
    let mut budget = match job.spec.deadline {
        Some(deadline) => SolveBudget::with_deadline(deadline),
        None => SolveBudget::unlimited(),
    };
    budget = budget.cancelled_by(Arc::clone(&job.cancel));
    HestenesSvd::new(options).with_budget(budget)
}

/// Stable fault-class string for an error's trace event.
fn fault_kind(err: &SvdError) -> &'static str {
    match err {
        SvdError::SolveFault { fault, .. } => fault.kind(),
        SvdError::EmptyInput => "empty-input",
        SvdError::NonFiniteInput => "non-finite-input",
        SvdError::EngineNeedsRoundRobin => "engine-needs-round-robin",
        SvdError::OrderingUnsupported { .. } => "ordering-unsupported",
        SvdError::ZeroSweepBudget => "zero-sweep-budget",
        SvdError::TruncatedTailNotNegligible => "truncated-tail",
    }
}

/// Convenience for tests: has the ticket's cancel flag been raised?
pub(crate) fn _cancel_raised(ticket: &JobTicket) -> bool {
    ticket.cancel.load(AtomicOrdering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use hj_core::recovery::Fault;
    use hj_matrix::gen;

    #[test]
    fn backoff_doubles_and_saturates() {
        let base = Duration::from_millis(10);
        assert_eq!(backoff_delay(base, 2), Duration::from_millis(10));
        assert_eq!(backoff_delay(base, 3), Duration::from_millis(20));
        assert_eq!(backoff_delay(base, 4), Duration::from_millis(40));
        // Far past the cap: no overflow, monotone plateau.
        assert_eq!(backoff_delay(base, 100), backoff_delay(base, 18));
        assert_eq!(backoff_delay(Duration::MAX, 10), Duration::MAX);
    }

    #[test]
    fn retry_classification_follows_fault_kind() {
        let retryable = SvdError::SolveFault {
            fault: Fault::ConvergenceStall { sweep: 3, stalled_sweeps: 2 },
            sweeps_completed: 3,
            recoveries: 1,
        };
        assert!(should_retry(&retryable));
        let deadline = SvdError::SolveFault {
            fault: Fault::DeadlineExceeded { sweep: 1 },
            sweeps_completed: 0,
            recoveries: 0,
        };
        assert!(!should_retry(&deadline));
        let cancelled = SvdError::SolveFault {
            fault: Fault::Cancelled { sweep: 1 },
            sweeps_completed: 0,
            recoveries: 0,
        };
        assert!(!should_retry(&cancelled));
        assert!(!should_retry(&SvdError::EmptyInput));
        assert!(!should_retry(&SvdError::NonFiniteInput));
    }

    #[test]
    fn service_solves_and_matches_direct_call() {
        let service = SolveService::start(ServiceConfig::default());
        let a = gen::uniform(30, 8, 42);
        let direct = HestenesSvd::new(SvdOptions::default()).singular_values(&a).unwrap();
        let outcome = service.solve(JobSpec::new(a)).unwrap();
        let served = outcome.result.into_single().unwrap();
        assert_eq!(outcome.attempts, 1);
        for (x, y) in served.values.iter().zip(direct.values.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "service result must be bit-identical");
        }
        let report = service.shutdown(Duration::from_secs(5));
        assert!(report.drained_cleanly);
        assert_eq!(report.cancelled, 0);
        let stats = service.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.faulted, 0);
    }

    #[test]
    fn expired_deadline_faults_without_running_a_sweep() {
        let service = SolveService::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let spec = JobSpec::new(gen::uniform(40, 12, 7))
            .deadline(Instant::now() - Duration::from_millis(5))
            .priority(Priority::Interactive);
        let outcome = service.solve(spec).unwrap();
        match outcome.result.into_single() {
            Err(SvdError::SolveFault { fault: Fault::DeadlineExceeded { .. }, .. }) => {}
            other => panic!("expected deadline fault, got {other:?}"),
        }
        // The worker and its workspace survive the fault and serve the next
        // job normally.
        let ok = service.solve(JobSpec::new(gen::uniform(20, 5, 8))).unwrap();
        assert!(ok.result.is_ok());
        service.shutdown(Duration::from_secs(5));
    }

    #[test]
    fn input_errors_are_not_retried() {
        let service = SolveService::start(ServiceConfig::default());
        let outcome = service.solve(JobSpec::new(hj_matrix::Matrix::zeros(0, 3))).unwrap();
        assert!(matches!(outcome.result.into_single(), Err(SvdError::EmptyInput)));
        assert_eq!(outcome.attempts, 1);
        service.shutdown(Duration::from_secs(2));
        assert_eq!(service.stats().retries, 0);
    }

    #[test]
    fn cancellation_via_ticket_aborts_the_job() {
        // One worker pinned by a first job keeps the second queued long
        // enough to cancel it deterministically.
        let service = SolveService::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let blocker = service.submit(JobSpec::new(gen::uniform(120, 60, 1))).unwrap();
        let victim = service.submit(JobSpec::new(gen::uniform(60, 30, 2))).unwrap();
        victim.cancel();
        assert!(super::_cancel_raised(&victim));
        let outcome = victim.wait();
        match outcome.result.into_single() {
            Err(SvdError::SolveFault { fault: Fault::Cancelled { .. }, .. }) => {}
            other => panic!("expected cancelled fault, got {other:?}"),
        }
        assert!(blocker.wait().result.is_ok());
        service.shutdown(Duration::from_secs(5));
    }

    #[test]
    fn bulk_jobs_solve_every_slot_with_isolation() {
        let service = SolveService::start(ServiceConfig::default());
        let mut mats: Vec<_> = (0..8).map(|k| gen::uniform(20, 8, 60 + k)).collect();
        let mut poisoned = hj_matrix::Matrix::zeros(20, 8);
        poisoned.set(1, 1, f64::NAN);
        mats[3] = poisoned;
        let direct = HestenesSvd::new(SvdOptions::default()).singular_values_batch(&mats);
        let outcome = service.solve(JobSpec::bulk(mats.clone())).unwrap();
        let slots = outcome.result.into_bulk();
        assert_eq!(slots.len(), mats.len());
        assert!(matches!(slots[3], Err(SvdError::NonFiniteInput)));
        for (k, (served, local)) in slots.iter().zip(&direct).enumerate() {
            if k == 3 {
                continue;
            }
            let served = served.as_ref().unwrap();
            let local = local.as_ref().unwrap();
            assert_eq!(served.values.len(), local.values.len(), "slot {k}");
            for (x, y) in served.values.iter().zip(&local.values) {
                assert_eq!(x.to_bits(), y.to_bits(), "slot {k} must match the local batch path");
            }
        }
        // One queue entry, one completion — but the whole batch is counted
        // faulted because a slot failed.
        let stats = service.stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.faulted, 1);
        service.shutdown(Duration::from_secs(5));
    }

    #[test]
    fn shutdown_is_idempotent_and_bounded() {
        let service = SolveService::start(ServiceConfig::default());
        let r1 = service.shutdown(Duration::from_secs(1));
        assert!(r1.drained_cleanly);
        let r2 = service.shutdown(Duration::from_secs(1));
        assert!(r2.drained_cleanly, "second shutdown is a no-op");
        assert!(matches!(
            service.submit(JobSpec::new(gen::uniform(4, 2, 1))),
            Err(RejectReason::Draining)
        ));
    }
}
