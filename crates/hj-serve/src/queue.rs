//! The bounded admission queue and deadline-aware scheduler.
//!
//! One mutex guards the whole scheduling state (queue, in-flight registry,
//! counters); two condvars signal it — `work` wakes workers when a job
//! becomes runnable, `idle` wakes the drain waiter when the last job
//! finishes. Dispatch order is strict priority between classes and
//! earliest-deadline-first within a class (deadline-free jobs sort last,
//! FIFO by admission sequence). Deferred retries carry a `not_before`
//! timestamp and are invisible to dispatch until it passes.
//!
//! Admission control never blocks: a full queue, a tenant at its cap, or a
//! draining service answers with a structured [`RejectReason`] immediately.

use crate::job::{
    CompletionSlot, JobOutcome, JobPayload, JobResult, JobSpec, JobTicket, RejectReason,
    PRIORITY_CLASSES,
};
use crate::stats::{LatencyHistogram, ServiceStats};
use hj_core::recovery::Fault;
use hj_core::{SvdError, TraceEvent};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One admitted job sitting in the queue (or being carried by a worker).
pub(crate) struct QueuedJob {
    /// Service-assigned id.
    pub id: u64,
    /// The submission.
    pub spec: JobSpec,
    /// Where the terminal outcome goes.
    pub slot: CompletionSlot,
    /// Cooperative cancellation flag shared with the [`JobTicket`].
    pub cancel: Arc<AtomicBool>,
    /// 1-based attempt number the next dispatch will be.
    pub attempt: usize,
    /// Admission sequence (EDF tiebreak — FIFO within equal deadlines).
    pub seq: u64,
    /// Admission timestamp (latency accounting).
    pub submitted: Instant,
    /// Retry backoff gate: not dispatchable before this instant.
    pub not_before: Option<Instant>,
}

impl QueuedJob {
    /// EDF sort key: priority class first, then deadline (`None` greatest),
    /// then admission order.
    fn key(&self) -> (usize, Option<Instant>, u64) {
        (self.spec.priority.index(), self.spec.deadline, self.seq)
    }

    /// Whether the backoff gate (if any) has passed.
    fn eligible(&self, now: Instant) -> bool {
        self.not_before.is_none_or(|t| t <= now)
    }
}

/// Compare EDF keys with `None` deadlines sorting **after** every concrete
/// deadline (a job with no deadline is never more urgent than one with
/// one).
fn key_less(a: &(usize, Option<Instant>, u64), b: &(usize, Option<Instant>, u64)) -> bool {
    if a.0 != b.0 {
        return a.0 < b.0;
    }
    match (a.1, b.1) {
        (Some(x), Some(y)) if x != y => x < y,
        (Some(_), None) => true,
        (None, Some(_)) => false,
        _ => a.2 < b.2,
    }
}

struct State {
    queue: Vec<QueuedJob>,
    admitting: bool,
    running: usize,
    /// Cancellation flags of jobs currently on workers, for drain-time
    /// cancellation.
    running_cancels: HashMap<u64, Arc<AtomicBool>>,
    /// Queued + running jobs per tenant (the in-flight cap's measure).
    tenants: HashMap<String, usize>,
    next_id: u64,
    next_seq: u64,
    admitted: u64,
    rejected_queue_full: u64,
    rejected_tenant_cap: u64,
    rejected_draining: u64,
    completed: u64,
    faulted: u64,
    retries: u64,
    cancelled_at_drain: u64,
    latency: [LatencyHistogram; PRIORITY_CLASSES],
}

impl State {
    fn terminal(&mut self, tenant: &str) {
        if let Some(n) = self.tenants.get_mut(tenant) {
            *n -= 1;
            if *n == 0 {
                self.tenants.remove(tenant);
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.running == 0
    }
}

/// The scheduler: shared between the service handle and its workers.
pub(crate) struct Scheduler {
    capacity: usize,
    /// Per-tenant in-flight cap; 0 = unlimited.
    tenant_cap: usize,
    state: Mutex<State>,
    work: Condvar,
    idle: Condvar,
}

impl Scheduler {
    pub fn new(capacity: usize, tenant_cap: usize) -> Scheduler {
        Scheduler {
            capacity: capacity.max(1),
            tenant_cap,
            state: Mutex::new(State {
                queue: Vec::with_capacity(capacity.max(1)),
                admitting: true,
                running: 0,
                running_cancels: HashMap::new(),
                tenants: HashMap::new(),
                next_id: 1,
                next_seq: 0,
                admitted: 0,
                rejected_queue_full: 0,
                rejected_tenant_cap: 0,
                rejected_draining: 0,
                completed: 0,
                faulted: 0,
                retries: 0,
                cancelled_at_drain: 0,
                latency: [LatencyHistogram::new(); PRIORITY_CLASSES],
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        }
    }

    /// Admission control. Returns the ticket (or structured reject) plus
    /// the trace event describing the decision, for the caller to emit
    /// outside the scheduler lock.
    pub fn submit(&self, spec: JobSpec) -> (Result<JobTicket, RejectReason>, TraceEvent) {
        let mut st = self.state.lock().expect("scheduler lock");
        if !st.admitting {
            st.rejected_draining += 1;
            let depth = st.queue.len();
            return (
                Err(RejectReason::Draining),
                TraceEvent::JobRejected { reason: "draining", queue_depth: depth },
            );
        }
        if st.queue.len() >= self.capacity {
            st.rejected_queue_full += 1;
            let depth = st.queue.len();
            return (
                Err(RejectReason::QueueFull { capacity: self.capacity }),
                TraceEvent::JobRejected { reason: "queue-full", queue_depth: depth },
            );
        }
        if self.tenant_cap > 0 {
            let in_flight = st.tenants.get(&spec.tenant).copied().unwrap_or(0);
            if in_flight >= self.tenant_cap {
                st.rejected_tenant_cap += 1;
                let depth = st.queue.len();
                return (
                    Err(RejectReason::TenantCap { cap: self.tenant_cap }),
                    TraceEvent::JobRejected { reason: "tenant-cap", queue_depth: depth },
                );
            }
        }
        let id = st.next_id;
        st.next_id += 1;
        let seq = st.next_seq;
        st.next_seq += 1;
        *st.tenants.entry(spec.tenant.clone()).or_insert(0) += 1;
        st.admitted += 1;
        let class = spec.priority.name();
        let slot: CompletionSlot = Arc::new((Mutex::new(None), Condvar::new()));
        let cancel = Arc::new(AtomicBool::new(false));
        st.queue.push(QueuedJob {
            id,
            spec,
            slot: Arc::clone(&slot),
            cancel: Arc::clone(&cancel),
            attempt: 1,
            seq,
            submitted: Instant::now(),
            not_before: None,
        });
        let depth = st.queue.len();
        drop(st);
        self.work.notify_one();
        (
            Ok(JobTicket { id, slot, cancel }),
            TraceEvent::JobAdmitted { job: id, class, queue_depth: depth },
        )
    }

    /// Block until a job is dispatchable and claim it, or return `None`
    /// when the service has shut down and no work can ever arrive again
    /// (the worker-exit signal).
    pub fn next_job(&self) -> Option<QueuedJob> {
        let mut st = self.state.lock().expect("scheduler lock");
        loop {
            let now = Instant::now();
            let mut best: Option<usize> = None;
            for (i, job) in st.queue.iter().enumerate() {
                if !job.eligible(now) {
                    continue;
                }
                match best {
                    None => best = Some(i),
                    Some(b) if key_less(&job.key(), &st.queue[b].key()) => best = Some(i),
                    _ => {}
                }
            }
            if let Some(i) = best {
                let job = st.queue.swap_remove(i);
                st.running += 1;
                st.running_cancels.insert(job.id, Arc::clone(&job.cancel));
                return Some(job);
            }
            // Nothing dispatchable. Three cases: fully shut down (exit),
            // deferred retries pending (timed wait), or simply empty
            // (indefinite wait). While peers are still running we must keep
            // waiting even with an empty queue — a running job may requeue
            // itself for retry.
            if st.queue.is_empty() && st.running == 0 && !st.admitting {
                return None;
            }
            let nearest = st.queue.iter().filter_map(|j| j.not_before).min();
            st = match nearest {
                Some(t) => {
                    let wait =
                        t.saturating_duration_since(Instant::now()).max(Duration::from_millis(1));
                    self.work.wait_timeout(st, wait).expect("scheduler wait").0
                }
                None => self.work.wait(st).expect("scheduler wait"),
            };
        }
    }

    /// Report a terminal outcome for a dispatched job: updates counters and
    /// latency, releases the tenant slot, fills the completion slot, and
    /// wakes anyone waiting for idle. A bulk job counts as completed only
    /// when every slot solved; any failed slot marks the whole job faulted
    /// in the counters (the per-slot results still carry the detail).
    pub fn complete(&self, job: QueuedJob, result: JobResult) {
        let wall = job.submitted.elapsed().as_secs_f64();
        let success = result.is_ok();
        {
            let mut st = self.state.lock().expect("scheduler lock");
            st.running -= 1;
            st.running_cancels.remove(&job.id);
            st.terminal(&job.spec.tenant);
            if success {
                st.completed += 1;
            } else {
                st.faulted += 1;
            }
            st.latency[job.spec.priority.index()].record(wall);
            if st.is_idle() {
                self.idle.notify_all();
            }
        }
        // Peers blocked on an empty queue re-evaluate their exit condition.
        self.work.notify_all();
        fill_slot(
            &job.slot,
            JobOutcome { job: job.id, result, attempts: job.attempt, wall_seconds: wall },
        );
    }

    /// Put a faulted-but-retryable job back in the queue behind a backoff
    /// gate. The tenant slot stays held (the job is still in flight).
    pub fn requeue(&self, mut job: QueuedJob, backoff: Duration) {
        let now = Instant::now();
        job.attempt += 1;
        job.not_before = Some(now.checked_add(backoff).unwrap_or(now));
        {
            let mut st = self.state.lock().expect("scheduler lock");
            st.running -= 1;
            st.running_cancels.remove(&job.id);
            st.retries += 1;
            // Retries bypass the capacity check: the job was admitted once
            // and drain guarantees cover it, so bouncing it now would turn
            // a transient fault into a spurious reject.
            st.queue.push(job);
        }
        self.work.notify_all();
    }

    /// Stop admitting new jobs. Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("scheduler lock").admitting = false;
        self.work.notify_all();
    }

    /// Wait until every admitted job has reached a terminal state, up to
    /// `deadline`. Returns true on full drain.
    pub fn wait_idle(&self, deadline: Duration) -> bool {
        let until = Instant::now() + deadline;
        let mut st = self.state.lock().expect("scheduler lock");
        while !st.is_idle() {
            let now = Instant::now();
            if now >= until {
                return false;
            }
            st = self.idle.wait_timeout(st, until - now).expect("scheduler wait").0;
        }
        true
    }

    /// Drain-deadline overrun path: cancel every queued job (each completes
    /// with a `cancelled` fault without running) and raise the cancel flag
    /// of every running job so it aborts at its next sweep boundary.
    /// Returns the number of queued jobs cancelled.
    pub fn cancel_pending(&self) -> usize {
        let drained: Vec<QueuedJob>;
        {
            let mut st = self.state.lock().expect("scheduler lock");
            drained = std::mem::take(&mut st.queue);
            for job in &drained {
                st.terminal(&job.spec.tenant);
                st.cancelled_at_drain += 1;
            }
            for flag in st.running_cancels.values() {
                flag.store(true, Ordering::Relaxed);
            }
            if st.is_idle() {
                self.idle.notify_all();
            }
        }
        self.work.notify_all();
        let n = drained.len();
        for job in drained {
            let wall = job.submitted.elapsed().as_secs_f64();
            let cancelled = || {
                Err(SvdError::SolveFault {
                    fault: Fault::Cancelled { sweep: 0 },
                    sweeps_completed: 0,
                    recoveries: 0,
                })
            };
            // Shape the cancellation like the submission: a bulk job's
            // waiter gets one cancelled status per slot.
            let result = match &job.spec.payload {
                JobPayload::Single(_) => JobResult::Single(cancelled()),
                JobPayload::Bulk(mats) => {
                    JobResult::Bulk((0..mats.len()).map(|_| cancelled()).collect())
                }
            };
            fill_slot(
                &job.slot,
                JobOutcome { job: job.id, result, attempts: job.attempt, wall_seconds: wall },
            );
        }
        n
    }

    /// Jobs queued (admitted, not dispatched) right now.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("scheduler lock").queue.len()
    }

    /// Snapshot the counters into a [`ServiceStats`].
    pub fn stats(&self, workers: usize) -> ServiceStats {
        let st = self.state.lock().expect("scheduler lock");
        ServiceStats {
            workers,
            queue_capacity: self.capacity,
            queue_depth: st.queue.len(),
            running: st.running,
            admitted: st.admitted,
            rejected_queue_full: st.rejected_queue_full,
            rejected_tenant_cap: st.rejected_tenant_cap,
            rejected_draining: st.rejected_draining,
            completed: st.completed,
            faulted: st.faulted,
            retries: st.retries,
            cancelled_at_drain: st.cancelled_at_drain,
            latency: st.latency,
        }
    }
}

fn fill_slot(slot: &CompletionSlot, outcome: JobOutcome) {
    let (lock, cv) = &**slot;
    *lock.lock().expect("completion slot lock") = Some(outcome);
    cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use hj_matrix::Matrix;

    fn spec() -> JobSpec {
        JobSpec::new(Matrix::zeros(2, 2))
    }

    #[test]
    fn edf_orders_priority_then_deadline_then_seq() {
        let now = Instant::now();
        let sched = Scheduler::new(8, 0);
        let far = now + Duration::from_secs(60);
        let near = now + Duration::from_secs(10);
        // Submit out of dispatch order.
        sched.submit(spec().priority(Priority::Batch).deadline(near)).0.unwrap();
        sched.submit(spec().priority(Priority::Interactive)).0.unwrap(); // no deadline
        sched.submit(spec().priority(Priority::Interactive).deadline(far)).0.unwrap();
        sched.submit(spec().priority(Priority::Interactive).deadline(near)).0.unwrap();
        sched.submit(spec().priority(Priority::Batch)).0.unwrap();
        let order: Vec<u64> = (0..5).map(|_| sched.next_job().unwrap().id).collect();
        // Interactive near-deadline, interactive far-deadline, interactive
        // no-deadline, then batch near-deadline, batch no-deadline.
        assert_eq!(order, vec![4, 3, 2, 1, 5]);
    }

    #[test]
    fn admission_rejects_are_structured_and_counted() {
        let sched = Scheduler::new(2, 1);
        let t1 = sched.submit(spec().tenant("a")).0.unwrap();
        assert_eq!(t1.id(), 1);
        // Tenant cap (1) before queue cap (2).
        let (r, ev) = sched.submit(spec().tenant("a"));
        assert_eq!(r.unwrap_err(), RejectReason::TenantCap { cap: 1 });
        assert_eq!(ev.name(), "job_rejected");
        sched.submit(spec().tenant("b")).0.unwrap();
        let (r, _) = sched.submit(spec().tenant("c"));
        assert_eq!(r.unwrap_err(), RejectReason::QueueFull { capacity: 2 });
        sched.close();
        let (r, _) = sched.submit(spec().tenant("d"));
        assert_eq!(r.unwrap_err(), RejectReason::Draining);
        let stats = sched.stats(0);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected_queue_full, 1);
        assert_eq!(stats.rejected_tenant_cap, 1);
        assert_eq!(stats.rejected_draining, 1);
        assert_eq!(stats.rejected(), 3);
    }

    #[test]
    fn tenant_slot_released_on_completion() {
        let sched = Scheduler::new(8, 1);
        sched.submit(spec().tenant("a")).0.unwrap();
        let job = sched.next_job().unwrap();
        // Still in flight: the cap holds.
        assert!(sched.submit(spec().tenant("a")).0.is_err());
        sched.complete(job, JobResult::Single(Err(SvdError::EmptyInput)));
        // Terminal: the slot is free again.
        assert!(sched.submit(spec().tenant("a")).0.is_ok());
    }

    #[test]
    fn deferred_retry_becomes_eligible_after_backoff() {
        let sched = Scheduler::new(8, 0);
        sched.submit(spec()).0.unwrap();
        let job = sched.next_job().unwrap();
        let id = job.id;
        sched.requeue(job, Duration::from_millis(20));
        assert_eq!(sched.depth(), 1);
        let start = Instant::now();
        let job = sched.next_job().unwrap();
        assert_eq!(job.id, id);
        assert_eq!(job.attempt, 2);
        assert!(start.elapsed() >= Duration::from_millis(15), "backoff gate respected");
        assert_eq!(sched.stats(0).retries, 1);
    }

    #[test]
    fn cancelled_bulk_jobs_report_every_slot() {
        let sched = Scheduler::new(8, 0);
        let t = sched.submit(JobSpec::bulk(vec![Matrix::zeros(2, 2); 3])).0.unwrap();
        sched.close();
        assert_eq!(sched.cancel_pending(), 1, "a bulk job is one queue entry");
        let slots = t.wait().result.into_bulk();
        assert_eq!(slots.len(), 3);
        for r in slots {
            assert!(matches!(r, Err(SvdError::SolveFault { fault: Fault::Cancelled { .. }, .. })));
        }
    }

    #[test]
    fn cancel_pending_completes_queued_jobs_with_cancelled_fault() {
        let sched = Scheduler::new(8, 0);
        let t = sched.submit(spec()).0.unwrap();
        sched.close();
        assert_eq!(sched.cancel_pending(), 1);
        let outcome = t.wait();
        match outcome.result.into_single() {
            Err(SvdError::SolveFault { fault: Fault::Cancelled { sweep: 0 }, .. }) => {}
            other => panic!("expected cancelled fault, got {other:?}"),
        }
        assert!(sched.wait_idle(Duration::from_millis(100)));
        assert_eq!(sched.stats(0).cancelled_at_drain, 1);
        assert!(sched.next_job().is_none(), "shut-down scheduler releases workers");
    }
}
