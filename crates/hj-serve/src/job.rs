//! Job vocabulary: what a caller submits, how it is prioritized, and how the
//! result comes back.

use hj_core::{SingularValues, SvdError};
use hj_matrix::Matrix;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hj_core::{EngineKind, OrderingKind};

/// Priority class of a job. Dispatch is strict-priority between classes and
/// earliest-deadline-first within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Latency-sensitive traffic; always dispatched before batch work.
    #[default]
    Interactive,
    /// Throughput traffic; runs when no interactive job is eligible.
    Batch,
}

/// Number of priority classes (sizes the per-class stats arrays).
pub const PRIORITY_CLASSES: usize = 2;

impl Priority {
    /// Parse a CLI spelling: `interactive` or `batch`.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "interactive" => Some(Priority::Interactive),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }

    /// Canonical lowercase name (round-trips through [`Priority::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }

    /// Dense index for per-class arrays (`0` = highest priority).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
        }
    }

    /// Inverse of [`Priority::index`].
    pub fn from_index(i: usize) -> Option<Priority> {
        match i {
            0 => Some(Priority::Interactive),
            1 => Some(Priority::Batch),
            _ => None,
        }
    }
}

/// What one job asks the workers to solve: a single matrix, or a whole
/// batch of independent matrices carried as one queue entry.
///
/// A bulk job occupies **one** queue slot, counts once against its tenant's
/// in-flight cap, and completes as one unit — the per-problem fan-out
/// happens inside the worker via [`hj_core::HestenesSvd::singular_values_batch`]
/// semantics (uniform small batches ride the SoA batch engine), with
/// per-problem error isolation in the result.
#[derive(Debug, Clone)]
pub enum JobPayload {
    /// One matrix, one spectrum.
    Single(Matrix),
    /// Many independent matrices solved as one job, results in slot order.
    Bulk(Vec<Matrix>),
}

impl JobPayload {
    /// Number of problems this payload carries (1 for a single).
    pub fn problems(&self) -> usize {
        match self {
            JobPayload::Single(_) => 1,
            JobPayload::Bulk(mats) => mats.len(),
        }
    }
}

/// One solve request, as admitted into the service queue.
///
/// The builder methods cover the optional fields; a bare
/// [`JobSpec::new`] is an interactive, deadline-free, anonymous-tenant job
/// on the sequential engine.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// What to solve: one matrix or a bulk batch.
    pub payload: JobPayload,
    /// Which sweep engine runs the solve.
    pub engine: EngineKind,
    /// Which pair-ordering strategy plans the sweeps.
    pub ordering: OrderingKind,
    /// Priority class for dispatch ordering.
    pub priority: Priority,
    /// Optional absolute wall-clock deadline; translated into the solve's
    /// [`hj_core::SolveBudget`] and used as the EDF sort key.
    pub deadline: Option<Instant>,
    /// Tenant identity for per-tenant in-flight caps (empty = anonymous,
    /// which is itself a tenant).
    pub tenant: String,
}

impl JobSpec {
    /// An interactive, deadline-free job for `matrix` on the sequential
    /// engine under the anonymous tenant.
    pub fn new(matrix: Matrix) -> JobSpec {
        JobSpec::with_payload(JobPayload::Single(matrix))
    }

    /// A bulk job solving every matrix of `matrices` as one queue entry
    /// (defaults match [`JobSpec::new`]; batch jobs often also want
    /// [`JobSpec::priority`]​`(Priority::Batch)`).
    pub fn bulk(matrices: Vec<Matrix>) -> JobSpec {
        JobSpec::with_payload(JobPayload::Bulk(matrices))
    }

    fn with_payload(payload: JobPayload) -> JobSpec {
        JobSpec {
            payload,
            engine: EngineKind::Sequential,
            ordering: OrderingKind::default(),
            priority: Priority::Interactive,
            deadline: None,
            tenant: String::new(),
        }
    }

    /// Select the sweep engine.
    pub fn engine(mut self, engine: EngineKind) -> JobSpec {
        self.engine = engine;
        self
    }

    /// Select the pair-ordering strategy.
    pub fn ordering(mut self, ordering: OrderingKind) -> JobSpec {
        self.ordering = ordering;
        self
    }

    /// Select the priority class.
    pub fn priority(mut self, priority: Priority) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Set an absolute deadline.
    pub fn deadline(mut self, deadline: Instant) -> JobSpec {
        self.deadline = Some(deadline);
        self
    }

    /// Set a deadline `timeout` from now (saturating, like
    /// [`hj_core::SolveBudget::with_timeout`]).
    pub fn deadline_in(mut self, timeout: Duration) -> JobSpec {
        let now = Instant::now();
        self.deadline = Some(now.checked_add(timeout).unwrap_or(now));
        self
    }

    /// Set the tenant identity.
    pub fn tenant(mut self, tenant: impl Into<String>) -> JobSpec {
        self.tenant = tenant.into();
        self
    }
}

/// Why admission control turned a submission away. Every rejection is
/// structured and immediate — a full service never blocks or hangs the
/// submitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is at capacity.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The submitting tenant is already at its in-flight cap.
    TenantCap {
        /// The configured per-tenant cap that was hit.
        cap: usize,
    },
    /// The service is draining for shutdown and admits nothing new.
    Draining,
}

impl RejectReason {
    /// Stable machine-readable name (used in trace events, stats, and the
    /// wire protocol's error frames).
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue-full",
            RejectReason::TenantCap { .. } => "tenant-cap",
            RejectReason::Draining => "draining",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::TenantCap { cap } => {
                write!(f, "tenant at its in-flight cap ({cap})")
            }
            RejectReason::Draining => write!(f, "service is draining"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// Terminal result of a job, shaped like its payload.
// One `JobResult` exists per job and is consumed immediately by the
// responder, so the `Single`/`Bulk` size gap never multiplies across a
// collection — boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum JobResult {
    /// Outcome of a [`JobPayload::Single`] job — bit-identical to a direct
    /// [`hj_core::HestenesSvd::singular_values`] call on the same matrix
    /// and engine.
    Single(Result<SingularValues, SvdError>),
    /// Per-problem outcomes of a [`JobPayload::Bulk`] job, in slot order.
    /// A failed slot (bad input, mid-solve fault) never disturbs its
    /// neighbors.
    Bulk(Vec<Result<SingularValues, SvdError>>),
}

impl JobResult {
    /// True when every problem solved (all slots `Ok` for a bulk job).
    pub fn is_ok(&self) -> bool {
        match self {
            JobResult::Single(r) => r.is_ok(),
            JobResult::Bulk(rs) => rs.iter().all(Result::is_ok),
        }
    }

    /// Unwrap a single-solve result.
    ///
    /// # Panics
    /// Panics if the job was a bulk submission.
    pub fn into_single(self) -> Result<SingularValues, SvdError> {
        match self {
            JobResult::Single(r) => r,
            JobResult::Bulk(_) => panic!("bulk job result treated as a single solve"),
        }
    }

    /// Unwrap a bulk-solve result.
    ///
    /// # Panics
    /// Panics if the job was a single submission.
    pub fn into_bulk(self) -> Vec<Result<SingularValues, SvdError>> {
        match self {
            JobResult::Bulk(rs) => rs,
            JobResult::Single(_) => panic!("single job result treated as a bulk solve"),
        }
    }
}

/// Terminal state of one admitted job.
#[derive(Debug)]
pub struct JobOutcome {
    /// Service-assigned job id.
    pub job: u64,
    /// The result, shaped like the submission ([`JobResult::into_single`] /
    /// [`JobResult::into_bulk`]).
    pub result: JobResult,
    /// Attempts consumed (1 for a first-try success; more after retries).
    pub attempts: usize,
    /// Wall-clock seconds from admission to completion (queue wait
    /// included).
    pub wall_seconds: f64,
}

/// Shared completion slot: the worker fills it once; the submitter waits on
/// it.
pub(crate) type CompletionSlot = Arc<(Mutex<Option<JobOutcome>>, Condvar)>;

/// The submitter's handle to an admitted job: wait for the outcome, or
/// cancel cooperatively.
#[derive(Debug)]
pub struct JobTicket {
    pub(crate) id: u64,
    pub(crate) slot: CompletionSlot,
    pub(crate) cancel: Arc<AtomicBool>,
}

impl JobTicket {
    /// The service-assigned job id (monotone per service instance).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Raise the job's cancellation flag. Cooperative: a queued job faults
    /// with `cancelled` as soon as a worker picks it up; a running job
    /// aborts at its next sweep boundary. The outcome still arrives through
    /// [`JobTicket::wait`].
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Block until the job reaches a terminal state.
    pub fn wait(self) -> JobOutcome {
        let (lock, cv) = &*self.slot;
        let mut guard = lock.lock().expect("completion slot lock");
        loop {
            if let Some(outcome) = guard.take() {
                return outcome;
            }
            guard = cv.wait(guard).expect("completion slot wait");
        }
    }

    /// Block until the job completes or `timeout` passes; `Err(self)` gives
    /// the ticket back on timeout so the caller can keep waiting or cancel.
    pub fn wait_timeout(self, timeout: Duration) -> Result<JobOutcome, JobTicket> {
        let deadline = Instant::now() + timeout;
        {
            let (lock, cv) = &*self.slot;
            let mut guard = lock.lock().expect("completion slot lock");
            loop {
                if let Some(outcome) = guard.take() {
                    return Ok(outcome);
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, _timed_out) =
                    cv.wait_timeout(guard, deadline - now).expect("completion slot wait");
                guard = g;
            }
        }
        Err(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_round_trips() {
        for p in [Priority::Interactive, Priority::Batch] {
            assert_eq!(Priority::parse(p.name()), Some(p));
            assert_eq!(Priority::from_index(p.index()), Some(p));
        }
        assert_eq!(Priority::parse("urgent"), None);
        assert_eq!(Priority::from_index(PRIORITY_CLASSES), None);
        assert!(Priority::Interactive.index() < Priority::Batch.index());
    }

    #[test]
    fn reject_reasons_name_themselves() {
        assert_eq!(RejectReason::QueueFull { capacity: 4 }.name(), "queue-full");
        assert_eq!(RejectReason::TenantCap { cap: 2 }.name(), "tenant-cap");
        assert_eq!(RejectReason::Draining.name(), "draining");
        assert!(RejectReason::QueueFull { capacity: 4 }.to_string().contains("capacity 4"));
        assert!(RejectReason::TenantCap { cap: 2 }.to_string().contains("cap (2)"));
    }

    #[test]
    fn payloads_count_their_problems() {
        assert_eq!(JobPayload::Single(Matrix::zeros(2, 2)).problems(), 1);
        assert_eq!(JobPayload::Bulk(vec![Matrix::zeros(2, 2); 5]).problems(), 5);
        assert_eq!(JobPayload::Bulk(Vec::new()).problems(), 0);
        assert!(matches!(JobSpec::new(Matrix::zeros(2, 2)).payload, JobPayload::Single(_)));
        assert!(matches!(JobSpec::bulk(vec![Matrix::zeros(2, 2)]).payload, JobPayload::Bulk(_)));
    }

    #[test]
    fn spec_builder_sets_every_field() {
        let spec = JobSpec::new(Matrix::zeros(2, 2))
            .engine(EngineKind::Blocked)
            .ordering(OrderingKind::SortedGreedy)
            .priority(Priority::Batch)
            .deadline_in(Duration::from_secs(1))
            .tenant("acme");
        assert_eq!(spec.engine, EngineKind::Blocked);
        assert_eq!(spec.ordering, OrderingKind::SortedGreedy);
        assert_eq!(spec.priority, Priority::Batch);
        assert!(spec.deadline.is_some());
        assert_eq!(spec.tenant, "acme");
    }
}
