//! Property tests for the matrix substrate.

use hj_matrix::{gen, io, norms, ops, Matrix, PackedSymmetric};
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..12, 1usize..12, 0u64..1000).prop_map(|(m, n, seed)| gen::uniform(m, n, seed))
}

proptest! {
    #[test]
    fn transpose_is_involution(a in small_matrix()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_is_associative(seed in 0u64..200, m in 1usize..6, k in 1usize..6, l in 1usize..6, n in 1usize..6) {
        let a = gen::uniform(m, k, seed);
        let b = gen::uniform(k, l, seed ^ 1);
        let c = gen::uniform(l, n, seed ^ 2);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        let diff = norms::frobenius(&left.sub(&right).unwrap());
        prop_assert!(diff < 1e-10 * norms::frobenius(&left).max(1.0));
    }

    #[test]
    fn matmul_distributes_over_add(seed in 0u64..200, m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        let a = gen::uniform(m, k, seed);
        let b = gen::uniform(k, n, seed ^ 3);
        let c = gen::uniform(k, n, seed ^ 4);
        let left = a.matmul(&b.add(&c).unwrap()).unwrap();
        let right = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        let diff = norms::frobenius(&left.sub(&right).unwrap());
        prop_assert!(diff < 1e-10);
    }

    #[test]
    fn gram_matches_explicit_product(a in small_matrix()) {
        let d = a.gram();
        let ata = a.transpose().matmul(&a).unwrap();
        for i in 0..a.cols() {
            for j in 0..a.cols() {
                prop_assert!((d.get(i, j) - ata.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gram_is_positive_semidefinite_on_diagonal(a in small_matrix()) {
        let d = a.gram();
        for i in 0..a.cols() {
            prop_assert!(d.get(i, i) >= 0.0);
            for j in 0..a.cols() {
                // Cauchy-Schwarz: D_ij² ≤ D_ii·D_jj (up to roundoff).
                prop_assert!(
                    d.get(i, j) * d.get(i, j) <= d.get(i, i) * d.get(j, j) * (1.0 + 1e-12) + 1e-12
                );
            }
        }
    }

    #[test]
    fn csv_roundtrip_is_exact(a in small_matrix()) {
        let b = io::roundtrip(&a).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn swap_columns_is_involution(a in small_matrix(), i in 0usize..12, j in 0usize..12) {
        let (i, j) = (i % a.cols(), j % a.cols());
        let mut b = a.clone();
        b.swap_columns(i, j);
        b.swap_columns(i, j);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn robust_norm_matches_plain_in_range(a in small_matrix()) {
        for c in 0..a.cols() {
            let plain = ops::norm(a.col(c));
            let robust = ops::robust_norm(a.col(c));
            prop_assert!((plain - robust).abs() < 1e-12 * plain.max(1.0));
        }
    }

    #[test]
    fn packed_dense_roundtrip(n in 1usize..15, seed in 0u64..500) {
        let a = gen::uniform(n + 1, n, seed);
        let d = a.gram();
        let dense = d.to_dense();
        let mut back = PackedSymmetric::zeros(n);
        for i in 0..n {
            for j in i..n {
                back.set(i, j, dense.get(i, j));
            }
        }
        prop_assert_eq!(d.as_slice(), back.as_slice());
    }

    #[test]
    fn orthonormalize_produces_orthonormal_basis(m in 2usize..20, seed in 0u64..300) {
        let k = (m / 2).max(1);
        let mut q = gen::gaussian(m, k, seed);
        let rank = hj_matrix::orth::orthonormalize_columns(&mut q, 1e-12);
        prop_assert_eq!(rank, k);
        prop_assert!(norms::orthonormality_error(&q) < 1e-10);
    }

    #[test]
    fn generated_spectra_are_honoured(seed in 0u64..100, k in 1usize..6) {
        let sigma: Vec<f64> = (0..k).map(|t| (k - t) as f64).collect();
        let a = gen::with_singular_values(k + 4, k, &sigma, seed);
        let f2 = norms::frobenius_sq(&a);
        let expect: f64 = sigma.iter().map(|s| s * s).sum();
        prop_assert!((f2 - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn column_pair_is_symmetric_in_roles(a in small_matrix(), i in 0usize..12, j in 0usize..12) {
        let n = a.cols();
        prop_assume!(n >= 2);
        let (i, j) = (i % n, j % n);
        prop_assume!(i != j);
        let mut m1 = a.clone();
        let mut m2 = a.clone();
        // Rotating (i, j) by θ equals rotating (j, i) by −θ.
        let (c, s) = (0.8, 0.6);
        m1.column_pair(i, j).unwrap().rotate(c, s);
        m2.column_pair(j, i).unwrap().rotate(c, -s);
        prop_assert_eq!(m1, m2);
    }
}
