use std::fmt;

/// Errors produced by shape-checked matrix operations.
///
/// The hot kernels in this workspace use panicking (debug-asserted) indexed
/// access; `MatrixError` is reserved for the user-facing constructors and
/// drivers where a malformed input should be reported rather than crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// A constructor was handed a data buffer whose length does not match the
    /// requested `rows × cols` shape.
    ShapeMismatch {
        /// Number of rows requested.
        rows: usize,
        /// Number of columns requested.
        cols: usize,
        /// Length of the provided buffer.
        len: usize,
    },
    /// Two operands have incompatible dimensions for the attempted operation.
    DimensionMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// An operation that requires a non-empty matrix received a `0 × k` or
    /// `k × 0` input.
    Empty,
    /// A row- or column-index pair addressed the same column where two
    /// distinct columns are required (e.g. a plane rotation of `(i, i)`).
    DegeneratePair(usize),
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MatrixError::ShapeMismatch { rows, cols, len } => {
                write!(f, "buffer of length {len} cannot be shaped into a {rows}x{cols} matrix")
            }
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: dimension mismatch between {}x{} and {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::Empty => write!(f, "operation requires a non-empty matrix"),
            MatrixError::DegeneratePair(i) => {
                write!(f, "column pair ({i}, {i}) is degenerate: indices must differ")
            }
            MatrixError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (must be < {bound})")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MatrixError::ShapeMismatch { rows: 2, cols: 3, len: 5 };
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains('5'));

        let e = MatrixError::DimensionMismatch { op: "matmul", lhs: (2, 3), rhs: (4, 5) };
        assert!(e.to_string().contains("matmul"));

        let e = MatrixError::DegeneratePair(7);
        assert!(e.to_string().contains("(7, 7)"));

        let e = MatrixError::IndexOutOfBounds { index: 9, bound: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<MatrixError>();
    }
}
