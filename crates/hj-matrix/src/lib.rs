//! # hj-matrix — dense matrix substrate for the `hjsvd` workspace
//!
//! This crate provides the numerical foundation that every other crate in the
//! workspace builds on. It is deliberately written from scratch (no `ndarray`,
//! no `nalgebra`): the point of the reproduction is to own every line between
//! the input matrix and the reported singular values, exactly as the paper's
//! hardware owns every operator between its input FIFOs and its output.
//!
//! The crate is organised around three storage types:
//!
//! * [`Matrix`] — a dense, **column-major** `m × n` matrix of `f64`.
//!   Column-major order matters here: the Hestenes-Jacobi algorithm is a
//!   *column* orthogonalization procedure, and both the software sweeps in
//!   `hj-core` and the simulated multiplier arrays in `hj-arch` stream whole
//!   columns. Keeping each column contiguous makes those kernels cache-friendly
//!   and lets them hand out `&[f64]`/`&mut [f64]` column slices with no copies.
//! * [`PackedSymmetric`] — the upper triangle of a symmetric `n × n` matrix in
//!   packed row-within-triangle order. This is the covariance matrix `D` of
//!   the paper's Algorithm 1; packing halves the memory footprint, which is
//!   precisely the trick that lets the paper keep `D` in on-chip BRAM up to
//!   `n = 256`.
//! * [`ColumnPair`] — a mutable view of two distinct columns of a [`Matrix`],
//!   the unit of work of a plane rotation.
//!
//! plus generator ([`gen`]) and norm/validation ([`norms`]) toolkits used by
//! the test suites and the benchmark harness, CSV interchange ([`io`]), and
//! the bit-exact binary frame format ([`wire`]) the solve service ships
//! matrices through.
//!
//! ## Example
//!
//! ```
//! use hj_matrix::Matrix;
//!
//! let a = Matrix::from_rows(&[
//!     &[1.0, 2.0],
//!     &[3.0, 4.0],
//!     &[5.0, 6.0],
//! ]);
//! assert_eq!(a.shape(), (3, 2));
//! assert_eq!(a.col(1), &[2.0, 4.0, 6.0]);
//! let g = a.gram(); // 2×2 covariance matrix AᵀA
//! assert_eq!(g.get(0, 0), 1.0 + 9.0 + 25.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
pub mod gen;
pub mod io;
mod matrix;
pub mod norms;
pub mod ops;
pub mod orth;
mod packed;
mod pair;
pub mod soa;
pub mod views;
pub mod wire;

pub use error::MatrixError;
pub use matrix::Matrix;
pub use packed::{OffDiagonalSummary, PackedSymmetric};
pub use pair::ColumnPair;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MatrixError>;
