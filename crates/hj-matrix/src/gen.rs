//! Workload generators for tests, examples, and the benchmark harness.
//!
//! The paper evaluates on "randomly generated datasets" of various
//! dimensions; [`uniform`] reproduces that workload. The remaining
//! generators build matrices with *known* singular structure so the test
//! suite can compare computed spectra against ground truth, and stress
//! matrices (graded, rank-deficient, Hilbert) that probe the numerical
//! robustness claims behind the paper's choice of IEEE-754 double precision.

// Index loops below mirror the paper's mathematical notation across
// several coupled arrays; iterator rewrites would obscure the algebra.
#![allow(clippy::needless_range_loop)]

use crate::{ops, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG used by all generators, so every experiment in the
/// harness is reproducible from a single `u64` seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `rows × cols` matrix with entries uniform on `[-1, 1)` — the paper's
/// evaluation workload.
pub fn uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut r = rng(seed);
    let data = (0..rows * cols).map(|_| r.random_range(-1.0..1.0)).collect();
    Matrix::from_col_major(rows, cols, data).expect("generated buffer matches shape")
}

/// `rows × cols` matrix with standard-normal entries (Box-Muller transform;
/// no extra distribution crate needed).
pub fn gaussian(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut r = rng(seed);
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        // Box-Muller: two uniforms → two independent normals.
        let u1: f64 = r.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = r.random_range(0.0..1.0);
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = 2.0 * std::f64::consts::PI * u2;
        data.push(radius * angle.cos());
        if data.len() < rows * cols {
            data.push(radius * angle.sin());
        }
    }
    Matrix::from_col_major(rows, cols, data).expect("generated buffer matches shape")
}

/// A `rows × k` matrix with orthonormal columns, built by modified
/// Gram-Schmidt over a Gaussian matrix. Requires `k ≤ rows`.
///
/// MGS re-orthogonalizes once ("twice is enough" — Kahan/Parlett), which keeps
/// `‖QᵀQ − I‖` at the 1e-14 level even for k in the hundreds; good enough for
/// constructing ground-truth factors.
pub fn random_orthonormal(rows: usize, k: usize, seed: u64) -> Matrix {
    assert!(k <= rows, "cannot build {k} orthonormal columns of length {rows}");
    let mut q = gaussian(rows, k, seed);
    let rank = crate::orth::orthonormalize_columns(&mut q, 1e-12);
    assert_eq!(rank, k, "Gaussian columns are almost surely independent");
    q
}

/// `rows × cols` matrix with the prescribed singular values: `A = U Σ Vᵀ`
/// where `U`, `V` are random orthonormal. `sigma.len()` must be
/// `min(rows, cols)`; values should be non-negative.
///
/// This is the ground-truth workload for accuracy tests: the computed
/// spectrum must match `sigma` (sorted descending) to near machine precision.
///
/// ```
/// use hj_matrix::{gen, norms};
///
/// let a = gen::with_singular_values(10, 2, &[3.0, 4.0], 7);
/// // ‖A‖_F² = Σσ² regardless of the random factors:
/// assert!((norms::frobenius_sq(&a) - 25.0).abs() < 1e-10);
/// ```
pub fn with_singular_values(rows: usize, cols: usize, sigma: &[f64], seed: u64) -> Matrix {
    let k = rows.min(cols);
    assert_eq!(sigma.len(), k, "need exactly min(rows, cols) singular values");
    let u = random_orthonormal(rows, k, seed ^ 0x5eed_0001);
    let v = random_orthonormal(cols, k, seed ^ 0x5eed_0002);
    // A = Σ_t σ_t · u_t v_tᵀ  (rank-1 accumulation; k·m·n flops)
    let mut a = Matrix::zeros(rows, cols);
    for t in 0..k {
        let ut = u.col(t);
        let vt = v.col(t);
        let s = sigma[t];
        if s == 0.0 {
            continue;
        }
        for c in 0..cols {
            let w = s * vt[c];
            ops::axpy(w, ut, a.col_mut(c));
        }
    }
    a
}

/// Matrix with a geometrically-graded spectrum spanning the given condition
/// number: `σ_t = cond^(−t/(k−1))`, so `σ_max/σ_min = cond`.
pub fn with_condition_number(rows: usize, cols: usize, cond: f64, seed: u64) -> Matrix {
    assert!(cond >= 1.0, "condition number must be ≥ 1");
    let k = rows.min(cols);
    let sigma: Vec<f64> = (0..k)
        .map(|t| if k == 1 { 1.0 } else { cond.powf(-(t as f64) / (k as f64 - 1.0)) })
        .collect();
    with_singular_values(rows, cols, &sigma, seed)
}

/// Rank-`r` matrix (`r < min(rows, cols)`): exactly `r` nonzero singular
/// values `1, 1/2, …, 1/r`, the rest zero. Exercises the zero-covariance /
/// zero-norm guards in the rotation kernels.
pub fn rank_deficient(rows: usize, cols: usize, r: usize, seed: u64) -> Matrix {
    let k = rows.min(cols);
    assert!(r <= k);
    let mut sigma = vec![0.0; k];
    for (t, s) in sigma.iter_mut().take(r).enumerate() {
        *s = 1.0 / (t as f64 + 1.0);
    }
    with_singular_values(rows, cols, &sigma, seed)
}

/// The notoriously ill-conditioned `n × n` Hilbert matrix,
/// `H[i][j] = 1 / (i + j + 1)`. A classic accuracy stress test: one-sided
/// Jacobi is known to compute its tiny singular values to high *relative*
/// accuracy, which is part of the method's appeal (Drmač 1997, cited by the
/// paper as \[15\]).
pub fn hilbert(n: usize) -> Matrix {
    let mut h = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            h.set(i, j, 1.0 / ((i + j + 1) as f64));
        }
    }
    h
}

/// Low-rank-plus-noise model: `A = (rank-r signal) + noise_level · N(0,1)`.
/// This is the PCA workload from the paper's motivation (§I): data with a
/// small number of dominant principal components buried in noise.
pub fn low_rank_plus_noise(
    rows: usize,
    cols: usize,
    r: usize,
    noise_level: f64,
    seed: u64,
) -> Matrix {
    let signal = rank_deficient(rows, cols, r, seed);
    let noise = gaussian(rows, cols, seed ^ 0xabcd_ef01);
    let mut a = signal;
    for (v, n) in a.as_mut_slice().iter_mut().zip(noise.as_slice()) {
        *v += noise_level * n;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms;

    #[test]
    fn uniform_is_deterministic_and_in_range() {
        let a = uniform(10, 7, 42);
        let b = uniform(10, 7, 42);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
        let c = uniform(10, 7, 43);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn gaussian_has_plausible_moments() {
        let a = gaussian(200, 50, 7);
        let n = a.as_slice().len() as f64;
        let mean: f64 = a.as_slice().iter().sum::<f64>() / n;
        let var: f64 = a.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn gaussian_odd_element_count() {
        // rows*cols odd exercises the Box-Muller leftover path
        let a = gaussian(3, 3, 11);
        assert_eq!(a.shape(), (3, 3));
    }

    #[test]
    fn random_orthonormal_columns_are_orthonormal() {
        let q = random_orthonormal(40, 12, 3);
        let err = norms::orthonormality_error(&q);
        assert!(err < 1e-12, "‖QᵀQ − I‖_max = {err}");
    }

    #[test]
    fn with_singular_values_reproduces_frobenius() {
        // ‖A‖_F² = Σ σ²
        let sigma = [3.0, 2.0, 0.5];
        let a = with_singular_values(10, 3, &sigma, 99);
        let f2: f64 = a.as_slice().iter().map(|v| v * v).sum();
        let expect: f64 = sigma.iter().map(|s| s * s).sum();
        assert!((f2 - expect).abs() < 1e-10, "{f2} vs {expect}");
    }

    #[test]
    fn condition_number_spectrum_ratio() {
        let a = with_condition_number(20, 5, 1e6, 1);
        // Frobenius check: largest σ is 1 by construction
        let f2: f64 = a.as_slice().iter().map(|v| v * v).sum();
        assert!(f2 >= 1.0, "leading singular value must be 1");
    }

    #[test]
    fn rank_deficient_rank() {
        let a = rank_deficient(12, 6, 2, 5);
        // Frobenius² = 1 + 1/4
        let f2: f64 = a.as_slice().iter().map(|v| v * v).sum();
        assert!((f2 - 1.25).abs() < 1e-10);
    }

    #[test]
    fn hilbert_entries() {
        let h = hilbert(3);
        assert_eq!(h.get(0, 0), 1.0);
        assert_eq!(h.get(1, 1), 1.0 / 3.0);
        assert_eq!(h.get(2, 1), 1.0 / 4.0);
        assert_eq!(h.get(1, 2), 1.0 / 4.0);
    }

    #[test]
    fn low_rank_plus_noise_shape() {
        let a = low_rank_plus_noise(30, 10, 3, 0.01, 8);
        assert_eq!(a.shape(), (30, 10));
    }

    #[test]
    #[should_panic(expected = "orthonormal")]
    fn random_orthonormal_rejects_wide() {
        let _ = random_orthonormal(3, 5, 0);
    }
}
