//! Vector primitives shared by the sweep kernels and the baselines.
//!
//! These are the scalar building blocks that map one-to-one onto the paper's
//! hardware operators: `dot` is what a column of the Hestenes preprocessor's
//! multiplier array computes, `axpy` is the body of a Householder update.

/// Dot product `x·y`. Panics in debug builds on length mismatch.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    // Sixteen-way unrolled accumulation as four independent 4-wide chains:
    // each chain mirrors the 4-layer multiplier-array of the paper's
    // preprocessor, and running four of them side by side hides the FP add
    // latency that a single chain serializes on (one 4-wide vector add per
    // ~4 cycles), so long dots run at multiplier throughput instead.
    let n = x.len();
    let (mut a0, mut a1, mut a2, mut a3) = ([0.0f64; 4], [0.0f64; 4], [0.0f64; 4], [0.0f64; 4]);
    let wide = n / 16;
    for k in 0..wide {
        let b = k * 16;
        let (x16, y16) = (&x[b..b + 16], &y[b..b + 16]);
        for u in 0..4 {
            a0[u] += x16[u] * y16[u];
            a1[u] += x16[4 + u] * y16[4 + u];
            a2[u] += x16[8 + u] * y16[8 + u];
            a3[u] += x16[12 + u] * y16[12 + u];
        }
    }
    let chunks = n / 4;
    for k in wide * 4..chunks {
        let b = k * 4;
        a0[0] += x[b] * y[b];
        a0[1] += x[b + 1] * y[b + 1];
        a0[2] += x[b + 2] * y[b + 2];
        a0[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0;
    for k in chunks * 4..n {
        tail += x[k] * y[k];
    }
    let acc = [
        a0[0] + a1[0] + a2[0] + a3[0],
        a0[1] + a1[1] + a2[1] + a3[1],
        a0[2] + a1[2] + a2[2] + a3[2],
        a0[3] + a1[3] + a2[3] + a3[3],
    ];
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Squared Euclidean norm `‖x‖²`.
#[inline]
pub fn norm_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Euclidean norm `‖x‖`.
#[inline]
pub fn norm(x: &[f64]) -> f64 {
    norm_sq(x).sqrt()
}

/// `y ← y + a·x`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Scale `x` in place by `a`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for v in x {
        *v *= a;
    }
}

/// Numerically-robust 2-norm using the scaled-sum-of-squares trick
/// (LAPACK `dnrm2` style), immune to overflow/underflow of intermediate
/// squares. The Householder baseline uses this for its reflector norms.
pub fn robust_norm(x: &[f64]) -> f64 {
    let mut scale_v = 0.0f64;
    let mut ssq = 1.0f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale_v < a {
                let r = scale_v / a;
                ssq = 1.0 + ssq * r * r;
                scale_v = a;
            } else {
                let r = a / scale_v;
                ssq += r * r;
            }
        }
    }
    scale_v * ssq.sqrt()
}

/// Relative difference `|a − b| / max(|a|, |b|, 1)` — the comparison metric
/// used by the cross-validation tests between SVD implementations.
#[inline]
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// Lane width of [`rotate_pair`]'s unrolled body. Four doubles fill one
/// AVX2 register (or two NEON registers); the paper's update kernel likewise
/// processes a fixed-width slab of column elements per cycle.
pub const ROTATE_LANES: usize = 4;

/// Apply the plane rotation `[c, s; −s, c]` to two equal-length column
/// slices in place (the paper's eqs. (11)–(12)):
///
/// ```text
/// x' = x·cos − y·sin
/// y' = x·sin + y·cos
/// ```
///
/// The body runs in [`ROTATE_LANES`]-wide chunks with a scalar tail so LLVM
/// reliably autovectorizes it; each element's arithmetic is exactly the
/// two-multiply-one-add/sub expression of the scalar loop, so the result is
/// **bit-identical** to rotating the elements one at a time (no
/// re-association, no FMA contraction — the kernel-compat tests pin this).
///
/// Panics in debug builds on a length mismatch.
#[inline]
pub fn rotate_pair(x: &mut [f64], y: &mut [f64], cos: f64, sin: f64) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let split = n - n % ROTATE_LANES;
    let (xh, xt) = x[..n].split_at_mut(split);
    let (yh, yt) = y[..n].split_at_mut(split);
    for (xs, ys) in xh.chunks_exact_mut(ROTATE_LANES).zip(yh.chunks_exact_mut(ROTATE_LANES)) {
        for l in 0..ROTATE_LANES {
            let a = xs[l];
            let b = ys[l];
            xs[l] = a * cos - b * sin;
            ys[l] = a * sin + b * cos;
        }
    }
    for (a, b) in xt.iter_mut().zip(yt.iter_mut()) {
        let xi = *a;
        let yj = *b;
        *a = xi * cos - yj * sin;
        *b = xi * sin + yj * cos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..13).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = (0..13).map(|i| (i as f64).sin()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-12);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_short_vectors() {
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn robust_norm_handles_extremes() {
        // Plain sum of squares would overflow f64 here.
        let big = [1e200, 1e200];
        assert!((robust_norm(&big) - 1e200 * 2.0f64.sqrt()).abs() / 1e200 < 1e-12);
        // ... and underflow here.
        let small = [1e-200, 1e-200];
        assert!((robust_norm(&small) - 1e-200 * 2.0f64.sqrt()).abs() / 1e-200 < 1e-12);
        assert_eq!(robust_norm(&[]), 0.0);
        assert_eq!(robust_norm(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn robust_norm_matches_plain_in_normal_range() {
        let x = [3.0, -4.0, 12.0];
        assert!((robust_norm(&x) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn rotate_pair_matches_scalar_loop_bitwise() {
        // Lengths straddling the lane width, including 0 and odd tails.
        for len in [0usize, 1, 3, 4, 5, 7, 8, 13, 64, 65] {
            let mut x: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
            let mut y: Vec<f64> = (0..len).map(|i| (i as f64 * 0.11).cos() - 0.4).collect();
            let (mut xs, mut ys) = (x.clone(), y.clone());
            let theta: f64 = 0.71;
            let (c, s) = (theta.cos(), theta.sin());
            rotate_pair(&mut x, &mut y, c, s);
            for (a, b) in xs.iter_mut().zip(ys.iter_mut()) {
                let xi = *a;
                let yj = *b;
                *a = xi * c - yj * s;
                *b = xi * s + yj * c;
            }
            assert_eq!(x, xs, "len {len}");
            assert_eq!(y, ys, "len {len}");
        }
    }

    #[test]
    fn rel_diff_behaviour() {
        assert_eq!(rel_diff(1.0, 1.0), 0.0);
        assert!((rel_diff(100.0, 101.0) - 1.0 / 101.0).abs() < 1e-15);
        // Small absolute values are compared absolutely (denominator clamps at 1).
        assert_eq!(rel_diff(0.0, 1e-3), 1e-3);
    }
}
