use crate::{ColumnPair, MatrixError, PackedSymmetric, Result};

/// A dense, column-major `rows × cols` matrix of `f64`.
///
/// Element `(r, c)` lives at `data[c * rows + r]`, so each column is a
/// contiguous slice. The Hestenes-Jacobi algorithm rotates pairs of columns,
/// and the paper's preprocessor streams columns through multiplier arrays;
/// column-major storage makes both access patterns unit-stride.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build a matrix from a column-major data buffer.
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::ShapeMismatch { rows, cols, len: data.len() });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build a matrix from a row-major data buffer (transposing into the
    /// internal column-major layout).
    pub fn from_row_major(rows: usize, cols: usize, data: &[f64]) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::ShapeMismatch { rows, cols, len: data.len() });
        }
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, data[r * cols + c]);
            }
        }
        Ok(m)
    }

    /// Build a matrix from row slices. Panics if the rows are ragged.
    ///
    /// Intended for tests and examples where the shape is statically known.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut m = Matrix::zeros(nrows, ncols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "ragged row {r}: expected {ncols} entries");
            for (c, &v) in row.iter().enumerate() {
                m.set(r, c, v);
            }
        }
        m
    }

    /// Build a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Number of rows (`m` in the paper's notation).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`n` in the paper's notation).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if either dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Read element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[c * self.rows + r]
    }

    /// Write element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[c * self.rows + r] = v;
    }

    /// Contiguous slice of column `c`.
    #[inline]
    pub fn col(&self, c: usize) -> &[f64] {
        debug_assert!(c < self.cols);
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Mutable contiguous slice of column `c`.
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        debug_assert!(c < self.cols);
        &mut self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Copy of row `r` (rows are strided in column-major storage).
    pub fn row(&self, r: usize) -> Vec<f64> {
        debug_assert!(r < self.rows);
        (0..self.cols).map(|c| self.get(r, c)).collect()
    }

    /// Borrow two *distinct* columns mutably as a [`ColumnPair`].
    ///
    /// Returns [`MatrixError::DegeneratePair`] when `i == j` and
    /// [`MatrixError::IndexOutOfBounds`] when either index is out of range.
    pub fn column_pair(&mut self, i: usize, j: usize) -> Result<ColumnPair<'_>> {
        if i == j {
            return Err(MatrixError::DegeneratePair(i));
        }
        let bound = self.cols;
        if i >= bound || j >= bound {
            return Err(MatrixError::IndexOutOfBounds { index: i.max(j), bound });
        }
        let rows = self.rows;
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let (head, tail) = self.data.split_at_mut(hi * rows);
        let lo_slice = &mut head[lo * rows..(lo + 1) * rows];
        let hi_slice = &mut tail[..rows];
        let (ci, cj) = if i < j { (lo_slice, hi_slice) } else { (hi_slice, lo_slice) };
        Ok(ColumnPair::new(i, j, ci, cj))
    }

    /// The full backing buffer in column-major order.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the backing buffer in column-major order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its column-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Swap the backing column-major buffer with `buf` in O(1).
    ///
    /// `buf` must hold exactly `rows·cols` entries; it becomes the matrix's
    /// new contents (interpreted column-major) and the old contents land in
    /// `buf`. This is the publish step of double-buffered column transforms:
    /// one scratch buffer serves every round with no per-call allocation.
    ///
    /// # Panics
    /// Panics when `buf.len() != rows * cols`.
    pub fn swap_data(&mut self, buf: &mut Vec<f64>) {
        assert_eq!(
            buf.len(),
            self.data.len(),
            "swap_data: buffer length must equal rows*cols = {}",
            self.data.len()
        );
        std::mem::swap(&mut self.data, buf);
    }

    /// The transpose `Aᵀ` as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for c in 0..self.cols {
            let col = self.col(c);
            for (r, &v) in col.iter().enumerate() {
                t.set(c, r, v);
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// A straightforward cache-aware triple loop (k-outer over rhs columns,
    /// axpy over contiguous lhs columns). This is the reference product used
    /// by tests and reconstruction checks, not a performance kernel.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for c in 0..rhs.cols {
            let rhs_col = rhs.col(c);
            let out_col = out.col_mut(c);
            for (k, &w) in rhs_col.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let lhs_col = self.col(k);
                for (r, &v) in lhs_col.iter().enumerate() {
                    out_col[r] += v * w;
                }
            }
        }
        Ok(out)
    }

    /// The Gram (covariance) matrix `D = AᵀA` in packed symmetric storage.
    ///
    /// This is exactly the matrix the paper's Hestenes preprocessor computes
    /// in the first sweep: diagonal entries are squared column 2-norms,
    /// off-diagonals are covariances between column pairs.
    pub fn gram(&self) -> PackedSymmetric {
        let n = self.cols;
        let mut d = PackedSymmetric::zeros(n);
        for i in 0..n {
            let ci = self.col(i);
            for j in i..n {
                let cj = self.col(j);
                d.set(i, j, crate::ops::dot(ci, cj));
            }
        }
        d
    }

    /// Elementwise `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Elementwise `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Scale every element by `s`, in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// A new matrix equal to `s · self`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_in_place(s);
        out
    }

    /// Extract the `rows × k` submatrix consisting of the first `k` columns.
    pub fn leading_columns(&self, k: usize) -> Matrix {
        assert!(k <= self.cols, "cannot take {k} leading columns of a {}-column matrix", self.cols);
        let data = self.data[..k * self.rows].to_vec();
        Matrix { rows: self.rows, cols: k, data }
    }

    /// Swap columns `i` and `j` in place.
    pub fn swap_columns(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        let rows = self.rows;
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let (head, tail) = self.data.split_at_mut(hi * rows);
        head[lo * rows..(lo + 1) * rows].swap_with_slice(&mut tail[..rows]);
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()))
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for r in 0..show_rows {
            write!(f, "  ")?;
            for c in 0..show_cols {
                write!(f, "{:>12.5e} ", self.get(r, c))?;
            }
            if show_cols < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_rows < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 2);
        assert_eq!(z.shape(), (3, 2));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn col_major_layout() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        // column-major: [col0; col1]
        assert_eq!(m.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(m.col(0), &[1.0, 3.0]);
        assert_eq!(m.col(1), &[2.0, 4.0]);
        assert_eq!(m.row(1), vec![3.0, 4.0]);
    }

    #[test]
    fn swap_data_exchanges_buffers_without_copying() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut buf = vec![5.0, 6.0, 7.0, 8.0];
        let buf_ptr = buf.as_ptr();
        m.swap_data(&mut buf);
        assert_eq!(m.as_slice(), &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(buf, vec![1.0, 3.0, 2.0, 4.0]);
        assert!(std::ptr::eq(m.as_slice().as_ptr(), buf_ptr), "must be a pointer swap");
    }

    #[test]
    #[should_panic(expected = "swap_data")]
    fn swap_data_rejects_wrong_length() {
        let mut m = Matrix::zeros(2, 2);
        let mut buf = vec![0.0; 3];
        m.swap_data(&mut buf);
    }

    #[test]
    fn from_col_major_checks_shape() {
        assert!(Matrix::from_col_major(2, 2, vec![0.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_col_major(2, 2, vec![0.0; 5]),
            Err(MatrixError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn from_row_major_matches_from_rows() {
        let a = Matrix::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a, b);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
        let i2 = Matrix::identity(2);
        assert_eq!(i2.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(MatrixError::DimensionMismatch { .. })));
    }

    #[test]
    fn gram_is_ata() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let d = a.gram();
        let ata = a.transpose().matmul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((d.get(i, j) - ata.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn column_pair_borrows_disjoint() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        {
            let pair = m.column_pair(0, 2).unwrap();
            assert_eq!(pair.left(), &[1.0, 4.0]);
            assert_eq!(pair.right(), &[3.0, 6.0]);
        }
        {
            // reversed order must hand back the same columns, swapped roles
            let pair = m.column_pair(2, 0).unwrap();
            assert_eq!(pair.left(), &[3.0, 6.0]);
            assert_eq!(pair.right(), &[1.0, 4.0]);
        }
    }

    #[test]
    fn column_pair_rejects_degenerate_and_oob() {
        let mut m = Matrix::zeros(2, 3);
        assert!(matches!(m.column_pair(1, 1), Err(MatrixError::DegeneratePair(1))));
        assert!(matches!(m.column_pair(0, 3), Err(MatrixError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn swap_columns_works_both_orders() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.swap_columns(0, 1);
        assert_eq!(m.col(0), &[2.0, 4.0]);
        m.swap_columns(1, 0);
        assert_eq!(m.col(0), &[1.0, 3.0]);
        m.swap_columns(1, 1); // no-op
        assert_eq!(m.col(1), &[2.0, 4.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap(), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a).unwrap(), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.scaled(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn leading_columns_truncates() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let l = m.leading_columns(2);
        assert_eq!(l, Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 5.0]]));
    }

    #[test]
    fn from_diag_places_entries() {
        let d = Matrix::from_diag(&[2.0, 3.0]);
        assert_eq!(d.get(0, 0), 2.0);
        assert_eq!(d.get(1, 1), 3.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn max_abs_finds_extreme() {
        let m = Matrix::from_rows(&[&[1.0, -7.5], &[3.0, 2.0]]);
        assert_eq!(m.max_abs(), 7.5);
        assert_eq!(Matrix::zeros(0, 0).max_abs(), 0.0);
    }

    #[test]
    fn debug_format_is_bounded() {
        let m = Matrix::zeros(100, 100);
        let s = format!("{m:?}");
        assert!(s.lines().count() < 15, "debug output must truncate large matrices");
    }
}
