/// A mutable view of two distinct columns of a matrix — the unit of work for
/// a Hestenes plane rotation (eqs. (11)–(12) of the paper).
///
/// Obtained from [`Matrix::column_pair`](crate::Matrix::column_pair), which
/// proves to the borrow checker that the two column slices are disjoint.
pub struct ColumnPair<'a> {
    i: usize,
    j: usize,
    left: &'a mut [f64],
    right: &'a mut [f64],
}

impl<'a> ColumnPair<'a> {
    pub(crate) fn new(i: usize, j: usize, left: &'a mut [f64], right: &'a mut [f64]) -> Self {
        debug_assert_eq!(left.len(), right.len());
        ColumnPair { i, j, left, right }
    }

    /// Index of the left (first-named) column.
    #[inline]
    pub fn left_index(&self) -> usize {
        self.i
    }

    /// Index of the right (second-named) column.
    #[inline]
    pub fn right_index(&self) -> usize {
        self.j
    }

    /// Shared view of the left column.
    #[inline]
    pub fn left(&self) -> &[f64] {
        self.left
    }

    /// Shared view of the right column.
    #[inline]
    pub fn right(&self) -> &[f64] {
        self.right
    }

    /// Column length (the matrix row count `m`).
    #[inline]
    pub fn len(&self) -> usize {
        self.left.len()
    }

    /// True when the columns have zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }

    /// Apply the plane rotation of the paper's eqs. (11)–(12) in place:
    ///
    /// ```text
    /// aᵢ' = aᵢ·cos − aⱼ·sin
    /// aⱼ' = aᵢ·sin + aⱼ·cos
    /// ```
    ///
    /// This is the elementwise kernel a single hardware "update kernel"
    /// executes (4 multipliers, 1 adder, 1 subtractor per element pair);
    /// it runs through the lane-chunked [`crate::ops::rotate_pair`], which is
    /// bit-identical to the one-element-at-a-time loop.
    #[inline]
    pub fn rotate(&mut self, cos: f64, sin: f64) {
        crate::ops::rotate_pair(self.left, self.right, cos, sin);
    }

    /// Dot product of the two columns (their covariance).
    pub fn covariance(&self) -> f64 {
        crate::ops::dot(self.left, self.right)
    }

    /// Squared 2-norms of (left, right).
    pub fn squared_norms(&self) -> (f64, f64) {
        (crate::ops::dot(self.left, self.left), crate::ops::dot(self.right, self.right))
    }
}

#[cfg(test)]
mod tests {
    use crate::Matrix;

    #[test]
    fn rotate_by_quarter_turn_swaps_columns() {
        let mut m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let mut pair = m.column_pair(0, 1).unwrap();
        // cos = 0, sin = 1: aᵢ' = −aⱼ, aⱼ' = aᵢ
        pair.rotate(0.0, 1.0);
        assert_eq!(m.col(0), &[0.0, -2.0]);
        assert_eq!(m.col(1), &[1.0, 0.0]);
    }

    #[test]
    fn rotate_identity_is_noop() {
        let mut m = Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]);
        let original = m.clone();
        m.column_pair(0, 1).unwrap().rotate(1.0, 0.0);
        assert_eq!(m, original);
    }

    #[test]
    fn rotation_preserves_frobenius_norm() {
        let mut m = Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0], &[-1.0, 0.5]]);
        let before: f64 = m.as_slice().iter().map(|v| v * v).sum();
        let theta: f64 = 0.7;
        m.column_pair(0, 1).unwrap().rotate(theta.cos(), theta.sin());
        let after: f64 = m.as_slice().iter().map(|v| v * v).sum();
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn covariance_and_norms() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 3.0]]);
        let pair = m.column_pair(0, 1).unwrap();
        assert_eq!(pair.covariance(), 2.0);
        assert_eq!(pair.squared_norms(), (1.0, 13.0));
        assert_eq!(pair.len(), 2);
        assert!(!pair.is_empty());
        assert_eq!(pair.left_index(), 0);
        assert_eq!(pair.right_index(), 1);
    }
}
