//! Matrix serialization: CSV read/write.
//!
//! Enough I/O for the examples and harnesses to move data in and out of the
//! library (datasets in, factor matrices out) without further dependencies.
//! Values are written in round-trippable shortest-exact form (Rust's `{}`
//! float formatting parses back to the identical bits).

use crate::{Matrix, MatrixError, Result};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Write a matrix as CSV (row-major lines, no header).
pub fn write_csv<W: Write>(a: &Matrix, out: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(out);
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            if c > 0 {
                write!(w, ",")?;
            }
            write!(w, "{}", a.get(r, c))?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Write a matrix to a CSV file at `path`.
pub fn save_csv<P: AsRef<Path>>(a: &Matrix, path: P) -> std::io::Result<()> {
    write_csv(a, std::fs::File::create(path)?)
}

/// Errors produced when parsing CSV matrices.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as `f64`.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending cell text.
        cell: String,
    },
    /// Rows have differing lengths.
    Ragged {
        /// 1-based line number of the first offending row.
        line: usize,
        /// Expected width (from the first row).
        expected: usize,
        /// Observed width.
        got: usize,
    },
    /// No data rows were found.
    Empty,
    /// Shape error from the substrate (cannot occur for well-formed input).
    Matrix(MatrixError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, cell } => {
                write!(f, "line {line}: cannot parse '{cell}' as a number")
            }
            CsvError::Ragged { line, expected, got } => {
                write!(f, "line {line}: expected {expected} columns, got {got}")
            }
            CsvError::Empty => write!(f, "no data rows"),
            CsvError::Matrix(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Read a matrix from CSV (no header; blank lines skipped; `#` comments
/// skipped).
///
/// ```
/// use hj_matrix::io::read_csv;
///
/// let m = read_csv("# comment\n1, 2\n3, 4\n".as_bytes()).unwrap();
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m.get(1, 0), 3.0);
/// ```
pub fn read_csv<R: std::io::Read>(input: R) -> std::result::Result<Matrix, CsvError> {
    let reader = std::io::BufReader::new(input);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut width: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut row = Vec::new();
        for cell in trimmed.split(',') {
            let cell = cell.trim();
            let v: f64 = cell
                .parse()
                .map_err(|_| CsvError::Parse { line: idx + 1, cell: cell.to_string() })?;
            row.push(v);
        }
        if let Some(w) = width {
            if row.len() != w {
                return Err(CsvError::Ragged { line: idx + 1, expected: w, got: row.len() });
            }
        } else {
            width = Some(row.len());
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }
    let nrows = rows.len();
    let ncols = width.unwrap_or(0);
    let mut m = Matrix::zeros(nrows, ncols);
    for (r, row) in rows.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            m.set(r, c, v);
        }
    }
    Ok(m)
}

/// Read a matrix from a CSV file at `path`.
pub fn load_csv<P: AsRef<Path>>(path: P) -> std::result::Result<Matrix, CsvError> {
    read_csv(std::fs::File::open(path)?)
}

/// Round-trip helper used by tests and harnesses: validates that `a` can be
/// serialized and parsed back exactly.
pub fn roundtrip(a: &Matrix) -> Result<Matrix> {
    let mut buf = Vec::new();
    write_csv(a, &mut buf).map_err(|_| MatrixError::Empty)?;
    read_csv(&buf[..]).map_err(|_| MatrixError::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_is_bit_exact() {
        let a = gen::uniform(7, 5, 42);
        let b = roundtrip(&a).unwrap();
        assert_eq!(a, b, "CSV roundtrip must be exact");
    }

    #[test]
    fn roundtrip_extreme_values() {
        let a = Matrix::from_rows(&[&[0.0, -0.0, 1e-308], &[1e308, f64::MIN_POSITIVE, -1.5e-300]]);
        let b = roundtrip(&a).unwrap();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# header comment\n1, 2.5\n\n3,4\n";
        let m = read_csv(text.as_bytes()).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(0, 1), 2.5);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn rejects_bad_cells() {
        let err = read_csv("1,2\n3,oops\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = read_csv("1,2\n3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Ragged { line: 2, expected: 2, got: 1 }), "{err}");
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(read_csv("".as_bytes()).unwrap_err(), CsvError::Empty));
        assert!(matches!(read_csv("# only comments\n".as_bytes()).unwrap_err(), CsvError::Empty));
    }

    #[test]
    fn file_roundtrip() {
        let a = gen::gaussian(4, 3, 9);
        let path = std::env::temp_dir().join("hj_matrix_io_test.csv");
        save_csv(&a, &path).unwrap();
        let b = load_csv(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn error_messages() {
        let e = CsvError::Parse { line: 3, cell: "x".into() };
        assert!(e.to_string().contains("line 3"));
        let e = CsvError::Ragged { line: 2, expected: 4, got: 1 };
        assert!(e.to_string().contains("expected 4"));
    }
}
