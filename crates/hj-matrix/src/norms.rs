//! Matrix norms and factorization-quality metrics.
//!
//! These functions define what "correct SVD" means for the whole workspace:
//! the accuracy tests of `hj-core`, `hj-baselines`, and `hj-arch` all report
//! their results through [`reconstruction_error`] and
//! [`orthonormality_error`].

// Index loops below mirror the paper's mathematical notation across
// several coupled arrays; iterator rewrites would obscure the algebra.
#![allow(clippy::needless_range_loop)]

use crate::Matrix;

/// Frobenius norm `‖A‖_F`.
pub fn frobenius(a: &Matrix) -> f64 {
    a.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Squared Frobenius norm `‖A‖_F²` (no rounding from the final sqrt).
pub fn frobenius_sq(a: &Matrix) -> f64 {
    a.as_slice().iter().map(|v| v * v).sum()
}

/// Maximum absolute deviation of `QᵀQ` from the identity, i.e.
/// `max_{ij} |(QᵀQ − I)[i][j]|`. Zero for a perfectly orthonormal-column `Q`.
pub fn orthonormality_error(q: &Matrix) -> f64 {
    let k = q.cols();
    let mut err = 0.0f64;
    for i in 0..k {
        for j in i..k {
            let d = crate::ops::dot(q.col(i), q.col(j));
            let target = if i == j { 1.0 } else { 0.0 };
            err = err.max((d - target).abs());
        }
    }
    err
}

/// Relative reconstruction error `‖A − U Σ Vᵀ‖_F / ‖A‖_F` of a computed SVD.
///
/// `u` is `m × k`, `sigma` has length `k`, `v` is `n × k` (thin SVD form).
/// For a zero `A` the error is absolute rather than relative.
pub fn reconstruction_error(a: &Matrix, u: &Matrix, sigma: &[f64], v: &Matrix) -> f64 {
    let (m, n) = a.shape();
    let k = sigma.len();
    assert_eq!(u.shape(), (m, k), "U must be m×k");
    assert_eq!(v.shape(), (n, k), "V must be n×k");
    // R = A − U Σ Vᵀ accumulated column by column: R_c = A_c − Σ_t σ_t V[c][t] U_t
    let mut resid_sq = 0.0;
    let mut scratch = vec![0.0f64; m];
    for c in 0..n {
        scratch.copy_from_slice(a.col(c));
        for t in 0..k {
            let w = sigma[t] * v.get(c, t);
            if w != 0.0 {
                crate::ops::axpy(-w, u.col(t), &mut scratch);
            }
        }
        resid_sq += crate::ops::norm_sq(&scratch);
    }
    let denom = frobenius(a);
    if denom == 0.0 {
        resid_sq.sqrt()
    } else {
        resid_sq.sqrt() / denom
    }
}

/// Maximum relative disagreement between two descending-sorted spectra.
///
/// Used to cross-validate the Hestenes spectrum against the Householder
/// baseline. Lengths must match.
pub fn spectrum_disagreement(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "spectra must have equal length");
    a.iter().zip(b).map(|(&x, &y)| crate::ops::rel_diff(x, y)).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn frobenius_basic() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(frobenius(&a), 5.0);
        assert_eq!(frobenius_sq(&a), 25.0);
    }

    #[test]
    fn orthonormality_of_identity() {
        assert_eq!(orthonormality_error(&Matrix::identity(4)), 0.0);
    }

    #[test]
    fn orthonormality_detects_skew() {
        let q = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]);
        assert!(orthonormality_error(&q) > 0.09);
    }

    #[test]
    fn reconstruction_of_exact_factorization_is_tiny() {
        // A = U Σ Vᵀ built by the generator must reconstruct to ~machine eps.
        let sigma = [2.0, 1.0, 0.5, 0.3, 0.25];
        let a = gen::with_singular_values(12, 5, &sigma, 3);
        // Recover U, V from construction by rebuilding with the same seed.
        let u = gen::random_orthonormal(12, 5, 3 ^ 0x5eed_0001);
        let v = gen::random_orthonormal(5, 5, 3 ^ 0x5eed_0002);
        let err = reconstruction_error(&a, &u, &sigma, &v);
        assert!(err < 1e-12, "err = {err}");
    }

    #[test]
    fn reconstruction_error_detects_wrong_sigma() {
        let sigma = [2.0, 1.0];
        let a = gen::with_singular_values(6, 2, &sigma, 9);
        let u = gen::random_orthonormal(6, 2, 9 ^ 0x5eed_0001);
        let v = gen::random_orthonormal(2, 2, 9 ^ 0x5eed_0002);
        let bad = [2.0, 0.0];
        assert!(reconstruction_error(&a, &u, &bad, &v) > 0.1);
    }

    #[test]
    fn reconstruction_error_zero_matrix() {
        let a = Matrix::zeros(3, 2);
        let u = Matrix::zeros(3, 2);
        let v = Matrix::zeros(2, 2);
        assert_eq!(reconstruction_error(&a, &u, &[0.0, 0.0], &v), 0.0);
    }

    #[test]
    fn spectrum_disagreement_metric() {
        assert_eq!(spectrum_disagreement(&[3.0, 1.0], &[3.0, 1.0]), 0.0);
        let d = spectrum_disagreement(&[3.0, 1.0], &[3.0, 1.1]);
        assert!(d > 0.0 && d < 0.1);
    }
}
