//! Binary matrix frames: the bit-exact wire form used by the solve service.
//!
//! CSV ([`crate::io`]) is the human-facing interchange format; this module is
//! the machine-facing one. A matrix is encoded as a fixed little-endian
//! header followed by the raw column-major payload:
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | `rows` (u32 LE) |
//! | 4      | 4    | `cols` (u32 LE) |
//! | 8      | 8·rows·cols | entries, column-major, each `f64::to_bits` LE |
//!
//! The payload is the matrix's internal storage verbatim, so encoding and
//! decoding are `memcpy`-shaped and the round trip is **byte-identical** —
//! every NaN payload, signed zero, and subnormal survives. That property is
//! what lets `hj-serve` guarantee that a spectrum computed from a matrix
//! shipped over TCP is bitwise equal to one computed from the caller's
//! original (pinned by `tests/serve.rs` at the workspace root).

use crate::Matrix;

/// Size in bytes of the fixed `rows`/`cols` header.
pub const HEADER_BYTES: usize = 8;

/// Hard ceiling on either dimension of a decoded matrix (2^20 = 1,048,576).
/// A corrupt or malicious header cannot make the decoder attempt a
/// multi-terabyte allocation; honest matrices in this workspace are orders
/// of magnitude below it.
pub const MAX_WIRE_DIM: u32 = 1 << 20;

/// Decoding failures for the binary matrix frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the declared shape requires.
    Truncated {
        /// Bytes the header's shape implies.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// More bytes than the declared shape requires.
    TrailingBytes {
        /// Count of unexpected bytes after the payload.
        extra: usize,
    },
    /// A dimension exceeds [`MAX_WIRE_DIM`] (or their product overflows).
    Oversized {
        /// Declared row count.
        rows: u32,
        /// Declared column count.
        cols: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated matrix frame: need {needed} bytes, got {got}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "matrix frame has {extra} trailing bytes")
            }
            WireError::Oversized { rows, cols } => {
                write!(f, "matrix dimensions {rows}x{cols} exceed the wire limit {MAX_WIRE_DIM}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Exact encoded size of a `rows × cols` matrix.
pub fn encoded_len(rows: usize, cols: usize) -> usize {
    HEADER_BYTES + 8 * rows * cols
}

/// Append the binary frame for `a` to `out`.
pub fn encode_matrix_into(a: &Matrix, out: &mut Vec<u8>) {
    out.reserve(encoded_len(a.rows(), a.cols()));
    out.extend_from_slice(&(a.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(a.cols() as u32).to_le_bytes());
    for &v in a.as_slice() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Encode `a` as a standalone binary frame.
///
/// ```
/// use hj_matrix::{wire, Matrix};
///
/// let a = Matrix::from_rows(&[&[1.0, -0.0], &[1e-308, 3.5]]);
/// let bytes = wire::encode_matrix(&a);
/// let back = wire::decode_matrix(&bytes).unwrap();
/// // Byte-identical round trip, signed zero and subnormals included.
/// for (x, y) in a.as_slice().iter().zip(back.as_slice()) {
///     assert_eq!(x.to_bits(), y.to_bits());
/// }
/// ```
pub fn encode_matrix(a: &Matrix) -> Vec<u8> {
    let mut out = Vec::new();
    encode_matrix_into(a, &mut out);
    out
}

/// Decode a binary frame produced by [`encode_matrix`]. The frame must span
/// `bytes` exactly — partial and over-long inputs are rejected, never
/// silently truncated.
pub fn decode_matrix(bytes: &[u8]) -> Result<Matrix, WireError> {
    if bytes.len() < HEADER_BYTES {
        return Err(WireError::Truncated { needed: HEADER_BYTES, got: bytes.len() });
    }
    let rows = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    let cols = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if rows > MAX_WIRE_DIM || cols > MAX_WIRE_DIM {
        return Err(WireError::Oversized { rows, cols });
    }
    let entries = rows as usize * cols as usize;
    let needed = encoded_len(rows as usize, cols as usize);
    if bytes.len() < needed {
        return Err(WireError::Truncated { needed, got: bytes.len() });
    }
    if bytes.len() > needed {
        return Err(WireError::TrailingBytes { extra: bytes.len() - needed });
    }
    let mut data = Vec::with_capacity(entries);
    for chunk in bytes[HEADER_BYTES..].chunks_exact(8) {
        data.push(f64::from_bits(u64::from_le_bytes(chunk.try_into().expect("8 bytes"))));
    }
    Ok(Matrix::from_col_major(rows as usize, cols as usize, data)
        .expect("length checked against shape"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn assert_bit_identical(a: &Matrix, b: &Matrix) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        for (m, n, seed) in [(1usize, 1usize, 1u64), (7, 3, 2), (3, 7, 3), (16, 16, 4)] {
            let a = gen::uniform(m, n, seed);
            let bytes = encode_matrix(&a);
            assert_eq!(bytes.len(), encoded_len(m, n));
            // Encoding the same matrix twice yields the same bytes...
            assert_eq!(bytes, encode_matrix(&a));
            // ...and decoding restores every bit.
            assert_bit_identical(&a, &decode_matrix(&bytes).unwrap());
        }
    }

    #[test]
    fn roundtrip_preserves_every_special_float() {
        let a = Matrix::from_rows(&[
            &[0.0, -0.0, f64::MIN_POSITIVE, 1e-308],
            &[f64::MAX, f64::MIN, 1e308, -1.5e-300],
            &[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, f64::EPSILON],
        ]);
        let back = decode_matrix(&encode_matrix(&a)).unwrap();
        assert_bit_identical(&a, &back);
    }

    #[test]
    fn empty_matrix_round_trips() {
        let a = Matrix::zeros(0, 5);
        let bytes = encode_matrix(&a);
        assert_eq!(bytes.len(), HEADER_BYTES);
        let back = decode_matrix(&bytes).unwrap();
        assert_eq!(back.shape(), (0, 5));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let a = gen::uniform(4, 3, 9);
        let bytes = encode_matrix(&a);
        assert!(matches!(decode_matrix(&[]), Err(WireError::Truncated { .. })));
        assert!(matches!(decode_matrix(&bytes[..6]), Err(WireError::Truncated { .. })));
        assert!(matches!(
            decode_matrix(&bytes[..bytes.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let a = gen::uniform(2, 2, 11);
        let mut bytes = encode_matrix(&a);
        bytes.push(0);
        assert_eq!(decode_matrix(&bytes), Err(WireError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn oversized_headers_are_rejected_before_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_matrix(&bytes), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn error_messages_name_the_problem() {
        assert!(WireError::Truncated { needed: 16, got: 8 }.to_string().contains("16"));
        assert!(WireError::TrailingBytes { extra: 3 }.to_string().contains("3 trailing"));
        assert!(WireError::Oversized { rows: 9, cols: 9 }.to_string().contains("9x9"));
    }
}
