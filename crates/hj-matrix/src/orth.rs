//! Column orthonormalization (modified Gram-Schmidt).
//!
//! Used by the generators (to build random orthonormal factors) and by the
//! randomized partial-SVD baseline (to orthonormalize sketch ranges).

use crate::{ops, Matrix};

/// Orthonormalize the columns of `q` in place by modified Gram-Schmidt with
/// one re-orthogonalization pass ("twice is enough").
///
/// Columns whose residual norm falls below `tol · ‖original column‖` are
/// zeroed (they are linearly dependent on earlier columns). Returns the
/// number of nonzero (orthonormal) columns produced; dependent columns are
/// left as zero columns in place, so column indices are stable.
pub fn orthonormalize_columns(q: &mut Matrix, tol: f64) -> usize {
    let k = q.cols();
    let mut rank = 0usize;
    for c in 0..k {
        let original_norm = ops::norm(q.col(c));
        for _pass in 0..2 {
            for prev in 0..c {
                // Skip zeroed (dependent) columns.
                let pnorm_sq = ops::norm_sq(q.col(prev));
                if pnorm_sq == 0.0 {
                    continue;
                }
                let proj = ops::dot(q.col(prev), q.col(c));
                let pcol = q.col(prev).to_vec();
                ops::axpy(-proj, &pcol, q.col_mut(c));
            }
        }
        let nrm = ops::norm(q.col(c));
        if nrm <= tol * original_norm.max(f64::MIN_POSITIVE) || nrm == 0.0 {
            // Dependent column: zero it out.
            for v in q.col_mut(c) {
                *v = 0.0;
            }
        } else {
            ops::scale(1.0 / nrm, q.col_mut(c));
            rank += 1;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, norms};

    #[test]
    fn orthonormalizes_random_columns() {
        let mut q = gen::gaussian(30, 8, 4);
        let rank = orthonormalize_columns(&mut q, 1e-12);
        assert_eq!(rank, 8);
        assert!(norms::orthonormality_error(&q) < 1e-12);
    }

    #[test]
    fn detects_dependent_columns() {
        let mut q = gen::gaussian(10, 3, 5);
        // Make column 2 a combination of 0 and 1.
        let combo: Vec<f64> =
            q.col(0).iter().zip(q.col(1)).map(|(a, b)| 2.0 * a - 3.0 * b).collect();
        q.col_mut(2).copy_from_slice(&combo);
        let rank = orthonormalize_columns(&mut q, 1e-10);
        assert_eq!(rank, 2);
        assert!(q.col(2).iter().all(|&v| v == 0.0), "dependent column must be zeroed");
        // The surviving columns are orthonormal.
        let lead = q.leading_columns(2);
        assert!(norms::orthonormality_error(&lead) < 1e-12);
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        let mut q = Matrix::zeros(5, 3);
        assert_eq!(orthonormalize_columns(&mut q, 1e-12), 0);
    }

    #[test]
    fn idempotent_on_orthonormal_input() {
        let mut q = gen::random_orthonormal(20, 5, 6);
        let before = q.clone();
        let rank = orthonormalize_columns(&mut q, 1e-12);
        assert_eq!(rank, 5);
        // Directions unchanged (up to sign, which MGS preserves here).
        let diff = norms::frobenius(&q.sub(&before).unwrap());
        assert!(diff < 1e-10);
    }
}
