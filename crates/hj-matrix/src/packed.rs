use crate::Matrix;

/// Upper triangle of a symmetric `n × n` matrix in packed storage.
///
/// This is the covariance matrix `D` of the paper's Algorithm 1: `D[i][i]`
/// holds the squared 2-norm of column `i` and `D[i][j]` (`i < j`) holds the
/// covariance `aᵢᵀaⱼ`. The paper stores the whole of `D` in on-chip BRAM for
/// `n ≤ 256`; packed storage (n(n+1)/2 doubles instead of n²) is what makes
/// that budget work out, so we mirror it exactly.
///
/// Layout: row-within-triangle order. Row `i` of the triangle holds entries
/// `(i, i), (i, i+1), …, (i, n-1)` contiguously, starting at offset
/// `i·n − i·(i−1)/2`. Accessors accept `(i, j)` in either order.
#[derive(Clone, Default, PartialEq)]
pub struct PackedSymmetric {
    n: usize,
    data: Vec<f64>,
}

impl PackedSymmetric {
    /// Create an `n × n` packed symmetric matrix of zeros.
    pub fn zeros(n: usize) -> Self {
        PackedSymmetric { n, data: vec![0.0; n * (n + 1) / 2] }
    }

    /// Dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries, `n(n+1)/2`.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when `n == 0`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Offset of `(i, j)` with `i ≤ j` in the packed buffer.
    #[inline]
    fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(i <= j && j < self.n);
        // Row i of the triangle starts after rows 0..i, which hold
        // n + (n-1) + … + (n-i+1) = i*(2n - i + 1)/2 entries.
        i * (2 * self.n - i + 1) / 2 + (j - i)
    }

    /// Offset of triangle row `i`'s first entry — the diagonal `(i, i)` — in
    /// the raw packed buffer ([`PackedSymmetric::as_slice`]). Row `i` then
    /// holds `(i, i), (i, i+1), …, (i, n−1)` contiguously (`n − i` entries).
    ///
    /// This is the layout contract hj-core's vectorized rotation kernels
    /// build on: entries `(k, c)` with `k ≥ c` of a logical column `c` are
    /// the contiguous slice starting at `row_offset(c)`, while entries with
    /// `k < c` sit at `row_offset(k) + (c − k)`, i.e. a walk with a
    /// decreasing stride of `n − k − 1` between consecutive `k`.
    #[inline]
    pub fn row_offset(&self, i: usize) -> usize {
        debug_assert!(i <= self.n);
        i * (2 * self.n - i + 1) / 2
    }

    /// Read entry `(i, j)`; symmetric, so argument order is irrelevant.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        self.data[self.offset(i, j)]
    }

    /// Write entry `(i, j)` (and by symmetry `(j, i)`).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        let o = self.offset(i, j);
        self.data[o] = v;
    }

    /// Add `v` to entry `(i, j)`.
    #[inline]
    pub fn add_assign(&mut self, i: usize, j: usize, v: f64) {
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        let o = self.offset(i, j);
        self.data[o] += v;
    }

    /// The diagonal as a vector (squared column 2-norms for a Gram matrix).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.get(i, i)).collect()
    }

    /// Sum of absolute values of strictly-off-diagonal entries, counting each
    /// symmetric pair once. This is the "covariance mass" whose decay the
    /// paper's Figs. 10–11 track.
    pub fn off_diagonal_abs_sum(&self) -> f64 {
        self.off_diagonal_summary().abs_sum
    }

    /// One fused pass over the strictly-off-diagonal entries, walking the
    /// packed rows as contiguous slices (no per-element offset arithmetic).
    ///
    /// Computes all three convergence metrics the per-sweep record needs —
    /// Σ|dᵢⱼ|, Σdᵢⱼ², max|dᵢⱼ| — in a single traversal, in the same
    /// element order as the individual metric methods, so each accumulator
    /// is bit-identical to its standalone counterpart while the triangle is
    /// read once instead of three times.
    pub fn off_diagonal_summary(&self) -> OffDiagonalSummary {
        let mut sum = OffDiagonalSummary { abs_sum: 0.0, sum_sq: 0.0, max_abs: 0.0 };
        let mut start = 0usize;
        for i in 0..self.n {
            // Row i holds (i, i)..(i, n-1); skip the leading diagonal entry.
            for &v in &self.data[start + 1..start + (self.n - i)] {
                let a = v.abs();
                sum.abs_sum += a;
                sum.sum_sq += v * v;
                sum.max_abs = sum.max_abs.max(a);
            }
            start += self.n - i;
        }
        sum
    }

    /// Mean absolute deviation from zero of the off-diagonal covariances —
    /// the exact metric plotted in the paper's convergence figures.
    ///
    /// Returns 0 for matrices with no off-diagonal entries (`n < 2`).
    pub fn off_diagonal_mean_abs(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let pairs = (self.n * (self.n - 1) / 2) as f64;
        self.off_diagonal_abs_sum() / pairs
    }

    /// Frobenius norm of the strictly-off-diagonal part (both triangles),
    /// i.e. `off(D) = sqrt(2 · Σ_{i<j} D[i][j]²)`. The classical Jacobi
    /// convergence quantity.
    pub fn off_diagonal_frobenius(&self) -> f64 {
        (2.0 * self.off_diagonal_summary().sum_sq).sqrt()
    }

    /// Largest absolute off-diagonal entry.
    pub fn off_diagonal_max_abs(&self) -> f64 {
        self.off_diagonal_summary().max_abs
    }

    /// Trace (sum of diagonal entries). For a Gram matrix this equals
    /// `‖A‖_F²` and is invariant under the Hestenes rotations — a key
    /// correctness property the tests pin down.
    pub fn trace(&self) -> f64 {
        (0..self.n).map(|i| self.get(i, i)).sum()
    }

    /// Expand to a full dense symmetric [`Matrix`] (tests/diagnostics only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for j in i..self.n {
                let v = self.get(i, j);
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        m
    }

    /// Reshape in place for dimension `n`, zeroing all entries. Reuses the
    /// existing heap allocation whenever its capacity suffices; returns
    /// `true` when the buffer had to grow (an allocation event, counted by
    /// hj-core's sweep workspace for its zero-allocation invariant).
    pub fn reset_for_dim(&mut self, n: usize) -> bool {
        let len = n * (n + 1) / 2;
        let grew = self.data.capacity() < len;
        self.n = n;
        self.data.clear();
        self.data.resize(len, 0.0);
        grew
    }

    /// Swap contents with `other` in O(1) (pointer swap, no element copies).
    /// The double-buffered parallel sweep publishes each round's result this
    /// way instead of reallocating.
    #[inline]
    pub fn swap(&mut self, other: &mut PackedSymmetric) {
        std::mem::swap(self, other);
    }

    /// Raw packed buffer (row-within-triangle order).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw packed buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// The three off-diagonal reductions of one
/// [`PackedSymmetric::off_diagonal_summary`] pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffDiagonalSummary {
    /// `Σ_{i<j} |D[i][j]|` — each symmetric pair counted once.
    pub abs_sum: f64,
    /// `Σ_{i<j} D[i][j]²` (single-triangle; `off(D)² = 2·sum_sq`).
    pub sum_sq: f64,
    /// `max_{i<j} |D[i][j]|`.
    pub max_abs: f64,
}

impl std::fmt::Debug for PackedSymmetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "PackedSymmetric {}x{} [", self.n, self.n)?;
        let show = self.n.min(8);
        for i in 0..show {
            write!(f, "  ")?;
            for j in 0..show {
                write!(f, "{:>12.5e} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        if show < self.n {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_size() {
        assert_eq!(PackedSymmetric::zeros(0).len(), 0);
        assert_eq!(PackedSymmetric::zeros(1).len(), 1);
        assert_eq!(PackedSymmetric::zeros(4).len(), 10);
        assert_eq!(PackedSymmetric::zeros(256).len(), 256 * 257 / 2);
    }

    #[test]
    fn symmetric_access() {
        let mut d = PackedSymmetric::zeros(3);
        d.set(0, 2, 5.0);
        assert_eq!(d.get(0, 2), 5.0);
        assert_eq!(d.get(2, 0), 5.0);
        d.set(2, 1, -1.0);
        assert_eq!(d.get(1, 2), -1.0);
    }

    #[test]
    fn offsets_cover_triangle_without_overlap() {
        let n = 7;
        let mut d = PackedSymmetric::zeros(n);
        let mut counter = 0.0;
        for i in 0..n {
            for j in i..n {
                d.set(i, j, counter);
                counter += 1.0;
            }
        }
        // Every packed slot must hold a distinct counter value.
        let mut seen: Vec<f64> = d.as_slice().to_vec();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (k, v) in seen.iter().enumerate() {
            assert_eq!(*v, k as f64);
        }
    }

    #[test]
    fn add_assign_accumulates() {
        let mut d = PackedSymmetric::zeros(2);
        d.add_assign(0, 1, 2.0);
        d.add_assign(1, 0, 3.0);
        assert_eq!(d.get(0, 1), 5.0);
    }

    #[test]
    fn off_diagonal_metrics() {
        let mut d = PackedSymmetric::zeros(3);
        d.set(0, 0, 1.0);
        d.set(1, 1, 2.0);
        d.set(2, 2, 3.0);
        d.set(0, 1, 1.0);
        d.set(0, 2, -2.0);
        d.set(1, 2, 2.0);
        assert_eq!(d.off_diagonal_abs_sum(), 5.0);
        assert!((d.off_diagonal_mean_abs() - 5.0 / 3.0).abs() < 1e-15);
        assert!((d.off_diagonal_frobenius() - (2.0f64 * (1.0 + 4.0 + 4.0)).sqrt()).abs() < 1e-15);
        assert_eq!(d.off_diagonal_max_abs(), 2.0);
        assert_eq!(d.trace(), 6.0);
    }

    #[test]
    fn degenerate_dims() {
        let d = PackedSymmetric::zeros(0);
        assert!(d.is_empty());
        assert_eq!(d.off_diagonal_mean_abs(), 0.0);
        let d1 = PackedSymmetric::zeros(1);
        assert_eq!(d1.off_diagonal_mean_abs(), 0.0);
        assert_eq!(d1.off_diagonal_frobenius(), 0.0);
    }

    #[test]
    fn to_dense_round_trips() {
        let mut d = PackedSymmetric::zeros(3);
        d.set(0, 1, 4.0);
        d.set(1, 1, 9.0);
        let m = d.to_dense();
        assert_eq!(m.get(0, 1), 4.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.get(1, 1), 9.0);
    }

    #[test]
    fn reset_for_dim_reuses_capacity() {
        let mut d = PackedSymmetric::zeros(8);
        d.set(2, 3, 7.0);
        // Shrinking (or same size) must not allocate and must zero contents.
        assert!(!d.reset_for_dim(5));
        assert_eq!(d.dim(), 5);
        assert_eq!(d.len(), 15);
        assert!(d.as_slice().iter().all(|&x| x == 0.0));
        // Growing past capacity reports the allocation.
        assert!(d.reset_for_dim(100));
        assert_eq!(d.len(), 100 * 101 / 2);
    }

    #[test]
    fn swap_exchanges_contents() {
        let mut a = PackedSymmetric::zeros(3);
        a.set(0, 1, 4.0);
        let mut b = PackedSymmetric::zeros(3);
        b.set(2, 2, 9.0);
        a.swap(&mut b);
        assert_eq!(a.get(2, 2), 9.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(b.get(0, 1), 4.0);
    }

    #[test]
    fn diagonal_vector() {
        let mut d = PackedSymmetric::zeros(3);
        d.set(0, 0, 1.0);
        d.set(1, 1, 4.0);
        d.set(2, 2, 9.0);
        assert_eq!(d.diagonal(), vec![1.0, 4.0, 9.0]);
    }
}
