//! Structure-of-arrays (SoA) interleaving helpers for batched solvers.
//!
//! The batch engine in `hj-core` packs `k` independent problems so that the
//! *problem index is the fastest-moving dimension*: logical element `e` of
//! problem `p` lives at `buf[e · lanes + p]`, where `lanes` is `k` rounded up
//! to the [`ops::ROTATE_LANES`] vector width ([`lane_padded`]). Any loop over
//! a logical element then touches one contiguous `lanes`-wide slice — the
//! layout the GPU batch-SVD literature uses to vectorize *across* problems
//! instead of within one, and the software mirror of scheduling the same
//! rotation unit over many tiny matrices.
//!
//! Padding lanes (indices `k..lanes`) belong to no problem; callers keep
//! them zeroed, which is stable under every lanes-wide kernel (identity
//! rotations of zeros are zeros).

use crate::ops;

/// Round a problem count up to the SIMD lane width the rotation kernels
/// chunk by ([`ops::ROTATE_LANES`]). `lane_padded(0) == 0`.
pub fn lane_padded(problems: usize) -> usize {
    problems.div_ceil(ops::ROTATE_LANES.max(1)) * ops::ROTATE_LANES.max(1)
}

/// Scatter a dense problem-local buffer into lane `lane` of an interleaved
/// SoA buffer: `dst[e · lanes + lane] = src[e]`.
///
/// # Panics
/// Panics if `lane ≥ lanes` or `dst` is shorter than `src.len() · lanes`.
pub fn interleave(src: &[f64], lane: usize, lanes: usize, dst: &mut [f64]) {
    assert!(lane < lanes, "lane {lane} out of {lanes}");
    assert!(dst.len() >= src.len() * lanes, "SoA destination too short");
    for (e, &v) in src.iter().enumerate() {
        dst[e * lanes + lane] = v;
    }
}

/// Gather lane `lane` of an interleaved SoA buffer back into a dense
/// problem-local buffer: `dst[e] = src[e · lanes + lane]`.
///
/// # Panics
/// Panics if `lane ≥ lanes` or `src` is shorter than `dst.len() · lanes`.
pub fn deinterleave(src: &[f64], lane: usize, lanes: usize, dst: &mut [f64]) {
    assert!(lane < lanes, "lane {lane} out of {lanes}");
    assert!(src.len() >= dst.len() * lanes, "SoA source too short");
    for (e, v) in dst.iter_mut().enumerate() {
        *v = src[e * lanes + lane];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_padded_rounds_up_to_the_vector_width() {
        assert_eq!(lane_padded(0), 0);
        for k in 1..=3 * ops::ROTATE_LANES {
            let lanes = lane_padded(k);
            assert!(lanes >= k);
            assert_eq!(lanes % ops::ROTATE_LANES, 0);
            assert!(lanes - k < ops::ROTATE_LANES, "k={k} padded to {lanes}");
        }
    }

    #[test]
    fn interleave_deinterleave_round_trip() {
        let lanes = lane_padded(3);
        let mut buf = vec![0.0; 5 * lanes];
        let problems: Vec<Vec<f64>> =
            (0..3).map(|p| (0..5).map(|e| (p * 10 + e) as f64).collect()).collect();
        for (p, src) in problems.iter().enumerate() {
            interleave(src, p, lanes, &mut buf);
        }
        // Problem index is fastest-moving: element e of problem p at e·lanes+p.
        assert_eq!(buf[1], 10.0); // element 0 of problem 1: 0·lanes + 1
        assert_eq!(buf[4 * lanes + 2], 24.0);
        for (p, src) in problems.iter().enumerate() {
            let mut back = vec![0.0; 5];
            deinterleave(&buf, p, lanes, &mut back);
            assert_eq!(&back, src, "problem {p}");
        }
        // Padding lanes untouched.
        for e in 0..5 {
            assert_eq!(buf[e * lanes + 3], 0.0);
        }
    }
}
