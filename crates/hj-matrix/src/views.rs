//! Rectangular sub-matrix views.
//!
//! A [`MatrixView`] borrows a contiguous block of a column-major
//! [`Matrix`]: columns of the view are sub-slices of the parent's columns,
//! so all column-oriented kernels (dot products, rotations) run on views at
//! full speed. Used by blocked algorithms and anywhere a copy of a
//! submatrix would be waste.

use crate::{ops, Matrix};

/// An immutable view of the block starting at `(row0, col0)` with shape
/// `rows × cols`.
///
/// ```
/// use hj_matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
/// let bottom = a.view(1, 0, 2, 2);
/// assert_eq!(bottom.col(1), &[4.0, 6.0]); // contiguous, zero-copy
/// ```
#[derive(Clone, Copy)]
pub struct MatrixView<'a> {
    parent: &'a Matrix,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Borrow the `rows × cols` block at `(row0, col0)`.
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn view(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> MatrixView<'_> {
        assert!(
            row0 + rows <= self.rows() && col0 + cols <= self.cols(),
            "view {rows}x{cols} at ({row0}, {col0}) exceeds a {}x{} matrix",
            self.rows(),
            self.cols()
        );
        MatrixView { parent: self, row0, col0, rows, cols }
    }
}

impl<'a> MatrixView<'a> {
    /// View shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access in view coordinates.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.parent.get(self.row0 + r, self.col0 + c)
    }

    /// Column `c` of the view, as a contiguous slice of the parent column.
    #[inline]
    pub fn col(&self, c: usize) -> &'a [f64] {
        debug_assert!(c < self.cols);
        &self.parent.col(self.col0 + c)[self.row0..self.row0 + self.rows]
    }

    /// Materialize the view into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for c in 0..self.cols {
            out.col_mut(c).copy_from_slice(self.col(c));
        }
        out
    }

    /// Frobenius norm of the block.
    pub fn frobenius(&self) -> f64 {
        (0..self.cols).map(|c| ops::norm_sq(self.col(c))).sum::<f64>().sqrt()
    }

    /// Dot product between column `i` of this view and column `j` of
    /// another view with the same row count.
    pub fn col_dot(&self, i: usize, other: &MatrixView<'_>, j: usize) -> f64 {
        assert_eq!(self.rows, other.rows, "views must share the row count");
        ops::dot(self.col(i), other.col(j))
    }

    /// `self · other` as a new matrix (`self.cols == other.rows` required).
    pub fn matmul(&self, other: &MatrixView<'_>) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for c in 0..other.cols {
            let out_col = out.col_mut(c);
            for k in 0..other.rows {
                let w = other.get(k, c);
                if w == 0.0 {
                    continue;
                }
                for (r, o) in out_col.iter_mut().enumerate() {
                    *o += self.get(r, k) * w;
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for MatrixView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MatrixView {}x{} at ({}, {})", self.rows, self.cols, self.row0, self.col0)
    }
}

/// Iterate over the column blocks of width `block` covering a matrix (the
/// traversal of blocked Gram/QR algorithms). The final block may be
/// narrower.
pub fn column_blocks(a: &Matrix, block: usize) -> impl Iterator<Item = MatrixView<'_>> {
    assert!(block > 0, "block width must be positive");
    let cols = a.cols();
    let rows = a.rows();
    (0..cols.div_ceil(block)).map(move |b| {
        let c0 = b * block;
        a.view(0, c0, rows, (cols - c0).min(block))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, norms};

    #[test]
    fn view_reads_the_right_block() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let v = a.view(1, 1, 2, 2);
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.get(0, 0), 5.0);
        assert_eq!(v.get(1, 1), 9.0);
        assert_eq!(v.col(0), &[5.0, 8.0]);
        assert_eq!(v.to_matrix(), Matrix::from_rows(&[&[5.0, 6.0], &[8.0, 9.0]]));
    }

    #[test]
    fn full_view_matches_matrix() {
        let a = gen::uniform(6, 4, 3);
        let v = a.view(0, 0, 6, 4);
        assert_eq!(v.to_matrix(), a);
        assert!((v.frobenius() - norms::frobenius(&a)).abs() < 1e-14);
    }

    #[test]
    fn view_matmul_matches_dense() {
        let a = gen::uniform(8, 6, 5);
        let b = gen::uniform(6, 5, 7);
        let va = a.view(2, 1, 4, 3);
        let vb = b.view(0, 1, 3, 2);
        let got = va.matmul(&vb);
        let want = va.to_matrix().matmul(&vb.to_matrix()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn col_dot_across_views() {
        let a = gen::uniform(10, 3, 9);
        let v1 = a.view(2, 0, 5, 2);
        let v2 = a.view(2, 1, 5, 2);
        let d = v1.col_dot(0, &v2, 1);
        let want = crate::ops::dot(&a.col(0)[2..7], &a.col(2)[2..7]);
        assert_eq!(d, want);
    }

    #[test]
    fn column_blocks_cover_exactly() {
        let a = gen::uniform(4, 10, 11);
        let blocks: Vec<_> = column_blocks(&a, 4).collect();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].cols(), 4);
        assert_eq!(blocks[2].cols(), 2);
        let total: usize = blocks.iter().map(|b| b.cols()).sum();
        assert_eq!(total, 10);
        // Reassemble and compare.
        let mut rebuilt = Matrix::zeros(4, 10);
        let mut c0 = 0;
        for b in &blocks {
            for c in 0..b.cols() {
                rebuilt.col_mut(c0 + c).copy_from_slice(b.col(c));
            }
            c0 += b.cols();
        }
        assert_eq!(rebuilt, a);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_bounds_view_panics() {
        let a = gen::uniform(3, 3, 13);
        let _ = a.view(1, 1, 3, 3);
    }
}
