//! Pipelined execution-unit timing.
//!
//! A [`PipelinedUnit`] represents a bank of identical, fully-pipelined
//! functional units (e.g. the Update operator's 8 update kernels, or the
//! preprocessor's 16 multipliers) and answers throughput questions: how many
//! cycles does a batch of independent operations take, and how busy was the
//! bank over the run. This is the workhorse of the per-phase cycle
//! accounting in `hj-arch`.

use crate::op::OpSpec;
use crate::Cycles;

/// A bank of `lanes` identical pipelined units.
///
/// ```
/// use hj_fpsim::{OperatorLatencies, PipelinedUnit};
///
/// // The paper's update operator: 8 kernels, each pipelined.
/// let mut bank = PipelinedUnit::new("update", OperatorLatencies::PAPER.mul, 8);
/// // 800 independent ops stream in 9 (fill) + 99 cycles:
/// assert_eq!(bank.issue(800), 108);
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedUnit {
    name: &'static str,
    spec: OpSpec,
    lanes: u64,
    ops_issued: u64,
    busy_cycles: Cycles,
}

impl PipelinedUnit {
    /// Create a bank of `lanes` units with the given per-unit spec.
    /// Panics if `lanes == 0`.
    pub fn new(name: &'static str, spec: OpSpec, lanes: u64) -> Self {
        assert!(lanes > 0, "a unit bank needs at least one lane");
        PipelinedUnit { name, spec, lanes, ops_issued: 0, busy_cycles: 0 }
    }

    /// The bank's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of parallel lanes.
    pub fn lanes(&self) -> u64 {
        self.lanes
    }

    /// Reconfigure the lane count (the paper's preprocessor is reconfigured
    /// into update kernels after the first sweep; `hj-arch` models that by
    /// growing the update bank).
    pub fn set_lanes(&mut self, lanes: u64) {
        assert!(lanes > 0, "a unit bank needs at least one lane");
        self.lanes = lanes;
    }

    /// Cycles to process `n` independent operations spread across the lanes:
    /// `latency + (ceil(n / lanes) − 1) × II`. Records the work in the
    /// utilization counters.
    pub fn issue(&mut self, n: u64) -> Cycles {
        if n == 0 {
            return 0;
        }
        let per_lane = n.div_ceil(self.lanes);
        let c = self.spec.cycles_for(per_lane);
        self.ops_issued += n;
        self.busy_cycles += c;
        c
    }

    /// Pure query form of [`PipelinedUnit::issue`] (no counter updates).
    pub fn cycles_for(&self, n: u64) -> Cycles {
        if n == 0 {
            0
        } else {
            self.spec.cycles_for(n.div_ceil(self.lanes))
        }
    }

    /// Steady-state throughput in operations per cycle.
    pub fn throughput(&self) -> f64 {
        self.lanes as f64 / self.spec.initiation_interval as f64
    }

    /// Total operations issued so far.
    pub fn ops_issued(&self) -> u64 {
        self.ops_issued
    }

    /// Total cycles this bank has been the active stage.
    pub fn busy_cycles(&self) -> Cycles {
        self.busy_cycles
    }

    /// Average issued operations per busy cycle per lane ∈ [0, 1]; 1.0 means
    /// the pipeline never bubbled.
    pub fn utilization(&self) -> f64 {
        if self.busy_cycles == 0 {
            return 0.0;
        }
        self.ops_issued as f64 / (self.busy_cycles as f64 * self.lanes as f64)
    }

    /// Reset the utilization counters (e.g. between sweeps).
    pub fn reset_stats(&mut self) {
        self.ops_issued = 0;
        self.busy_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OperatorLatencies;

    fn unit(lanes: u64) -> PipelinedUnit {
        PipelinedUnit::new("test", OperatorLatencies::PAPER.mul, lanes)
    }

    #[test]
    fn single_lane_streaming() {
        let mut u = unit(1);
        assert_eq!(u.issue(1), 9);
        assert_eq!(u.issue(100), 9 + 99);
        assert_eq!(u.ops_issued(), 101);
    }

    #[test]
    fn multi_lane_divides_work() {
        let mut u = unit(8);
        // 80 ops over 8 lanes = 10 per lane → 9 + 9 cycles
        assert_eq!(u.issue(80), 18);
        // 81 ops → 11 per lane (ceiling)
        assert_eq!(u.issue(81), 19);
    }

    #[test]
    fn zero_ops_zero_cycles() {
        let mut u = unit(4);
        assert_eq!(u.issue(0), 0);
        assert_eq!(u.cycles_for(0), 0);
        assert_eq!(u.busy_cycles(), 0);
    }

    #[test]
    fn cycles_for_matches_issue_without_mutation() {
        let mut u = unit(3);
        let q = u.cycles_for(10);
        assert_eq!(u.ops_issued(), 0);
        assert_eq!(u.issue(10), q);
    }

    #[test]
    fn throughput_and_utilization() {
        let mut u = unit(4);
        assert_eq!(u.throughput(), 4.0);
        u.issue(4000);
        // 1000 per lane → 9 + 999 = 1008 busy cycles; 4000/(1008·4) ≈ 0.992
        assert!(u.utilization() > 0.99);
        u.reset_stats();
        assert_eq!(u.utilization(), 0.0);
    }

    #[test]
    fn set_lanes_reconfigures() {
        let mut u = unit(4);
        let before = u.cycles_for(64);
        u.set_lanes(8);
        assert!(u.cycles_for(64) < before);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        unit(0);
    }
}
