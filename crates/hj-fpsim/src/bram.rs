//! On-chip BRAM model.
//!
//! The paper holds the whole covariance matrix in local BRAM "for matrices
//! of column dimension no greater than 256" (§VI-A) and uses "simple dual
//! port RAMs … to temporarily cache the rotation angle parameters and some
//! covariances". This model answers the two questions the architecture
//! simulator asks: does a working set fit, and how many 36 Kb block RAMs
//! does a buffer of a given geometry consume.

use crate::Cycles;

/// Bits per Virtex-5 BRAM block (RAMB36).
pub const BRAM36_BITS: u64 = 36 * 1024;

/// A logical on-chip memory buffer built from BRAM36 blocks.
///
/// Simple dual port: one read port + one write port, each accepting one
/// access per cycle.
///
/// ```
/// use hj_fpsim::Bram;
///
/// // The paper's n = 256 packed covariance store:
/// let cov = Bram::for_doubles("covariance", 256 * 257 / 2);
/// assert_eq!(cov.bram36_blocks(), 66);
/// assert!(cov.fits(256 * 257 / 2));
/// assert!(!cov.fits(257 * 258 / 2)); // n = 257 no longer fits
/// ```
#[derive(Debug, Clone)]
pub struct Bram {
    name: &'static str,
    word_bits: u32,
    words: u64,
    reads: u64,
    writes: u64,
}

impl Bram {
    /// Create a buffer of `words` entries of `word_bits` each.
    pub fn new(name: &'static str, words: u64, word_bits: u32) -> Self {
        assert!(word_bits > 0, "word width must be positive");
        Bram { name, word_bits, words, reads: 0, writes: 0 }
    }

    /// Buffer for `words` IEEE-754 doubles.
    pub fn for_doubles(name: &'static str, words: u64) -> Self {
        Bram::new(name, words, 64)
    }

    /// The buffer's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacity in words.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Total capacity in bits.
    pub fn bits(&self) -> u64 {
        self.words * self.word_bits as u64
    }

    /// Number of RAMB36 blocks this buffer consumes.
    ///
    /// Width-first packing: a `word_bits`-wide word needs
    /// `ceil(word_bits / 36)` blocks in parallel when depth ≤ 1024 (the
    /// RAMB36's 36-bit-wide configuration); deeper buffers replicate that
    /// column. A simple but realistic model of how Coregen maps wide/deep
    /// memories.
    pub fn bram36_blocks(&self) -> u64 {
        if self.words == 0 {
            return 0;
        }
        let width_cols = (self.word_bits as u64).div_ceil(36);
        let depth_rows = self.words.div_ceil(1024);
        width_cols * depth_rows
    }

    /// Record `n` reads; returns the cycles consumed at one read/cycle.
    pub fn read_n(&mut self, n: u64) -> Cycles {
        self.reads += n;
        n
    }

    /// Record `n` writes; returns the cycles consumed at one write/cycle.
    pub fn write_n(&mut self, n: u64) -> Cycles {
        self.writes += n;
        n
    }

    /// Total reads recorded.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes recorded.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Whether a working set of `words` entries fits in this buffer.
    pub fn fits(&self, words: u64) -> bool {
        words <= self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_count_for_doubles() {
        // A 64-bit word needs 2 BRAM36 columns; 1024 words → 2 blocks.
        let b = Bram::for_doubles("d", 1024);
        assert_eq!(b.bram36_blocks(), 2);
        // 1025 words → 2 depth rows → 4 blocks.
        assert_eq!(Bram::for_doubles("d", 1025).bram36_blocks(), 4);
        assert_eq!(Bram::for_doubles("d", 0).bram36_blocks(), 0);
    }

    #[test]
    fn packed_covariance_matrix_for_n_256_fits_on_chip() {
        // The paper's claim: the whole covariance matrix fits in BRAM for
        // n ≤ 256. Packed upper triangle: 256·257/2 = 32 896 doubles.
        let words = 256 * 257 / 2;
        let d = Bram::for_doubles("covariance", words);
        // 2 columns × ceil(32896/1024) = 2 × 33 = 66 RAMB36 — a fraction of
        // the XC5VLX330's 288.
        assert_eq!(d.bram36_blocks(), 66);
        assert!(d.fits(words));
        assert!(!d.fits(words + 1));
    }

    #[test]
    fn wide_fifo_words() {
        // The 127-bit internal FIFO word needs 4 BRAM columns.
        let f = Bram::new("wide", 512, 127);
        assert_eq!(f.bram36_blocks(), 4);
    }

    #[test]
    fn access_accounting() {
        let mut b = Bram::for_doubles("d", 16);
        assert_eq!(b.read_n(5), 5);
        assert_eq!(b.write_n(3), 3);
        assert_eq!(b.reads(), 5);
        assert_eq!(b.writes(), 3);
        assert_eq!(b.name(), "d");
        assert_eq!(b.bits(), 16 * 64);
        assert_eq!(b.words(), 16);
    }
}
