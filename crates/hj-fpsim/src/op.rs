//! IEEE-754 double-precision operator specifications.
//!
//! The paper generates its computational cores with the Xilinx Coregen
//! floating-point operator (its ref. \[24\]) "configured with default
//! latencies as 9, 14, 57, 57 clock cycles for multiplier, adder or
//! subtractor, divider and square-root calculator respectively" (§VI-A).
//! All cores are fully pipelined (initiation interval 1).

use crate::Cycles;

/// The floating-point operation kinds the architecture instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Double-precision multiply.
    Mul,
    /// Double-precision add.
    Add,
    /// Double-precision subtract (same core parameters as add).
    Sub,
    /// Double-precision divide.
    Div,
    /// Double-precision square root.
    Sqrt,
}

impl FpOp {
    /// All operator kinds, for iteration in resource accounting.
    pub const ALL: [FpOp; 5] = [FpOp::Mul, FpOp::Add, FpOp::Sub, FpOp::Div, FpOp::Sqrt];
}

/// Timing spec of one pipelined operator core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpec {
    /// Cycles from operand issue to result availability.
    pub latency: Cycles,
    /// Cycles between successive issues (1 = fully pipelined).
    pub initiation_interval: Cycles,
}

impl OpSpec {
    /// Cycles to stream `n` independent operations through one core:
    /// pipeline fill (latency) plus `(n − 1) ×` the initiation interval.
    /// Zero operations take zero cycles.
    pub fn cycles_for(&self, n: u64) -> Cycles {
        if n == 0 {
            0
        } else {
            self.latency + (n - 1) * self.initiation_interval
        }
    }
}

/// The full latency table for a design's operator library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatorLatencies {
    /// Multiplier spec.
    pub mul: OpSpec,
    /// Adder spec.
    pub add: OpSpec,
    /// Subtractor spec.
    pub sub: OpSpec,
    /// Divider spec.
    pub div: OpSpec,
    /// Square-root spec.
    pub sqrt: OpSpec,
}

impl OperatorLatencies {
    /// The paper's Coregen defaults: 9 / 14 / 14 / 57 / 57, fully pipelined.
    pub const PAPER: OperatorLatencies = OperatorLatencies {
        mul: OpSpec { latency: 9, initiation_interval: 1 },
        add: OpSpec { latency: 14, initiation_interval: 1 },
        sub: OpSpec { latency: 14, initiation_interval: 1 },
        div: OpSpec { latency: 57, initiation_interval: 1 },
        sqrt: OpSpec { latency: 57, initiation_interval: 1 },
    };

    /// Spec for a given operation kind.
    pub fn spec(&self, op: FpOp) -> OpSpec {
        match op {
            FpOp::Mul => self.mul,
            FpOp::Add => self.add,
            FpOp::Sub => self.sub,
            FpOp::Div => self.div,
            FpOp::Sqrt => self.sqrt,
        }
    }

    /// Latency of the paper's Fig. 4 Jacobi-rotation dataflow evaluated on
    /// these cores: the critical path of eqs. (8)–(10) is
    ///
    /// ```text
    /// Δ = n₂ − n₁ (sub) → Δ² (mul) → +4c² (add) → √ (sqrt)
    ///   → +|Δ|·√ (mul, add) → divide (t) / divide + sqrt (cos, sin)
    /// ```
    ///
    /// i.e. sub + mul + add + sqrt + mul + add + div + sqrt.
    pub fn rotation_critical_path(&self) -> Cycles {
        self.sub.latency
            + self.mul.latency
            + self.add.latency
            + self.sqrt.latency
            + self.mul.latency
            + self.add.latency
            + self.div.latency
            + self.sqrt.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_vi_a() {
        let l = OperatorLatencies::PAPER;
        assert_eq!(l.mul.latency, 9);
        assert_eq!(l.add.latency, 14);
        assert_eq!(l.sub.latency, 14);
        assert_eq!(l.div.latency, 57);
        assert_eq!(l.sqrt.latency, 57);
        for op in FpOp::ALL {
            assert_eq!(l.spec(op).initiation_interval, 1, "{op:?} must be fully pipelined");
        }
    }

    #[test]
    fn cycles_for_streaming() {
        let s = OpSpec { latency: 9, initiation_interval: 1 };
        assert_eq!(s.cycles_for(0), 0);
        assert_eq!(s.cycles_for(1), 9);
        assert_eq!(s.cycles_for(10), 18);
        let s2 = OpSpec { latency: 5, initiation_interval: 3 };
        assert_eq!(s2.cycles_for(4), 5 + 9);
    }

    #[test]
    fn rotation_critical_path_is_plausible() {
        // 14+9+14+57+9+14+57+57 = 231 cycles — about 1.5 µs at 150 MHz,
        // consistent with the paper's deeply-pipelined rotation unit.
        assert_eq!(OperatorLatencies::PAPER.rotation_critical_path(), 231);
    }
}
