//! Bit-accurate IEEE-754 double-precision operator models.
//!
//! The paper's datapath is built from Xilinx Coregen floating-point cores
//! (its ref. \[24\]) — hardware implementations of IEEE-754 binary64
//! add/sub/mul/div/sqrt with round-to-nearest-even. This module implements
//! those operators *as the hardware does*: explicit sign/exponent/mantissa
//! datapaths with guard/round/sticky rounding, built only from integer
//! operations — the softfloat counterpart of the cores' RTL.
//!
//! Why bother, when the host CPU has the same arithmetic? Because it makes
//! the claim "the simulated architecture computes exactly what the FPGA
//! would" *checkable*: IEEE-754 fully determines each operation's result,
//! so these models must agree with the host FPU **bit for bit** on every
//! input — and the property tests drive exactly that comparison across
//! normals, subnormals, infinities and signed zeros. Any future deviation
//! (e.g. modelling a truncated-rounding core) would then be a deliberate,
//! visible change here rather than an accident of host arithmetic.
//!
//! Scope: round-to-nearest-even only (the Coregen default); NaN results
//! are canonical quiet NaNs (hardware cores do not propagate payloads).

const SIGN_MASK: u64 = 0x8000_0000_0000_0000;
const EXP_MASK: u64 = 0x7FF0_0000_0000_0000;
const FRAC_MASK: u64 = 0x000F_FFFF_FFFF_FFFF;
const EXP_BITS: u32 = 11;
const FRAC_BITS: u32 = 52;
const EXP_MAX: i32 = (1 << EXP_BITS) - 1; // 2047
const IMPLICIT: u64 = 1 << FRAC_BITS;
/// The canonical quiet NaN these models return.
pub const CANONICAL_NAN: u64 = 0x7FF8_0000_0000_0000;

#[inline]
fn sign_of_bits(x: u64) -> u64 {
    x & SIGN_MASK
}

#[inline]
fn exp_of(x: u64) -> i32 {
    ((x & EXP_MASK) >> FRAC_BITS) as i32
}

#[inline]
fn frac_of(x: u64) -> u64 {
    x & FRAC_MASK
}

#[inline]
fn is_nan_bits(x: u64) -> bool {
    exp_of(x) == EXP_MAX && frac_of(x) != 0
}

#[inline]
fn is_inf_bits(x: u64) -> bool {
    exp_of(x) == EXP_MAX && frac_of(x) == 0
}

#[inline]
fn is_zero_bits(x: u64) -> bool {
    x & !SIGN_MASK == 0
}

/// Unpack into (sign-bit, effective exponent, mantissa-with-implicit-bit).
/// Subnormals get effective exponent 1 and no implicit bit. Zero mantissa
/// only for true zeros.
#[inline]
fn unpack(x: u64) -> (u64, i32, u64) {
    let e = exp_of(x);
    if e == 0 {
        (sign_of_bits(x), 1, frac_of(x))
    } else {
        (sign_of_bits(x), e, frac_of(x) | IMPLICIT)
    }
}

/// Round-to-nearest-even of a mantissa carrying 3 extra low bits
/// (guard, round, sticky) at an effective exponent `e`; packs the final
/// bits with overflow → ±Inf and underflow → subnormal/zero.
///
/// Precondition: `mant` is normalized so that, for normal results, bit
/// `FRAC_BITS + 3` (the implicit bit position, pre-round) is set — OR the
/// result is subnormal (`e == 1` and the implicit-position bit may be 0).
fn round_pack(sign: u64, mut e: i32, mut mant: u64) -> u64 {
    // Subnormal squeeze: if e < 1, shift right until e == 1, keeping sticky.
    if e < 1 {
        let shift = (1 - e) as u32;
        if shift >= 64 {
            mant = u64::from(mant != 0);
        } else {
            let lost = mant & ((1u64 << shift) - 1);
            mant = (mant >> shift) | u64::from(lost != 0);
        }
        e = 1;
    }
    // RNE on the low 3 bits.
    let lsb = (mant >> 3) & 1;
    let grs = mant & 0b111;
    let mut m = mant >> 3;
    if grs > 0b100 || (grs == 0b100 && lsb == 1) {
        m += 1;
        if m == (IMPLICIT << 1) {
            // Rounding carried out of the mantissa: renormalize.
            m >>= 1;
            e += 1;
        }
    }
    if m & IMPLICIT == 0 {
        // Subnormal (or zero) result: exponent field 0.
        debug_assert!(e == 1, "non-normalized mantissa only at minimum exponent");
        return sign | m;
    }
    if e >= EXP_MAX {
        return sign | EXP_MASK; // overflow → ±Inf
    }
    sign | ((e as u64) << FRAC_BITS) | (m & FRAC_MASK)
}

/// IEEE-754 binary64 addition, RNE.
pub fn add_bits(a: u64, b: u64) -> u64 {
    if is_nan_bits(a) || is_nan_bits(b) {
        return CANONICAL_NAN;
    }
    match (is_inf_bits(a), is_inf_bits(b)) {
        (true, true) => return if sign_of_bits(a) == sign_of_bits(b) { a } else { CANONICAL_NAN },
        (true, false) => return a,
        (false, true) => return b,
        _ => {}
    }
    if is_zero_bits(a) && is_zero_bits(b) {
        // +0 + -0 = +0 under RNE; -0 + -0 = -0.
        return if a == b { a } else { 0 };
    }
    if is_zero_bits(a) {
        return b;
    }
    if is_zero_bits(b) {
        return a;
    }

    let (sa, ea, ma) = unpack(a);
    let (sb, eb, mb) = unpack(b);
    // Give both mantissas 3 GRS bits of headroom.
    let (mut ma, mut mb) = (ma << 3, mb << 3);
    // Align to the larger exponent, folding shifted-out bits into sticky.
    let e = ea.max(eb);
    let align = |m: u64, d: u32| -> u64 {
        if d == 0 {
            m
        } else if d >= 64 {
            u64::from(m != 0)
        } else {
            (m >> d) | u64::from(m & ((1u64 << d) - 1) != 0)
        }
    };
    ma = align(ma, (e - ea) as u32);
    mb = align(mb, (e - eb) as u32);

    if sa == sb {
        let mut m = ma + mb;
        let mut e = e;
        if m & (IMPLICIT << 4) != 0 {
            // Carry out: shift right one, keep sticky.
            m = (m >> 1) | (m & 1);
            e += 1;
        }
        round_pack(sa, e, m)
    } else {
        // Effective subtraction.
        let (sign, mut m) = if ma > mb {
            (sa, ma - mb)
        } else if mb > ma {
            (sb, mb - ma)
        } else {
            return 0; // exact cancellation → +0 (RNE)
        };
        let mut e = e;
        // Normalize left until the implicit (pre-round) bit is set or the
        // exponent bottoms out.
        while m & (IMPLICIT << 3) == 0 && e > 1 {
            m <<= 1;
            e -= 1;
        }
        round_pack(sign, e, m)
    }
}

/// IEEE-754 binary64 subtraction, RNE.
pub fn sub_bits(a: u64, b: u64) -> u64 {
    add_bits(a, b ^ SIGN_MASK)
}

/// IEEE-754 binary64 multiplication, RNE.
pub fn mul_bits(a: u64, b: u64) -> u64 {
    if is_nan_bits(a) || is_nan_bits(b) {
        return CANONICAL_NAN;
    }
    let sign = sign_of_bits(a) ^ sign_of_bits(b);
    if is_inf_bits(a) || is_inf_bits(b) {
        if is_zero_bits(a) || is_zero_bits(b) {
            return CANONICAL_NAN; // 0 × ∞
        }
        return sign | EXP_MASK;
    }
    if is_zero_bits(a) || is_zero_bits(b) {
        return sign;
    }
    let (_, mut ea, mut ma) = unpack(a);
    let (_, mut eb, mut mb) = unpack(b);
    // Normalize subnormal inputs into the normal range (negative exponents).
    while ma & IMPLICIT == 0 {
        ma <<= 1;
        ea -= 1;
    }
    while mb & IMPLICIT == 0 {
        mb <<= 1;
        eb -= 1;
    }
    // 53×53 → 106-bit product.
    let prod = (ma as u128) * (mb as u128);
    // Product of two [1,2) mantissas is in [1,4): bit 105 or bit 104 leads.
    // Target layout: mantissa in bits [3..=55] (implicit at 55), GRS at 0..3.
    // prod bit 104 corresponds to value 1.0 (2^104 = 2^52·2^52).
    let mut e = ea + eb - 1023;
    let top = if prod >> 105 != 0 {
        e += 1;
        105
    } else {
        104
    };
    // Keep 53 mantissa bits + 3 GRS; fold the rest into sticky.
    let keep = top - 55; // bits below this fold into sticky
    let main = (prod >> keep) as u64;
    let sticky = u64::from(prod & ((1u128 << keep) - 1) != 0);
    round_pack(sign, e, main | sticky)
}

/// IEEE-754 binary64 division, RNE.
pub fn div_bits(a: u64, b: u64) -> u64 {
    if is_nan_bits(a) || is_nan_bits(b) {
        return CANONICAL_NAN;
    }
    let sign = sign_of_bits(a) ^ sign_of_bits(b);
    match (is_inf_bits(a), is_inf_bits(b)) {
        (true, true) => return CANONICAL_NAN,
        (true, false) => return sign | EXP_MASK,
        (false, true) => return sign,
        _ => {}
    }
    match (is_zero_bits(a), is_zero_bits(b)) {
        (true, true) => return CANONICAL_NAN,
        (true, false) => return sign,
        (false, true) => return sign | EXP_MASK, // x / 0 = ±Inf
        _ => {}
    }
    let (_, mut ea, mut ma) = unpack(a);
    let (_, mut eb, mut mb) = unpack(b);
    while ma & IMPLICIT == 0 {
        ma <<= 1;
        ea -= 1;
    }
    while mb & IMPLICIT == 0 {
        mb <<= 1;
        eb -= 1;
    }
    let mut e = ea - eb + 1023;
    // Quotient of [1,2)/[1,2) is in (0.5, 2). Compute 56 quotient bits
    // (53 + GRS headroom): numerator shifted left by 55.
    let num = (ma as u128) << 55;
    let den = mb as u128;
    let mut q = (num / den) as u64;
    let rem = num % den;
    // q has its leading bit at position 55 (if ≥ 1) or 54 (if < 1).
    if q & (1 << 55) == 0 {
        q <<= 1;
        let num2 = rem << 1;
        q |= (num2 / den) as u64;
        let rem2 = num2 % den;
        e -= 1;
        q |= u64::from(rem2 != 0); // sticky
    } else {
        q |= u64::from(rem != 0); // sticky
    }
    round_pack(sign, e, q)
}

/// IEEE-754 binary64 square root, RNE.
pub fn sqrt_bits(a: u64) -> u64 {
    if is_nan_bits(a) {
        return CANONICAL_NAN;
    }
    if is_zero_bits(a) {
        return a; // ±0 → ±0
    }
    if sign_of_bits(a) != 0 {
        return CANONICAL_NAN; // negative → NaN
    }
    if is_inf_bits(a) {
        return a;
    }
    let (_, mut e, mut m) = unpack(a);
    while m & IMPLICIT == 0 {
        m <<= 1;
        e -= 1;
    }
    // Value = m · 2^(e − 1023 − 52). Write exponent = e − 1023; make it
    // even by borrowing into the mantissa, then sqrt(m') with
    // result exponent (exp)/2.
    let mut exp = e - 1023;
    let mut mm = m as u128;
    if exp & 1 != 0 {
        mm <<= 1;
        exp -= 1;
    }
    let res_exp = exp / 2 + 1023;
    // mm is in [2^52, 2^54). Compute sqrt with 55 result bits + sticky:
    // target integer sqrt of mm << 58 (so result has ~56 bits).
    let target = mm << 58;
    let mut root: u128 = 0;
    let mut rem: u128 = 0;
    // Bit-by-bit (restoring) square root — exactly the shift-and-subtract
    // datapath a hardware sqrt core implements.
    let total_bits = 112; // target < 2^112
    let mut i = total_bits / 2;
    while i > 0 {
        i -= 1;
        let bit_pair = (target >> (2 * i)) & 0b11;
        rem = (rem << 2) | bit_pair;
        let trial = (root << 2) | 1;
        root <<= 1;
        if rem >= trial {
            rem -= trial;
            root |= 1;
        }
    }
    // root = floor(sqrt(target)), with 56 significant bits; sticky from rem.
    let mut r = root as u64;
    r |= u64::from(rem != 0);
    // root has its leading bit at position 55; mantissa+GRS layout expected
    // by round_pack.
    round_pack(0, res_exp, r)
}

/// Convenience f64 wrappers (the simulator-facing API).
///
/// ```
/// use hj_fpsim::arith;
///
/// // The modeled cores agree with the host FPU to the bit:
/// let (a, b) = (0.1f64, 0.2f64);
/// assert_eq!(arith::add(a, b).to_bits(), (a + b).to_bits());
/// assert_eq!(arith::mul(a, b).to_bits(), (a * b).to_bits());
/// assert_eq!(arith::sqrt(2.0).to_bits(), 2.0f64.sqrt().to_bits());
/// ```
pub fn add(a: f64, b: f64) -> f64 {
    f64::from_bits(add_bits(a.to_bits(), b.to_bits()))
}
/// See [`add`].
pub fn sub(a: f64, b: f64) -> f64 {
    f64::from_bits(sub_bits(a.to_bits(), b.to_bits()))
}
/// See [`add`].
pub fn mul(a: f64, b: f64) -> f64 {
    f64::from_bits(mul_bits(a.to_bits(), b.to_bits()))
}
/// See [`add`].
pub fn div(a: f64, b: f64) -> f64 {
    f64::from_bits(div_bits(a.to_bits(), b.to_bits()))
}
/// See [`add`].
pub fn sqrt(a: f64) -> f64 {
    f64::from_bits(sqrt_bits(a.to_bits()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bits_eq(got: f64, want: f64, ctx: &str) {
        if want.is_nan() {
            assert!(got.is_nan(), "{ctx}: expected NaN, got {got:?}");
        } else {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{ctx}: got {got:e} ({:#018x}), want {want:e} ({:#018x})",
                got.to_bits(),
                want.to_bits()
            );
        }
    }

    fn check_all(a: f64, b: f64) {
        assert_bits_eq(add(a, b), a + b, &format!("{a:e} + {b:e}"));
        assert_bits_eq(sub(a, b), a - b, &format!("{a:e} - {b:e}"));
        assert_bits_eq(mul(a, b), a * b, &format!("{a:e} * {b:e}"));
        assert_bits_eq(div(a, b), a / b, &format!("{a:e} / {b:e}"));
        assert_bits_eq(sqrt(a.abs()), a.abs().sqrt(), &format!("sqrt({:e})", a.abs()));
    }

    const SPECIALS: [f64; 18] = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        2.0,
        0.5,
        f64::MIN_POSITIVE,       // smallest normal
        f64::MIN_POSITIVE / 2.0, // subnormal
        4.9e-324,                // smallest subnormal
        f64::MAX,
        f64::MIN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::EPSILON,
        1.0 + f64::EPSILON,
        std::f64::consts::PI,
        1e308,
        1e-308,
    ];

    #[test]
    fn special_value_grid_matches_hardware() {
        for &a in &SPECIALS {
            for &b in &SPECIALS {
                check_all(a, b);
            }
        }
    }

    #[test]
    fn nan_handling() {
        assert!(add(f64::NAN, 1.0).is_nan());
        assert!(mul(f64::NAN, 0.0).is_nan());
        assert!(div(1.0, f64::NAN).is_nan());
        assert!(sqrt(f64::NAN).is_nan());
        assert!(sqrt(-1.0).is_nan());
        assert!(add(f64::INFINITY, f64::NEG_INFINITY).is_nan());
        assert!(mul(f64::INFINITY, 0.0).is_nan());
        assert!(div(0.0, 0.0).is_nan());
        assert!(div(f64::INFINITY, f64::INFINITY).is_nan());
    }

    #[test]
    fn signed_zero_rules() {
        assert_eq!(add(0.0, -0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(add(-0.0, -0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(mul(-0.0, 5.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(div(-0.0, 5.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(sqrt(-0.0).to_bits(), (-0.0f64).to_bits());
        // Exact cancellation gives +0 under RNE.
        assert_eq!(sub(1.5, 1.5).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn rounding_ties_to_even() {
        // 1 + 2^-53 is an exact tie: rounds to 1 (even mantissa).
        let tie = 1.0 + f64::EPSILON / 2.0;
        assert_eq!(add(1.0, f64::EPSILON / 2.0).to_bits(), tie.to_bits());
        assert_eq!(tie, 1.0);
        // (1 + 2^-52) + 2^-53 is a tie whose even neighbour is above.
        let x = 1.0 + f64::EPSILON;
        assert_bits_eq(add(x, f64::EPSILON / 2.0), x + f64::EPSILON / 2.0, "tie up");
    }

    #[test]
    fn overflow_and_underflow() {
        assert_eq!(mul(1e308, 10.0), f64::INFINITY);
        assert_eq!(mul(-1e308, 10.0), f64::NEG_INFINITY);
        assert_bits_eq(mul(1e-308, 1e-10), 1e-308 * 1e-10, "underflow to subnormal");
        assert_bits_eq(mul(4.9e-324, 0.4), 4.9e-324 * 0.4, "underflow to zero region");
        assert_eq!(add(f64::MAX, f64::MAX), f64::INFINITY);
    }

    #[test]
    fn subnormal_arithmetic_matches() {
        let subs = [4.9e-324, 1e-320, 2.2e-308, f64::MIN_POSITIVE / 3.0];
        for &a in &subs {
            for &b in &subs {
                check_all(a, b);
                check_all(a, -b);
            }
        }
    }

    #[test]
    fn random_bit_patterns_match_hardware() {
        // Deterministic LCG over raw bit patterns: hits normals, subnormals,
        // huge/tiny exponents — everything.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..20_000 {
            let a = f64::from_bits(next());
            let b = f64::from_bits(next());
            if a.is_nan() || b.is_nan() {
                continue; // NaN payload propagation is not modelled
            }
            check_all(a, b);
        }
    }

    #[test]
    fn sqrt_exact_squares() {
        for k in 1..100u64 {
            let x = (k * k) as f64;
            assert_eq!(sqrt(x), k as f64);
        }
        assert_eq!(sqrt(f64::INFINITY), f64::INFINITY);
        assert_eq!(sqrt(0.25), 0.5);
    }

    #[test]
    fn rotation_formula_on_softfloat_matches_native() {
        // The full eq. (8) dataflow evaluated on the bit-accurate cores
        // equals the native-arithmetic result exactly: each intermediate is
        // the same correctly-rounded IEEE value.
        let (n1, n2, c) = (1.75, 3.5, 0.625);
        let delta = sub(n2, n1);
        let delta_sq = mul(delta, delta);
        let c2 = mul(mul(2.0, c), mul(2.0, c));
        let r = sqrt(add(delta_sq, c2));
        let t = div(mul(2.0, c), add(delta, r));
        let native = {
            let delta = n2 - n1;
            let r = (delta * delta + (2.0 * c) * (2.0 * c)).sqrt();
            2.0 * c / (delta + r)
        };
        assert_eq!(t.to_bits(), native.to_bits());
    }
}
