//! Off-chip memory channel model.
//!
//! The paper's host is a Convey HC-2 hybrid-core system: each application
//! engine (FPGA) reaches a highly-interleaved off-chip memory through the
//! Convey crossbar. Off-chip memory is what "breaks the restriction of the
//! analyzable matrix dimensions" (§I) — and also what throttles the design
//! once the covariance matrix no longer fits in BRAM ("when the matrix
//! column size grows over 256, the performance is increasingly affected by
//! the I/O bandwidths", §VI-B).
//!
//! The model is a bandwidth pipe with separate sequential/strided
//! efficiencies: streaming column reads achieve near-peak bandwidth;
//! covariance-row traffic (strided in the packed triangle) achieves a
//! configurable fraction of it.

use crate::Cycles;

/// An off-chip channel with peak bytes/cycle and an efficiency factor for
/// non-streaming access.
#[derive(Debug, Clone)]
pub struct OffChipChannel {
    /// Peak bytes transferable per design-clock cycle on streaming access.
    peak_bytes_per_cycle: f64,
    /// Achieved fraction of peak on strided/irregular access ∈ (0, 1].
    strided_efficiency: f64,
    bytes_streamed: u64,
    bytes_strided: u64,
}

impl OffChipChannel {
    /// Create a channel.
    ///
    /// Panics unless `peak_bytes_per_cycle > 0` and
    /// `strided_efficiency ∈ (0, 1]`.
    pub fn new(peak_bytes_per_cycle: f64, strided_efficiency: f64) -> Self {
        assert!(peak_bytes_per_cycle > 0.0, "bandwidth must be positive");
        assert!(
            strided_efficiency > 0.0 && strided_efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        OffChipChannel {
            peak_bytes_per_cycle,
            strided_efficiency,
            bytes_streamed: 0,
            bytes_strided: 0,
        }
    }

    /// The Convey HC-2 operating point used by the architecture simulator:
    /// ~2.7 GB/s effective streaming per AE at 150 MHz (the HC-2's 80 GB/s
    /// aggregate is shared by 4 AEs and 16 channels; a single personality
    /// realistically streams a fraction of its share), 25 % efficiency on
    /// strided covariance traffic.
    pub fn hc2_default() -> Self {
        OffChipChannel::new(18.0, 0.25)
    }

    /// Peak streaming bandwidth in bytes per cycle.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.peak_bytes_per_cycle
    }

    /// Cycles to stream `bytes` sequentially (column reads/writes).
    pub fn stream(&mut self, bytes: u64) -> Cycles {
        self.bytes_streamed += bytes;
        (bytes as f64 / self.peak_bytes_per_cycle).ceil() as Cycles
    }

    /// Cycles to transfer `bytes` with strided access (covariance spill
    /// traffic).
    pub fn strided(&mut self, bytes: u64) -> Cycles {
        self.bytes_strided += bytes;
        (bytes as f64 / (self.peak_bytes_per_cycle * self.strided_efficiency)).ceil() as Cycles
    }

    /// Total bytes moved on the streaming path.
    pub fn bytes_streamed(&self) -> u64 {
        self.bytes_streamed
    }

    /// Total bytes moved on the strided path.
    pub fn bytes_strided(&self) -> u64 {
        self.bytes_strided
    }

    /// Effective bandwidth in bytes/sec at the given clock.
    pub fn streaming_bytes_per_sec(&self, clock_hz: f64) -> f64 {
        self.peak_bytes_per_cycle * clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_cycles() {
        let mut ch = OffChipChannel::new(16.0, 0.5);
        assert_eq!(ch.stream(160), 10);
        assert_eq!(ch.stream(161), 11); // ceiling
        assert_eq!(ch.bytes_streamed(), 321);
    }

    #[test]
    fn strided_pays_efficiency_penalty() {
        let mut ch = OffChipChannel::new(16.0, 0.25);
        let fast = ch.stream(1600);
        let slow = ch.strided(1600);
        assert_eq!(slow, fast * 4);
        assert_eq!(ch.bytes_strided(), 1600);
    }

    #[test]
    fn hc2_default_is_sane() {
        let ch = OffChipChannel::hc2_default();
        // 18 B/cycle at 150 MHz = 2.7 GB/s.
        let bw = ch.streaming_bytes_per_sec(150.0e6);
        assert!((bw - 2.7e9).abs() < 1e6);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        OffChipChannel::new(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn bad_efficiency_rejected() {
        OffChipChannel::new(8.0, 1.5);
    }
}
