//! Virtex-5 resource capacity and cost accounting — the substrate of the
//! Table II reproduction.
//!
//! Resource usage of a synthesized design is, to first order, additive over
//! its instantiated primitives: each Coregen floating-point core has a
//! documented LUT/DSP footprint, each memory buffer maps to a predictable
//! number of RAMB36 blocks, and the platform framework (the Convey HC-2
//! "personality" wrapper: memory controllers, crossbar ports, dispatch
//! logic) contributes a large fixed overhead. This module provides the
//! capacity table of the paper's XC5VLX330 part, per-primitive cost entries
//! (from the Coregen floating-point operator datasheet era, logic-maximal
//! configurations), and an aggregating [`ResourceUsage`].

use crate::op::FpOp;
use std::collections::BTreeMap;

/// Resource capacity of an FPGA part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipCapacity {
    /// Device name.
    pub name: &'static str,
    /// 6-input LUTs.
    pub luts: u64,
    /// DSP48E slices.
    pub dsps: u64,
    /// RAMB36 blocks.
    pub bram36: u64,
}

impl ChipCapacity {
    /// The paper's device: Xilinx Virtex-5 XC5VLX330.
    pub const XC5VLX330: ChipCapacity =
        ChipCapacity { name: "XC5VLX330", luts: 207_360, dsps: 192, bram36: 288 };
}

/// LUT/DSP cost of one primitive instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceCost {
    /// 6-input LUTs.
    pub luts: u64,
    /// DSP48E slices.
    pub dsps: u64,
}

/// Cost table for the Coregen double-precision floating-point operators in
/// the logic-balanced configurations a large design like this one uses
/// (mostly-logic multipliers to stay within the LX330's modest 192 DSPs).
pub fn coregen_cost(op: FpOp) -> ResourceCost {
    match op {
        // DP multiplier, medium-DSP configuration.
        FpOp::Mul => ResourceCost { luts: 1250, dsps: 2 },
        // DP adder/subtractor, logic-only.
        FpOp::Add | FpOp::Sub => ResourceCost { luts: 760, dsps: 0 },
        // DP divider (57-cycle), logic-only.
        FpOp::Div => ResourceCost { luts: 3220, dsps: 0 },
        // DP square root (57-cycle), logic-only.
        FpOp::Sqrt => ResourceCost { luts: 2220, dsps: 0 },
    }
}

/// Aggregated resource usage of a design, by named line item.
#[derive(Debug, Clone, Default)]
pub struct ResourceUsage {
    items: BTreeMap<String, (ResourceCost, u64 /* bram36 */)>,
}

impl ResourceUsage {
    /// Empty usage.
    pub fn new() -> Self {
        ResourceUsage::default()
    }

    /// Add `count` instances of an FP operator under the given line item.
    pub fn add_ops(&mut self, item: &str, op: FpOp, count: u64) {
        let c = coregen_cost(op);
        let e = self.items.entry(item.to_string()).or_default();
        e.0.luts += c.luts * count;
        e.0.dsps += c.dsps * count;
    }

    /// Add raw logic (control, FIFO flags, interfaces) under a line item.
    pub fn add_logic(&mut self, item: &str, cost: ResourceCost) {
        let e = self.items.entry(item.to_string()).or_default();
        e.0.luts += cost.luts;
        e.0.dsps += cost.dsps;
    }

    /// Add BRAM blocks under a line item.
    pub fn add_bram36(&mut self, item: &str, blocks: u64) {
        let e = self.items.entry(item.to_string()).or_default();
        e.1 += blocks;
    }

    /// Total LUTs.
    pub fn luts(&self) -> u64 {
        self.items.values().map(|(c, _)| c.luts).sum()
    }

    /// Total DSP48E slices.
    pub fn dsps(&self) -> u64 {
        self.items.values().map(|(c, _)| c.dsps).sum()
    }

    /// Total RAMB36 blocks.
    pub fn bram36(&self) -> u64 {
        self.items.values().map(|&(_, b)| b).sum()
    }

    /// Utilization percentages against a chip, `(lut %, bram %, dsp %)` —
    /// the three columns of the paper's Table II.
    pub fn utilization(&self, chip: &ChipCapacity) -> (f64, f64, f64) {
        (
            100.0 * self.luts() as f64 / chip.luts as f64,
            100.0 * self.bram36() as f64 / chip.bram36 as f64,
            100.0 * self.dsps() as f64 / chip.dsps as f64,
        )
    }

    /// True if the design fits the chip.
    pub fn fits(&self, chip: &ChipCapacity) -> bool {
        self.luts() <= chip.luts && self.dsps() <= chip.dsps && self.bram36() <= chip.bram36
    }

    /// Iterate line items as `(name, cost, bram36)`.
    pub fn items(&self) -> impl Iterator<Item = (&str, ResourceCost, u64)> + '_ {
        self.items.iter().map(|(k, &(c, b))| (k.as_str(), c, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_table() {
        let c = ChipCapacity::XC5VLX330;
        assert_eq!(c.luts, 207_360);
        assert_eq!(c.dsps, 192);
        assert_eq!(c.bram36, 288);
    }

    #[test]
    fn add_and_total() {
        let mut u = ResourceUsage::new();
        u.add_ops("preprocessor", FpOp::Mul, 16);
        u.add_ops("preprocessor", FpOp::Add, 16);
        assert_eq!(u.luts(), 16 * 1250 + 16 * 760);
        assert_eq!(u.dsps(), 32);
        u.add_bram36("covariance", 66);
        assert_eq!(u.bram36(), 66);
    }

    #[test]
    fn utilization_percentages() {
        let mut u = ResourceUsage::new();
        u.add_logic("half-the-luts", ResourceCost { luts: 103_680, dsps: 96 });
        u.add_bram36("half-the-bram", 144);
        let (lut, bram, dsp) = u.utilization(&ChipCapacity::XC5VLX330);
        assert!((lut - 50.0).abs() < 1e-9);
        assert!((bram - 50.0).abs() < 1e-9);
        assert!((dsp - 50.0).abs() < 1e-9);
        assert!(u.fits(&ChipCapacity::XC5VLX330));
    }

    #[test]
    fn over_capacity_detected() {
        let mut u = ResourceUsage::new();
        u.add_logic("too-big", ResourceCost { luts: 300_000, dsps: 0 });
        assert!(!u.fits(&ChipCapacity::XC5VLX330));
    }

    #[test]
    fn line_items_are_tracked_separately() {
        let mut u = ResourceUsage::new();
        u.add_ops("a", FpOp::Div, 1);
        u.add_ops("b", FpOp::Sqrt, 1);
        let names: Vec<&str> = u.items().map(|(n, _, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn cost_table_sanity() {
        // Multiplier is the only DSP consumer; divider is the LUT-heaviest.
        assert!(coregen_cost(FpOp::Mul).dsps > 0);
        assert_eq!(coregen_cost(FpOp::Add).dsps, 0);
        assert!(coregen_cost(FpOp::Div).luts > coregen_cost(FpOp::Sqrt).luts);
        assert_eq!(coregen_cost(FpOp::Add), coregen_cost(FpOp::Sub));
    }
}
