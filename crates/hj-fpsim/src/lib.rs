//! # hj-fpsim — FPGA component models
//!
//! The substrate beneath the architecture simulator in `hj-arch`: timing
//! models of the hardware building blocks the paper instantiates on its
//! Virtex-5 XC5VLX330, plus the chip's resource-capacity accounting.
//!
//! Everything here is a *cycle-accounting* model, not an RTL simulator: each
//! component knows its pipeline latency, initiation interval, capacity, and
//! port structure, and answers "how many cycles does this much work take"
//! and "how much of the chip do I occupy". That is exactly the level at
//! which the paper itself reasons about its design (§VI-A quotes operator
//! latencies of 9/14/57/57 cycles and component throughputs like "8
//! rotations every 64 cycles"), so it is the level a faithful reproduction
//! needs.
//!
//! * [`op`] — IEEE-754 double-precision operator specs (latency, initiation
//!   interval) with the paper's Coregen defaults.
//! * [`pipeline`] — pipelined execution-unit timing: fill + streaming.
//! * [`fifo`] — synchronization FIFO occupancy model with high-water
//!   tracking (the paper uses 64-bit I/O FIFOs and 127-bit internal FIFOs).
//! * [`bram`] — on-chip dual-port memory model with capacity and port
//!   accounting.
//! * [`memory`] — off-chip channel bandwidth model (the Convey HC-2 side).
//! * [`resources`] — Virtex-5 resource cost/capacity tables and usage
//!   aggregation, the basis of the Table II reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod bram;
pub mod fifo;
pub mod memory;
pub mod op;
pub mod pipeline;
pub mod power;
pub mod resources;

pub use bram::Bram;
pub use fifo::Fifo;
pub use memory::OffChipChannel;
pub use op::{FpOp, OpSpec, OperatorLatencies};
pub use pipeline::PipelinedUnit;
pub use resources::{ChipCapacity, ResourceCost, ResourceUsage};

/// Cycles as an explicit type alias; all component models count in cycles of
/// the design clock (the paper's system runs at 150 MHz).
pub type Cycles = u64;
