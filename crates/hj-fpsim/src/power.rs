//! Power and energy model — the efficiency dimension FPGA papers usually
//! report and this one leaves implicit.
//!
//! A 150 MHz Virtex-5 design competes with CPUs on *energy per result* even
//! where raw speed is close; this module makes that comparison expressible.
//! Per-operation dynamic energies are order-of-magnitude figures for 65 nm
//! double-precision FP logic (datasheet-era estimates, documented
//! constants, not measurements); static power covers the chip's leakage +
//! the always-on Convey memory interface share.
//!
//! All constants are public and the estimator is pure arithmetic, so
//! studies can substitute their own numbers.

/// Per-operation dynamic energy (joules) and static power (watts).
///
/// ```
/// use hj_fpsim::power::{OpCounts, PowerModel};
///
/// let ops = OpCounts::hestenes_run(128, 128, 6);
/// let e = PowerModel::default().energy(&ops, 5.5e-3);
/// // Milliseconds-scale runs are static-power dominated:
/// assert!(e.static_j > e.dynamic_j);
/// assert!(e.total_j() < 0.1); // well under 100 mJ
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Dynamic energy of one DP multiply (J). 65 nm-era DP multiplier:
    /// ~200 pJ including local routing.
    pub mul_energy: f64,
    /// Dynamic energy of one DP add/sub (J): ~100 pJ.
    pub add_energy: f64,
    /// Dynamic energy of one DP divide (J): long iterative datapath, ~2 nJ.
    pub div_energy: f64,
    /// Dynamic energy of one DP square root (J): ~2 nJ.
    pub sqrt_energy: f64,
    /// Energy to move one byte to/from off-chip memory (J/B): ~50 pJ/B for
    /// the HC-2-era memory subsystem share attributable to one AE.
    pub offchip_energy_per_byte: f64,
    /// Static (leakage + clocking + platform) power of the loaded FPGA (W).
    pub static_power: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            mul_energy: 200e-12,
            add_energy: 100e-12,
            div_energy: 2e-9,
            sqrt_energy: 2e-9,
            offchip_energy_per_byte: 50e-12,
            static_power: 8.0,
        }
    }
}

/// Operation counts of one run, as tallied by an architecture simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// DP multiplies.
    pub muls: u64,
    /// DP adds + subtracts.
    pub adds: u64,
    /// DP divides.
    pub divs: u64,
    /// DP square roots.
    pub sqrts: u64,
    /// Bytes moved off-chip (both directions).
    pub offchip_bytes: u64,
}

impl OpCounts {
    /// Tally for one Hestenes-Jacobi run of the paper's architecture on an
    /// `m × n` input with the given sweep count (full pair visits):
    /// Gram build `m·n(n+1)/2` MACs; per rotation 1 div + 2 sqrt + ~6
    /// mul/add for the parameters, `4(n−2)` mul + `2(n−2)` add for the
    /// covariance updates (+ column updates in sweep 1); final `n` sqrts.
    pub fn hestenes_run(m: usize, n: usize, sweeps: usize) -> OpCounts {
        let pairs = (n * n.saturating_sub(1) / 2) as u64;
        let mac = (n * (n + 1) / 2) as u64 * m as u64;
        let mut c = OpCounts {
            muls: mac,
            adds: mac,
            divs: 0,
            sqrts: n as u64,
            offchip_bytes: (m * n * 8) as u64,
        };
        for s in 1..=sweeps {
            c.divs += pairs;
            c.sqrts += 2 * pairs;
            c.muls += 6 * pairs;
            c.adds += 4 * pairs;
            let mut update_pairs = pairs * n.saturating_sub(2) as u64;
            if s == 1 {
                update_pairs += pairs * m as u64;
            }
            c.muls += 4 * update_pairs;
            c.adds += 2 * update_pairs;
        }
        c
    }
}

/// Energy estimate of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// Dynamic energy (J).
    pub dynamic_j: f64,
    /// Static energy over the run's wall time (J).
    pub static_j: f64,
}

impl EnergyEstimate {
    /// Total energy (J).
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.static_j
    }
}

impl PowerModel {
    /// Energy of a run with the given op counts and wall time.
    pub fn energy(&self, ops: &OpCounts, seconds: f64) -> EnergyEstimate {
        let dynamic_j = ops.muls as f64 * self.mul_energy
            + ops.adds as f64 * self.add_energy
            + ops.divs as f64 * self.div_energy
            + ops.sqrts as f64 * self.sqrt_energy
            + ops.offchip_bytes as f64 * self.offchip_energy_per_byte;
        EnergyEstimate { dynamic_j, static_j: self.static_power * seconds }
    }

    /// Energy of a CPU run modelled as `tdp_watts × seconds` (the standard
    /// coarse comparison figure).
    pub fn cpu_energy(tdp_watts: f64, seconds: f64) -> f64 {
        tdp_watts * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counts_scale_as_expected() {
        let small = OpCounts::hestenes_run(128, 64, 6);
        let tall = OpCounts::hestenes_run(1024, 64, 6);
        let wide = OpCounts::hestenes_run(128, 256, 6);
        // Rows: linear effect (Gram + sweep-1 column updates).
        assert!(tall.muls > small.muls && tall.muls < 10 * small.muls);
        // Columns: superquadratic effect.
        assert!(wide.muls > 16 * small.muls / 2);
        // Divides: one per rotation.
        assert_eq!(small.divs, 6 * (64 * 63 / 2) as u64);
        assert_eq!(small.sqrts, 2 * small.divs + 64);
    }

    #[test]
    fn energy_accounting_adds_up() {
        let m = PowerModel::default();
        let ops = OpCounts { muls: 1000, adds: 500, divs: 10, sqrts: 20, offchip_bytes: 4096 };
        let e = m.energy(&ops, 2.0);
        let expect_dyn =
            1000.0 * 200e-12 + 500.0 * 100e-12 + 10.0 * 2e-9 + 20.0 * 2e-9 + 4096.0 * 50e-12;
        assert!((e.dynamic_j - expect_dyn).abs() < 1e-18);
        assert!((e.static_j - 16.0).abs() < 1e-12);
        assert!((e.total_j() - (expect_dyn + 16.0)).abs() < 1e-12);
    }

    #[test]
    fn static_dominates_at_150mhz() {
        // Sanity of the model's shape: for the paper's small matrices the
        // run is milliseconds and dynamic energy is microjoules-to-
        // millijoules; static power dominates — the usual FPGA result.
        let model = PowerModel::default();
        let ops = OpCounts::hestenes_run(128, 128, 6);
        let e = model.energy(&ops, 5.5e-3);
        assert!(e.static_j > e.dynamic_j, "static {} vs dynamic {}", e.static_j, e.dynamic_j);
    }

    #[test]
    fn fpga_beats_cpu_tdp_energy_when_faster() {
        let model = PowerModel::default();
        let ops = OpCounts::hestenes_run(2048, 128, 6);
        // FPGA: 32 ms at 8 W static; CPU baseline: 105 ms at 65 W.
        let fpga = model.energy(&ops, 32e-3).total_j();
        let cpu = PowerModel::cpu_energy(65.0, 105e-3);
        assert!(fpga < cpu / 10.0, "fpga {fpga} J vs cpu {cpu} J");
    }
}
